//! Design-space exploration: sweep tile count × off-chip memory node for
//! one model and print the HD frame-rate grid plus the cheapest real-time
//! configuration — how an architect would actually use this library.
//!
//! ```text
//! cargo run --release --example design_space [model]
//! ```

use diffy::core::accelerator::{EvalOptions, SchemeChoice};
use diffy::core::runner::{ci_trace_bundle, WorkloadOptions, HD_PIXELS};
use diffy::core::scaling::{fig18_memory_ladder, fps_at_pixels, min_realtime_config, FIG18_TILES};
use diffy::core::summary::TextTable;
use diffy::encoding::StorageScheme;
use diffy::imaging::datasets::DatasetId;
use diffy::models::CiModel;
use diffy::sim::{AcceleratorConfig, Architecture};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "FFDNet".to_string());
    let model = CiModel::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(&arg))
        .unwrap_or_else(|| panic!("unknown model {arg}"));

    let opts = WorkloadOptions { resolution: 96, samples_per_dataset: 1, seed: 1 };
    println!("Design space for {model} at HD, Diffy + DeltaD16:\n");
    let bundle = ci_trace_bundle(model, DatasetId::Hd33, 0, &opts);
    let scheme = SchemeChoice::Scheme(StorageScheme::delta_d(16));

    let ladder = fig18_memory_ladder();
    let mut header = vec!["tiles \\ memory".to_string()];
    header.extend(ladder.iter().map(|m| m.to_string()));
    let mut table = TextTable::new(header);
    for &tiles in &FIG18_TILES {
        let mut row = vec![tiles.to_string()];
        for &mem in &ladder {
            let eval = EvalOptions {
                arch: Architecture::Diffy,
                cfg: AcceleratorConfig::table4().with_tiles(tiles),
                scheme,
                memory: mem,
            };
            let fps = fps_at_pixels(&bundle, &eval, HD_PIXELS);
            let mark = if fps >= 30.0 { "*" } else { " " };
            row.push(format!("{fps:.1}{mark}"));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!("(* = real-time 30 FPS)\n");

    match min_realtime_config(&bundle, scheme) {
        Some((tiles, mem)) => {
            println!("cheapest real-time configuration: {tiles} tiles + {mem}")
        }
        None => println!("no configuration in the ladder reaches 30 FPS"),
    }
}
