//! Validates the 16-bit fixed-point premise: run a CI-DNN in both the
//! accelerator's fixed-point arithmetic and a float reference, and
//! report the per-layer correlation between the two feature-map streams.
//!
//! ```text
//! cargo run --release --example quantization_check [model]
//! ```

use diffy::core::summary::TextTable;
use diffy::imaging::datasets::DatasetId;
use diffy::models::float_ref::{correlation, run_network_f32};
use diffy::models::{run_network, CiModel, NetworkWeights};
use diffy::tensor::Quantizer;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "IRCNN".to_string());
    let model = CiModel::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(&arg))
        .unwrap_or_else(|| panic!("unknown model {arg}"));

    let res = 48;
    println!("{model}: fixed-point vs float reference at {res}x{res}\n");
    let img = DatasetId::Kodak24.sample_scaled(0, res, res);
    let weights =
        NetworkWeights::generate(&model.spec(), model.weight_gen(1), Quantizer::default());

    // Fixed-point path (the accelerator's arithmetic).
    let input_fixed = model.prepare_input(&img, 1);
    let fixed = run_network(&model.spec(), &weights, &input_fixed);

    // Float path over the *same* prepared input, dequantized — isolating
    // arithmetic error from input quantization.
    let q = Quantizer::default();
    let input_float = input_fixed.map(|v| q.dequantize(v));
    let float = run_network_f32(&model.spec(), &weights, &input_float);

    let mut table = TextTable::new(vec!["layer", "correlation"]);
    let mut min_r: f64 = 1.0;
    for (i, fmap) in float.iter().enumerate() {
        let r = correlation(fixed.omap(i), fmap);
        min_r = min_r.min(r);
        table.row(vec![fixed.layers[i].name.clone(), format!("{r:.5}")]);
    }
    println!("{}", table.render());
    println!(
        "worst layer correlation: {min_r:.5} — 16-bit fixed point with\n\
         per-layer scaling tracks the float reference through the full\n\
         stack, the premise the paper inherits from Stripes/Proteus."
    );
}
