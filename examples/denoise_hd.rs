//! HD denoising pipeline study: DnCNN at 1920×1080 on all three
//! architectures, with a per-layer breakdown for Diffy — the scenario the
//! paper's introduction motivates (real-time computational imaging on
//! device-class accelerators).
//!
//! ```text
//! cargo run --release --example denoise_hd
//! ```

use diffy::core::accelerator::{EvalOptions, SchemeChoice};
use diffy::core::runner::{ci_trace_bundle, WorkloadOptions, HD_PIXELS};
use diffy::core::summary::{fmt_bytes, TextTable};
use diffy::encoding::StorageScheme;
use diffy::imaging::datasets::DatasetId;
use diffy::models::CiModel;
use diffy::sim::Architecture;

fn main() {
    let model = CiModel::DnCnn;
    let opts = WorkloadOptions { resolution: 96, samples_per_dataset: 1, seed: 1 };
    println!("Tracing {model} on an HD33-class scene at {0}x{0} and projecting", opts.resolution);
    println!("to 1920x1080 (per-pixel work is resolution-stationary)...\n");
    let bundle = ci_trace_bundle(model, DatasetId::Hd33, 0, &opts);

    // Architecture comparison at HD.
    let mut arch_table =
        TextTable::new(vec!["architecture", "scheme", "HD FPS", "stall %", "traffic/frame (HD)"]);
    let hd_scale = HD_PIXELS as f64 / bundle.source_pixels as f64;
    for arch in [Architecture::Vaa, Architecture::Pra, Architecture::Diffy] {
        for scheme in [
            SchemeChoice::Scheme(StorageScheme::NoCompression),
            SchemeChoice::Scheme(StorageScheme::delta_d(16)),
        ] {
            let r = bundle.evaluate(&EvalOptions::new(arch, scheme));
            arch_table.row(vec![
                arch.name().to_string(),
                r.scheme.clone(),
                format!("{:.2}", bundle.hd_fps(&r)),
                format!("{:.1}%", r.stall_fraction() * 100.0),
                fmt_bytes((r.total_traffic_bytes() as f64 * hd_scale) as u64),
            ]);
        }
    }
    println!("{}", arch_table.render());

    // Per-layer breakdown for Diffy + DeltaD16.
    let r = bundle.evaluate(&EvalOptions::new(
        Architecture::Diffy,
        SchemeChoice::Scheme(StorageScheme::delta_d(16)),
    ));
    let total = r.total_cycles() as f64;
    let mut layer_table =
        TextTable::new(vec!["layer", "time share", "utilization", "stall %"]);
    for l in &r.layers {
        layer_table.row(vec![
            l.name.clone(),
            format!("{:.1}%", 100.0 * l.timing.total_cycles as f64 / total),
            format!("{:.1}%", l.compute.utilization() * 100.0),
            format!("{:.1}%", l.timing.stall_fraction() * 100.0),
        ]);
    }
    println!("Diffy + DeltaD16 per-layer breakdown:\n{}", layer_table.render());
    println!(
        "Real-time HD denoising needs a scaled-up configuration; see\n\
         `cargo bench -p diffy-bench --bench fig18_realtime` for the minimum tiles/memory."
    );
}
