//! Video denoising with spatio-temporal differential processing — the
//! §V extension in action: denoise a panning clip frame by frame and
//! compare Diffy against its temporal and spatio-temporal variants.
//!
//! ```text
//! cargo run --release --example video_denoise
//! ```

use diffy::core::summary::TextTable;
use diffy::imaging::scenes::SceneKind;
use diffy::imaging::video::pan_sequence;
use diffy::models::{run_network, CiModel, NetworkWeights};
use diffy::sim::{
    temporal_network, term_serial_network, vaa_network, AcceleratorConfig, TemporalMode,
    ValueMode,
};
use diffy::tensor::Quantizer;

fn main() {
    let model = CiModel::DnCnn;
    let res = 64;
    let frames = 4;
    println!("Denoising a {frames}-frame {res}x{res} panning clip with {model}...\n");

    let clip = pan_sequence(SceneKind::Nature, res, res, frames, 2, 0.02, 11);
    let weights =
        NetworkWeights::generate(&model.spec(), model.weight_gen(1), Quantizer::default());
    let traces: Vec<_> = clip
        .iter()
        .map(|f| run_network(&model.spec(), &weights, &model.prepare_input(f, 0)))
        .collect();

    let cfg = AcceleratorConfig::table4();
    let mut table = TextTable::new(vec!["frame", "Diffy", "Diffy-T", "Diffy-ST"]);
    for t in 1..frames {
        let vaa = vaa_network(&traces[t], &cfg).total_cycles() as f64;
        let spatial =
            term_serial_network(&traces[t], &cfg, ValueMode::Differential).total_cycles();
        let temporal =
            temporal_network(&traces[t - 1], &traces[t], &cfg, TemporalMode::TemporalOnly)
                .total_cycles();
        let st =
            temporal_network(&traces[t - 1], &traces[t], &cfg, TemporalMode::SpatioTemporal)
                .total_cycles();
        table.row(vec![
            t.to_string(),
            format!("{:.2}x", vaa / spatial as f64),
            format!("{:.2}x", vaa / temporal as f64),
            format!("{:.2}x", vaa / st as f64),
        ]);
    }
    println!("{}", table.render());
    println!("speedups over VAA per frame (frame 0 must run spatially).");
    println!("Diffy-T/-ST additionally buffer the previous frame's imaps —");
    println!("the storage-for-work trade-off of CBInfer, which the paper's");
    println!("related work suggests combining with Diffy.");
}
