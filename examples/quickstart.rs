//! Quickstart: trace one CI-DNN on one image and compare the three
//! architectures — the 60-second tour of the library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use diffy::core::accelerator::{EvalOptions, SchemeChoice};
use diffy::core::runner::{ci_trace_bundle, WorkloadOptions};
use diffy::core::summary::{fmt_x, TextTable};
use diffy::encoding::StorageScheme;
use diffy::imaging::datasets::DatasetId;
use diffy::models::CiModel;
use diffy::sim::Architecture;

fn main() {
    let model = CiModel::Ircnn;
    let opts = WorkloadOptions { resolution: 64, samples_per_dataset: 1, seed: 1 };
    println!(
        "Tracing {model} on one {}x{} {} image (synthetic stand-in)...",
        opts.resolution,
        opts.resolution,
        DatasetId::Kodak24
    );
    let bundle = ci_trace_bundle(model, DatasetId::Kodak24, 0, &opts);
    println!(
        "  {} conv layers, {:.1} MMACs total\n",
        bundle.trace.layers.len(),
        bundle.trace.total_macs() as f64 / 1e6
    );

    let scheme = SchemeChoice::Scheme(StorageScheme::delta_d(16));
    let mut table = TextTable::new(vec!["architecture", "cycles", "speedup vs VAA", "stall %"]);
    let vaa = bundle.evaluate(&EvalOptions::new(Architecture::Vaa, scheme));
    for arch in [Architecture::Vaa, Architecture::Pra, Architecture::Diffy] {
        let r = bundle.evaluate(&EvalOptions::new(arch, scheme));
        table.row(vec![
            arch.name().to_string(),
            r.total_cycles().to_string(),
            fmt_x(vaa.total_cycles() as f64 / r.total_cycles() as f64),
            format!("{:.1}%", r.stall_fraction() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("Diffy processes the deltas of adjacent activations, so smooth");
    println!("imaging content needs fewer effectual Booth terms per value.");
}
