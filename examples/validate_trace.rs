//! Schema validator for exported traces: checks that a `--trace-out`
//! file (or a `GET /trace` body) is well-formed Chrome trace-event JSON.
//!
//! ```text
//! cargo run --release --example validate_trace -- trace.json
//! ```
//!
//! Exits nonzero with a message on the first violation; CI runs it over
//! the traces the serve-smoke job captures from a live server.

use diffy::core::json::{parse, JsonValue};
use std::process::ExitCode;

fn validate(doc: &JsonValue) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event #{i}: {field}");
        let name =
            ev.get("name").and_then(|n| n.as_str()).ok_or_else(|| ctx("missing name"))?;
        let ph = ev.get("ph").and_then(|p| p.as_str()).ok_or_else(|| ctx("missing ph"))?;
        if ph != "X" && ph != "i" {
            return Err(format!("event #{i} ({name}): unexpected phase {ph:?}"));
        }
        ev.get("ts").and_then(|t| t.as_f64()).ok_or_else(|| ctx("missing numeric ts"))?;
        ev.get("pid").and_then(|p| p.as_u64()).ok_or_else(|| ctx("missing pid"))?;
        ev.get("tid").and_then(|t| t.as_u64()).ok_or_else(|| ctx("missing tid"))?;
        if ph == "X" {
            let dur = ev
                .get("dur")
                .and_then(|d| d.as_f64())
                .ok_or_else(|| format!("event #{i} ({name}): complete event without dur"))?;
            if dur < 0.0 {
                return Err(format!("event #{i} ({name}): negative duration {dur}"));
            }
        }
    }
    Ok(events.len())
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&doc) {
        Ok(n) => {
            let dropped = doc
                .get("otherData")
                .and_then(|o| o.get("dropped"))
                .and_then(|d| d.as_u64())
                .unwrap_or(0);
            println!("{path}: OK ({n} events, {dropped} dropped)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}
