//! Activation compression in practice: encode a real traced layer's imap
//! with every storage scheme, verify bit-exact roundtrips, and print the
//! footprints — the Fig. 5/14 machinery on one concrete layer.
//!
//! ```text
//! cargo run --release --example compress_activations
//! ```

use diffy::core::runner::{ci_trace_bundle, WorkloadOptions};
use diffy::core::summary::{fmt_bytes, TextTable};
use diffy::encoding::bitstream::{BitReader, BitWriter};
use diffy::encoding::StorageScheme;
use diffy::imaging::datasets::DatasetId;
use diffy::memsys::traffic::tensor_signedness;
use diffy::models::CiModel;

fn main() {
    let opts = WorkloadOptions { resolution: 64, samples_per_dataset: 1, seed: 1 };
    let bundle = ci_trace_bundle(CiModel::DnCnn, DatasetId::Kodak24, 0, &opts);
    let layer = &bundle.trace.layers[4];
    let imap = &layer.imap;
    let sign = tensor_signedness(imap);
    println!(
        "Compressing {} / {} imap ({} activations, {} raw):\n",
        bundle.trace.model,
        layer.name,
        imap.len(),
        fmt_bytes(imap.len() as u64 * 2),
    );

    let schemes = [
        StorageScheme::NoCompression,
        StorageScheme::RleZ,
        StorageScheme::Rle,
        StorageScheme::raw_d(256),
        StorageScheme::raw_d(16),
        StorageScheme::raw_d(8),
        StorageScheme::delta_d(256),
        StorageScheme::delta_d(16),
    ];
    let mut table = TextTable::new(vec!["scheme", "encoded", "vs 16b", "roundtrip"]);
    let base = imap.len() as u64 * 16;
    for scheme in schemes {
        // Encode and decode every row, proving losslessness on real data.
        let mut bits = 0u64;
        let mut exact = true;
        let s = imap.shape();
        for c in 0..s.c {
            for y in 0..s.h {
                let row = imap.row(c, y);
                let mut w = BitWriter::new();
                scheme.encode_row(row, sign, &mut w);
                bits += w.bit_len();
                let bytes = w.finish();
                let mut r = BitReader::new(&bytes);
                let back = scheme.decode_row(&mut r, row.len(), sign).expect("decode");
                exact &= back == row;
            }
        }
        table.row(vec![
            scheme.to_string(),
            fmt_bytes(bits / 8),
            format!("{:.1}%", 100.0 * bits as f64 / base as f64),
            if exact { "bit-exact" } else { "LOSSY" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("DeltaD16 is what Diffy stores in its activation memory and ships");
    println!("over the off-chip link (4-bit precision header per 16 values).");
}
