//! Per-layer value statistics: mean effectual terms (raw vs delta) and
//! sparsity for one model — the microscope behind Figs. 2/3.
//!
//! ```text
//! cargo run --release --example value_stats [model]
//! ```

use diffy::core::runner::{ci_trace_bundle, WorkloadOptions};
use diffy::core::summary::TextTable;
use diffy::encoding::delta::delta_rows_wrapping;
use diffy::encoding::terms::{stats_of_acts, TermStats};
use diffy::imaging::datasets::DatasetId;
use diffy::models::CiModel;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "DnCNN".to_string());
    let model = CiModel::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(&arg))
        .unwrap_or_else(|| panic!("unknown model {arg}; pick one of DnCNN/FFDNet/IRCNN/JointNet/VDSR"));

    let opts = WorkloadOptions { resolution: 64, samples_per_dataset: 1, seed: 1 };
    let bundle = ci_trace_bundle(model, DatasetId::Kodak24, 0, &opts);

    let mut table = TextTable::new(vec![
        "layer",
        "raw terms/act",
        "delta terms/act",
        "ratio",
        "raw sparsity",
        "delta sparsity",
    ]);
    let mut raw_all = TermStats::new();
    let mut delta_all = TermStats::new();
    for l in &bundle.trace.layers {
        let raw = stats_of_acts(&l.imap);
        let deltas = delta_rows_wrapping(&l.imap, l.geom.stride);
        let delta = stats_of_acts(&deltas);
        table.row(vec![
            l.name.clone(),
            format!("{:.2}", raw.mean_terms()),
            format!("{:.2}", delta.mean_terms()),
            format!("{:.2}x", raw.mean_terms() / delta.mean_terms().max(1e-9)),
            format!("{:.1}%", raw.sparsity() * 100.0),
            format!("{:.1}%", delta.sparsity() * 100.0),
        ]);
        raw_all.merge(&raw);
        delta_all.merge(&delta);
    }
    table.row(vec![
        "ALL".to_string(),
        format!("{:.2}", raw_all.mean_terms()),
        format!("{:.2}", delta_all.mean_terms()),
        format!("{:.2}x", raw_all.mean_terms() / delta_all.mean_terms().max(1e-9)),
        format!("{:.1}%", raw_all.sparsity() * 100.0),
        format!("{:.1}%", delta_all.sparsity() * 100.0),
    ]);
    println!("{model}: per-layer effectual-term statistics\n");
    println!("{}", table.render());
}
