//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace vendors the subset of the criterion 0.x API its
//! micro-benchmarks use: `Criterion::benchmark_group`, per-group
//! `throughput` / `bench_function` / `finish`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a fixed warm-up plus a short timed window over
//! `std::time::Instant` — median-of-batches, no outlier analysis or HTML
//! reports. Good enough to rank kernels and spot regressions by eye.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup { throughput: None, _criterion: self }
    }

    /// Accepted for CLI compatibility; filters are not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { total: Duration::ZERO, iters: 0 };
        // Warm-up pass (also primes caches and the closure's setup).
        f(&mut b);
        b.total = Duration::ZERO;
        b.iters = 0;
        let window = Instant::now();
        while window.elapsed() < Duration::from_millis(300) {
            f(&mut b);
        }
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.1} Melem/s)", n as f64 / per_iter.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.1} MB/s)", n as f64 / per_iter.as_secs_f64() / 1e6)
            }
            _ => String::new(),
        };
        println!("  {id:<32} {per_iter:>12.3?}/iter{rate}");
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        println!();
    }
}

/// Runs and times the measured closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, preventing its result from being optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        std_black_box(routine());
        self.total += start.elapsed();
        self.iters += 1;
    }
}

/// Bundles bench functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("sum");
        g.throughput(Throughput::Elements(1000));
        g.bench_function("naive", |b| b.iter(|| (0u64..1000).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        criterion_group!(benches, sample_bench);
        benches();
    }
}
