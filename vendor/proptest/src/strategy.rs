//! The [`Strategy`] trait and its combinators — generate-only, no
//! shrinking (see the crate docs for the divergence rationale).

use crate::test_runner::TestRng;
use rand::RngExt;

/// How many times `prop_filter` retries before giving up.
const MAX_FILTER_REJECTS: usize = 10_000;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Rejects generated values failing `pred`, retrying with fresh draws.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, whence, pred }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..MAX_FILTER_REJECTS {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {MAX_FILTER_REJECTS} consecutive values",
            self.whence
        );
    }
}

/// Uniform choice between type-erased strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0/0);
impl_tuple_strategy!(S0/0, S1/1);
impl_tuple_strategy!(S0/0, S1/1, S2/2);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7, S8/8);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7, S8/8, S9/9);
