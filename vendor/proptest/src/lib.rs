//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace vendors the subset of the `proptest` 1.x API its test
//! suites use: the [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`],
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, [`arbitrary::any`], and
//! [`collection::vec`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated values
//!   formatted by the assertion itself; there is no minimization pass.
//! * **Deterministic seeding.** Each test's RNG is seeded from its
//!   function name, so a given proptest exercises the same value stream
//!   on every run (upstream uses fresh entropy plus regression files;
//!   the checked-in `.proptest-regressions` files are inert comments to
//!   this implementation).

#![warn(missing_docs)]

pub mod strategy;

/// Test-runner configuration and the per-test RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of upstream's `ProptestConfig`: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases — smaller than upstream's 256, sized for CI where the
        /// whole workspace's proptests run on every push.
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// The RNG driving value generation, seeded from the test name so
    /// every run of a given test sees the same stream.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// `any::<T>()` — full-domain strategies for primitives.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (full domain for integers).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Things usable as the size argument of [`vec`].
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest file conventionally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniformly picks one of several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __cfg = $cfg;
            let __strat = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = i32> {
        (0i32..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_bounded(v in 3usize..10, w in -5i16..=5) {
            prop_assert!((3..10).contains(&v));
            prop_assert!((-5..=5).contains(&w));
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0u32..10, 0u32..10)) {
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn map_flat_map_filter_compose(
            v in evens()
                .prop_flat_map(|e| (Just(e), 0i32..=e.max(0)))
                .prop_filter("ordered", |(e, x)| x <= e)
        ) {
            let (e, x) = v;
            prop_assert!(e % 2 == 0);
            prop_assert!(x <= e);
        }

        #[test]
        fn oneof_and_vec(
            k in prop_oneof![Just(1usize), Just(3)],
            vs in crate::collection::vec(any::<i16>(), 0..20),
        ) {
            prop_assert!(k == 1 || k == 3);
            prop_assert!(vs.len() < 20);
        }
    }

    #[test]
    fn same_test_name_same_stream() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u64>(), 8usize);
        let mut r1 = crate::test_runner::TestRng::for_test("x");
        let mut r2 = crate::test_runner::TestRng::for_test("x");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
