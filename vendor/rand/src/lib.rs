//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace vendors the *subset* of the `rand` 0.10 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] methods `random` / `random_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only relies
//! on *determinism and statistical quality*, never on a specific stream:
//! every golden value in the tests was produced against this
//! implementation.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their full domain (or `[0, 1)` for
/// floats), mirroring `rand`'s `StandardUniform` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) at full f32 mantissa precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value in the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free bounded draw in `[0, n)` via 128-bit multiply-shift
/// (Lemire); bias is < 2⁻⁶⁴ per draw, far below anything the synthetic
/// workloads can observe.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full-domain inclusive range: every word is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Draws a value of `T` from the standard distribution (full domain
    /// for integers, `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<Rng: SampleRange>(&mut self, range: Rng) -> Rng::Output {
        range.sample_range(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let vals: Vec<f32> = (0..4096).map(|_| rng.random::<f32>()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2048 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-5i16..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(1.5f32..2.5);
            assert!((1.5..2.5).contains(&f));
        }
        // Inclusive upper bound is actually reachable.
        let hits = (0..512).filter(|_| rng.random_range(0u64..=1) == 1).count();
        assert!(hits > 180, "inclusive bound never sampled ({hits})");
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut any_negative = false;
        for _ in 0..256 {
            let v = rng.random_range(i16::MIN..=i16::MAX);
            any_negative |= v < 0;
        }
        assert!(any_negative);
    }
}
