//! Crash-consistency and end-to-end tests of the disk artifact tier.
//!
//! The tier's write protocol is temp-file + rename: a crash between the
//! two leaves an orphan temp that readers must ignore (and writers must
//! not trip over), never a half-visible artifact. These tests simulate
//! the torn states directly — an orphan temp from a dead writer, a
//! truncated artifact from bit rot — and assert the recovery story:
//! recompute, serve right bits, repair the disk copy. The live-server
//! tests pin the end-to-end guarantee: a response served off the disk
//! tier is byte-identical to a direct in-process evaluation.

use diffy::core::artifact::DiskTier;
use diffy::core::json::parse;
use diffy::core::runner::{ci_trace_bundle, SweepCache};
use diffy::serve::protocol::EvalRequest;
use diffy::serve::{get, post, result_to_json, ServeConfig, Server, ServerHandle};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// A fresh scratch directory for one test; removed and recreated so
/// reruns start clean.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diffy-artifact-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boots a server on an ephemeral port and runs it on its own thread.
fn boot(config: ServeConfig) -> (SocketAddr, ServerHandle, JoinHandle<()>) {
    let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..config })
        .expect("bind on an ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

/// The exact body a correct server must serve for `body`: evaluate
/// directly (no server, no cache, no disk) and serialize
/// deterministically.
fn direct_evaluation(body: &str) -> String {
    let parsed = parse(body).expect("test body is valid JSON");
    let req = EvalRequest::from_json(&parsed).expect("test body is a valid request");
    let bundle = ci_trace_bundle(req.model, req.dataset, req.sample, &req.workload());
    let result = bundle.evaluate(&req.eval_options());
    result_to_json(&result, bundle.source_pixels).to_json()
}

/// Parses `body` and returns its canonical result key plus the pieces
/// needed to evaluate it through a cache.
fn request_for(body: &str) -> (EvalRequest, String) {
    let req = EvalRequest::from_json(&parse(body).unwrap()).unwrap();
    let key = diffy::core::result_key(
        req.model,
        req.dataset,
        req.sample,
        &req.workload(),
        &req.eval_options(),
    );
    (req, key)
}

/// Precomputes `bodies` into `dir` the same way `diffy precompute` does.
fn precompute(dir: &PathBuf, bodies: &[&str]) {
    let tier = DiskTier::open(dir).expect("open artifact dir");
    let cache = SweepCache::new().with_disk(tier);
    for body in bodies {
        let (req, _) = request_for(body);
        cache.evaluate_keyed(req.model, req.dataset, req.sample, &req.workload(), &req.eval_options());
    }
}

const BODY: &str = r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32}"#;

#[test]
fn orphan_temp_from_a_torn_write_is_ignored_and_the_artifact_repaired() {
    let dir = scratch_dir("torn-write");
    std::fs::create_dir_all(&dir).unwrap();

    // A writer died between writing its temp file and renaming it: the
    // artifact must be invisible — not half-read, not half-trusted.
    let (req, key) = request_for(BODY);
    let orphan = dir.join(format!(".{:016x}.{}.0.tmp", 0xdead_beefu64, 99999));
    std::fs::write(&orphan, b"{\"format\":\"diffy-artifact\",\"vers").unwrap();

    let tier = DiskTier::open(&dir).expect("open artifact dir");
    assert!(!tier.contains(&key), "orphan temp must not satisfy an existence probe");
    let cache = SweepCache::new().with_disk(tier);
    let artifact =
        cache.evaluate_keyed(req.model, req.dataset, req.sample, &req.workload(), &req.eval_options());
    let stats = cache.stats().disk;
    assert_eq!((stats.hits, stats.misses, stats.corrupt), (0, 1, 0), "{stats:?}");

    // The recompute repaired the directory: a second cold reader gets a
    // disk hit, bit-identical to a fresh no-disk evaluation…
    let reader = SweepCache::new().with_disk(DiskTier::open(&dir).unwrap());
    let reread =
        reader.evaluate_keyed(req.model, req.dataset, req.sample, &req.workload(), &req.eval_options());
    assert_eq!(reader.stats().disk.hits, 1);
    let fresh = SweepCache::new()
        .evaluate(req.model, req.dataset, req.sample, &req.workload(), &req.eval_options());
    assert!(reread.result == fresh, "disk-hit result must be bit-identical to fresh compute");
    assert!(artifact.result == fresh);

    // …and the orphan is still there, untouched: open() must never reap
    // temp files, because a *live* concurrent writer looks identical to
    // a dead one.
    assert!(orphan.exists(), "open() must not delete temp files it cannot attribute");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_precompute_and_warmup_share_a_directory_safely() {
    let dir = scratch_dir("concurrent");
    std::fs::create_dir_all(&dir).unwrap();

    let bodies = [
        r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32}"#,
        r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32, "seed": 7}"#,
        r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32, "arch": "VAA"}"#,
        r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32, "scheme": "Ideal"}"#,
    ];

    // One thread precomputes the grid into the directory while another
    // repeatedly cold-opens it and warms a memory tier — the reader must
    // only ever observe fully-published artifacts (rename is the commit
    // point), in any interleaving.
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| precompute(&dir, &bodies));
        let reader = scope.spawn(|| {
            let mut observed = 0usize;
            for _ in 0..50 {
                let cache = SweepCache::new().with_disk(DiskTier::open(&dir).unwrap());
                let warmed = cache.warm_from_disk();
                assert!(warmed >= observed, "published artifacts must never un-publish");
                observed = warmed;
                assert_eq!(cache.stats().disk.corrupt, 0, "reader saw a torn artifact");
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });

    // Quiescent state: everything precomputed is warm-loadable and
    // bit-identical to fresh compute.
    let cache = SweepCache::new().with_disk(DiskTier::open(&dir).unwrap());
    assert_eq!(cache.warm_from_disk(), bodies.len());
    for body in bodies {
        let (req, _) = request_for(body);
        let warmed = cache
            .evaluate_keyed(req.model, req.dataset, req.sample, &req.workload(), &req.eval_options());
        let fresh = SweepCache::new()
            .evaluate(req.model, req.dataset, req.sample, &req.workload(), &req.eval_options());
        assert!(warmed.result == fresh, "warmed result diverged for {body}");
    }
    let stats = cache.stats();
    assert_eq!(stats.disk.hits + stats.disk.misses, 0, "warm serve must not touch disk");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warmed_cold_start_serves_disk_artifacts_bit_identically_from_memory() {
    let dir = scratch_dir("warmed-serve");
    precompute(&dir, &[BODY]);
    let expected = direct_evaluation(BODY);

    // Cold-start a *fresh* server process-equivalent over the directory:
    // nothing in memory but what warmup loaded.
    let (addr, handle, thread) = boot(ServeConfig {
        artifact_dir: Some(dir.to_string_lossy().into_owned()),
        warmup: true,
        ..ServeConfig::default()
    });

    let resp = post(addr, "/evaluate", BODY, TIMEOUT).expect("post");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.body, expected, "disk-tier result must equal the direct evaluation");

    let m = parse(&get(addr, "/metrics", TIMEOUT).unwrap().body).unwrap();
    let cache = m.get("cache").unwrap();
    let disk = cache.get("disk").unwrap();
    assert!(cache.get("hits").unwrap().as_u64().unwrap() >= 1, "memory tier must serve");
    assert_eq!(disk.get("hits").unwrap().as_u64(), Some(0), "warmed serve must skip disk");
    assert_eq!(disk.get("corrupt").unwrap().as_u64(), Some(0));

    handle.shutdown();
    thread.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_artifact_is_served_by_recompute_and_repaired_on_disk() {
    let dir = scratch_dir("corrupt-serve");
    precompute(&dir, &[BODY]);
    let expected = direct_evaluation(BODY);

    // Bit rot: truncate the published artifact to half its size.
    let (_, key) = request_for(BODY);
    let path = DiskTier::open(&dir).unwrap().path_for(&key);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    // Read-through (no warmup): the first request finds the corrupt
    // artifact, recomputes, and must still answer 200 with right bits.
    let (addr, handle, thread) = boot(ServeConfig {
        artifact_dir: Some(dir.to_string_lossy().into_owned()),
        warmup: false,
        ..ServeConfig::default()
    });

    let resp = post(addr, "/evaluate", BODY, TIMEOUT).expect("post");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.body, expected, "recomputed result must equal the direct evaluation");

    let m = parse(&get(addr, "/metrics", TIMEOUT).unwrap().body).unwrap();
    let disk = m.get("cache").unwrap().get("disk").unwrap();
    assert_eq!(disk.get("corrupt").unwrap().as_u64(), Some(1), "corruption must be counted");

    handle.shutdown();
    thread.join().unwrap();

    // The write-through repaired the file: a cold reader now disk-hits.
    let reader = SweepCache::new().with_disk(DiskTier::open(&dir).unwrap());
    let (req, _) = request_for(BODY);
    reader.evaluate_keyed(req.model, req.dataset, req.sample, &req.workload(), &req.eval_options());
    let stats = reader.stats().disk;
    assert_eq!((stats.hits, stats.corrupt), (1, 0), "{stats:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
