//! End-to-end check of the serve-layer trace: one real request against a
//! live server must yield a Chrome-loadable trace whose per-stage spans
//! tile the request span, and whose request span agrees with the
//! `/metrics` latency histogram for the same request.
//!
//! This is the acceptance gate of the tracing work: if a stage were
//! missed (or double-counted), the stage sum would drift away from the
//! observed wall-clock latency.

use diffy::core::json::JsonValue;
use diffy::serve::{get, post, ServeConfig, Server};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// Milliseconds of slack allowed between two measurements of the same
/// request: generous for CI noise, tight enough to catch a missing stage
/// (evaluation alone is tens of milliseconds).
fn close(a_ms: f64, b_ms: f64, what: &str) {
    let tol = (a_ms.max(b_ms) * 0.25).max(15.0);
    assert!(
        (a_ms - b_ms).abs() <= tol,
        "{what}: {a_ms:.3}ms vs {b_ms:.3}ms differ by more than {tol:.3}ms"
    );
}

fn events(trace: &JsonValue) -> &[JsonValue] {
    trace.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array")
}

fn arg_u64(ev: &JsonValue, key: &str) -> Option<u64> {
    ev.get("args")?.get(key)?.as_u64()
}

#[test]
fn one_request_yields_a_consistent_stage_breakdown() {
    // One worker so the single request owns the pipeline end to end.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: diffy::core::parallel::Jobs::new(1),
        trace_capture: true,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));

    let body = r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32}"#;
    let resp = post(addr, "/evaluate", body, TIMEOUT).expect("post");
    assert_eq!(resp.status, 200, "body: {}", resp.body);

    let metrics = diffy::core::json::parse(&get(addr, "/metrics", TIMEOUT).unwrap().body)
        .expect("metrics JSON");
    let latency = metrics.get("latency_ms").unwrap();
    assert_eq!(latency.get("count").unwrap().as_u64(), Some(1));
    let latency_ms = latency.get("mean").unwrap().as_f64().unwrap();

    let trace_body = get(addr, "/trace", TIMEOUT).expect("trace").body;
    let trace = diffy::core::json::parse(&trace_body).expect("trace endpoint serves JSON");

    // Chrome trace-event shape: every event has name/ph/ts/pid/tid, and
    // complete events carry a duration.
    for ev in events(&trace) {
        assert!(ev.get("name").and_then(|n| n.as_str()).is_some(), "event without name");
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph:?}");
        assert!(ev.get("ts").is_some() && ev.get("pid").is_some() && ev.get("tid").is_some());
        if ph == "X" {
            assert!(ev.get("dur").and_then(|d| d.as_f64()).is_some(), "X event without dur");
        }
    }

    // Exactly one request span (metrics and health probes are untraced).
    let requests: Vec<&JsonValue> = events(&trace)
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("request"))
        .collect();
    assert_eq!(requests.len(), 1, "expected one request span in:\n{trace_body}");
    let request = requests[0];
    let request_id = arg_u64(request, "span_id").expect("request span_id");
    let request_ms = request.get("dur").unwrap().as_f64().unwrap() / 1000.0;

    // The six stages tile the request span: their durations must sum to
    // the request duration, and that must match the /metrics latency.
    let stage_names = ["queue_wait", "parse", "trace", "evaluate", "serialize", "write"];
    let mut stage_sum_ms = 0.0;
    for name in stage_names {
        let stage: Vec<&JsonValue> = events(&trace)
            .iter()
            .filter(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some(name)
                    && arg_u64(e, "parent") == Some(request_id)
            })
            .collect();
        assert_eq!(stage.len(), 1, "stage {name:?} must appear once under the request");
        stage_sum_ms += stage[0].get("dur").unwrap().as_f64().unwrap() / 1000.0;
    }

    close(stage_sum_ms, request_ms, "stage sum vs request span");
    close(request_ms, latency_ms, "request span vs /metrics latency");

    // The stage histograms saw the same single request.
    let stages_ms = metrics.get("stages_ms").unwrap();
    for name in stage_names {
        let count = stages_ms.get(name).unwrap().get("count").unwrap().as_u64();
        assert_eq!(count, Some(1), "stage {name:?} histogram count");
    }

    handle.shutdown();
    thread.join().expect("server drains");
}
