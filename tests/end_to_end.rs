//! End-to-end pipeline tests: dataset → prepared input → fixed-point
//! inference → cycle models → memory → results, for every Table I model.

use diffy::core::accelerator::{EvalOptions, SchemeChoice};
use diffy::core::runner::{ci_trace_bundle, WorkloadOptions};
use diffy::encoding::StorageScheme;
use diffy::imaging::datasets::DatasetId;
use diffy::models::CiModel;
use diffy::sim::Architecture;

fn small_bundle(model: CiModel) -> diffy::core::runner::TraceBundle {
    ci_trace_bundle(model, DatasetId::Hd33, 0, &WorkloadOptions::test_small())
}

#[test]
fn every_ci_model_traces_and_evaluates() {
    for model in CiModel::ALL {
        let bundle = small_bundle(model);
        assert_eq!(bundle.trace.layers.len(), model.spec().conv_layers(), "{model}");
        let r = bundle.evaluate(&EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal));
        assert!(r.total_cycles() > 0, "{model}");
        assert_eq!(r.layers.len(), bundle.trace.layers.len(), "{model}");
    }
}

#[test]
fn architecture_ordering_holds_on_imaging_workloads() {
    // The paper's headline ordering: Diffy faster than PRA faster than
    // VAA, for every CI-DNN, on compute cycles.
    for model in CiModel::ALL {
        let bundle = small_bundle(model);
        let scheme = SchemeChoice::Ideal;
        let vaa = bundle.evaluate(&EvalOptions::new(Architecture::Vaa, scheme));
        let pra = bundle.evaluate(&EvalOptions::new(Architecture::Pra, scheme));
        let diffy = bundle.evaluate(&EvalOptions::new(Architecture::Diffy, scheme));
        assert!(
            pra.total_cycles() < vaa.total_cycles(),
            "{model}: PRA {} !< VAA {}",
            pra.total_cycles(),
            vaa.total_cycles()
        );
        assert!(
            diffy.total_cycles() < pra.total_cycles(),
            "{model}: Diffy {} !< PRA {}",
            diffy.total_cycles(),
            pra.total_cycles()
        );
    }
}

#[test]
fn vaa_is_compute_bound_and_compression_insensitive() {
    // "Off-chip memory is not a bottleneck for VAA and thus its
    // performance is unaffected by compression" (§IV-A).
    let bundle = small_bundle(CiModel::DnCnn);
    let none = bundle.evaluate(&EvalOptions::new(
        Architecture::Vaa,
        SchemeChoice::Scheme(StorageScheme::NoCompression),
    ));
    let delta = bundle.evaluate(&EvalOptions::new(
        Architecture::Vaa,
        SchemeChoice::Scheme(StorageScheme::delta_d(16)),
    ));
    assert_eq!(none.total_cycles(), delta.total_cycles());
    assert_eq!(none.stall_cycles(), 0);
}

#[test]
fn delta_compression_only_helps() {
    for model in CiModel::ALL {
        let bundle = small_bundle(model);
        let none = bundle.evaluate(&EvalOptions::new(
            Architecture::Diffy,
            SchemeChoice::Scheme(StorageScheme::NoCompression),
        ));
        let delta = bundle.evaluate(&EvalOptions::new(
            Architecture::Diffy,
            SchemeChoice::Scheme(StorageScheme::delta_d(16)),
        ));
        assert!(delta.total_cycles() <= none.total_cycles(), "{model}");
        assert!(
            delta.activation_traffic_bytes() < none.activation_traffic_bytes(),
            "{model}"
        );
    }
}

#[test]
fn utilization_fractions_are_valid() {
    let bundle = small_bundle(CiModel::FfdNet);
    for arch in [Architecture::Vaa, Architecture::Pra, Architecture::Diffy] {
        let r = bundle.evaluate(&EvalOptions::new(arch, SchemeChoice::Ideal));
        for l in &r.layers {
            let u = l.compute.utilization();
            assert!((0.0..=1.0).contains(&u), "{arch:?} {}: {u}", l.name);
            assert!(l.timing.total_cycles >= l.timing.compute_cycles);
        }
    }
}

#[test]
fn traces_are_deterministic_across_runs() {
    let a = small_bundle(CiModel::Ircnn);
    let b = small_bundle(CiModel::Ircnn);
    assert_eq!(a.trace.output, b.trace.output);
    for (la, lb) in a.trace.layers.iter().zip(b.trace.layers.iter()) {
        assert_eq!(la.imap, lb.imap);
        assert_eq!(la.requant_shift, lb.requant_shift);
    }
}

#[test]
fn macs_agree_across_architectures() {
    let bundle = small_bundle(CiModel::JointNet);
    let vaa = bundle.evaluate(&EvalOptions::new(Architecture::Vaa, SchemeChoice::Ideal));
    let diffy = bundle.evaluate(&EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal));
    let macs = |r: &diffy::core::accelerator::NetworkResult| -> u64 {
        r.layers.iter().map(|l| l.compute.macs).sum()
    };
    assert_eq!(macs(&vaa), macs(&diffy));
    assert_eq!(macs(&vaa), bundle.trace.total_macs());
}
