//! Reproduction coverage: every table and figure in the experiment
//! registry has a bench target on disk, and the registry matches the
//! DESIGN.md experiment index.

use diffy::core::experiment::ExperimentId;
use std::path::Path;

#[test]
fn every_experiment_has_a_bench_target_file() {
    let bench_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/bench/benches");
    for e in ExperimentId::ALL {
        let file = bench_dir.join(format!("{}.rs", e.bench_target()));
        assert!(
            file.exists(),
            "{} ({}) missing bench file {}",
            e.paper_artefact(),
            e.bench_target(),
            file.display()
        );
    }
}

#[test]
fn every_bench_target_is_declared_in_the_manifest() {
    let manifest = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/bench/Cargo.toml"),
    )
    .expect("read bench manifest");
    for e in ExperimentId::ALL {
        assert!(
            manifest.contains(&format!("name = \"{}\"", e.bench_target())),
            "{} not declared in crates/bench/Cargo.toml",
            e.bench_target()
        );
    }
}

#[test]
fn design_doc_indexes_every_experiment() {
    let design = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("DESIGN.md"),
    )
    .expect("read DESIGN.md");
    for e in ExperimentId::ALL {
        assert!(
            design.contains(e.bench_target()),
            "DESIGN.md experiment index is missing {}",
            e.bench_target()
        );
    }
}

#[test]
fn experiments_doc_records_every_artefact() {
    let doc = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("EXPERIMENTS.md"),
    )
    .expect("read EXPERIMENTS.md");
    for e in ExperimentId::ALL {
        assert!(
            doc.contains(e.paper_artefact()),
            "EXPERIMENTS.md is missing {}",
            e.paper_artefact()
        );
    }
}
