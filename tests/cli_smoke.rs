//! Smoke tests of the `diffy` binary: exit codes, key output lines, the
//! `--jobs` flag, and the hard error for a flag given without a value
//! (which used to be silently treated as absent).

use std::process::{Command, Output};

fn diffy(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_diffy"))
        .args(args)
        .output()
        .expect("failed to launch the diffy binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn models_lists_the_zoo() {
    let out = diffy(&["models"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for model in ["DnCNN", "FFDNet", "IRCNN", "JointNet", "VDSR"] {
        assert!(text.contains(model), "missing {model} in:\n{text}");
    }
}

#[test]
fn experiments_maps_artefacts_to_bench_targets() {
    let out = diffy(&["experiments"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("cargo bench -p diffy-bench --bench"), "no bench targets in:\n{text}");
    assert!(text.contains("paper artefact"), "no header in:\n{text}");
}

#[test]
fn compare_runs_with_jobs_flag() {
    let out = diffy(&["compare", "IRCNN", "--res", "32", "--jobs", "2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for needle in ["IRCNN at 32x32", "VAA", "PRA", "Diffy", "architecture"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn compare_output_is_identical_across_job_counts() {
    let serial = diffy(&["compare", "IRCNN", "--res", "32", "--jobs", "1"]);
    let par = diffy(&["compare", "IRCNN", "--res", "32", "--jobs", "4"]);
    assert!(serial.status.success() && par.status.success());
    assert_eq!(stdout(&serial), stdout(&par), "--jobs must not change output");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = diffy(&["frobnicate"]);
    assert!(!out.status.success(), "unknown command must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown command"), "stderr:\n{err}");
    assert!(err.contains("usage:"), "stderr should include usage:\n{err}");
}

#[test]
fn no_command_fails_with_usage() {
    let out = diffy(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn trailing_flag_without_value_is_a_hard_error() {
    // Regression: `--res` as the last argument used to be silently
    // dropped, running the command at the default resolution instead.
    let out = diffy(&["compare", "IRCNN", "--res"]);
    assert!(!out.status.success(), "flag without value must fail");
    assert!(stderr(&out).contains("--res needs a value"), "stderr: {}", stderr(&out));

    let out = diffy(&["compare", "IRCNN", "--res", "32", "--jobs"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--jobs needs a value"), "stderr: {}", stderr(&out));
}

#[test]
fn zero_jobs_is_rejected() {
    let out = diffy(&["compare", "IRCNN", "--res", "32", "--jobs", "0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bad --jobs"), "stderr: {}", stderr(&out));
}

#[test]
fn trace_out_writes_chrome_trace_json() {
    let path = std::env::temp_dir().join(format!("diffy_cli_trace_{}.json", std::process::id()));
    let path_str = path.to_str().unwrap();
    let out = diffy(&["compare", "IRCNN", "--res", "32", "--jobs", "2", "--trace-out", path_str]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("trace:"), "stderr should report the trace write");

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let trace = diffy::core::json::parse(&text).expect("trace file is valid JSON");
    let events = trace.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents");
    assert!(!events.is_empty(), "trace must contain spans");
    assert!(text.contains("evaluate_network"), "missing evaluate_network span:\n{text}");
    assert!(text.contains("tile_sim"), "missing tile_sim span:\n{text}");
}

#[test]
fn trace_out_without_value_is_a_hard_error() {
    let out = diffy(&["compare", "IRCNN", "--res", "32", "--trace-out"]);
    assert!(!out.status.success(), "--trace-out without value must fail");
    assert!(stderr(&out).contains("--trace-out needs a value"), "stderr: {}", stderr(&out));
}

#[test]
fn usage_mentions_serve() {
    let out = diffy(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for needle in [
        "serve",
        "--addr",
        "--queue-depth",
        "--deadline-ms",
        "--max-requests-per-conn",
        "--idle-timeout-ms",
        "--trace-out",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in usage:\n{text}");
    }
}

#[test]
fn serve_flags_without_values_are_hard_errors() {
    for flag in [
        "--addr",
        "--queue-depth",
        "--deadline-ms",
        "--max-requests-per-conn",
        "--idle-timeout-ms",
        "--jobs",
    ] {
        let out = diffy(&["serve", flag]);
        assert!(!out.status.success(), "{flag} without value must fail");
        assert!(
            stderr(&out).contains(&format!("{flag} needs a value")),
            "stderr for {flag}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn serve_rejects_bad_flag_values() {
    let out = diffy(&["serve", "--queue-depth", "0"]);
    assert!(!out.status.success(), "--queue-depth 0 must fail");
    assert!(stderr(&out).contains("bad --queue-depth 0"), "stderr: {}", stderr(&out));

    let out = diffy(&["serve", "--deadline-ms", "soon"]);
    assert!(!out.status.success(), "non-numeric --deadline-ms must fail");
    assert!(stderr(&out).contains("bad --deadline-ms soon"), "stderr: {}", stderr(&out));

    let out = diffy(&["serve", "--max-requests-per-conn", "0"]);
    assert!(!out.status.success(), "--max-requests-per-conn 0 must fail");
    assert!(
        stderr(&out).contains("bad --max-requests-per-conn 0"),
        "stderr: {}",
        stderr(&out)
    );

    let out = diffy(&["serve", "--idle-timeout-ms", "forever"]);
    assert!(!out.status.success(), "non-numeric --idle-timeout-ms must fail");
    assert!(stderr(&out).contains("bad --idle-timeout-ms forever"), "stderr: {}", stderr(&out));

    let out = diffy(&["serve", "--jobs", "0"]);
    assert!(!out.status.success(), "--jobs 0 must fail");
    assert!(stderr(&out).contains("bad --jobs"), "stderr: {}", stderr(&out));
}

#[test]
fn serve_rejects_bad_shard_counts() {
    let out = diffy(&["serve", "--shards", "0"]);
    assert!(!out.status.success(), "--shards 0 must fail");
    assert!(stderr(&out).contains("bad --shards 0"), "stderr: {}", stderr(&out));

    let out = diffy(&["serve", "--shards", "many"]);
    assert!(!out.status.success(), "non-numeric --shards must fail");
    assert!(stderr(&out).contains("bad --shards many"), "stderr: {}", stderr(&out));

    let out = diffy(&["serve", "--shards"]);
    assert!(!out.status.success(), "--shards without value must fail");
    assert!(stderr(&out).contains("--shards needs a value"), "stderr: {}", stderr(&out));
}

#[test]
fn usage_mentions_shards() {
    let out = diffy(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("--shards"), "usage must document --shards");
}

#[test]
fn serve_rejects_unbindable_address() {
    // A malformed bind address must fail fast with a bind error, not hang.
    let out = diffy(&["serve", "--addr", "not-an-address"]);
    assert!(!out.status.success(), "bad --addr must fail");
    assert!(stderr(&out).contains("bind failed"), "stderr: {}", stderr(&out));
}
