//! End-to-end tests of the sharded ensemble: N real server instances
//! behind the real fan-out router, driven by real TCP clients.
//!
//! The load-bearing assertion carries over from `serve_e2e.rs`
//! unchanged: a response routed through the router must equal, byte for
//! byte, the serialization of a direct in-process evaluation — at every
//! shard count, under 8 concurrent keep-alive clients. Sharding is a
//! placement optimization; it must never be observable in the bytes.

use diffy::core::parallel::{run_jobs, Jobs};
use diffy::core::runner::ci_trace_bundle;
use diffy::serve::protocol::EvalRequest;
use diffy::serve::{
    get, post, result_to_json, KeepAliveClient, ServeConfig, SessionClient, ShardedConfig,
    ShardedHandle, ShardedServer,
};
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

/// Generous client-side timeout; tests assert on statuses, not latency.
const TIMEOUT: Duration = Duration::from_secs(30);

/// Four distinct requests spanning models, architectures and schemes —
/// the same spread `serve_e2e.rs` pins against the single instance.
const BODIES: [&str; 4] = [
    r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32}"#,
    r#"{"model": "DnCNN", "dataset": "Kodak24", "resolution": 32, "arch": "VAA"}"#,
    r#"{"model": "IRCNN", "dataset": "McMaster", "resolution": 32, "scheme": "Ideal"}"#,
    r#"{"model": "VDSR", "dataset": "Kodak24", "resolution": 32, "seed": 7}"#,
];

/// Boots a sharded ensemble on ephemeral ports, router included.
fn boot(shards: usize, base: ServeConfig) -> (SocketAddr, ShardedHandle, JoinHandle<()>) {
    let ensemble = ShardedServer::bind(ShardedConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        base: ServeConfig { addr: "127.0.0.1:0".into(), ..base },
        ..ShardedConfig::default()
    })
    .expect("bind ensemble on ephemeral ports");
    let addr = ensemble.local_addr();
    let handle = ensemble.handle();
    let thread = std::thread::spawn(move || ensemble.run().expect("ensemble run"));
    (addr, handle, thread)
}

/// The exact body a correct server must serve for `body`: parse the
/// request the same way, evaluate directly (no server, no cache), and
/// serialize deterministically.
fn direct_evaluation(body: &str) -> String {
    let parsed = diffy::core::json::parse(body).expect("test body is valid JSON");
    let req = EvalRequest::from_json(&parsed).expect("test body is a valid request");
    let bundle = ci_trace_bundle(req.model, req.dataset, req.sample, &req.workload());
    let result = bundle.evaluate(&req.eval_options());
    result_to_json(&result, bundle.source_pixels).to_json()
}

#[test]
fn routed_responses_are_bit_identical_to_direct_evaluation_at_every_shard_count() {
    let expected: Vec<String> = BODIES.iter().map(|b| direct_evaluation(b)).collect();

    for shards in [1usize, 2, 4] {
        let (addr, handle, thread) = boot(shards, ServeConfig::default());

        // Eight concurrent keep-alive clients (two per request body),
        // each issuing its request twice — every body served cold and
        // warm, completions interleaving across router workers and
        // shards.
        let clients: Vec<_> = (0..8)
            .map(|i| {
                let body = BODIES[i % BODIES.len()];
                move || {
                    let mut client = KeepAliveClient::new(addr, TIMEOUT);
                    let mut responses = Vec::new();
                    for _ in 0..2 {
                        responses.push(client.post("/evaluate", body).expect("post"));
                    }
                    (i % BODIES.len(), responses)
                }
            })
            .collect();
        for (which, responses) in run_jobs(clients, Jobs::new(8)) {
            for resp in responses {
                assert_eq!(resp.status, 200, "shards={shards} body: {}", resp.body);
                assert_eq!(
                    resp.body, expected[which],
                    "routed bytes must equal the direct evaluation \
                     (shards={shards}, request {which})"
                );
            }
        }

        handle.shutdown();
        thread.join().expect("ensemble drains");
    }
}

#[test]
fn batches_and_sessions_round_through_the_router_bit_identically() {
    let (addr, handle, thread) = boot(2, ServeConfig::default());

    // A batch spanning all four bodies: item results must match the
    // standalone evaluations exactly, in request order.
    let items: Vec<String> = BODIES.iter().map(|b| b.to_string()).collect();
    let batch = format!(r#"{{"items": [{}]}}"#, items.join(", "));
    let resp = post(addr, "/evaluate/batch", &batch, TIMEOUT).expect("batch");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let parsed = diffy::core::json::parse(&resp.body).expect("batch body is JSON");
    let results = parsed.get("items").and_then(|r| r.as_array()).expect("items array");
    assert_eq!(results.len(), BODIES.len());
    for (i, item) in results.iter().enumerate() {
        assert_eq!(item.get("status").and_then(|s| s.as_u64()), Some(200), "item {i}");
        let expected = direct_evaluation(BODIES[i]);
        assert_eq!(
            item.get("result").expect("item result").to_json(),
            expected,
            "batch item {i} must match its standalone evaluation"
        );
    }

    // A streaming session through the router: sessions are stateful, so
    // the router pins them to one shard — the full lifecycle must work
    // and frames must answer 200 with the session's own id.
    let mut session = SessionClient::new(addr, TIMEOUT);
    let created = session
        .create(
            r#"{"model": "IRCNN", "scene": "City", "resolution": 16, "frames": 4,
                "pan_px": 1, "seed": 5, "mode": "spatiotemporal"}"#,
        )
        .expect("create");
    assert_eq!(created.status, 200, "body: {}", created.body);
    let id = session.id().expect("created session has an id").to_string();
    for f in 0..4 {
        let resp = session.frame(&format!(r#"{{"frame": {f}}}"#)).expect("frame");
        assert_eq!(resp.status, 200, "frame {f} body: {}", resp.body);
        assert!(resp.body.contains(&id), "frame {f} must echo session {id}: {}", resp.body);
    }
    assert_eq!(session.close().expect("close").status, 200);

    handle.shutdown();
    thread.join().expect("ensemble drains");
}

#[test]
fn router_metrics_aggregate_every_shard_and_each_ledger_conserves() {
    let (addr, handle, thread) = boot(2, ServeConfig::default());

    for body in BODIES {
        assert_eq!(post(addr, "/evaluate", body, TIMEOUT).expect("post").status, 200);
    }

    let resp = get(addr, "/metrics", TIMEOUT).expect("metrics");
    assert_eq!(resp.status, 200);
    let m = diffy::core::json::parse(&resp.body).expect("metrics body is JSON");
    let shards = m.get("shards").expect("shards block");
    assert_eq!(shards.get("count").and_then(|c| c.as_u64()), Some(2));
    assert_eq!(shards.get("route_errors").and_then(|e| e.as_u64()), Some(0));

    // Every forwarded request is attributed to exactly one shard.
    let routed: u64 = shards
        .get("routed")
        .and_then(|r| r.as_array())
        .expect("routed array")
        .iter()
        .map(|n| n.as_u64().unwrap())
        .sum();
    assert_eq!(routed, BODIES.len() as u64, "all evaluations must be attributed");

    // Each instance snapshot carries its own conservation law:
    // requests == responses + aborted + idle_closed.
    let instances = shards.get("instances").and_then(|i| i.as_array()).expect("instances");
    assert_eq!(instances.len(), 2);
    for (i, snapshot) in instances.iter().enumerate() {
        let conns = snapshot.get("connections").unwrap_or_else(|| {
            panic!("shard {i} snapshot missing from the aggregate: {snapshot:?}")
        });
        let requests = snapshot.get("requests_total").and_then(|v| v.as_u64()).unwrap();
        let responses: u64 = {
            let r = snapshot.get("responses").expect("responses block");
            let diffy::core::json::JsonValue::Object(members) = r else {
                panic!("responses is an object")
            };
            members.iter().map(|(_, v)| v.as_u64().unwrap()).sum()
        };
        let aborted = conns.get("aborted").and_then(|v| v.as_u64()).unwrap();
        let idle = conns.get("idle_closed").and_then(|v| v.as_u64()).unwrap();
        let accounted = responses + aborted + idle;
        // The shard's in-flight scrape (this very /metrics fan-out) is
        // counted as a request but not yet answered, so each ledger runs
        // exactly one ahead at sampling time.
        assert_eq!(
            requests,
            accounted + 1,
            "shard {i}: requests {requests} vs accounted {accounted}: {snapshot:?}"
        );
    }

    handle.shutdown();
    thread.join().expect("ensemble drains");
}

#[test]
fn shutdown_through_the_router_drains_the_whole_ensemble() {
    let (addr, handle, thread) = boot(2, ServeConfig::default());

    let health = get(addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("ok"), "body: {}", health.body);

    let resp = post(addr, "/shutdown", "", TIMEOUT).expect("shutdown");
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("draining"), "body: {}", resp.body);
    assert!(handle.is_shutting_down());

    thread.join().expect("router and every instance drain");
}
