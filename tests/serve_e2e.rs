//! End-to-end tests of the evaluation service: a real server on an
//! ephemeral loopback port, driven by real TCP clients.
//!
//! The load-bearing assertion is *bit-identity*: the body served for an
//! evaluation request must equal, byte for byte, the serialization of a
//! direct in-process `evaluate` of the same request — under concurrency,
//! in any completion order. The rest covers the production semantics:
//! 503 under overload, 504 past the deadline, graceful drain.

use diffy::core::parallel::{run_jobs, Jobs};
use diffy::core::runner::ci_trace_bundle;
use diffy::serve::protocol::EvalRequest;
use diffy::serve::{get, post, result_to_json, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Generous client-side timeout; tests assert on statuses, not latency.
const TIMEOUT: Duration = Duration::from_secs(30);

/// Boots a server on an ephemeral port and runs it on its own thread.
fn boot(config: ServeConfig) -> (SocketAddr, ServerHandle, JoinHandle<()>) {
    let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..config })
        .expect("bind on an ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

/// The exact body a correct server must serve for `body`: parse the
/// request the same way, evaluate directly (no server, no cache), and
/// serialize deterministically.
fn direct_evaluation(body: &str) -> String {
    let parsed = diffy::core::json::parse(body).expect("test body is valid JSON");
    let req = EvalRequest::from_json(&parsed).expect("test body is a valid request");
    let bundle = ci_trace_bundle(req.model, req.dataset, req.sample, &req.workload());
    let result = bundle.evaluate(&req.eval_options());
    result_to_json(&result, bundle.source_pixels).to_json()
}

#[test]
fn served_results_are_bit_identical_across_concurrent_clients() {
    // Four distinct requests spanning models, architectures and schemes.
    let bodies = [
        r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32}"#,
        r#"{"model": "DnCNN", "dataset": "Kodak24", "resolution": 32, "arch": "VAA"}"#,
        r#"{"model": "IRCNN", "dataset": "McMaster", "resolution": 32, "scheme": "Ideal"}"#,
        r#"{"model": "VDSR", "dataset": "Kodak24", "resolution": 32, "seed": 7}"#,
    ];
    let expected: Vec<String> = bodies.iter().map(|b| direct_evaluation(b)).collect();

    let (addr, handle, thread) = boot(ServeConfig::default());

    // Eight concurrent clients (two per request body), each issuing the
    // same request twice — so every body is served cold and warm, with
    // completions interleaving across all clients.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let body = bodies[i % bodies.len()];
            move || {
                let mut responses = Vec::new();
                for _ in 0..2 {
                    responses.push(post(addr, "/evaluate", body, TIMEOUT).expect("post"));
                }
                (i % bodies.len(), responses)
            }
        })
        .collect();
    for (which, responses) in run_jobs(clients, Jobs::new(8)) {
        for resp in responses {
            assert_eq!(resp.status, 200, "body: {}", resp.body);
            assert_eq!(
                resp.body, expected[which],
                "served bytes must equal the direct evaluation (request {which})"
            );
        }
    }

    // The cache served the repeats: metrics must show hits and all 200s.
    let metrics = get(addr, "/metrics", TIMEOUT).expect("metrics");
    assert_eq!(metrics.status, 200);
    let m = diffy::core::json::parse(&metrics.body).expect("metrics body is JSON");
    assert_eq!(m.get("responses").unwrap().get("200").unwrap().as_u64(), Some(16));
    assert!(m.get("cache").unwrap().get("hits").unwrap().as_u64().unwrap() > 0);
    assert!(m.get("latency_ms").unwrap().get("count").unwrap().as_u64().unwrap() >= 16);

    handle.shutdown();
    thread.join().expect("server thread joins after drain");
}

#[test]
fn malformed_requests_get_4xx_not_a_hang() {
    let (addr, handle, thread) = boot(ServeConfig::default());

    let resp = post(addr, "/evaluate", "not json", TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("bad JSON"), "body: {}", resp.body);

    let resp = post(addr, "/evaluate", r#"{"model": "IRCNN"}"#, TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("dataset"), "body: {}", resp.body);

    let resp = get(addr, "/evaluate", TIMEOUT).unwrap();
    assert_eq!(resp.status, 405, "GET on a POST endpoint");

    let resp = get(addr, "/nope", TIMEOUT).unwrap();
    assert_eq!(resp.status, 404);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn overload_sheds_with_503_and_counts_rejections() {
    // One worker, queue of one: with six concurrent slow requests, at
    // most two are admitted at a time and the rest must shed as 503.
    let (addr, handle, thread) = boot(ServeConfig {
        workers: Jobs::new(1),
        queue_depth: 1,
        test_hooks: true,
        ..ServeConfig::default()
    });

    let body = r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32,
                   "test_sleep_ms": 300}"#;
    let clients: Vec<_> = (0..6)
        .map(|_| move || post(addr, "/evaluate", body, TIMEOUT).expect("post").status)
        .collect();
    let statuses = run_jobs(clients, Jobs::new(6));

    assert!(statuses.iter().all(|s| *s == 200 || *s == 503), "statuses: {statuses:?}");
    assert!(statuses.contains(&200), "someone must be served: {statuses:?}");
    assert!(statuses.contains(&503), "someone must be shed: {statuses:?}");

    let m = diffy::core::json::parse(&get(addr, "/metrics", TIMEOUT).unwrap().body).unwrap();
    assert!(m.get("queue_rejected_total").unwrap().as_u64().unwrap() >= 1);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn expired_deadline_answers_504() {
    let (addr, handle, thread) =
        boot(ServeConfig { test_hooks: true, ..ServeConfig::default() });

    let body = r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32,
                   "deadline_ms": 50, "test_sleep_ms": 250}"#;
    let resp = post(addr, "/evaluate", body, TIMEOUT).unwrap();
    assert_eq!(resp.status, 504, "body: {}", resp.body);
    assert!(resp.body.contains("deadline exceeded"), "body: {}", resp.body);

    let m = diffy::core::json::parse(&get(addr, "/metrics", TIMEOUT).unwrap().body).unwrap();
    assert_eq!(m.get("deadline_expired_total").unwrap().as_u64(), Some(1));
    assert_eq!(m.get("responses").unwrap().get("504").unwrap().as_u64(), Some(1));

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn slow_loris_is_cut_off_at_the_deadline_not_the_read_grace() {
    // A peer that sends a partial head and stalls used to hold a worker
    // for the full fixed 10 s socket read timeout, regardless of
    // --deadline-ms. The read budget must be the deadline remaining at
    // dequeue: with a 500 ms deadline the loris is cut off (and counted
    // as an abort) in well under the old grace.
    let (addr, handle, thread) = boot(ServeConfig {
        workers: Jobs::new(1),
        deadline_ms: 500,
        ..ServeConfig::default()
    });

    let mut loris = TcpStream::connect(addr).expect("connect");
    loris.write_all(b"POST /evaluate HTTP/1.1\r\nContent-Le").unwrap();
    loris.flush().unwrap();
    // If the server still indulged the fixed 10 s grace, this read would
    // outlast its own 8 s timeout and the elapsed assertion would fail.
    loris.set_read_timeout(Some(Duration::from_secs(8))).unwrap();
    let waiting = Instant::now();
    let mut sink = [0u8; 64];
    let outcome = loris.read(&mut sink);
    let held = waiting.elapsed();
    assert!(
        matches!(outcome, Ok(0) | Err(_)),
        "server must sever the stalled connection, got {outcome:?}"
    );
    assert!(held < Duration::from_secs(5), "loris held its worker for {held:?}");

    // The sole worker is free again, and the abort is accounted — the
    // attempt neither vanished nor masqueraded as a response.
    let m = diffy::core::json::parse(&get(addr, "/metrics", TIMEOUT).unwrap().body).unwrap();
    let conns = m.get("connections").unwrap();
    assert_eq!(conns.get("aborted").unwrap().as_u64(), Some(1), "{conns:?}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn trickling_slow_loris_is_cut_off_at_the_deadline() {
    // A loris that keeps every individual read *succeeding* — one head
    // byte every 100 ms — used to evade the deadline-derived read
    // timeout entirely (the timeout was armed once, and each arriving
    // byte reset the clock), holding a worker for up to MAX_HEAD_BYTES
    // reads. The read budget must be wall-clock: checked and re-armed
    // before every read, severing the trickle once the deadline (plus
    // the short answer grace) passes.
    let (addr, handle, thread) = boot(ServeConfig {
        workers: Jobs::new(1),
        deadline_ms: 500,
        ..ServeConfig::default()
    });

    let mut loris = TcpStream::connect(addr).expect("connect");
    loris.set_read_timeout(Some(Duration::from_secs(8))).unwrap();
    let waiting = Instant::now();
    let writer = {
        let mut loris = loris.try_clone().unwrap();
        std::thread::spawn(move || {
            // ~8 s worth of trickle — far past the 500 ms deadline, far
            // under each per-read timeout; stops at the server's close.
            let head = b"POST /evaluate HTTP/1.1\r\nX-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
                         aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
            for b in head {
                if loris.write_all(&[*b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };
    let mut sink = [0u8; 64];
    let outcome = loris.read(&mut sink);
    let held = waiting.elapsed();
    writer.join().unwrap();
    assert!(
        matches!(outcome, Ok(0) | Err(_)),
        "server must sever the trickling connection, got {outcome:?}"
    );
    assert!(held < Duration::from_secs(5), "trickling loris held its worker for {held:?}");

    // The sole worker is free again, and the abort is accounted.
    let m = diffy::core::json::parse(&get(addr, "/metrics", TIMEOUT).unwrap().body).unwrap();
    let conns = m.get("connections").unwrap();
    assert_eq!(conns.get("aborted").unwrap().as_u64(), Some(1), "{conns:?}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn shutdown_endpoint_drains_gracefully() {
    let (addr, handle, thread) = boot(ServeConfig::default());

    let health = get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("ok"), "body: {}", health.body);

    let resp = post(addr, "/shutdown", "", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("draining"), "body: {}", resp.body);

    // run() must return: the acceptor stops, the backlog drains, the
    // worker pool joins.
    thread.join().expect("server drains and exits after /shutdown");
    assert!(handle.is_shutting_down());
}
