//! End-to-end tests of the event-driven serve core: idle keep-alive
//! connections must cost nothing (no worker dequeues, no per-connection
//! sweep churn — only the poller's own timeout wakeups), and the
//! full-queue re-park path must keep stranded sockets non-blocking so a
//! jam never stalls the event loop.
//!
//! The idle-connection count scales with `DIFFY_TEST_IDLE_CONNS`
//! (default 2000). Every connection costs the test process *three*
//! descriptors — the client end plus the server's two cloned halves —
//! so 10k connections need a ~32k fd limit with headroom; CI raises
//! `ulimit -n` and runs the 10k configuration from the issue.

use diffy::core::json::JsonValue;
use diffy::core::parallel::Jobs;
use diffy::serve::{get, ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Generous client-side timeout; tests assert on statuses, not latency.
const TIMEOUT: Duration = Duration::from_secs(30);

/// Boots a server on an ephemeral port and runs it on its own thread.
fn boot(config: ServeConfig) -> (SocketAddr, ServerHandle, JoinHandle<()>) {
    let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..config })
        .expect("bind on an ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

fn metrics(addr: SocketAddr) -> JsonValue {
    let resp = get(addr, "/metrics", TIMEOUT).expect("metrics");
    assert_eq!(resp.status, 200);
    diffy::core::json::parse(&resp.body).expect("metrics body is JSON")
}

fn counter(m: &JsonValue, block: &str, key: &str) -> u64 {
    m.get(block)
        .and_then(|b| b.get(key))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("metrics missing {block}.{key}: {m:?}"))
}

/// One keep-alive request/response on a raw socket: write, then read the
/// head and the exact `Content-Length` body so the connection stays
/// cleanly framed for the next request.
fn roundtrip(conn: &mut TcpStream, request: &[u8]) -> String {
    conn.write_all(request).expect("write request");
    read_response(conn)
}

/// Reads one already-requested, `Content-Length`-framed 200 response.
fn read_response(conn: &mut TcpStream) -> String {
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.starts_with("HTTP/1.1 200"), "got: {line}");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        if header == "\r\n" {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    String::from_utf8(body).expect("utf8 body")
}

const HEALTHZ: &[u8] = b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";

#[test]
fn idle_keepalive_connections_hold_no_workers_and_cause_no_sweep_churn() {
    let n: usize = std::env::var("DIFFY_TEST_IDLE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);

    // One worker: if idle connections occupied workers — or cycled
    // through the admission queue — this configuration would visibly
    // starve. A long idle window keeps every connection parked for the
    // whole observation.
    let (addr, handle, thread) = boot(ServeConfig {
        workers: Jobs::new(1),
        idle_timeout_ms: 120_000,
        ..ServeConfig::default()
    });

    // Open n keep-alive connections, serve one request on each, and
    // leave them all idle — parked in the event loop's watch set.
    let mut conns = Vec::with_capacity(n);
    for i in 0..n {
        let mut conn = TcpStream::connect(addr).unwrap_or_else(|e| {
            panic!("connect {i}/{n} failed ({e}); raise the fd limit or lower DIFFY_TEST_IDLE_CONNS")
        });
        conn.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
        let body = roundtrip(&mut conn, HEALTHZ);
        assert!(body.contains("ok"), "conn {i}: {body}");
        conns.push(conn);
    }

    // Wait until the event loop has absorbed every connection into its
    // watch set (the hand-off rides the parking inbox, so allow a beat).
    let parked_deadline = Instant::now() + Duration::from_secs(10);
    let mut m = metrics(addr);
    while counter(&m, "poller", "parked") < n as u64 {
        assert!(
            Instant::now() < parked_deadline,
            "only {}/{n} connections parked: {m:?}",
            counter(&m, "poller", "parked")
        );
        std::thread::sleep(Duration::from_millis(25));
        m = metrics(addr);
    }

    // Observation window: n idle connections, zero traffic. The only
    // activity the server may show is the poller's own timeout wakeups —
    // no requests, no unparks, no queue occupancy.
    let before = metrics(addr);
    std::thread::sleep(Duration::from_millis(600));
    let after = metrics(addr);

    let requests_delta =
        after.get("requests_total").unwrap().as_u64().unwrap()
            - before.get("requests_total").unwrap().as_u64().unwrap();
    assert_eq!(
        requests_delta, 1,
        "idle connections must produce no requests (the 1 is this /metrics probe)"
    );
    assert_eq!(
        counter(&after, "poller", "unparked"),
        counter(&before, "poller", "unparked"),
        "no idle connection may be handed to a worker"
    );
    assert_eq!(counter(&after, "poller", "parked"), n as u64, "every connection stays parked");
    assert_eq!(
        after.get("queue_depth").unwrap().as_u64(),
        Some(0),
        "idle connections must not occupy the admission queue"
    );
    // Wakeup cadence is the poll tick (25ms), not per-connection: 600ms
    // of idling across n connections is a few dozen wakeups, not O(n).
    let wakeups_delta =
        counter(&after, "poller", "wakeups") - counter(&before, "poller", "wakeups");
    assert!(
        wakeups_delta < 120,
        "{wakeups_delta} poller wakeups over 600ms of idleness — sweeping, not waiting"
    );

    // The parked fleet is still live: each of a sample of connections
    // serves its next request after the idle spell.
    for conn in conns.iter_mut().take(8) {
        let body = roundtrip(conn, HEALTHZ);
        assert!(body.contains("ok"), "parked connection failed to resume: {body}");
    }

    drop(conns);
    handle.shutdown();
    thread.join().expect("server drains");
}

#[test]
fn full_queue_repark_keeps_stranded_sockets_nonblocking_and_recovers() {
    // Regression for the parker-era bug: a read-ready parked connection
    // refused by a full admission queue was re-parked as a *blocking*
    // socket, so the next sweep's peek could stall the parker for the
    // stale read-timeout. The event loop must keep jammed connections
    // non-blocking, retry the hand-off, and serve them once the queue
    // frees — while staying responsive throughout.
    let (addr, handle, thread) = boot(ServeConfig {
        workers: Jobs::new(1),
        queue_depth: 1,
        idle_timeout_ms: 30_000,
        test_hooks: true,
        ..ServeConfig::default()
    });

    // Three parked keep-alive connections, opened one at a time: a fresh
    // connection occupies a queue slot until its first request is served
    // (admission is at accept), and with queue_depth=1 the slot must be
    // free — the connection parked — before the next one arrives.
    let park_one = || {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
        roundtrip(&mut conn, HEALTHZ);
        conn
    };
    let mut a = park_one();
    let mut b = park_one();
    let mut c = park_one();

    // Jam the single worker with a slow evaluation on `a`, then wake `b`
    // and `c` while it runs: the first unpark takes the only queue slot,
    // the second finds the queue full and must strand — non-blocking —
    // until the worker frees a slot.
    let slow = br#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32, "test_sleep_ms": 700}"#;
    let slow_req = format!(
        "POST /evaluate HTTP/1.1\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        slow.len()
    );
    a.write_all(slow_req.as_bytes()).expect("slow head");
    a.write_all(slow).expect("slow body");
    std::thread::sleep(Duration::from_millis(100)); // worker picks up `a`
    b.write_all(HEALTHZ).expect("wake b");
    c.write_all(HEALTHZ).expect("wake c");

    // The event loop must stay live while `c` is stranded: the jam is on
    // the admission queue, not on the poller thread. All three requests
    // then complete correctly, in bounded time.
    let t0 = Instant::now();
    let slow_body = read_response(&mut a);
    assert!(slow_body.contains("layers"), "slow evaluation body: {slow_body}");
    for (name, conn) in [("b", &mut b), ("c", &mut c)] {
        let body = read_response(conn);
        assert!(body.contains("ok"), "stranded connection {name} never recovered: {body}");
    }
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "jammed connections took {:?} to recover",
        t0.elapsed()
    );

    drop((a, b, c));
    handle.shutdown();
    thread.join().expect("server drains");
}

#[test]
fn dead_idle_connection_is_never_counted_as_a_keepalive_reuse() {
    // Regression for the accounting bug: the reuse counter incremented
    // before the grace peek, so a connection that turned out dead was
    // booked as a reuse that never carried a request. A reuse must only
    // count once the next request's bytes actually exist.
    let (addr, handle, thread) = boot(ServeConfig::default());

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(TIMEOUT)).expect("read timeout");
    roundtrip(&mut conn, HEALTHZ);
    drop(conn); // closes without a second request

    // The event loop notices the close and retires the parked socket;
    // nothing about that retirement is a reuse or a request.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let m = metrics(addr);
        if counter(&m, "poller", "parked") == 0 {
            assert_eq!(
                counter(&m, "connections", "keepalive_reuses"),
                0,
                "a dead idle connection must not count as a reuse: {m:?}"
            );
            break;
        }
        assert!(Instant::now() < deadline, "dead connection never retired: {m:?}");
        std::thread::sleep(Duration::from_millis(25));
    }

    handle.shutdown();
    thread.join().expect("server drains");
}
