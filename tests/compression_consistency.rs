//! Compression consistency on real traces: every storage scheme
//! roundtrips bit-exactly on actual network activations, and the
//! footprint/traffic/AM accounting agree with each other.

use diffy::core::runner::{ci_trace_bundle, WorkloadOptions};
use diffy::encoding::bitstream::{BitReader, BitWriter};
use diffy::encoding::StorageScheme;
use diffy::imaging::datasets::DatasetId;
use diffy::memsys::am::{layer_am_bits, network_am_bits};
use diffy::memsys::traffic::{encoded_bytes, network_traffic, tensor_signedness};
use diffy::models::CiModel;

fn schemes() -> Vec<StorageScheme> {
    vec![
        StorageScheme::NoCompression,
        StorageScheme::RleZ,
        StorageScheme::Rle,
        StorageScheme::raw_d(8),
        StorageScheme::raw_d(16),
        StorageScheme::raw_d(256),
        StorageScheme::delta_d(16),
        StorageScheme::delta_d(256),
    ]
}

#[test]
fn all_schemes_roundtrip_on_real_activations() {
    let bundle = ci_trace_bundle(CiModel::Vdsr, DatasetId::Live1, 0, &WorkloadOptions::test_small());
    for layer in bundle.trace.layers.iter().step_by(4) {
        let imap = &layer.imap;
        let sign = tensor_signedness(imap);
        let s = imap.shape();
        for scheme in schemes() {
            for c in (0..s.c).step_by(7) {
                for y in (0..s.h).step_by(5) {
                    let row = imap.row(c, y);
                    let mut w = BitWriter::new();
                    scheme.encode_row(row, sign, &mut w);
                    assert_eq!(
                        w.bit_len(),
                        scheme.row_bits(row, sign),
                        "{scheme} footprint mismatch at {} c{c} y{y}",
                        layer.name
                    );
                    let bytes = w.finish();
                    let mut r = BitReader::new(&bytes);
                    let back = scheme.decode_row(&mut r, row.len(), sign).expect("decode");
                    assert_eq!(back, row, "{scheme} lossy at {} c{c} y{y}", layer.name);
                }
            }
        }
    }
}

#[test]
fn traffic_accounting_matches_per_layer_encoding() {
    let bundle =
        ci_trace_bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &WorkloadOptions::test_small());
    let scheme = StorageScheme::delta_d(16);
    let traffic = network_traffic(&bundle.trace, scheme);
    for (i, (layer, t)) in bundle.trace.layers.iter().zip(traffic.iter()).enumerate() {
        assert_eq!(t.imap_read_bytes, encoded_bytes(&layer.imap, scheme), "layer {i}");
        assert_eq!(
            t.omap_write_bytes,
            encoded_bytes(bundle.trace.omap(i), scheme),
            "layer {i}"
        );
        assert_eq!(t.weight_bytes, layer.fmaps.len() as u64 * 2, "layer {i}");
    }
}

#[test]
fn am_requirement_is_bounded_by_full_tensor_footprint() {
    // The AM holds a sliding subset of rows, so it can never need more
    // than the whole (compressed) imap + omap.
    let bundle =
        ci_trace_bundle(CiModel::DnCnn, DatasetId::Cbsd68, 0, &WorkloadOptions::test_small());
    for scheme in [StorageScheme::NoCompression, StorageScheme::delta_d(16)] {
        for (i, layer) in bundle.trace.layers.iter().enumerate() {
            let omap = bundle.trace.omap(i);
            let am = layer_am_bits(layer, omap, scheme);
            let full = 8 * (encoded_bytes(&layer.imap, scheme) + encoded_bytes(omap, scheme));
            assert!(am <= full + 64, "{scheme} layer {i}: am {am} > full {full}");
        }
    }
}

#[test]
fn compressed_schemes_order_as_in_the_paper() {
    // On CI-DNN traces: DeltaD16 < RawD16 < NoCompression for total
    // activation traffic (Fig. 14's ordering).
    for model in [CiModel::DnCnn, CiModel::Ircnn, CiModel::Vdsr] {
        let bundle =
            ci_trace_bundle(model, DatasetId::Hd33, 0, &WorkloadOptions::test_small());
        let total = |s| {
            network_traffic(&bundle.trace, s)
                .iter()
                .map(|t| t.activation_bytes())
                .sum::<u64>()
        };
        let none = total(StorageScheme::NoCompression);
        let raw16 = total(StorageScheme::raw_d(16));
        let delta16 = total(StorageScheme::delta_d(16));
        assert!(raw16 < none, "{model}");
        assert!(delta16 < raw16, "{model}: DeltaD16 {delta16} !< RawD16 {raw16}");
    }
}

#[test]
fn network_am_is_max_over_layers() {
    let bundle =
        ci_trace_bundle(CiModel::FfdNet, DatasetId::Kodak24, 0, &WorkloadOptions::test_small());
    let scheme = StorageScheme::raw_d(16);
    let net = network_am_bits(&bundle.trace, scheme);
    let max_layer = bundle
        .trace
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| layer_am_bits(l, bundle.trace.omap(i), scheme))
        .max()
        .unwrap();
    assert_eq!(net, max_layer);
}
