//! Cross-model behaviours: the SCNN comparison trend (Fig. 20), the
//! classification-model result (Fig. 19), and VDSR's documented
//! high-sparsity behaviour.

use diffy::core::accelerator::{evaluate_network, EvalOptions, SchemeChoice};
use diffy::core::runner::{ci_trace_bundle, class_trace_bundle, WorkloadOptions};
use diffy::imaging::datasets::DatasetId;
use diffy::models::{run_network, CiModel, ClassModel, NetworkWeights};
use diffy::sim::Architecture;
use diffy::tensor::ops::sparsity;
use diffy::tensor::Quantizer;

#[test]
fn scnn_gap_shrinks_with_weight_sparsity() {
    // Fig. 20: Diffy's advantage over SCNN decreases monotonically as
    // weights get sparser (5.4x dense -> 1.04x at 90%).
    let model = CiModel::Ircnn;
    let opts = WorkloadOptions::test_small();
    let img = DatasetId::Kodak24.sample_scaled(0, opts.resolution, opts.resolution);
    let input = model.prepare_input(&img, 1);
    let mut ratios = Vec::new();
    for sparsity in [0.0, 0.5, 0.9] {
        let gen = model.weight_gen(1).with_weight_sparsity(sparsity);
        let weights = NetworkWeights::generate(&model.spec(), gen, Quantizer::default());
        let trace = run_network(&model.spec(), &weights, &input);
        let diffy = evaluate_network(
            &trace,
            &EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal),
        );
        let scnn = evaluate_network(
            &trace,
            &EvalOptions::new(Architecture::Scnn, SchemeChoice::Ideal),
        );
        ratios.push(scnn.total_cycles() as f64 / diffy.total_cycles() as f64);
    }
    assert!(ratios[0] > 1.0, "Diffy should beat SCNN on dense CI-DNNs: {ratios:?}");
    assert!(
        ratios[0] > ratios[1] && ratios[1] > ratios[2],
        "advantage should shrink with weight sparsity: {ratios:?}"
    );
}

#[test]
fn classification_models_still_benefit() {
    // Fig. 19: differential convolution does not degrade and modestly
    // helps classification models.
    for model in [ClassModel::AlexNet, ClassModel::Vgg16] {
        let bundle = class_trace_bundle(model, model.min_resolution(), 1);
        let vaa = bundle.evaluate(&EvalOptions::new(Architecture::Vaa, SchemeChoice::Ideal));
        let pra = bundle.evaluate(&EvalOptions::new(Architecture::Pra, SchemeChoice::Ideal));
        let diffy = bundle.evaluate(&EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal));
        assert!(diffy.total_cycles() < vaa.total_cycles(), "{model}");
        assert!(
            diffy.total_cycles() as f64 <= pra.total_cycles() as f64 * 1.10,
            "{model}: Diffy should not degrade vs PRA by more than the paper's ~10%"
        );
    }
}

#[test]
fn vdsr_is_the_sparsest_model() {
    let opts = WorkloadOptions::test_small();
    let avg_sparsity = |model: CiModel| {
        let b = ci_trace_bundle(model, DatasetId::Hd33, 0, &opts);
        let layers = &b.trace.layers[1..];
        layers.iter().map(|l| sparsity(&l.imap)).sum::<f64>() / layers.len() as f64
    };
    let vdsr = avg_sparsity(CiModel::Vdsr);
    let dncnn = avg_sparsity(CiModel::DnCnn);
    assert!(
        vdsr > dncnn + 0.1,
        "VDSR ({vdsr:.2}) should be clearly sparser than DnCNN ({dncnn:.2})"
    );
}

#[test]
fn diffy_advantage_concentrates_in_early_layers_for_classification() {
    // "Most of the benefits appear at the earlier layers of these
    // networks" (Fig. 19 discussion).
    let bundle = class_trace_bundle(ClassModel::Vgg16, 64, 1);
    let pra = bundle.evaluate(&EvalOptions::new(Architecture::Pra, SchemeChoice::Ideal));
    let diffy = bundle.evaluate(&EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal));
    let ratio = |lo: usize, hi: usize| {
        let p: u64 = pra.layers[lo..hi].iter().map(|l| l.timing.total_cycles).sum();
        let d: u64 = diffy.layers[lo..hi].iter().map(|l| l.timing.total_cycles).sum();
        p as f64 / d.max(1) as f64
    };
    let n = diffy.layers.len();
    let early = ratio(0, 3);
    let late = ratio(n - 3, n);
    assert!(
        early > late,
        "early-layer advantage {early:.2} should exceed late-layer {late:.2}"
    );
}
