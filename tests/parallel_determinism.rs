//! Cross-validation of the parallel sweep engine against the serial
//! path: every figure/table of the paper is reproduced from
//! `NetworkResult`s, so the engine must produce **bit-identical** results
//! in a **stable order** at any job count.
//!
//! The serial reference regenerates every artifact from scratch with the
//! historical one-call-at-a-time API; the parallel runs share a
//! [`SweepCache`] and fan out over 1, 2, and 8 workers. Cycles and
//! traffic are compared exactly as integers, FPS as exact f64 bit
//! patterns.

use diffy::core::accelerator::{evaluate_network, EvalOptions, SchemeChoice};
use diffy::core::parallel::Jobs;
use diffy::core::runner::{ci_trace_bundle, datasets_for, sweep_par, SweepCache, SweepJob, WorkloadOptions};
use diffy::encoding::StorageScheme;
use diffy::models::CiModel;
use diffy::sim::Architecture;

/// The architectures cross-validated per model (the ISSUE floor is two;
/// PRA rides along since term-serial evaluation is cheap).
const ARCHS: [Architecture; 3] = [Architecture::Vaa, Architecture::Pra, Architecture::Diffy];

/// One job per `CiModel` × first dataset × architecture, in a fixed,
/// meaningful order (model-major). Deeper dataset/sample coverage lives
/// in the runner's own unit tests; this file is about engine identity.
fn job_list() -> Vec<SweepJob> {
    let scheme = SchemeChoice::Scheme(StorageScheme::delta_d(16));
    let mut jobs = Vec::new();
    for model in CiModel::ALL {
        let dataset = datasets_for(model)[0];
        for arch in ARCHS {
            jobs.push(SweepJob {
                model,
                dataset,
                sample: 0,
                eval: EvalOptions::new(arch, scheme),
            });
        }
    }
    jobs
}

/// The comparable fingerprint of a result: every number a figure or
/// table could be built from, with floats captured bit-exactly.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Fingerprint {
    model: String,
    arch: &'static str,
    total_cycles: u64,
    compute_cycles: u64,
    stall_cycles: u64,
    total_traffic: u64,
    activation_traffic: u64,
    fps_bits: u64,
    per_layer_cycles: Vec<u64>,
}

fn fingerprint(r: &diffy::core::accelerator::NetworkResult) -> Fingerprint {
    Fingerprint {
        model: r.model.clone(),
        arch: r.arch,
        total_cycles: r.total_cycles(),
        compute_cycles: r.compute_cycles(),
        stall_cycles: r.stall_cycles(),
        total_traffic: r.total_traffic_bytes(),
        activation_traffic: r.activation_traffic_bytes(),
        fps_bits: r.fps().to_bits(),
        per_layer_cycles: r.layers.iter().map(|l| l.timing.total_cycles).collect(),
    }
}

#[test]
fn parallel_results_are_bit_identical_to_serial_at_jobs_1_2_8() {
    let opts = WorkloadOptions::test_small();
    let jobs = job_list();

    // Serial reference: fresh trace + evaluation per job, one at a time,
    // through the historical non-cached API.
    let serial: Vec<Fingerprint> = jobs
        .iter()
        .map(|j| {
            let bundle = ci_trace_bundle(j.model, j.dataset, j.sample, &opts);
            fingerprint(&evaluate_network(&bundle.trace, &j.eval))
        })
        .collect();

    // Parallel runs at every mandated job count share one cache: traces
    // must come out equal whether computed fresh (serial path) or once
    // via the cache, and evaluation must not depend on worker count.
    let cache = SweepCache::new();
    for n in [1usize, 2, 8] {
        let par: Vec<Fingerprint> = sweep_par(&jobs, &opts, Jobs::new(n), &cache)
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(par.len(), serial.len(), "jobs={n}");
        for (i, (p, s)) in par.iter().zip(&serial).enumerate() {
            assert_eq!(p, s, "jobs={n}, job #{i} ({} on {})", s.model, s.arch);
        }
    }
}

#[test]
fn output_ordering_is_stable_across_runs() {
    let opts = WorkloadOptions::test_small();
    let jobs = job_list();
    let cache = SweepCache::new();
    let run1: Vec<Fingerprint> =
        sweep_par(&jobs, &opts, Jobs::new(8), &cache).iter().map(fingerprint).collect();
    let run2: Vec<Fingerprint> =
        sweep_par(&jobs, &opts, Jobs::new(8), &cache).iter().map(fingerprint).collect();
    assert_eq!(run1, run2, "same jobs, same cache, same order — always");

    // And against a fresh cache (forces recomputation of every trace).
    let run3: Vec<Fingerprint> = sweep_par(&jobs, &opts, Jobs::new(8), &SweepCache::new())
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(run1, run3, "cache reuse must not change results");

    // Results line up with the job list positionally.
    for (job, fp) in jobs.iter().zip(&run1) {
        assert_eq!(fp.arch, job.eval.arch.name());
    }
}

#[test]
fn sweep_reuses_each_trace_across_architectures() {
    let opts = WorkloadOptions::test_small();
    let jobs = job_list();
    let cache = SweepCache::new();
    let _ = sweep_par(&jobs, &opts, Jobs::new(4), &cache);
    // One trace per (model, dataset) pair — not one per job.
    assert_eq!(cache.cached_traces(), jobs.len() / ARCHS.len());
    assert_eq!(cache.cached_weights(), CiModel::ALL.len());
}
