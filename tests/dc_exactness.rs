//! The central correctness theorem: differential convolution is
//! bit-exact relative to direct convolution — over arbitrary tensors,
//! geometries, and on real traced network layers.

use diffy::core::dc::differential_conv2d;
use diffy::core::runner::{ci_trace_bundle, WorkloadOptions};
use diffy::imaging::datasets::DatasetId;
use diffy::models::CiModel;
use diffy::tensor::{conv2d, conv2d_fast, ConvGeometry, Tensor3, Tensor4};
use proptest::prelude::*;

fn arb_case() -> impl Strategy<
    Value = (Tensor3<i16>, Tensor4<i16>, ConvGeometry),
> {
    (1usize..=3, 3usize..=8, 3usize..=9, 1usize..=3, 1usize..=2, 1usize..=2, 0usize..=2, 1usize..=2)
        .prop_flat_map(|(c, h, w, k, f, stride, pad, dilation)| {
            let geom = ConvGeometry { stride, pad, dilation };
            let imap = proptest::collection::vec(any::<i16>(), c * h * w)
                .prop_map(move |d| Tensor3::from_vec(c, h, w, d));
            let fmaps = proptest::collection::vec(any::<i16>(), k * c * f * f)
                .prop_map(move |d| Tensor4::from_vec(k, c, f, f, d));
            (imap, fmaps, Just(geom))
        })
        .prop_filter("non-empty output", |(imap, fmaps, geom)| {
            let fs = fmaps.shape();
            geom.out_dim(imap.shape().h, fs.h) > 0 && geom.out_dim(imap.shape().w, fs.w) > 0
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn differential_equals_direct((imap, fmaps, geom) in arb_case()) {
        let direct = conv2d(&imap, &fmaps, None, geom);
        let diff = differential_conv2d(&imap, &fmaps, None, geom);
        prop_assert_eq!(direct, diff);
    }

    #[test]
    fn fast_equals_reference((imap, fmaps, geom) in arb_case()) {
        let direct = conv2d(&imap, &fmaps, None, geom);
        let fast = conv2d_fast(&imap, &fmaps, None, geom);
        prop_assert_eq!(direct, fast);
    }

    #[test]
    fn differential_with_bias((imap, fmaps, geom) in arb_case(), b in any::<i32>()) {
        let bias = vec![b as i64; fmaps.shape().k];
        let direct = conv2d(&imap, &fmaps, Some(&bias), geom);
        let diff = differential_conv2d(&imap, &fmaps, Some(&bias), geom);
        prop_assert_eq!(direct, diff);
    }
}

#[test]
fn differential_is_exact_on_real_traced_layers() {
    // Re-execute every layer of a real trace both ways; the accumulator
    // omaps must agree bit-for-bit (what Diffy's DR engines guarantee).
    for model in [CiModel::Ircnn, CiModel::FfdNet] {
        let bundle =
            ci_trace_bundle(model, DatasetId::Cbsd68, 0, &WorkloadOptions::test_small());
        for layer in &bundle.trace.layers {
            let direct = conv2d(&layer.imap, &layer.fmaps, None, layer.geom);
            let diff = differential_conv2d(&layer.imap, &layer.fmaps, None, layer.geom);
            assert_eq!(direct, diff, "{model} {}", layer.name);
        }
    }
}
