//! Integration tests for the §V extensions: Dynamic Stripes with deltas,
//! selective per-layer DC, and spatio-temporal processing on video.

use diffy::core::runner::{ci_trace_bundle, WorkloadOptions};
use diffy::imaging::datasets::DatasetId;
use diffy::imaging::scenes::SceneKind;
use diffy::imaging::video::pan_sequence;
use diffy::models::{run_network, CiModel, NetworkWeights};
use diffy::sim::{
    selective_network, stripes_network, temporal_network, term_serial_network, vaa_network,
    AcceleratorConfig, TemporalMode, ValueMode,
};
use diffy::tensor::Quantizer;

#[test]
fn stripes_benefits_from_deltas_on_real_traces() {
    // The paper's §V claim on a real CI-DNN trace: delta processing
    // lowers the dynamic precision a bit-serial design pays for.
    let bundle =
        ci_trace_bundle(CiModel::DnCnn, DatasetId::Hd33, 0, &WorkloadOptions::test_small());
    let cfg = AcceleratorConfig::table4();
    let raw = stripes_network(&bundle.trace, &cfg, ValueMode::Raw).total_cycles();
    let delta = stripes_network(&bundle.trace, &cfg, ValueMode::Differential).total_cycles();
    assert!(delta < raw, "DStripes+delta {delta} !< DStripes {raw}");
    // And the full ordering: VAA > DStripes > PRA per value content.
    let vaa = vaa_network(&bundle.trace, &cfg).total_cycles();
    let pra = term_serial_network(&bundle.trace, &cfg, ValueMode::Raw).total_cycles();
    assert!(raw < vaa);
    assert!(pra <= raw);
}

#[test]
fn selective_dc_matches_paper_observation() {
    // §IV-A: selective DC eliminates per-layer slowdowns but the overall
    // gain over always-on DC is small on imaging workloads.
    let bundle =
        ci_trace_bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &WorkloadOptions::test_small());
    let cfg = AcceleratorConfig::table4();
    let always = term_serial_network(&bundle.trace, &cfg, ValueMode::Differential);
    let selective = selective_network(&bundle.trace, &cfg);
    assert!(selective.total_cycles() <= always.total_cycles());
    let gain = 1.0 - selective.total_cycles() as f64 / always.total_cycles() as f64;
    assert!(gain < 0.05, "selective gain {gain} suspiciously large");
}

#[test]
fn temporal_processing_wins_on_static_content_loses_on_scene_cuts() {
    let model = CiModel::Ircnn;
    let weights =
        NetworkWeights::generate(&model.spec(), model.weight_gen(1), Quantizer::default());
    let cfg = AcceleratorConfig::table4();

    // Nearly-static clip: temporal deltas tiny.
    let clip = pan_sequence(SceneKind::Nature, 32, 32, 2, 0, 0.005, 5);
    let t0 = run_network(&model.spec(), &weights, &model.prepare_input(&clip[0], 0));
    let t1 = run_network(&model.spec(), &weights, &model.prepare_input(&clip[1], 0));
    let spatial = term_serial_network(&t1, &cfg, ValueMode::Differential).total_cycles();
    let temporal =
        temporal_network(&t0, &t1, &cfg, TemporalMode::TemporalOnly).total_cycles();
    assert!(
        temporal < spatial,
        "static clip: temporal {temporal} !< spatial {spatial}"
    );

    // Scene cut: unrelated frames destroy temporal correlation.
    let cut_a = pan_sequence(SceneKind::Nature, 32, 32, 1, 0, 0.0, 6).remove(0);
    let cut_b = pan_sequence(SceneKind::Texture, 32, 32, 1, 0, 0.0, 999).remove(0);
    let ca = run_network(&model.spec(), &weights, &model.prepare_input(&cut_a, 0));
    let cb = run_network(&model.spec(), &weights, &model.prepare_input(&cut_b, 1));
    let spatial_cut = term_serial_network(&cb, &cfg, ValueMode::Differential).total_cycles();
    let temporal_cut =
        temporal_network(&ca, &cb, &cfg, TemporalMode::TemporalOnly).total_cycles();
    assert!(
        temporal_cut > spatial_cut,
        "scene cut: temporal {temporal_cut} should lose to spatial {spatial_cut}"
    );
}

#[test]
fn spatiotemporal_is_robust_across_content() {
    // The combined mode should never be far behind the better of its two
    // parents on normal video.
    let model = CiModel::Ircnn;
    let weights =
        NetworkWeights::generate(&model.spec(), model.weight_gen(1), Quantizer::default());
    let cfg = AcceleratorConfig::table4();
    for (pan, noise) in [(1usize, 0.0f32), (4, 0.03)] {
        let clip = pan_sequence(SceneKind::City, 32, 32, 2, pan, noise, 7);
        let t0 = run_network(&model.spec(), &weights, &model.prepare_input(&clip[0], 0));
        let t1 = run_network(&model.spec(), &weights, &model.prepare_input(&clip[1], 0));
        let spatial = term_serial_network(&t1, &cfg, ValueMode::Differential).total_cycles();
        let temporal =
            temporal_network(&t0, &t1, &cfg, TemporalMode::TemporalOnly).total_cycles();
        let st =
            temporal_network(&t0, &t1, &cfg, TemporalMode::SpatioTemporal).total_cycles();
        let best = spatial.min(temporal);
        assert!(
            (st as f64) < best as f64 * 1.3,
            "pan {pan}: spatio-temporal {st} too far behind best parent {best}"
        );
    }
}
