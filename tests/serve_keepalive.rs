//! End-to-end tests of keep-alive connections and batched evaluation:
//! a real server on an ephemeral loopback port, driven by persistent
//! TCP clients, pipelined raw sockets, and batch requests.
//!
//! The load-bearing assertions are (a) *bit-identity* — a response
//! served over a reused connection, and every item of a batch, must
//! equal byte-for-byte the standalone one-shot `POST /evaluate`
//! response — and (b) *conservation* — every admitted request attempt
//! ends as exactly one response, abort, or idle close.

use diffy::core::json::{parse as parse_json, JsonValue};
use diffy::core::parallel::Jobs;
use diffy::core::runner::ci_trace_bundle;
use diffy::serve::protocol::EvalRequest;
use diffy::serve::{
    get, post, result_to_json, KeepAliveClient, ServeConfig, Server, ServerHandle,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Generous client-side timeout; tests assert on statuses, not latency.
const TIMEOUT: Duration = Duration::from_secs(30);

/// Boots a server on an ephemeral port and runs it on its own thread.
fn boot(config: ServeConfig) -> (SocketAddr, ServerHandle, JoinHandle<()>) {
    let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..config })
        .expect("bind on an ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

/// The exact body a correct server must serve for `body`: parse the
/// request the same way, evaluate directly (no server, no cache), and
/// serialize deterministically.
fn direct_evaluation(body: &str) -> String {
    let parsed = parse_json(body).expect("test body is valid JSON");
    let req = EvalRequest::from_json(&parsed).expect("test body is a valid request");
    let bundle = ci_trace_bundle(req.model, req.dataset, req.sample, &req.workload());
    let result = bundle.evaluate(&req.eval_options());
    result_to_json(&result, bundle.source_pixels).to_json()
}

/// Fetches and parses `/metrics` over a one-shot connection.
fn metrics(addr: SocketAddr) -> JsonValue {
    let resp = get(addr, "/metrics", TIMEOUT).expect("metrics");
    assert_eq!(resp.status, 200);
    parse_json(&resp.body).expect("metrics body is JSON")
}

/// Whether a `/metrics` snapshot satisfies the request-attempt
/// conservation law: every attempt ended as a response, an abort, or an
/// idle close — except the in-flight `/metrics` attempt itself, which
/// is admitted but not yet answered when the snapshot renders.
fn is_conserved(m: &JsonValue) -> bool {
    let requests = m.get("requests_total").unwrap().as_u64().unwrap();
    let responses: u64 = {
        let r = m.get("responses").unwrap();
        let JsonValue::Object(members) = r else { panic!("responses is an object") };
        members.iter().map(|(_, v)| v.as_u64().unwrap()).sum()
    };
    let conns = m.get("connections").unwrap();
    let aborted = conns.get("aborted").unwrap().as_u64().unwrap();
    let idle = conns.get("idle_closed").unwrap().as_u64().unwrap();
    requests == responses + aborted + idle + 1
}

/// Asserts conservation once the server quiesces. Clients must have
/// closed their connections already; the server then needs a few poll
/// cycles to notice the closes and retire the parked attempts, so this
/// samples `/metrics` until the law holds (bounded wait).
fn assert_conserved_once_quiesced(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut last = metrics(addr);
    while !is_conserved(&last) {
        assert!(Instant::now() < deadline, "conservation never converged: {last:?}");
        std::thread::sleep(Duration::from_millis(50));
        last = metrics(addr);
    }
}

#[test]
fn keepalive_responses_are_bit_identical_to_one_shot() {
    let bodies = [
        r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32}"#,
        r#"{"model": "DnCNN", "dataset": "Kodak24", "resolution": 32, "arch": "VAA"}"#,
        r#"{"model": "IRCNN", "dataset": "McMaster", "resolution": 32, "scheme": "Ideal"}"#,
    ];
    let (addr, handle, thread) = boot(ServeConfig::default());

    // One-shot reference responses, served by the same process.
    let one_shot: Vec<String> = bodies
        .iter()
        .map(|b| {
            let resp = post(addr, "/evaluate", b, TIMEOUT).expect("one-shot post");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
            resp.body
        })
        .collect();

    // Two rounds over ONE persistent connection: six requests, zero
    // reconnects, every response byte-equal to both the one-shot
    // response and the direct in-process evaluation.
    let mut client = KeepAliveClient::new(addr, TIMEOUT);
    for round in 0..2 {
        for (i, body) in bodies.iter().enumerate() {
            let resp = client.post("/evaluate", body).expect("keep-alive post");
            assert_eq!(resp.status, 200, "round {round} body: {}", resp.body);
            assert_eq!(resp.body, one_shot[i], "keep-alive vs one-shot (request {i})");
            assert_eq!(resp.body, direct_evaluation(body), "keep-alive vs direct (request {i})");
        }
    }
    assert_eq!(client.connects(), 1, "all six requests must share one connection");
    assert_eq!(client.requests_on_conn(), 6);

    let m = metrics(addr);
    let conns = m.get("connections").unwrap();
    assert!(
        conns.get("keepalive_reuses").unwrap().as_u64().unwrap() >= 5,
        "six requests on one connection are at least five reuses: {conns:?}"
    );

    drop(client);
    assert_conserved_once_quiesced(addr);
    handle.shutdown();
    thread.join().expect("server drains");
}

#[test]
fn batch_items_are_bit_identical_to_standalone_evaluations() {
    let (addr, handle, thread) = boot(ServeConfig::default());

    // Defaults + overrides, including one invalid item: the batch still
    // answers 200, the bad item reports its own error, and every good
    // item's result is byte-identical to its standalone evaluation.
    let batch = r#"{"defaults": {"model": "IRCNN", "dataset": "Kodak24", "resolution": 32},
                    "items": [{}, {"arch": "VAA"}, {"model": "VDSR", "seed": 7}, {"model": "nope"}]}"#;
    let standalone = [
        r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32}"#,
        r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32, "arch": "VAA"}"#,
        r#"{"model": "VDSR", "dataset": "Kodak24", "resolution": 32, "seed": 7}"#,
    ];

    let resp = post(addr, "/evaluate/batch", batch, TIMEOUT).expect("batch post");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let v = parse_json(&resp.body).expect("batch response is JSON");
    assert_eq!(v.get("count").unwrap().as_u64(), Some(4));
    assert_eq!(v.get("errors").unwrap().as_u64(), Some(1));
    let items = v.get("items").unwrap().as_array().unwrap();
    assert_eq!(items.len(), 4);

    for (i, body) in standalone.iter().enumerate() {
        assert_eq!(items[i].get("status").unwrap().as_u64(), Some(200), "item {i}");
        // Bit-identity, asserted on the raw bytes: the serialized item
        // must embed the standalone response verbatim, and the server's
        // own one-shot answer must equal the direct evaluation.
        let expected = direct_evaluation(body);
        let embedded = format!("{{\"status\":200,\"result\":{expected}}}");
        assert!(
            resp.body.contains(&embedded),
            "batch item {i} must embed the standalone body verbatim"
        );
        let one_shot = post(addr, "/evaluate", body, TIMEOUT).expect("one-shot post");
        assert_eq!(one_shot.body, expected, "one-shot vs direct (item {i})");
    }
    assert_eq!(items[3].get("status").unwrap().as_u64(), Some(400));
    assert!(
        items[3].get("error").unwrap().as_str().unwrap().contains("unknown model"),
        "item 3: {:?}",
        items[3]
    );

    let m = metrics(addr);
    assert_eq!(m.get("batch_items_total").unwrap().as_u64(), Some(4));
    assert_conserved_once_quiesced(addr);

    handle.shutdown();
    thread.join().expect("server drains");
}

#[test]
fn keepalive_connection_turns_over_at_the_request_cap() {
    let (addr, handle, thread) = boot(ServeConfig {
        max_requests_per_conn: 3,
        ..ServeConfig::default()
    });

    // Seven requests with a cap of three per connection: the server
    // closes after every third response (announcing it), the client
    // reconnects, and service is seamless — 3 + 3 + 1.
    let mut client = KeepAliveClient::new(addr, TIMEOUT);
    for i in 0..7 {
        let resp = client.get("/healthz").expect("healthz");
        assert_eq!(resp.status, 200, "request {i}");
    }
    assert_eq!(client.connects(), 3, "cap of 3 must split 7 requests over 3 connections");

    let m = metrics(addr);
    let conns = m.get("connections").unwrap();
    assert_eq!(
        conns.get("requests_per_conn_max").unwrap().as_u64(),
        Some(3),
        "no connection may exceed the cap: {conns:?}"
    );

    drop(client);
    assert_conserved_once_quiesced(addr);
    handle.shutdown();
    thread.join().expect("server drains");
}

#[test]
fn idle_keepalive_connection_is_closed_and_accounted() {
    let (addr, handle, thread) = boot(ServeConfig {
        idle_timeout_ms: 100,
        ..ServeConfig::default()
    });

    // A raw keep-alive connection: one request, then silence. The
    // server must close it shortly after the idle window — not hold it
    // forever, and not count it as an abort.
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(TIMEOUT)).unwrap();
    conn.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let waiting = Instant::now();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("server closes the idle connection");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
    assert!(
        waiting.elapsed() < Duration::from_secs(5),
        "idle close took {:?}, idle window is 100ms",
        waiting.elapsed()
    );

    let m = metrics(addr);
    let conns = m.get("connections").unwrap();
    let poller = m.get("poller").unwrap();
    // The connection was parked between requests and its idle window
    // passed without another byte, so the event loop retires it: that's
    // a poller expiry, not a request-ledger event — no request was ever
    // counted for the silence, so there is nothing to account as closed.
    assert!(
        poller.get("expired").unwrap().as_u64().unwrap() >= 1,
        "the idle retirement must show in the poller ledger: {poller:?}"
    );
    assert_eq!(
        conns.get("aborted").unwrap().as_u64(),
        Some(0),
        "a politely idle peer is not an abort: {conns:?}"
    );
    assert_conserved_once_quiesced(addr);

    handle.shutdown();
    thread.join().expect("server drains");
}

#[test]
fn idle_parked_connections_do_not_occupy_the_admission_queue() {
    // queue_depth 1: when idle keep-alive connections cycled through the
    // admission queue, a handful of idle clients kept it full — fresh
    // connections shed 503 while the worker sat idle, and every idle
    // connection cost a continuous pop/peek/re-push churn. Parked
    // connections must wait in the lot instead, leaving the queue free.
    let (addr, handle, thread) = boot(ServeConfig {
        workers: Jobs::new(1),
        queue_depth: 1,
        ..ServeConfig::default()
    });

    // Three clients each serve one request, then sit idle.
    let mut idlers: Vec<KeepAliveClient> =
        (0..3).map(|_| KeepAliveClient::new(addr, TIMEOUT)).collect();
    for c in idlers.iter_mut() {
        assert_eq!(c.get("/healthz").expect("healthz").status, 200);
    }
    // Give the server a few sweep cycles to park all three.
    std::thread::sleep(Duration::from_millis(100));

    // Fresh one-shot connections must be admitted and served, every
    // time — the idle clients hold no admission slot.
    for i in 0..5 {
        let resp = get(addr, "/healthz", TIMEOUT).expect("fresh connection served");
        assert_eq!(resp.status, 200, "fresh connection {i} shed by idle parked clients");
    }

    // And the parked clients resume on their original connections.
    for c in idlers.iter_mut() {
        assert_eq!(c.get("/healthz").expect("parked client resumes").status, 200);
        assert_eq!(c.connects(), 1, "resuming must not need a reconnect");
    }
    drop(idlers);
    assert_conserved_once_quiesced(addr);
    handle.shutdown();
    thread.join().expect("server drains");
}

#[test]
fn pipelined_request_after_body_level_400_is_served() {
    let (addr, handle, thread) = boot(ServeConfig::default());

    // Framing-valid but semantically bad first request (its body is not
    // JSON): the connection stays trustworthy, so the pipelined second
    // request must still be answered.
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(TIMEOUT)).unwrap();
    conn.write_all(
        b"POST /evaluate HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot json\
          GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("both responses then close");
    let text = String::from_utf8_lossy(&raw);
    let first = text.find("HTTP/1.1 400").expect("first response is 400");
    let second = text.find("HTTP/1.1 200").expect("pipelined second request is served");
    assert!(first < second, "responses in request order:\n{text}");
    assert!(text.contains("bad JSON"), "{text}");
    assert!(text.contains("ok"), "{text}");

    handle.shutdown();
    thread.join().expect("server drains");
}

#[test]
fn pipelined_request_after_framing_level_400_is_not_served() {
    let (addr, handle, thread) = boot(ServeConfig::default());

    // Transfer-Encoding poisons the framing: the server must answer 400
    // and close, never attempting to parse the pipelined bytes (which a
    // lenient parser would misread as living inside the chunked body).
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(TIMEOUT)).unwrap();
    conn.write_all(
        b"POST /evaluate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
          GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("response then close");
    let text = String::from_utf8_lossy(&raw);
    assert_eq!(
        text.matches("HTTP/1.1 ").count(),
        1,
        "exactly one response before the close:\n{text}"
    );
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");

    handle.shutdown();
    thread.join().expect("server drains");
}

#[test]
fn drain_mid_keepalive_finishes_inflight_then_closes() {
    let (addr, handle, thread) = boot(ServeConfig {
        workers: Jobs::new(1),
        test_hooks: true,
        ..ServeConfig::default()
    });

    // A keep-alive client with an in-flight slow request when drain
    // lands: the request must still be answered (drain finishes the
    // backlog), and the parked connection must not block shutdown.
    let mut client = KeepAliveClient::new(addr, TIMEOUT);
    let warm = client.get("/healthz").expect("healthz");
    assert_eq!(warm.status, 200);

    let stopper = {
        let handle = handle.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            handle.shutdown();
        })
    };
    let body = r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 32,
                   "test_sleep_ms": 300}"#;
    let resp = client.post("/evaluate", body).expect("in-flight request is finished");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.body, direct_evaluation(body), "drained response is still bit-identical");
    stopper.join().unwrap();

    // The parked keep-alive connection must not wedge the drain.
    thread.join().expect("drain completes with a keep-alive connection open");
}
