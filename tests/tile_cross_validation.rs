//! Cross-validation of the three implementation layers on real traces:
//! the microarchitectural tile emulator must reproduce the inference
//! engine's activations bit-for-bit, write exactly the deltas the storage
//! schemes assume, and count exactly the cycles the analytical model
//! prices.

use diffy::core::runner::{ci_trace_bundle, WorkloadOptions};
use diffy::core::tile::{run_tile, TileConfig};
use diffy::encoding::delta::delta_rows_wrapping;
use diffy::imaging::datasets::DatasetId;
use diffy::models::CiModel;
use diffy::sim::{term_serial_layer, AcceleratorConfig, ValueMode};

#[test]
fn tile_emulator_reproduces_network_activations_bit_exactly() {
    // Every layer of a real IRCNN execution (dilated convolutions and
    // the data-dependent sparsity bias included): the tile's
    // post-activation omap must equal the next layer's imap.
    let bundle =
        ci_trace_bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &WorkloadOptions::test_small());
    let cfg = TileConfig::default();
    for (i, layer) in bundle.trace.layers.iter().enumerate() {
        let run = run_tile(layer, &cfg);
        assert_eq!(
            &run.omap,
            bundle.trace.omap(i),
            "layer {} omap mismatch",
            layer.name
        );
    }
}

#[test]
fn tile_emulator_deltas_match_the_storage_transform() {
    let bundle =
        ci_trace_bundle(CiModel::FfdNet, DatasetId::Cbsd68, 0, &WorkloadOptions::test_small());
    let cfg = TileConfig::default();
    for layer in bundle.trace.layers.iter().take(3) {
        let run = run_tile(layer, &cfg);
        let expect = delta_rows_wrapping(&run.omap, layer.next_stride);
        assert_eq!(run.omap_deltas, expect, "layer {}", layer.name);
    }
}

#[test]
fn tile_emulator_cycles_match_the_analytical_model_on_real_layers() {
    // Post-ReLU imaps are non-negative, so the emulator's exact deltas
    // and the model's wrapped 16-bit deltas coincide — cycle counts must
    // be identical for the single-tile configuration.
    let bundle =
        ci_trace_bundle(CiModel::DnCnn, DatasetId::Hd33, 0, &WorkloadOptions::test_small());
    let tile_cfg = TileConfig::default();
    let mut sim_cfg = AcceleratorConfig::table4();
    sim_cfg.tiles = 1;
    for layer in bundle.trace.layers.iter().step_by(5) {
        let run = run_tile(layer, &tile_cfg);
        let model = term_serial_layer(layer, &sim_cfg, ValueMode::Differential);
        assert_eq!(
            run.compute_cycles, model.cycles,
            "layer {}: emulator vs model",
            layer.name
        );
    }
}
