//! Cross-validation of the three implementation layers on real traces:
//! the microarchitectural tile emulator must reproduce the inference
//! engine's activations bit-for-bit, write exactly the deltas the storage
//! schemes assume, and count exactly the cycles the analytical model
//! prices.

use diffy::core::runner::{ci_trace_bundle, WorkloadOptions};
use diffy::core::tile::{run_tile, TileConfig};
use diffy::encoding::delta::delta_rows_wrapping;
use diffy::imaging::datasets::DatasetId;
use diffy::models::{CiModel, LayerTrace};
use diffy::sim::{
    term_serial_layer, term_serial_layer_reference, AcceleratorConfig, ValueMode,
};
use diffy::tensor::{ConvGeometry, Tensor3, Tensor4};

#[test]
fn tile_emulator_reproduces_network_activations_bit_exactly() {
    // Every layer of a real IRCNN execution (dilated convolutions and
    // the data-dependent sparsity bias included): the tile's
    // post-activation omap must equal the next layer's imap.
    let bundle =
        ci_trace_bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &WorkloadOptions::test_small());
    let cfg = TileConfig::default();
    for (i, layer) in bundle.trace.layers.iter().enumerate() {
        let run = run_tile(layer, &cfg);
        assert_eq!(
            &run.omap,
            bundle.trace.omap(i),
            "layer {} omap mismatch",
            layer.name
        );
    }
}

#[test]
fn tile_emulator_deltas_match_the_storage_transform() {
    let bundle =
        ci_trace_bundle(CiModel::FfdNet, DatasetId::Cbsd68, 0, &WorkloadOptions::test_small());
    let cfg = TileConfig::default();
    for layer in bundle.trace.layers.iter().take(3) {
        let run = run_tile(layer, &cfg);
        let expect = delta_rows_wrapping(&run.omap, layer.next_stride);
        assert_eq!(run.omap_deltas, expect, "layer {}", layer.name);
    }
}

#[test]
fn plane_kernel_matches_reference_on_real_traces() {
    // The group-reduced plane kernel must reproduce the reference loop
    // nest's full cycle/slot accounting on real traced layers — IRCNN
    // exercises dilated convolutions, which take the kernel's non-SAT
    // fallback path — across value modes and synchronization groups.
    let bundle =
        ci_trace_bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &WorkloadOptions::test_small());
    let configs = [
        AcceleratorConfig::table4(),
        AcceleratorConfig::table4().with_terms_per_group(4),
        AcceleratorConfig::table4().with_tiles(1),
    ];
    for cfg in &configs {
        for layer in &bundle.trace.layers {
            for mode in [ValueMode::Raw, ValueMode::Differential] {
                assert_eq!(
                    term_serial_layer(layer, cfg, mode),
                    term_serial_layer_reference(layer, cfg, mode),
                    "layer {} mode {mode:?} T{}",
                    layer.name,
                    cfg.terms_per_group,
                );
            }
        }
    }
}

/// The deterministic synthetic layer behind the cycle fingerprints: the
/// same generator the micro-kernel bench uses, at a small fixed size.
fn fingerprint_layer() -> LayerTrace {
    let (c, h, w) = (16, 24, 37);
    let data: Vec<i16> = (0..c * h * w)
        .map(|i| ((i as u64).wrapping_mul(6364136223846793005) >> 48) as i16)
        .collect();
    LayerTrace {
        name: "fingerprint".into(),
        index: 0,
        imap: Tensor3::from_vec(c, h, w, data),
        fmaps: Tensor4::filled(16, c, 3, 3, 1),
        geom: ConvGeometry::same(3, 3),
        relu: true,
        requant_shift: 12,
        requant_bias: 0,
        next_stride: 1,
    }
}

#[test]
fn term_serial_cycle_fingerprints_are_stable() {
    // Pinned cycle counts for a deterministic layer under the Table IV
    // configuration. CI runs this as its divergence gate: if either the
    // optimized kernel or the reference loop nest starts producing
    // different integers, the cost model changed — which must be a
    // deliberate, reviewed event, not a refactoring side effect.
    const FINGERPRINTS: [(ValueMode, u64); 2] =
        [(ValueMode::Raw, 930), (ValueMode::Differential, 768)];
    let t = fingerprint_layer();
    let cfg = AcceleratorConfig::table4();
    for (mode, cycles) in FINGERPRINTS {
        let optimized = term_serial_layer(&t, &cfg, mode);
        let reference = term_serial_layer_reference(&t, &cfg, mode);
        assert_eq!(optimized, reference, "{mode:?}: kernels diverged");
        assert_eq!(optimized.cycles, cycles, "{mode:?}: fingerprint drift");
    }
}

#[test]
fn tile_emulator_cycles_match_the_analytical_model_on_real_layers() {
    // Post-ReLU imaps are non-negative, so the emulator's exact deltas
    // and the model's wrapped 16-bit deltas coincide — cycle counts must
    // be identical for the single-tile configuration.
    let bundle =
        ci_trace_bundle(CiModel::DnCnn, DatasetId::Hd33, 0, &WorkloadOptions::test_small());
    let tile_cfg = TileConfig::default();
    let mut sim_cfg = AcceleratorConfig::table4();
    sim_cfg.tiles = 1;
    for layer in bundle.trace.layers.iter().step_by(5) {
        let run = run_tile(layer, &tile_cfg);
        let model = term_serial_layer(layer, &sim_cfg, ValueMode::Differential);
        assert_eq!(
            run.compute_cycles, model.cycles,
            "layer {}: emulator vs model",
            layer.name
        );
    }
}
