//! Golden regression tests: the headline shapes of the reproduction,
//! pinned with generous margins so calibration regressions fail loudly
//! while honest model changes stay green.
//!
//! These ranges bracket the values recorded in EXPERIMENTS.md; if a
//! change moves a number outside its bracket, either the change is a bug
//! or EXPERIMENTS.md (and these brackets) must be re-baselined
//! deliberately.

use diffy::core::accelerator::{EvalOptions, SchemeChoice};
use diffy::core::runner::{ci_trace_bundle, WorkloadOptions};
use diffy::encoding::StorageScheme;
use diffy::imaging::datasets::DatasetId;
use diffy::memsys::traffic::network_traffic;
use diffy::models::CiModel;
use diffy::sim::Architecture;
use diffy::tensor::ops::sparsity;

fn workload() -> WorkloadOptions {
    WorkloadOptions { resolution: 48, samples_per_dataset: 1, seed: 1 }
}

#[test]
fn golden_dncnn_sparsity_near_paper() {
    // Paper Fig. 3: ~43% raw sparsity. Calibrated; bracket 33-55%.
    let b = ci_trace_bundle(CiModel::DnCnn, DatasetId::Hd33, 0, &workload());
    let layers = &b.trace.layers[1..];
    let s = layers.iter().map(|l| sparsity(&l.imap)).sum::<f64>() / layers.len() as f64;
    assert!((0.33..0.55).contains(&s), "DnCNN sparsity {s}");
}

#[test]
fn golden_vdsr_is_very_sparse() {
    let b = ci_trace_bundle(CiModel::Vdsr, DatasetId::Hd33, 0, &workload());
    let layers = &b.trace.layers[1..];
    let s = layers.iter().map(|l| sparsity(&l.imap)).sum::<f64>() / layers.len() as f64;
    assert!(s > 0.6, "VDSR sparsity {s} should be high");
}

#[test]
fn golden_speedup_brackets() {
    // DeltaD16, DDR4-3200, IRCNN at 48px: Diffy/VAA in [3.5, 9],
    // PRA/VAA in [2.5, 6], Diffy/PRA in [1.1, 2.0].
    let b = ci_trace_bundle(CiModel::Ircnn, DatasetId::Hd33, 0, &workload());
    let scheme = SchemeChoice::Scheme(StorageScheme::delta_d(16));
    let vaa = b.evaluate(&EvalOptions::new(Architecture::Vaa, scheme)).total_cycles();
    let pra = b.evaluate(&EvalOptions::new(Architecture::Pra, scheme)).total_cycles();
    let diffy = b.evaluate(&EvalOptions::new(Architecture::Diffy, scheme)).total_cycles();
    let d_v = vaa as f64 / diffy as f64;
    let p_v = vaa as f64 / pra as f64;
    let d_p = pra as f64 / diffy as f64;
    assert!((3.5..9.0).contains(&d_v), "Diffy/VAA {d_v}");
    assert!((2.5..6.0).contains(&p_v), "PRA/VAA {p_v}");
    assert!((1.1..2.0).contains(&d_p), "Diffy/PRA {d_p}");
}

#[test]
fn golden_delta_compression_brackets() {
    // Paper Fig. 14: DeltaD16 at 22-30% of uncompressed, and 1.2-1.6x
    // under RawD16.
    let b = ci_trace_bundle(CiModel::DnCnn, DatasetId::Hd33, 0, &workload());
    let total = |s: StorageScheme| -> u64 {
        network_traffic(&b.trace, s).iter().map(|t| t.activation_bytes()).sum()
    };
    let none = total(StorageScheme::NoCompression) as f64;
    let raw16 = total(StorageScheme::raw_d(16)) as f64;
    let delta16 = total(StorageScheme::delta_d(16)) as f64;
    let frac = delta16 / none;
    let vs_raw = raw16 / delta16;
    assert!((0.15..0.40).contains(&frac), "DeltaD16 fraction {frac}");
    assert!((1.15..1.80).contains(&vs_raw), "RawD16/DeltaD16 {vs_raw}");
}

#[test]
fn golden_deltad16_is_compute_bound_on_ddr4() {
    // Paper Fig. 11: with DeltaD16, Diffy runs nearly at its Ideal.
    let b = ci_trace_bundle(CiModel::DnCnn, DatasetId::Hd33, 0, &workload());
    let delta = b
        .evaluate(&EvalOptions::new(
            Architecture::Diffy,
            SchemeChoice::Scheme(StorageScheme::delta_d(16)),
        ))
        .total_cycles();
    let ideal = b
        .evaluate(&EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal))
        .total_cycles();
    let ratio = delta as f64 / ideal as f64;
    assert!(ratio < 1.1, "DeltaD16 should be within 10% of Ideal: {ratio}");
}
