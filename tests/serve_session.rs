//! End-to-end tests of the streaming-session subsystem: a real server on
//! an ephemeral loopback port, driven by real TCP session clients.
//!
//! The load-bearing assertion mirrors `serve_e2e.rs`: the per-frame
//! counters served through a session must equal, byte for byte, the
//! serialization of a direct in-process `temporal_network` evaluation of
//! the same stream — under 8 concurrent sessions, at any worker count.
//! The rest closes the lifecycle accounting: idle expiry, LRU eviction,
//! and the conservation law `created == closed + expired + evicted +
//! open` in the `/metrics` sessions block.

use diffy::core::parallel::{run_jobs, Jobs};
use diffy::core::runner::{video_frame_bundle, VideoSpec};
use diffy::imaging::scenes::SceneKind;
use diffy::models::CiModel;
use diffy::serve::protocol::cycles_to_json;
use diffy::serve::{get, post, ServeConfig, Server, ServerHandle, SessionClient};
use diffy::sim::{
    temporal_network, term_serial_network, AcceleratorConfig, TemporalMode, ValueMode,
};
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

/// Generous client-side timeout; tests assert on statuses, not latency.
const TIMEOUT: Duration = Duration::from_secs(30);

/// Boots a server on an ephemeral port and runs it on its own thread.
fn boot(config: ServeConfig) -> (SocketAddr, ServerHandle, JoinHandle<()>) {
    let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..config })
        .expect("bind on an ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

/// One test stream: the `POST /session` body and the spec/mode it pins.
#[derive(Clone, Copy)]
struct Stream {
    body: &'static str,
    spec: (CiModel, SceneKind, usize, usize, usize, u64),
    mode: TemporalMode,
}

const STREAMS: [Stream; 4] = [
    Stream {
        body: r#"{"model": "IRCNN", "scene": "City", "resolution": 16, "frames": 4,
                  "pan_px": 1, "seed": 5, "mode": "spatiotemporal"}"#,
        spec: (CiModel::Ircnn, SceneKind::City, 16, 4, 1, 5),
        mode: TemporalMode::SpatioTemporal,
    },
    Stream {
        body: r#"{"model": "IRCNN", "scene": "Nature", "resolution": 16, "frames": 4,
                  "pan_px": 2, "seed": 9, "mode": "temporal"}"#,
        spec: (CiModel::Ircnn, SceneKind::Nature, 16, 4, 2, 9),
        mode: TemporalMode::TemporalOnly,
    },
    Stream {
        body: r#"{"model": "DnCNN", "scene": "Texture", "resolution": 16, "frames": 4,
                  "pan_px": 1, "seed": 3, "mode": "spatiotemporal"}"#,
        spec: (CiModel::DnCnn, SceneKind::Texture, 16, 4, 1, 3),
        mode: TemporalMode::SpatioTemporal,
    },
    Stream {
        body: r#"{"model": "VDSR", "scene": "City", "resolution": 16, "frames": 4,
                  "pan_px": 1, "seed": 7, "mode": "spatiotemporal"}"#,
        spec: (CiModel::Vdsr, SceneKind::City, 16, 4, 1, 7),
        mode: TemporalMode::SpatioTemporal,
    },
];

/// The exact `result` bodies a correct server must serve for a stream:
/// frame 0 full spatial (Diffy differential), later frames through
/// `temporal_network` against the previous frame — no server, no cache.
fn direct_frame_results(stream: &Stream) -> Vec<String> {
    let (model, scene, res, frames, pan, seed) = stream.spec;
    let spec = VideoSpec::new(model, scene, res, frames, pan, 0.0, seed);
    let cfg = AcceleratorConfig::table4();
    let bundles: Vec<_> = (0..frames).map(|f| video_frame_bundle(&spec, f)).collect();
    (0..frames)
        .map(|f| {
            let cycles = if f == 0 {
                term_serial_network(&bundles[0].trace, &cfg, ValueMode::Differential)
            } else {
                temporal_network(&bundles[f - 1].trace, &bundles[f].trace, &cfg, stream.mode)
            };
            cycles_to_json(&cycles).to_json()
        })
        .collect()
}

/// The sessions block of `/metrics`, as parsed JSON.
fn sessions_metrics(addr: SocketAddr) -> diffy::core::json::JsonValue {
    let m = diffy::core::json::parse(&get(addr, "/metrics", TIMEOUT).unwrap().body).unwrap();
    m.get("sessions").unwrap().clone()
}

/// Asserts the conservation law on a quiesced server's sessions block.
fn assert_conserved(sessions: &diffy::core::json::JsonValue) {
    let n = |k: &str| sessions.get(k).unwrap().as_u64().unwrap();
    assert_eq!(
        n("created"),
        n("closed") + n("expired") + n("evicted") + n("open"),
        "conservation law must hold: {sessions:?}"
    );
}

#[test]
fn eight_concurrent_sessions_serve_bit_identical_temporal_frames() {
    let expected: Vec<Vec<String>> = STREAMS.iter().map(direct_frame_results).collect();
    let (addr, handle, thread) = boot(ServeConfig::default());

    // Eight concurrent sessions, two per stream — every stream runs cold
    // and warm against the shared cache, with frames interleaving across
    // sessions and workers.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let stream = STREAMS[i % STREAMS.len()];
            move || {
                let mut client = SessionClient::new(addr, TIMEOUT);
                let created = client.create(stream.body).expect("create");
                assert_eq!(created.status, 200, "body: {}", created.body);
                let frames = stream.spec.3;
                let mut results = Vec::with_capacity(frames);
                for f in 0..frames {
                    // The explicit index guard also exercises per-session
                    // frame ordering under concurrency.
                    let resp = client.frame(&format!("{{\"frame\": {f}}}")).expect("frame");
                    assert_eq!(resp.status, 200, "frame {f} body: {}", resp.body);
                    let v = diffy::core::json::parse(&resp.body).unwrap();
                    assert_eq!(v.get("frame").unwrap().as_u64(), Some(f as u64));
                    results.push(v.get("result").unwrap().to_json());
                }
                let closed = client.close().expect("close");
                assert_eq!(closed.status, 200, "body: {}", closed.body);
                (i % STREAMS.len(), results)
            }
        })
        .collect();
    for (which, results) in run_jobs(clients, Jobs::new(8)) {
        assert_eq!(
            results, expected[which],
            "served frames must equal direct temporal evaluation (stream {which})"
        );
    }

    // Quiesced: every session was created and explicitly closed.
    let sessions = sessions_metrics(addr);
    assert_eq!(sessions.get("created").unwrap().as_u64(), Some(8));
    assert_eq!(sessions.get("closed").unwrap().as_u64(), Some(8));
    assert_eq!(sessions.get("open").unwrap().as_u64(), Some(0));
    assert_eq!(sessions.get("frames").unwrap().as_u64(), Some(8 * 4));
    assert_conserved(&sessions);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn session_results_are_identical_across_worker_counts() {
    // The full frame bodies — counters, ids and the cumulative savings
    // ledger — must not depend on the server's parallelism.
    let run = |workers: usize| -> Vec<String> {
        let (addr, handle, thread) =
            boot(ServeConfig { workers: Jobs::new(workers), ..ServeConfig::default() });
        let mut client = SessionClient::new(addr, TIMEOUT);
        let created = client.create(STREAMS[0].body).expect("create");
        assert_eq!(created.status, 200, "body: {}", created.body);
        let mut bodies = vec![created.body];
        for _ in 0..STREAMS[0].spec.3 {
            let resp = client.frame("").expect("frame");
            assert_eq!(resp.status, 200, "body: {}", resp.body);
            bodies.push(resp.body);
        }
        handle.shutdown();
        thread.join().unwrap();
        bodies
    };
    assert_eq!(run(1), run(4), "served bytes must be identical at any --jobs");
}

#[test]
fn idle_sessions_expire_and_the_accounting_conserves() {
    let (addr, handle, thread) = boot(ServeConfig {
        session_idle_ms: 100,
        ..ServeConfig::default()
    });

    let mut a = SessionClient::new(addr, TIMEOUT);
    let mut b = SessionClient::new(addr, TIMEOUT);
    assert_eq!(a.create(STREAMS[0].body).unwrap().status, 200);
    assert_eq!(b.create(STREAMS[1].body).unwrap().status, 200);
    assert_eq!(a.frame("").unwrap().status, 200);

    // Past the idle window the parker sweep (every ~5 ms) must expire
    // both sessions; poll rather than trust one sleep.
    let mut expired = 0;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        expired = sessions_metrics(addr).get("expired").unwrap().as_u64().unwrap();
        if expired == 2 {
            break;
        }
    }
    assert_eq!(expired, 2, "both idle sessions must expire");

    // An expired session's id is gone — frames and deletes both 404.
    let resp = a.frame("").unwrap();
    assert_eq!(resp.status, 404, "body: {}", resp.body);
    assert!(resp.body.contains("unknown or expired"), "body: {}", resp.body);
    assert_eq!(b.close().unwrap().status, 404);

    let sessions = sessions_metrics(addr);
    assert_eq!(sessions.get("open").unwrap().as_u64(), Some(0));
    assert_conserved(&sessions);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn capacity_bound_evicts_lru_and_the_accounting_conserves() {
    let (addr, handle, thread) = boot(ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    });

    let mut a = SessionClient::new(addr, TIMEOUT);
    let mut b = SessionClient::new(addr, TIMEOUT);
    let mut c = SessionClient::new(addr, TIMEOUT);
    assert_eq!(a.create(STREAMS[0].body).unwrap().status, 200);
    assert_eq!(b.create(STREAMS[1].body).unwrap().status, 200);
    // Touch a so b is the LRU when c is admitted at capacity.
    assert_eq!(a.frame("").unwrap().status, 200);
    assert_eq!(c.create(STREAMS[2].body).unwrap().status, 200);

    let resp = b.frame("").unwrap();
    assert_eq!(resp.status, 404, "evicted session must be gone: {}", resp.body);
    assert_eq!(a.frame("").unwrap().status, 200, "recently-used session survives");
    assert_eq!(c.frame("").unwrap().status, 200);

    // Close one, leave one open, double-close for the 404: every exit
    // path is on the books exactly once.
    assert_eq!(a.close().unwrap().status, 200);
    let sessions = sessions_metrics(addr);
    assert_eq!(sessions.get("created").unwrap().as_u64(), Some(3));
    assert_eq!(sessions.get("evicted").unwrap().as_u64(), Some(1));
    assert_eq!(sessions.get("closed").unwrap().as_u64(), Some(1));
    assert_eq!(sessions.get("open").unwrap().as_u64(), Some(1));
    assert_conserved(&sessions);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn session_routes_reject_bad_methods_and_bad_requests() {
    let (addr, handle, thread) = boot(ServeConfig::default());

    // Wrong methods on session routes are 405, not 404.
    assert_eq!(get(addr, "/session", TIMEOUT).unwrap().status, 405);
    assert_eq!(get(addr, "/session/s-1", TIMEOUT).unwrap().status, 405);
    assert_eq!(get(addr, "/session/s-1/frame", TIMEOUT).unwrap().status, 405);
    assert_eq!(post(addr, "/session/s-1", "", TIMEOUT).unwrap().status, 405);

    // Reasoned 4xx on malformed lifecycles.
    let resp = post(addr, "/session", r#"{"frames": 2}"#, TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("model"), "body: {}", resp.body);
    let resp = post(addr, "/session/s-99/frame", "", TIMEOUT).unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.body.contains("unknown or expired"), "body: {}", resp.body);

    // Nothing above opened a session; misses are counted, law holds.
    let sessions = sessions_metrics(addr);
    assert_eq!(sessions.get("created").unwrap().as_u64(), Some(0));
    assert!(sessions.get("misses").unwrap().as_u64().unwrap() >= 1);
    assert_conserved(&sessions);

    handle.shutdown();
    thread.join().unwrap();
}
