//! Trace-structure determinism: the span tree a run produces must not
//! depend on `--jobs`. Timestamps move, thread ids move, but the set of
//! spans, their names, and their nesting are a function of the work
//! alone — otherwise traces from parallel runs could not be compared
//! against each other or against the serial reference.
//!
//! All tests share the process-global collector, so they serialize on a
//! file-local lock and drain the ring before every capture.

use diffy::core::accelerator::{EvalOptions, SchemeChoice};
use diffy::core::parallel::Jobs;
use diffy::core::runner::{sweep_par, SweepCache, SweepJob, WorkloadOptions};
use diffy::core::trace::{Collector, TraceLog};
use diffy::encoding::StorageScheme;
use diffy::models::CiModel;
use diffy::sim::Architecture;
use std::sync::Mutex;

/// Serializes tests touching the global collector (one per process, but
/// the test harness runs tests in this file on multiple threads).
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `jobs` through a fresh cache at `n` workers and captures the
/// resulting trace. The collector is drained before and after so each
/// capture stands alone.
fn capture(jobs: &[SweepJob], n: usize) -> TraceLog {
    let collector = Collector::global();
    collector.drain();
    collector.start();
    let _ = sweep_par(jobs, &WorkloadOptions::test_small(), Jobs::new(n), &SweepCache::new());
    collector.stop();
    collector.drain()
}

fn job(model: CiModel, arch: Architecture) -> SweepJob {
    let dataset = diffy::core::runner::datasets_for(model)[0];
    let scheme = SchemeChoice::Scheme(StorageScheme::delta_d(16));
    SweepJob { model, dataset, sample: 0, eval: EvalOptions::new(arch, scheme) }
}

#[test]
fn single_grid_point_tree_is_identical_at_any_job_count() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let jobs = vec![job(CiModel::Ircnn, Architecture::Diffy)];

    let reference = capture(&jobs, 1);
    assert_eq!(reference.dropped, 0, "capture must not overflow the ring");
    let tree = reference.canonical_tree();
    // The one job must carry the full stage pipeline.
    for name in
        ["job", "evaluate_network", "weight_gen", "trace_synthesis", "tile_sim", "memsys_model"]
    {
        assert!(tree.contains(name), "missing {name:?} in tree:\n{tree}");
    }

    for n in [2usize, 8] {
        let log = capture(&jobs, n);
        assert_eq!(
            log.canonical_tree(),
            tree,
            "span tree changed between jobs=1 and jobs={n}"
        );
    }
}

#[test]
fn disjoint_jobs_produce_the_same_tree_serial_and_parallel() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Distinct models => distinct cache keys => no races over who builds
    // a shared artifact; the whole tree must match, not just counts.
    let jobs = vec![
        job(CiModel::Ircnn, Architecture::Diffy),
        job(CiModel::DnCnn, Architecture::Vaa),
    ];

    let serial = capture(&jobs, 1).canonical_tree();
    for n in [2usize, 4] {
        assert_eq!(
            capture(&jobs, n).canonical_tree(),
            serial,
            "disjoint jobs must trace identically at jobs={n}"
        );
    }
}

#[test]
fn shared_key_jobs_conserve_span_counts() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Three architectures over one (model, dataset): the trace and the
    // weights are built exactly once (compute-once cache) and hit twice,
    // whichever worker gets there first. The *placement* of the build
    // spans races under parallelism, but the multiset of span names is
    // an invariant of the work.
    let jobs = vec![
        job(CiModel::Ircnn, Architecture::Vaa),
        job(CiModel::Ircnn, Architecture::Pra),
        job(CiModel::Ircnn, Architecture::Diffy),
    ];

    let serial = capture(&jobs, 1);
    let counts = serial.name_counts();
    assert_eq!(counts.get("weight_gen"), Some(&1), "counts: {counts:?}");
    assert_eq!(counts.get("trace_synthesis"), Some(&1), "counts: {counts:?}");
    assert_eq!(counts.get("job"), Some(&3), "counts: {counts:?}");
    // Two jobs find the weights and the trace already built; exact
    // term-plane hit counts depend on layer count, so just require some.
    assert!(counts.get("cache_hit").copied().unwrap_or(0) >= 4, "counts: {counts:?}");

    for n in [2usize, 8] {
        assert_eq!(
            capture(&jobs, n).name_counts(),
            counts,
            "span-name multiset changed at jobs={n}"
        );
    }
}
