# Convenience entrypoints. Everything here is plain cargo underneath;
# the fuzz targets exist so "reproduce what CI ran" is one command.

CARGO ?= cargo
FUZZ_ITERS ?= 20000
FUZZ_SEED ?= 0xd1ff

.PHONY: build test fuzz fuzz-smoke clippy

build:
	$(CARGO) build --release

test:
	$(CARGO) build --release && $(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# The bounded pass CI runs: conformance + determinism suites, then every
# driver at a fixed budget. Failing inputs land in fuzz_failures/ next to
# a ready-to-paste regression test on stderr.
fuzz-smoke:
	$(CARGO) test -p diffy-fuzz --release
	$(CARGO) run -p diffy-fuzz --release --bin fuzz -- \
		all --iters $(FUZZ_ITERS) --seed $(FUZZ_SEED) --failures-dir fuzz_failures

# A longer exploratory run. Override FUZZ_SEED to explore a different
# part of the input space; every case is reproducible from the printed
# (target, seed, case) triple.
fuzz:
	$(CARGO) run -p diffy-fuzz --release --bin fuzz -- \
		all --iters 200000 --seed $(FUZZ_SEED) --failures-dir fuzz_failures
