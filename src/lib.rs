//! # Diffy — a Déjà vu-Free Differential DNN Accelerator (reproduction)
//!
//! Facade crate re-exporting the full Diffy reproduction stack. See the
//! individual crates for details:
//!
//! * [`tensor`] — fixed-point tensors and reference convolution.
//! * [`imaging`] — synthetic computational-imaging datasets.
//! * [`models`] — CI-DNN/classification model zoo and inference engine.
//! * [`encoding`] — Booth terms, deltas, precisions, storage schemes.
//! * [`memsys`] — on-/off-chip memory models and traffic accounting.
//! * [`sim`] — VAA / PRA / Diffy / SCNN cycle models.
//! * [`energy`] — analytical power and area models.
//! * [`core`] — differential convolution and the experiment runner.
//! * [`serve`] — the evaluation stack as an HTTP service.


#![warn(missing_docs)]

pub use diffy_core as core;
pub use diffy_encoding as encoding;
pub use diffy_energy as energy;
pub use diffy_imaging as imaging;
pub use diffy_memsys as memsys;
pub use diffy_models as models;
pub use diffy_serve as serve;
pub use diffy_sim as sim;
pub use diffy_tensor as tensor;
