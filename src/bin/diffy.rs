//! `diffy` — command-line front end to the reproduction.
//!
//! ```text
//! diffy compare  <model> [--res N] [--scheme S] [--memory NODE]
//! diffy sweep    <model> [--res N]        # tiles x memory FPS grid at HD
//! diffy stats    <model> [--res N]        # per-layer value statistics
//! diffy schemes  <model> [--res N]        # storage-scheme footprints
//! diffy models                            # Table I summary
//! diffy experiments                       # table/figure -> bench target map
//! ```
//!
//! Everything is seeded and offline; models and datasets are the
//! synthetic stand-ins described in DESIGN.md.

use diffy::core::accelerator::{evaluate_network_batch, EvalOptions, SchemeChoice};
use diffy::core::experiment::ExperimentId;
use diffy::core::parallel::Jobs;
use diffy::core::runner::{SweepCache, TraceBundle, WorkloadOptions, HD_PIXELS};
use diffy::core::scaling::{fig18_memory_ladder, FIG18_TILES};
use diffy::core::summary::{fmt_bytes, TextTable};
use diffy::encoding::delta::delta_rows_wrapping;
use diffy::encoding::terms::stats_of_acts;
use diffy::encoding::StorageScheme;
use diffy::imaging::datasets::DatasetId;
use diffy::memsys::{MemoryNode, MemorySystem};
use diffy::models::CiModel;
use diffy::sim::{AcceleratorConfig, Architecture};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    // --trace-out applies to every command: capture spans across the run
    // and write them as Chrome trace-event JSON on exit. `serve` also
    // exposes the live capture at GET /trace.
    let trace_out = match parse_flag(rest, "--trace-out") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if trace_out.is_some() {
        diffy::core::trace::Collector::global().start();
    }
    let result = match cmd.as_str() {
        "compare" => cmd_compare(rest),
        "sweep" => cmd_sweep(rest),
        "stats" => cmd_stats(rest),
        "schemes" => cmd_schemes(rest),
        "models" => cmd_models(),
        "report" => cmd_report(rest),
        "experiments" => cmd_experiments(),
        "serve" => cmd_serve(rest),
        "precompute" => cmd_precompute(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    // Write the trace even when the command failed — a partial trace of
    // a failed run is exactly what one wants to look at.
    let trace_result = match trace_out {
        Some(path) => write_trace(&path),
        None => Ok(()),
    };
    match result.and(trace_result) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Drains the global span collector and writes Chrome trace-event JSON.
fn write_trace(path: &str) -> Result<(), String> {
    let log = diffy::core::trace::Collector::global().drain();
    let doc = log.to_chrome_json().to_json();
    std::fs::write(path, doc).map_err(|e| format!("cannot write trace to {path}: {e}"))?;
    eprintln!("trace: {} events ({} dropped) -> {path}", log.spans.len(), log.dropped);
    Ok(())
}

const USAGE: &str = "usage: diffy <command> [options]

commands:
  compare <model>   VAA/PRA/Diffy cycles, HD FPS and traffic
  sweep <model>     tiles x memory HD frame-rate grid (Fig. 18 style)
  stats <model>     per-layer term statistics (raw vs delta)
  schemes <model>   storage-scheme footprints on the model's imaps
  models            Table I summary of the CI-DNN zoo
  report            Markdown workload report (--res, --seed apply)
  experiments       map of paper tables/figures to bench targets
  serve             run the evaluation service (POST /evaluate, GET /metrics)
  precompute        materialize evaluation artifacts for a grid of requests
                    into --out DIR (resumable: existing artifacts are skipped)

options:
  --res N           trace resolution (default 64)
  --scheme S        NoCompression | Profiled | RawD16 | DeltaD16 (default DeltaD16)
  --memory NODE     e.g. DDR4-3200, HBM2 (default DDR4-3200)
  --seed N          workload seed (default 1)
  --jobs N          worker threads for compare/sweep/report/serve (default:
                    all cores); results are bit-identical at any job count
  --trace-out FILE  record spans across the run and write a Chrome
                    trace-event JSON file (open in chrome://tracing)

serve options:
  --addr HOST:PORT  bind address (default 127.0.0.1:7878; port 0 = ephemeral)
  --shards N        run N server instances behind a consistent-hash router
                    bound at --addr, each owning a cache partition keyed by
                    trace key, >= 1 (default 1 = no router); instances bind
                    ephemeral loopback ports, printed at startup
  --queue-depth N   admission-queue capacity, >= 1 (default 32); full -> 503
  --deadline-ms N   per-request deadline budget, >= 1 (default 30000)
  --max-requests-per-conn N
                    close a keep-alive connection after N responses,
                    >= 1 (default 1000)
  --idle-timeout-ms N
                    close a keep-alive connection idle for N ms between
                    requests, >= 1 (default 5000)
  --max-sessions N  streaming sessions held at once, >= 1 (default 256);
                    admitting one past the bound evicts the LRU session
  --session-idle-ms N
                    expire a streaming session with no frame request for
                    N ms, >= 1 (default 60000)
  --artifact-dir DIR
                    attach DIR as the cache's disk tier: requests read
                    through precomputed artifacts and write results back;
                    a non-writable DIR fails startup
  --warmup          with --artifact-dir, load every valid artifact into
                    memory before serving (hot keys are sub-ms immediately)
  --trace-out FILE  also serves the live capture at GET /trace; the file is
                    written when the server drains

precompute options:
  --out DIR         artifact directory to fill (required; created if absent)
  --models LIST     comma-separated models, or `all` (default all)
  --datasets LIST   comma-separated datasets (default: each model's own set)
  --archs LIST      comma-separated architectures (default Diffy)
  --schemes LIST    comma-separated schemes (default DeltaD16)
  --samples N       sample indices 0..N per dataset (default 1)
  --res/--seed/--memory/--jobs as above; defaults match the serve protocol's

models: DnCNN, FFDNet, IRCNN, JointNet, VDSR";

fn parse_flag(rest: &[String], flag: &str) -> Result<Option<String>, String> {
    match rest.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match rest.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("flag {flag} needs a value")),
        },
    }
}

fn parse_model(rest: &[String]) -> Result<CiModel, String> {
    let name = rest
        .iter()
        .find(|a| !a.starts_with("--") && CiModel::ALL.iter().any(|m| m.name().eq_ignore_ascii_case(a)))
        .ok_or_else(|| "missing or unknown model (DnCNN/FFDNet/IRCNN/JointNet/VDSR)".to_string())?;
    Ok(CiModel::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
        .expect("checked above"))
}

fn parse_opts(rest: &[String]) -> Result<WorkloadOptions, String> {
    let resolution = match parse_flag(rest, "--res")? {
        Some(v) => v.parse().map_err(|_| format!("bad --res {v}"))?,
        None => 64,
    };
    let seed = match parse_flag(rest, "--seed")? {
        Some(v) => v.parse().map_err(|_| format!("bad --seed {v}"))?,
        None => 1,
    };
    Ok(WorkloadOptions { resolution, samples_per_dataset: 1, seed })
}

fn parse_jobs(rest: &[String]) -> Result<Jobs, String> {
    match parse_flag(rest, "--jobs")? {
        Some(v) => v.parse().map_err(|e| format!("bad --jobs: {e}")),
        None => Ok(Jobs::available()),
    }
}

fn parse_scheme(rest: &[String]) -> Result<SchemeChoice, String> {
    Ok(match parse_flag(rest, "--scheme")?.as_deref() {
        None | Some("DeltaD16") => SchemeChoice::Scheme(StorageScheme::delta_d(16)),
        Some("NoCompression") => SchemeChoice::Scheme(StorageScheme::NoCompression),
        Some("Profiled") => SchemeChoice::Profiled { quantile: 0.999 },
        Some("RawD16") => SchemeChoice::Scheme(StorageScheme::raw_d(16)),
        Some("Ideal") => SchemeChoice::Ideal,
        Some(other) => return Err(format!("unknown scheme {other}")),
    })
}

fn parse_memory(rest: &[String]) -> Result<MemorySystem, String> {
    let node = match parse_flag(rest, "--memory")?.as_deref() {
        None | Some("DDR4-3200") => MemoryNode::Ddr4_3200,
        Some("DDR3-1600") => MemoryNode::Ddr3_1600,
        Some("LPDDR3-1600") => MemoryNode::Lpddr3_1600,
        Some("LPDDR3E-2133") => MemoryNode::Lpddr3e2133,
        Some("LPDDR4-3200") => MemoryNode::Lpddr4_3200,
        Some("LPDDR4X-3733") => MemoryNode::Lpddr4x3733,
        Some("LPDDR4X-4267") => MemoryNode::Lpddr4x4267,
        Some("HBM2") => MemoryNode::Hbm2,
        Some("HBM3") => MemoryNode::Hbm3,
        Some(other) => return Err(format!("unknown memory node {other}")),
    };
    Ok(MemorySystem::single(node))
}

fn trace(model: CiModel, opts: &WorkloadOptions) -> std::sync::Arc<TraceBundle> {
    SweepCache::global().bundle(model, DatasetId::Hd33, 0, opts)
}

fn cmd_compare(rest: &[String]) -> Result<(), String> {
    let model = parse_model(rest)?;
    let opts = parse_opts(rest)?;
    let scheme = parse_scheme(rest)?;
    let memory = parse_memory(rest)?;
    let jobs = parse_jobs(rest)?;
    println!("{model} at {0}x{0} (HD projections scale by pixels)\n", opts.resolution);
    let bundle = trace(model, &opts);
    let mut table = TextTable::new(vec![
        "architecture",
        "cycles",
        "speedup",
        "HD FPS",
        "stall %",
        "traffic",
    ]);
    let archs = [Architecture::Vaa, Architecture::Pra, Architecture::Diffy];
    let eval_jobs: Vec<_> = archs
        .iter()
        .map(|&arch| {
            (&bundle.trace, EvalOptions { arch, cfg: AcceleratorConfig::table4(), scheme, memory })
        })
        .collect();
    let results = evaluate_network_batch(&eval_jobs, jobs);
    let base = results[0].total_cycles();
    for (arch, r) in archs.iter().zip(&results) {
        table.row(vec![
            arch.name().to_string(),
            r.total_cycles().to_string(),
            format!("{:.2}x", base as f64 / r.total_cycles() as f64),
            format!("{:.2}", bundle.hd_fps(r)),
            format!("{:.1}%", r.stall_fraction() * 100.0),
            fmt_bytes(r.total_traffic_bytes()),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_sweep(rest: &[String]) -> Result<(), String> {
    let model = parse_model(rest)?;
    let opts = parse_opts(rest)?;
    let scheme = parse_scheme(rest)?;
    let jobs = parse_jobs(rest)?;
    println!("{model}: HD FPS, Diffy + {}\n", scheme.label());
    let bundle = trace(model, &opts);
    let ladder = fig18_memory_ladder();
    let mut header = vec!["tiles".to_string()];
    header.extend(ladder.iter().map(|m| m.to_string()));
    let mut table = TextTable::new(header);
    // The whole tiles × memory grid as one deterministic fan-out: cell
    // order is row-major, so the table reads back in job order.
    let eval_jobs: Vec<_> = FIG18_TILES
        .iter()
        .flat_map(|&tiles| {
            ladder.iter().map(move |&mem| EvalOptions {
                arch: Architecture::Diffy,
                cfg: AcceleratorConfig::table4().with_tiles(tiles),
                scheme,
                memory: mem,
            })
        })
        .map(|eval| (&bundle.trace, eval))
        .collect();
    let results = evaluate_network_batch(&eval_jobs, jobs);
    for (&tiles, row_results) in FIG18_TILES.iter().zip(results.chunks_exact(ladder.len())) {
        let mut row = vec![tiles.to_string()];
        for r in row_results {
            let fps = r.fps_scaled(bundle.source_pixels, HD_PIXELS);
            row.push(format!("{fps:.1}{}", if fps >= 30.0 { "*" } else { "" }));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!("(* = 30+ FPS)");
    Ok(())
}

fn cmd_stats(rest: &[String]) -> Result<(), String> {
    let model = parse_model(rest)?;
    let opts = parse_opts(rest)?;
    println!("{model}: per-layer value statistics\n");
    let bundle = trace(model, &opts);
    let mut table = TextTable::new(vec![
        "layer", "shape", "raw terms", "delta terms", "ratio", "sparsity",
    ]);
    for l in &bundle.trace.layers {
        let raw = stats_of_acts(&l.imap);
        let delta = stats_of_acts(&delta_rows_wrapping(&l.imap, l.geom.stride));
        table.row(vec![
            l.name.clone(),
            l.imap.shape().to_string(),
            format!("{:.2}", raw.mean_terms()),
            format!("{:.2}", delta.mean_terms()),
            format!("{:.2}x", raw.mean_terms() / delta.mean_terms().max(1e-9)),
            format!("{:.1}%", raw.sparsity() * 100.0),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_schemes(rest: &[String]) -> Result<(), String> {
    let model = parse_model(rest)?;
    let opts = parse_opts(rest)?;
    println!("{model}: imap footprint per storage scheme\n");
    let bundle = trace(model, &opts);
    let schemes = [
        StorageScheme::NoCompression,
        StorageScheme::RleZ,
        StorageScheme::Rle,
        StorageScheme::raw_d(16),
        StorageScheme::delta_d(16),
    ];
    let mut table = TextTable::new(vec!["scheme", "total imaps", "vs 16b"]);
    let mut base = 0u64;
    let mut totals = vec![0u64; schemes.len()];
    for l in &bundle.trace.layers {
        base += l.imap.len() as u64 * 2;
        for (slot, s) in totals.iter_mut().zip(schemes) {
            *slot += diffy::memsys::traffic::encoded_bytes(&l.imap, s);
        }
    }
    for (s, &t) in schemes.iter().zip(totals.iter()) {
        table.row(vec![
            s.to_string(),
            fmt_bytes(t),
            format!("{:.1}%", 100.0 * t as f64 / base as f64),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_report(rest: &[String]) -> Result<(), String> {
    let workload = parse_opts(rest)?;
    let jobs = parse_jobs(rest)?;
    let opts = diffy::core::reporting::ReportOptions { workload, models: [true; 5], jobs };
    print!("{}", diffy::core::reporting::render_report(&opts));
    Ok(())
}

fn cmd_models() -> Result<(), String> {
    let mut table = TextTable::new(vec!["model", "conv", "relu", "max fmap/layer", "weights"]);
    for m in CiModel::ALL {
        let s = m.spec();
        table.row(vec![
            m.name().to_string(),
            s.conv_layers().to_string(),
            s.relu_layers().to_string(),
            fmt_bytes(s.max_total_filter_bytes(64, 64) as u64),
            fmt_bytes(s.total_weight_bytes(64, 64) as u64),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let mut config = diffy::serve::ServeConfig { handle_signals: true, ..Default::default() };
    if let Some(addr) = parse_flag(rest, "--addr")? {
        config.addr = addr;
    }
    config.workers = parse_jobs(rest)?;
    if let Some(v) = parse_flag(rest, "--queue-depth")? {
        config.queue_depth = v
            .parse()
            .ok()
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| format!("bad --queue-depth {v} (want an integer >= 1)"))?;
    }
    if let Some(v) = parse_flag(rest, "--deadline-ms")? {
        config.deadline_ms = v
            .parse()
            .ok()
            .filter(|&n: &u64| n >= 1)
            .ok_or_else(|| format!("bad --deadline-ms {v} (want an integer >= 1)"))?;
    }
    if let Some(v) = parse_flag(rest, "--max-requests-per-conn")? {
        config.max_requests_per_conn = v
            .parse()
            .ok()
            .filter(|&n: &u32| n >= 1)
            .ok_or_else(|| format!("bad --max-requests-per-conn {v} (want an integer >= 1)"))?;
    }
    if let Some(v) = parse_flag(rest, "--idle-timeout-ms")? {
        config.idle_timeout_ms = v
            .parse()
            .ok()
            .filter(|&n: &u64| n >= 1)
            .ok_or_else(|| format!("bad --idle-timeout-ms {v} (want an integer >= 1)"))?;
    }
    if let Some(v) = parse_flag(rest, "--max-sessions")? {
        config.max_sessions = v
            .parse()
            .ok()
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| format!("bad --max-sessions {v} (want an integer >= 1)"))?;
    }
    if let Some(v) = parse_flag(rest, "--session-idle-ms")? {
        config.session_idle_ms = v
            .parse()
            .ok()
            .filter(|&n: &u64| n >= 1)
            .ok_or_else(|| format!("bad --session-idle-ms {v} (want an integer >= 1)"))?;
    }
    config.artifact_dir = parse_flag(rest, "--artifact-dir")?;
    config.warmup = rest.iter().any(|a| a == "--warmup");
    if config.warmup && config.artifact_dir.is_none() {
        return Err("--warmup requires --artifact-dir".to_string());
    }
    config.trace_capture = parse_flag(rest, "--trace-out")?.is_some();
    let shards: usize = match parse_flag(rest, "--shards")? {
        None => 1,
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| format!("bad --shards {v} (want an integer >= 1)"))?,
    };
    let endpoints = "POST /evaluate | POST /evaluate/batch | POST /session | POST /session/{id}/frame | DELETE /session/{id} | GET /metrics | GET /trace | GET /healthz | POST /shutdown";
    if shards > 1 {
        let sharded = diffy::serve::ShardedServer::bind(diffy::serve::ShardedConfig {
            addr: config.addr.clone(),
            shards,
            base: config,
            ..Default::default()
        })
        .map_err(|e| format!("bind failed: {e}"))?;
        println!(
            "diffy-serve router on http://{} fanning out to {shards} shards",
            sharded.local_addr()
        );
        for (i, addr) in sharded.shard_addrs().iter().enumerate() {
            println!("  shard {i}: http://{addr}");
        }
        println!("{endpoints}");
        return sharded.run().map_err(|e| format!("server failed: {e}"));
    }
    let server = diffy::serve::Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("diffy-serve listening on http://{}", server.local_addr());
    println!("{endpoints}");
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// Splits a comma-separated list flag, resolving each name through
/// `lookup`; `None` means the flag was absent.
fn parse_list<T>(
    rest: &[String],
    flag: &str,
    lookup: impl Fn(&str) -> Result<T, String>,
) -> Result<Option<Vec<T>>, String> {
    match parse_flag(rest, flag)? {
        None => Ok(None),
        Some(list) => list
            .split(',')
            .map(|name| lookup(name.trim()))
            .collect::<Result<Vec<T>, String>>()
            .map(Some),
    }
}

fn cmd_precompute(rest: &[String]) -> Result<(), String> {
    use diffy::core::artifact::DiskTier;
    use diffy::core::runner::datasets_for;

    let out = parse_flag(rest, "--out")?.ok_or("precompute requires --out DIR")?;
    let jobs = parse_jobs(rest)?;
    let opts = parse_opts(rest)?;
    let memory = parse_memory(rest)?;
    let samples: usize = match parse_flag(rest, "--samples")? {
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| format!("bad --samples {v} (want an integer >= 1)"))?,
        None => 1,
    };
    let models = match parse_flag(rest, "--models")?.as_deref() {
        None | Some("all") => CiModel::ALL.to_vec(),
        Some(_) => parse_list(rest, "--models", |name| {
            CiModel::ALL
                .into_iter()
                .find(|m| m.name().eq_ignore_ascii_case(name))
                .ok_or_else(|| format!("unknown model `{name}`"))
        })?
        .expect("flag present"),
    };
    let datasets = parse_list(rest, "--datasets", |name| {
        DatasetId::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown dataset `{name}`"))
    })?;
    let archs = parse_list(rest, "--archs", |name| {
        [Architecture::Vaa, Architecture::Pra, Architecture::Diffy, Architecture::Scnn]
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown arch `{name}` (VAA/PRA/Diffy/SCNN)"))
    })?
    .unwrap_or_else(|| vec![Architecture::Diffy]);
    let schemes = parse_list(rest, "--schemes", |name| {
        parse_scheme(&["--scheme".to_string(), name.to_string()])
    })?
    .unwrap_or_else(|| vec![SchemeChoice::Scheme(StorageScheme::delta_d(16))]);

    // Enumerate the grid; resumability = skip keys whose artifact file
    // already exists (`contains` is an existence probe — a corrupt file
    // still heals on its first serve-side read-through).
    let tier = DiskTier::open(&out)
        .map_err(|e| format!("artifact dir `{out}` is not usable: {e}"))?;
    let mut points = Vec::new();
    let mut skipped = 0usize;
    for &model in &models {
        let model_datasets = match &datasets {
            Some(list) => list.clone(),
            None => datasets_for(model),
        };
        for dataset in model_datasets {
            for sample in 0..samples.min(dataset.samples()) {
                for &arch in &archs {
                    for &scheme in &schemes {
                        let eval = EvalOptions {
                            arch,
                            cfg: AcceleratorConfig::table4(),
                            scheme,
                            memory,
                        };
                        let key = diffy::core::artifact::result_key(
                            model, dataset, sample, &opts, &eval,
                        );
                        if tier.contains(&key) {
                            skipped += 1;
                        } else {
                            points.push((model, dataset, sample, eval));
                        }
                    }
                }
            }
        }
    }

    // One shared cache + tier for the whole run: points sharing a trace
    // build it once, and every computed result is written through
    // atomically (safe alongside a live `serve` on the same directory).
    let cache = SweepCache::new().with_disk(tier);
    let todo = points.len();
    let tasks: Vec<_> = points
        .into_iter()
        .map(|(model, dataset, sample, eval)| {
            let cache = &cache;
            let opts = &opts;
            move || {
                cache.evaluate_keyed(model, dataset, sample, opts, &eval);
            }
        })
        .collect();
    diffy::core::parallel::run_jobs(tasks, jobs);

    let disk = cache.disk().expect("tier attached above").stats();
    println!(
        "precompute: {todo} computed, {skipped} already on disk, {} bytes written -> {out}",
        disk.bytes
    );
    Ok(())
}

fn cmd_experiments() -> Result<(), String> {
    let mut table = TextTable::new(vec!["paper artefact", "bench target"]);
    for e in ExperimentId::ALL {
        table.row(vec![
            e.paper_artefact().to_string(),
            format!("cargo bench -p diffy-bench --bench {}", e.bench_target()),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}
