//! Table VI: power breakdown per architecture and the derived energy
//! efficiency (speedup / power ratio), using the calibrated analytical
//! model and the measured workload speedups.

use diffy_bench::{all_ci_bundles, banner, bench_options, geomean};
use diffy_core::accelerator::{EvalOptions, SchemeChoice};
use diffy_core::summary::TextTable;
use diffy_encoding::StorageScheme;
use diffy_energy::components::{power_breakdown, REF_AM_BYTES, REF_WM_BYTES};
use diffy_energy::offchip_energy_joules;
use diffy_sim::{AcceleratorConfig, Architecture};

fn main() {
    let opts = bench_options();
    banner("Table VI", "power breakdown and energy efficiency", &opts);
    let cfg = AcceleratorConfig::table4();

    // Measured speedups under DeltaD16 (the configuration Table VI pairs
    // with), plus traffic for the off-chip energy note.
    let mut pra_speedups = Vec::new();
    let mut diffy_speedups = Vec::new();
    let mut traffic_none = 0u64;
    let mut traffic_delta = 0u64;
    for (_, bundles) in all_ci_bundles(&opts) {
        let scheme = SchemeChoice::Scheme(StorageScheme::delta_d(16));
        let vaa: u64 = bundles
            .iter()
            .map(|b| {
                b.evaluate(&EvalOptions::new(
                    Architecture::Vaa,
                    SchemeChoice::Scheme(StorageScheme::NoCompression),
                ))
                .total_cycles()
            })
            .sum();
        let pra: u64 = bundles
            .iter()
            .map(|b| b.evaluate(&EvalOptions::new(Architecture::Pra, scheme)).total_cycles())
            .sum();
        let diffy: u64 = bundles
            .iter()
            .map(|b| {
                let r = b.evaluate(&EvalOptions::new(Architecture::Diffy, scheme));
                traffic_delta += r.activation_traffic_bytes();
                r.total_cycles()
            })
            .sum();
        for b in &bundles {
            let r = b.evaluate(&EvalOptions::new(
                Architecture::Vaa,
                SchemeChoice::Scheme(StorageScheme::NoCompression),
            ));
            traffic_none += r.activation_traffic_bytes();
        }
        pra_speedups.push(vaa as f64 / pra as f64);
        diffy_speedups.push(vaa as f64 / diffy as f64);
    }
    let pra_speedup = geomean(&pra_speedups);
    let diffy_speedup = geomean(&diffy_speedups);

    let breakdowns = [
        ("Diffy", power_breakdown(Architecture::Diffy, &cfg, 512 << 10, REF_WM_BYTES)),
        ("PRA", power_breakdown(Architecture::Pra, &cfg, REF_AM_BYTES, REF_WM_BYTES)),
        ("VAA", power_breakdown(Architecture::Vaa, &cfg, REF_AM_BYTES, REF_WM_BYTES)),
    ];
    let mut table = TextTable::new(vec!["component", "Diffy [W]", "PRA [W]", "VAA [W]"]);
    for i in 0..7 {
        let label = breakdowns[0].1.rows()[i].0;
        table.row(vec![
            label.to_string(),
            format!("{:.2}", breakdowns[0].1.rows()[i].1),
            format!("{:.2}", breakdowns[1].1.rows()[i].1),
            format!("{:.2}", breakdowns[2].1.rows()[i].1),
        ]);
    }
    let totals: Vec<f64> = breakdowns.iter().map(|(_, b)| b.total()).collect();
    table.row(vec![
        "Total".to_string(),
        format!("{:.2}", totals[0]),
        format!("{:.2}", totals[1]),
        format!("{:.2}", totals[2]),
    ]);
    table.row(vec![
        "Normalized".to_string(),
        format!("{:.2}x", totals[0] / totals[2]),
        format!("{:.2}x", totals[1] / totals[2]),
        "1.00x".to_string(),
    ]);
    table.row(vec![
        "Energy efficiency".to_string(),
        format!("{:.2}x", diffy_speedup / (totals[0] / totals[2])),
        format!("{:.2}x", pra_speedup / (totals[1] / totals[2])),
        "1.00x".to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "measured speedups used: Diffy {diffy_speedup:.2}x, PRA {pra_speedup:.2}x (DeltaD16)."
    );
    println!(
        "off-chip energy (excluded above, as in the paper): {:.3} J vs {:.3} J\n\
         per workload for NoCompression vs DeltaD16 — delta compression\n\
         also cuts DRAM energy by {:.2}x.",
        offchip_energy_joules(traffic_none),
        offchip_energy_joules(traffic_delta),
        traffic_none as f64 / traffic_delta.max(1) as f64,
    );
    println!("\npaper: Diffy 1.83x and PRA 1.34x more energy efficient than VAA");
    println!("       (on-chip only), at ~3.9x/3.7x the power.");
}
