//! Table IV: the VAA, PRA and Diffy configurations evaluated.

use diffy_core::summary::{fmt_bytes, TextTable};
use diffy_sim::{AcceleratorConfig, Architecture};

fn main() {
    println!("== Table IV: accelerator configurations ==\n");
    let cfg = AcceleratorConfig::table4();
    let mut table = TextTable::new(vec![
        "architecture",
        "tiles",
        "filters/tile",
        "lanes/filter",
        "windows",
        "peak eq. MACs/cycle",
        "freq",
        "AM",
        "WM",
    ]);
    for (arch, windows, am) in [
        (Architecture::Vaa, 1usize, 1u64 << 20),
        (Architecture::Pra, cfg.windows, 1 << 20),
        // Diffy provisions a halved AM thanks to DeltaD16 (Table V).
        (Architecture::Diffy, cfg.windows, 512 << 10),
    ] {
        table.row(vec![
            arch.name().to_string(),
            cfg.tiles.to_string(),
            cfg.filters_per_tile.to_string(),
            cfg.lanes.to_string(),
            windows.to_string(),
            cfg.peak_macs_per_cycle().to_string(),
            format!("{} GHz", cfg.frequency_ghz),
            fmt_bytes(am),
            fmt_bytes(512 << 10),
        ]);
    }
    println!("{}", table.render());
    println!("all three architectures are normalized to the same 1K equivalent");
    println!("16x16b MACs/cycle peak (4 tiles x 16 filters x 16 lanes) at 1 GHz.");
}
