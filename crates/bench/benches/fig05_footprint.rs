//! Fig. 5: off-chip footprint of all imaps under six storage schemes,
//! normalized to fixed 16-bit storage (NoCompression).

use diffy_bench::{all_ci_bundles, banner, bench_options};
use diffy_core::summary::TextTable;
use diffy_encoding::precision::profiled_precision;
use diffy_encoding::StorageScheme;
use diffy_memsys::traffic::tensor_signedness;
use diffy_tensor::stats::MagnitudeHistogram;
use diffy_tensor::Tensor3;

fn encoded_bits(t: &Tensor3<i16>, scheme: StorageScheme) -> u64 {
    scheme.tensor_bits(t, tensor_signedness(t))
}

fn profiled_scheme(t: &Tensor3<i16>) -> StorageScheme {
    let mut h = MagnitudeHistogram::new();
    h.extend_from_slice(t.as_slice());
    StorageScheme::Profiled { bits: profiled_precision(&h, tensor_signedness(t), 0.999) }
}

fn main() {
    let opts = bench_options();
    banner("Fig. 5", "imap off-chip footprint per storage scheme", &opts);

    let labels = ["RLEz", "RLE", "Profiled", "RawD16", "DeltaD16"];
    let mut table = TextTable::new(vec![
        "network", "RLEz", "RLE", "Profiled", "RawD16", "DeltaD16",
    ]);
    for (model, bundles) in all_ci_bundles(&opts) {
        let mut baseline = 0u64;
        let mut totals = [0u64; 5];
        for b in &bundles {
            for l in &b.trace.layers {
                baseline += encoded_bits(&l.imap, StorageScheme::NoCompression);
                let schemes = [
                    StorageScheme::RleZ,
                    StorageScheme::Rle,
                    profiled_scheme(&l.imap),
                    StorageScheme::raw_d(16),
                    StorageScheme::delta_d(16),
                ];
                for (slot, scheme) in totals.iter_mut().zip(schemes) {
                    *slot += encoded_bits(&l.imap, scheme);
                }
            }
        }
        let mut row = vec![model.name().to_string()];
        for (&t, _) in totals.iter().zip(labels) {
            row.push(format!("{:.1}%", 100.0 * t as f64 / baseline as f64));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!("values are % of NoCompression (16 b/value); lower is better.");
    println!("paper: Profiled 47-61%, RawD16 9.7-38.6%, DeltaD16 8-30%;");
    println!("       RLEz/RLE help little except for sparse VDSR.");
}
