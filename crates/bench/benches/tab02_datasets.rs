//! Table II: the input datasets — the registry of procedural stand-ins
//! mirroring the original corpora's names, counts and resolutions.

use diffy_core::summary::TextTable;
use diffy_imaging::datasets::DatasetId;

fn main() {
    println!("== Table II: input datasets (procedural stand-ins) ==\n");
    let mut table = TextTable::new(vec!["dataset", "samples", "resolution range", "scene mix"]);
    for d in DatasetId::ALL {
        let n = d.samples();
        let (h0, w0) = d.resolution(0);
        let (h1, w1) = d.resolution(n - 1);
        let range = if (h0, w0) == (h1, w1) {
            format!("{w0}x{h0}")
        } else {
            format!("{}x{} - {}x{}", w0.min(w1), h0.min(h1), w0.max(w1), h0.max(h1))
        };
        let kinds: Vec<&str> = (0..3.min(n))
            .map(|i| match d.scene_kind(i) {
                diffy_imaging::scenes::SceneKind::Nature => "nature",
                diffy_imaging::scenes::SceneKind::City => "city",
                diffy_imaging::scenes::SceneKind::Texture => "texture",
            })
            .collect();
        table.row(vec![d.name().to_string(), n.to_string(), range, kinds.join("/")]);
    }
    println!("{}", table.render());
    println!("sample counts and resolutions mirror the paper's Table II; pixel");
    println!("content is generated procedurally (DESIGN.md section 2.2).");
}
