//! Fig. 15: Diffy performance (normalized to VAA) across off-chip memory
//! technologies, for NoCompression / Profiled / DeltaD16 — showing that
//! delta compression sustains near-peak performance even on low-end
//! memory nodes.

use diffy_bench::{all_ci_bundles, banner, bench_options};
use diffy_core::accelerator::{EvalOptions, SchemeChoice};
use diffy_core::summary::TextTable;
use diffy_encoding::StorageScheme;
use diffy_memsys::{MemoryNode, MemorySystem};
use diffy_sim::Architecture;

fn main() {
    let opts = bench_options();
    banner("Fig. 15", "Diffy speedup over VAA across memory nodes", &opts);

    let schemes: [(&str, SchemeChoice); 3] = [
        ("NoCompression", SchemeChoice::Scheme(StorageScheme::NoCompression)),
        ("Profiled", SchemeChoice::Profiled { quantile: 0.999 }),
        ("DeltaD16", SchemeChoice::Scheme(StorageScheme::delta_d(16))),
    ];

    for (model, bundles) in all_ci_bundles(&opts) {
        let vaa_cycles: u64 = bundles
            .iter()
            .map(|b| {
                b.evaluate(&EvalOptions::new(
                    Architecture::Vaa,
                    SchemeChoice::Scheme(StorageScheme::NoCompression),
                ))
                .total_cycles()
            })
            .sum();
        println!("{}:", model.name());
        let mut table =
            TextTable::new(vec!["memory node", "NoCompression", "Profiled", "DeltaD16"]);
        for node in MemoryNode::FIG15_SWEEP {
            let mut row = vec![node.name().to_string()];
            for (_, scheme) in schemes {
                let cycles: u64 = bundles
                    .iter()
                    .map(|b| {
                        let mut e = EvalOptions::new(Architecture::Diffy, scheme);
                        e.memory = MemorySystem::single(node);
                        b.evaluate(&e).total_cycles()
                    })
                    .sum();
                row.push(format!("{:.2}x", vaa_cycles as f64 / cycles as f64));
            }
            table.row(row);
        }
        println!("{}", table.render());
    }
    println!("paper: without compression all models need HBM2 to avoid slow-");
    println!("       down; DeltaD16 runs near-peak from LPDDR4-3200 upward,");
    println!("       and within 2% even on LPDDR3E-2133 (JointNet excepted).");
}
