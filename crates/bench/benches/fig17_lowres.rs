//! Fig. 17: absolute frame rate at low resolutions (0.0625–0.5 MP) on
//! the default 4-tile Diffy with DeltaD16 and DDR4-3200 — the paper's
//! "real-time at lower resolutions" result.

use diffy_bench::{all_ci_bundles, banner, bench_options};
use diffy_core::accelerator::{EvalOptions, SchemeChoice};
use diffy_core::scaling::{megapixels_to_pixels, FIG17_MEGAPIXELS};
use diffy_core::summary::TextTable;
use diffy_encoding::StorageScheme;
use diffy_sim::Architecture;

fn main() {
    let opts = bench_options();
    banner("Fig. 17", "Diffy FPS at low resolutions", &opts);

    let mut header = vec!["network".to_string()];
    header.extend(FIG17_MEGAPIXELS.iter().map(|mp| format!("{mp} MP")));
    let mut table = TextTable::new(header);
    let eval = EvalOptions::new(
        Architecture::Diffy,
        SchemeChoice::Scheme(StorageScheme::delta_d(16)),
    );

    for (model, bundles) in all_ci_bundles(&opts) {
        let mut row = vec![model.name().to_string()];
        for &mp in &FIG17_MEGAPIXELS {
            let target = megapixels_to_pixels(mp);
            let fps: f64 = bundles
                .iter()
                .map(|b| {
                    let r = b.evaluate(&eval);
                    r.fps_scaled(b.source_pixels, target)
                })
                .sum::<f64>()
                / bundles.len() as f64;
            row.push(format!("{fps:.0}"));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!("paper: real-time (30+ FPS) for all models up to 0.25 MP; DnCNN");
    println!("       reaches 19 FPS at 0.4 MP.");
}
