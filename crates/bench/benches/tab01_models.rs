//! Table I: the CI-DNNs studied — conv/ReLU layer counts and filter
//! sizes, computed from the model zoo specs.

use diffy_core::summary::{fmt_bytes, TextTable};
use diffy_models::CiModel;

fn main() {
    println!("== Table I: CI-DNNs studied ==\n");
    let mut table = TextTable::new(vec![
        "network",
        "conv layers",
        "relu layers",
        "max filter size",
        "max total filter size/layer",
        "total weights",
    ]);
    for model in CiModel::ALL {
        let spec = model.spec();
        // Filter sizes are resolution-independent; any valid size works.
        let (h, w) = (64, 64);
        table.row(vec![
            model.name().to_string(),
            spec.conv_layers().to_string(),
            spec.relu_layers().to_string(),
            fmt_bytes(spec.max_filter_bytes(h, w) as u64),
            fmt_bytes(spec.max_total_filter_bytes(h, w) as u64),
            fmt_bytes(spec.total_weight_bytes(h, w) as u64),
        ]);
    }
    println!("{}", table.render());
    println!("paper (Table I): conv layers 20/10/7/19/20, relu 19/9/6/16/19,");
    println!("max filter ~1.1 KB, max total per layer 72/162/72/144/72 KB.");
}
