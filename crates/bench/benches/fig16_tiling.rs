//! Fig. 16: sensitivity to the tiling configuration T_x — the number of
//! terms (weight × activation products) processed concurrently per
//! filter. Both VAA and Diffy are provisioned at x lanes per filter;
//! shrinking x removes cross-lane synchronization, closing the gap to
//! the Fig. 4 potential (paper: 7.1x at T16 becomes 11.9x at T1).
//! Ideal memory isolates the compute effect.

use diffy_bench::{all_ci_bundles, banner, bench_options, geomean};
use diffy_core::accelerator::{EvalOptions, SchemeChoice};
use diffy_core::summary::TextTable;
use diffy_sim::{AcceleratorConfig, Architecture};

fn main() {
    let mut opts = bench_options();
    opts.samples_per_dataset = opts.samples_per_dataset.min(1);
    banner("Fig. 16", "T_x tiling sensitivity (Diffy speedup over VAA)", &opts);

    let xs = [1usize, 2, 4, 8, 16];
    let mut header = vec!["network".to_string()];
    header.extend(xs.iter().map(|x| format!("T{x}")));
    let mut table = TextTable::new(header);
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); xs.len()];

    for (model, bundles) in all_ci_bundles(&opts) {
        let mut row = vec![model.name().to_string()];
        for (xi, &x) in xs.iter().enumerate() {
            let mut cfg = AcceleratorConfig::table4();
            cfg.lanes = x;
            cfg.terms_per_group = x;
            let mk = |arch| EvalOptions { arch, cfg, scheme: SchemeChoice::Ideal, memory: diffy_memsys::MemorySystem::ideal() };
            let vaa: u64 = bundles
                .iter()
                .map(|b| b.evaluate(&mk(Architecture::Vaa)).total_cycles())
                .sum();
            let diffy: u64 = bundles
                .iter()
                .map(|b| b.evaluate(&mk(Architecture::Diffy)).total_cycles())
                .sum();
            let speedup = vaa as f64 / diffy as f64;
            geo[xi].push(speedup);
            row.push(format!("{speedup:.2}x"));
        }
        table.row(row);
    }
    let mut row = vec!["geomean".to_string()];
    for g in &geo {
        row.push(format!("{:.2}x", geomean(g)));
    }
    table.row(row);
    println!("{}", table.render());
    println!("paper: average speedup grows from 7.1x (T16) to 11.9x (T1) as");
    println!("       cross-lane synchronization stalls disappear; VDSR remains");
    println!("       below potential due to its extreme sparsity.");
}
