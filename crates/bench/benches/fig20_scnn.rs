//! Fig. 20: Diffy vs SCNN on the CI-DNNs under four weight-sparsity
//! assumptions (0/50/75/90%, magnitude-pruned). Each sparsity level
//! re-traces the networks — pruning changes the activations too.

use diffy_bench::{banner, bench_options, geomean};
use diffy_core::accelerator::{EvalOptions, SchemeChoice};
use diffy_core::runner::datasets_for;
use diffy_core::summary::TextTable;
use diffy_models::{run_network, CiModel, NetworkWeights};
use diffy_sim::Architecture;
use diffy_tensor::Quantizer;

fn main() {
    let mut opts = bench_options();
    // 4 sparsity levels x 5 models: one sample per model, smaller traces.
    opts.samples_per_dataset = 1;
    opts.resolution = opts.resolution.min(64);
    banner("Fig. 20", "Diffy speedup over SCNN vs weight sparsity", &opts);

    let sparsities = [0.0, 0.5, 0.75, 0.9];
    let mut header = vec!["network".to_string()];
    header.extend(sparsities.iter().map(|s| format!("SCNN{}", (s * 100.0) as u32)));
    let mut table = TextTable::new(header);
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); sparsities.len()];

    for model in CiModel::ALL {
        let mut row = vec![model.name().to_string()];
        let dataset = datasets_for(model)[0];
        let img = dataset.sample_scaled(0, opts.resolution, opts.resolution);
        let input = model.prepare_input(&img, opts.seed);
        for (si, &sparsity) in sparsities.iter().enumerate() {
            let gen = model.weight_gen(opts.seed).with_weight_sparsity(sparsity);
            let weights = NetworkWeights::generate(&model.spec(), gen, Quantizer::default());
            let trace = run_network(&model.spec(), &weights, &input);
            let diffy = diffy_core::accelerator::evaluate_network(
                &trace,
                &EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal),
            );
            let scnn = diffy_core::accelerator::evaluate_network(
                &trace,
                &EvalOptions::new(Architecture::Scnn, SchemeChoice::Ideal),
            );
            let speedup = scnn.total_cycles() as f64 / diffy.total_cycles() as f64;
            geo[si].push(speedup);
            row.push(format!("{speedup:.2}x"));
        }
        table.row(row);
    }
    let mut row = vec!["geomean".to_string()];
    for g in &geo {
        row.push(format!("{:.2}x", geomean(g)));
    }
    table.row(row);
    println!("{}", table.render());
    println!("paper: Diffy is 5.4x/4.5x/2.4x/1.04x faster than SCNN at");
    println!("       0/50/75/90% weight sparsity — and 50% is already an");
    println!("       optimistic assumption for these per-pixel models.");
}
