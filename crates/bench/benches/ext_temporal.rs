//! Extension (paper §V): combining Diffy's spatial deltas with
//! CBInfer-style temporal (cross-frame) deltas on video. The paper:
//! "the two concepts could potentially be combined."
//!
//! A panning scene is denoised frame by frame; frame 2 is processed four
//! ways: spatially (Diffy), temporally only (Diffy-T), spatio-temporally
//! (Diffy-ST), and raw (PRA), with VAA as the baseline. Two content
//! settings bracket the design space: a slow pan (temporal correlation
//! dominates) and a fast pan with sensor noise (spatial correlation
//! matters more).
//!
//! A second section projects the streaming steady state to full HD
//! (1920×1080): per-frame cost of Diffy-ST against the retained previous
//! frame vs a full spatial re-evaluation, equality-gated on per-layer
//! effectual MACs (temporal processing is déjà vu-free — it may only
//! change *when* work happens, never *how much*). `DIFFY_BENCH_JSON`
//! writes the per-frame records and fps summary to disk.

use diffy_bench::{banner, bench_options, write_bench_json, BenchRecord};
use diffy_core::runner::HD_PIXELS;
use diffy_core::summary::TextTable;
use diffy_imaging::scenes::SceneKind;
use diffy_imaging::video::pan_sequence;
use diffy_models::{run_network, CiModel, NetworkWeights};
use diffy_sim::{
    temporal_network, term_serial_network, vaa_network, AcceleratorConfig, TemporalMode,
    ValueMode,
};
use diffy_tensor::Quantizer;

fn main() {
    let opts = bench_options();
    banner("Extension (paper §V)", "temporal + spatial differential processing", &opts);

    let model = CiModel::DnCnn;
    let weights =
        NetworkWeights::generate(&model.spec(), model.weight_gen(opts.seed), Quantizer::default());
    let cfg = AcceleratorConfig::table4();

    let mut table = TextTable::new(vec![
        "content", "PRA", "Diffy", "Diffy-T", "Diffy-ST", "best",
    ]);
    let cases = [
        ("slow pan (1 px), clean", 1usize, 0.0f32),
        ("fast pan (8 px) + noise", 8, 0.04),
    ];
    for (label, pan, noise) in cases {
        let frames = pan_sequence(
            SceneKind::City,
            opts.resolution,
            opts.resolution,
            2,
            pan,
            noise,
            opts.seed,
        );
        // Same degradation seed both frames: sensor noise is in `noise`.
        let traces: Vec<_> = frames
            .iter()
            .map(|f| run_network(&model.spec(), &weights, &model.prepare_input(f, 0)))
            .collect();
        let vaa = vaa_network(&traces[1], &cfg).total_cycles();
        let results = [
            ("PRA", term_serial_network(&traces[1], &cfg, ValueMode::Raw).total_cycles()),
            (
                "Diffy",
                term_serial_network(&traces[1], &cfg, ValueMode::Differential).total_cycles(),
            ),
            (
                "Diffy-T",
                temporal_network(&traces[0], &traces[1], &cfg, TemporalMode::TemporalOnly)
                    .total_cycles(),
            ),
            (
                "Diffy-ST",
                temporal_network(&traces[0], &traces[1], &cfg, TemporalMode::SpatioTemporal)
                    .total_cycles(),
            ),
        ];
        let best = results.iter().min_by_key(|(_, c)| *c).expect("non-empty");
        let mut row = vec![label.to_string()];
        for (_, cycles) in results {
            row.push(format!("{:.2}x", vaa as f64 / cycles as f64));
        }
        row.push(best.0.to_string());
        table.row(row);
    }
    println!("{}", table.render());
    println!("speedups over VAA for frame 2 given frame 1. Temporal deltas");
    println!("need the previous frame's activations buffered (CBInfer's");
    println!("storage cost, which the paper notes Diffy avoids); the combined");
    println!("mode applies Diffy's row transform to the temporal deltas.");
    println!();

    // Streaming per-frame record at full HD: the serve layer's session
    // subsystem evaluates frame t against the retained frame t-1; this
    // measures the same trade at the sim level, projected to 1920x1080
    // linearly in pixel count (fully convolutional; DESIGN.md §2.3), and
    // gates on exactness first: temporal processing is déjà vu-free, so
    // every layer performs the same effectual MACs as a full spatial
    // re-evaluation — only the cycle count may differ.
    const STREAM_FRAMES: usize = 4;
    let frames =
        pan_sequence(SceneKind::City, opts.resolution, opts.resolution, STREAM_FRAMES, 1, 0.0, opts.seed);
    let traces: Vec<_> = frames
        .iter()
        .map(|f| run_network(&model.spec(), &weights, &model.prepare_input(f, 0)))
        .collect();
    let traced_pixels = (opts.resolution * opts.resolution) as f64;
    let hd_ms = |cycles: u64| {
        (cycles as f64 * HD_PIXELS as f64 / traced_pixels) / (cfg.frequency_ghz * 1e9) * 1e3
    };

    let mut stream_table =
        TextTable::new(vec!["frame", "full HD ms", "temporal HD ms", "speedup"]);
    let mut records = Vec::new();
    let mut summary: Vec<(String, f64)> = Vec::new();
    let (mut full_ms_sum, mut temporal_ms_sum) = (0.0f64, 0.0f64);
    for t in 1..STREAM_FRAMES {
        let full = term_serial_network(&traces[t], &cfg, ValueMode::Differential);
        let temporal =
            temporal_network(&traces[t - 1], &traces[t], &cfg, TemporalMode::SpatioTemporal);
        for (f, s) in full.layers.iter().zip(temporal.layers.iter()) {
            assert_eq!(
                f.macs, s.macs,
                "frame {t}: temporal processing must stay bit-exact (same effectual MACs)"
            );
        }
        let (full_ms, temporal_ms) = (hd_ms(full.total_cycles()), hd_ms(temporal.total_cycles()));
        full_ms_sum += full_ms;
        temporal_ms_sum += temporal_ms;
        stream_table.row(vec![
            t.to_string(),
            format!("{full_ms:.2}"),
            format!("{temporal_ms:.2}"),
            format!("{:.2}x", full_ms / temporal_ms),
        ]);
        records.push(BenchRecord {
            name: format!("hd_full_frame{t}"),
            wall_ms: full_ms,
            iters: 1,
            per_second: Some(1e3 / full_ms),
        });
        records.push(BenchRecord {
            name: format!("hd_temporal_frame{t}"),
            wall_ms: temporal_ms,
            iters: 1,
            per_second: Some(1e3 / temporal_ms),
        });
    }
    let n = (STREAM_FRAMES - 1) as f64;
    summary.push(("hd_fps_full".to_string(), 1e3 * n / full_ms_sum));
    summary.push(("hd_fps_temporal".to_string(), 1e3 * n / temporal_ms_sum));
    summary.push(("temporal_speedup_vs_full".to_string(), full_ms_sum / temporal_ms_sum));
    println!("{}", stream_table.render());
    println!("per-frame cost at 1920x1080 (slow 1 px pan, clean): Diffy spatial");
    println!("re-evaluation vs Diffy-ST against the retained previous frame —");
    println!("the steady-state work of one streaming video session.");

    let meta = [
        ("model", model.name().to_string()),
        ("traced_resolution", format!("{}x{}", opts.resolution, opts.resolution)),
        ("projection", "1920x1080, linear in pixel count".to_string()),
        ("content", "City pan 1 px/frame, no sensor noise".to_string()),
        ("frames", STREAM_FRAMES.to_string()),
        ("mode", "Diffy-ST vs Diffy full re-evaluation".to_string()),
    ];
    let summary_refs: Vec<(&str, f64)> =
        summary.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    if let Some(path) = write_bench_json("ext_temporal", &meta, &records, &summary_refs) {
        println!("wrote {}", path.display());
    }
}
