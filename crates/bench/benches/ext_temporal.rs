//! Extension (paper §V): combining Diffy's spatial deltas with
//! CBInfer-style temporal (cross-frame) deltas on video. The paper:
//! "the two concepts could potentially be combined."
//!
//! A panning scene is denoised frame by frame; frame 2 is processed four
//! ways: spatially (Diffy), temporally only (Diffy-T), spatio-temporally
//! (Diffy-ST), and raw (PRA), with VAA as the baseline. Two content
//! settings bracket the design space: a slow pan (temporal correlation
//! dominates) and a fast pan with sensor noise (spatial correlation
//! matters more).

use diffy_bench::{banner, bench_options};
use diffy_core::summary::TextTable;
use diffy_imaging::scenes::SceneKind;
use diffy_imaging::video::pan_sequence;
use diffy_models::{run_network, CiModel, NetworkWeights};
use diffy_sim::{
    temporal_network, term_serial_network, vaa_network, AcceleratorConfig, TemporalMode,
    ValueMode,
};
use diffy_tensor::Quantizer;

fn main() {
    let opts = bench_options();
    banner("Extension (paper §V)", "temporal + spatial differential processing", &opts);

    let model = CiModel::DnCnn;
    let weights =
        NetworkWeights::generate(&model.spec(), model.weight_gen(opts.seed), Quantizer::default());
    let cfg = AcceleratorConfig::table4();

    let mut table = TextTable::new(vec![
        "content", "PRA", "Diffy", "Diffy-T", "Diffy-ST", "best",
    ]);
    let cases = [
        ("slow pan (1 px), clean", 1usize, 0.0f32),
        ("fast pan (8 px) + noise", 8, 0.04),
    ];
    for (label, pan, noise) in cases {
        let frames = pan_sequence(
            SceneKind::City,
            opts.resolution,
            opts.resolution,
            2,
            pan,
            noise,
            opts.seed,
        );
        // Same degradation seed both frames: sensor noise is in `noise`.
        let traces: Vec<_> = frames
            .iter()
            .map(|f| run_network(&model.spec(), &weights, &model.prepare_input(f, 0)))
            .collect();
        let vaa = vaa_network(&traces[1], &cfg).total_cycles();
        let results = [
            ("PRA", term_serial_network(&traces[1], &cfg, ValueMode::Raw).total_cycles()),
            (
                "Diffy",
                term_serial_network(&traces[1], &cfg, ValueMode::Differential).total_cycles(),
            ),
            (
                "Diffy-T",
                temporal_network(&traces[0], &traces[1], &cfg, TemporalMode::TemporalOnly)
                    .total_cycles(),
            ),
            (
                "Diffy-ST",
                temporal_network(&traces[0], &traces[1], &cfg, TemporalMode::SpatioTemporal)
                    .total_cycles(),
            ),
        ];
        let best = results.iter().min_by_key(|(_, c)| *c).expect("non-empty");
        let mut row = vec![label.to_string()];
        for (_, cycles) in results {
            row.push(format!("{:.2}x", vaa as f64 / cycles as f64));
        }
        row.push(best.0.to_string());
        table.row(row);
    }
    println!("{}", table.render());
    println!("speedups over VAA for frame 2 given frame 1. Temporal deltas");
    println!("need the previous frame's activations buffered (CBInfer's");
    println!("storage cost, which the paper notes Diffy avoids); the combined");
    println!("mode applies Diffy's row transform to the temporal deltas.");
}
