//! Service throughput/latency: closed-loop load against an in-process
//! `diffy-serve` server at several client concurrency levels, in four
//! transport modes: one-shot (connection per request), keep-alive (one
//! persistent connection per client), batch (eight evaluations per
//! `POST /evaluate/batch`) and streaming (one video session per client,
//! each "request" a `POST /session/{id}/frame`).
//!
//! Methodology (see EXPERIMENTS.md §"Service throughput and latency"):
//! an ephemeral-port server is booted in-process with its default worker
//! pool, the cache is warmed with one untimed request, then each
//! (mode, concurrency) cell runs a fixed total number of evaluations
//! split across closed-loop clients (a client issues its next request
//! the moment the previous response lands). Latencies are exact
//! client-side samples; percentiles are nearest-rank over the sorted
//! run. In batch mode a latency sample covers a whole batch.
//!
//! `DIFFY_BENCH_SMOKE` shrinks the request budget to a seconds-scale
//! smoke run; `DIFFY_BENCH_JSON` writes the records to disk (this is the
//! source of the committed `BENCH_serve.json`).

use diffy_bench::{bench_options, bench_smoke, write_bench_json, BenchRecord};
use diffy_core::summary::TextTable;
use diffy_serve::{
    closed_loop_bodies, closed_loop_mode, get, post, LoadMode, ServeConfig, Server, SessionClient,
    ShardedConfig, ShardedServer,
};
use std::time::Duration;

/// Evaluations per `/evaluate/batch` request in batch mode.
const BATCH_SIZE: usize = 8;

/// Client-side timeout: generous, so slow levels report latency rather
/// than erroring out.
const TIMEOUT: Duration = Duration::from_secs(60);

fn main() {
    let opts = bench_options();
    let resolution = opts.resolution.clamp(16, 512);
    let (levels, total_requests): (&[usize], usize) =
        if bench_smoke() { (&[1, 2, 4], 12) } else { (&[1, 2, 4, 8], 120) };

    println!("== serve_load: evaluation-service throughput and latency ==");
    println!(
        "workload: IRCNN/Kodak24 at {resolution}x{resolution}, {total_requests} evaluations \
         per cell, closed-loop clients at concurrency {levels:?}, \
         modes: one-shot / keep-alive / batch({BATCH_SIZE}) / streaming"
    );
    println!();

    let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
        .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let workers = server.config().workers.get();
    let thread = std::thread::spawn(move || server.run().expect("server run"));

    let body = format!(
        r#"{{"model": "IRCNN", "dataset": "Kodak24", "resolution": {resolution}}}"#
    );

    // Warm the trace/term-plane cache (untimed): every measured level
    // then sees the same warm-cache steady state.
    let warm = post(addr, "/evaluate", &body, TIMEOUT).expect("warm-up request");
    assert_eq!(warm.status, 200, "warm-up failed: {}", warm.body);

    let modes: [(&str, &str, LoadMode); 3] = [
        ("one-shot", "", LoadMode::OneShot),
        ("keep-alive", "keepalive_", LoadMode::KeepAlive),
        ("batch", "batch8_", LoadMode::Batch(BATCH_SIZE)),
    ];
    let mut table = TextTable::new(vec![
        "mode", "clients", "ok", "errors", "rps", "mean ms", "p50 ms", "p90 ms", "p99 ms",
    ]);
    let mut records = Vec::new();
    let mut summary: Vec<(String, f64)> = Vec::new();
    let mut oneshot_p50_c1 = None;
    for (mode_name, key_prefix, mode) in modes {
        let mut rps_c1 = None;
        for &concurrency in levels {
            let per_client = (total_requests / concurrency).max(1);
            let report =
                closed_loop_mode(addr, &body, concurrency, per_client, TIMEOUT, mode);
            assert_eq!(report.errors, 0, "load run must not shed at depth-32 defaults");
            table.row(vec![
                mode_name.to_string(),
                concurrency.to_string(),
                report.ok.to_string(),
                report.errors.to_string(),
                format!("{:.2}", report.throughput_rps),
                format!("{:.2}", report.mean_ms),
                format!("{:.2}", report.p50_ms),
                format!("{:.2}", report.p90_ms),
                format!("{:.2}", report.p99_ms),
            ]);
            records.push(BenchRecord {
                name: format!("serve_{key_prefix}c{concurrency}"),
                wall_ms: report.mean_ms,
                iters: report.ok,
                per_second: Some(report.throughput_rps),
            });
            summary.push((format!("rps_{key_prefix}c{concurrency}"), report.throughput_rps));
            summary.push((format!("p50_ms_{key_prefix}c{concurrency}"), report.p50_ms));
            summary.push((format!("p99_ms_{key_prefix}c{concurrency}"), report.p99_ms));
            if concurrency == 1 {
                rps_c1 = Some(report.throughput_rps);
                if mode == LoadMode::OneShot {
                    oneshot_p50_c1 = Some(report.p50_ms);
                }
            } else if let Some(base) = rps_c1 {
                summary.push((
                    format!("speedup_{key_prefix}c{concurrency}_vs_c1"),
                    report.throughput_rps / base,
                ));
            }
        }
    }

    // Streaming sessions get their own frame budget: a session's `frames`
    // horizon caps how many frames one client can post, so per-client
    // frames are fixed per cell (concurrency scales total work) rather
    // than splitting one shared budget.
    let stream_frames: usize = if bench_smoke() { 4 } else { 16 };
    let stream_body = format!(
        r#"{{"model": "IRCNN", "resolution": {resolution}, "frames": {stream_frames}, "seed": 1}}"#
    );
    // Warm the video-frame cache with one untimed session; its last frame
    // carries the cumulative savings ledger for the whole sequence.
    let savings_pct = {
        let mut warm = SessionClient::new(addr, TIMEOUT);
        let created = warm.create(&stream_body).expect("warm-up session create");
        assert_eq!(created.status, 200, "warm-up session failed: {}", created.body);
        let mut last = String::new();
        for _ in 0..stream_frames {
            let resp = warm.frame("").expect("warm-up frame");
            assert_eq!(resp.status, 200, "warm-up frame failed: {}", resp.body);
            last = resp.body;
        }
        warm.close().expect("warm-up session close");
        diffy_core::json::parse(&last)
            .expect("frame body parses")
            .get("cumulative")
            .and_then(|c| c.get("savings_pct"))
            .and_then(|v| v.as_f64())
            .expect("frame response carries cumulative savings")
    };
    let mut stream_rps_c1 = None;
    for &concurrency in levels {
        let report = closed_loop_mode(
            addr,
            &stream_body,
            concurrency,
            stream_frames,
            TIMEOUT,
            LoadMode::Streaming,
        );
        assert_eq!(report.errors, 0, "streaming run must not shed");
        table.row(vec![
            "streaming".to_string(),
            concurrency.to_string(),
            report.ok.to_string(),
            report.errors.to_string(),
            format!("{:.2}", report.throughput_rps),
            format!("{:.2}", report.mean_ms),
            format!("{:.2}", report.p50_ms),
            format!("{:.2}", report.p90_ms),
            format!("{:.2}", report.p99_ms),
        ]);
        records.push(BenchRecord {
            name: format!("serve_stream_c{concurrency}"),
            wall_ms: report.mean_ms,
            iters: report.ok,
            per_second: Some(report.throughput_rps),
        });
        summary.push((format!("fps_stream_c{concurrency}"), report.throughput_rps));
        summary.push((format!("p50_ms_stream_c{concurrency}"), report.p50_ms));
        summary.push((format!("p99_ms_stream_c{concurrency}"), report.p99_ms));
        if concurrency == 1 {
            stream_rps_c1 = Some(report.throughput_rps);
            if let Some(oneshot) = oneshot_p50_c1 {
                // The headline comparison: a streamed frame (persistent
                // connection + temporal evaluation) vs a one-shot
                // evaluation of the same resolution.
                summary.push(("stream_p50_vs_oneshot_c1".to_string(), report.p50_ms / oneshot));
            }
        } else if let Some(base) = stream_rps_c1 {
            summary
                .push((format!("speedup_stream_c{concurrency}_vs_c1"), report.throughput_rps / base));
        }
    }
    summary.push(("stream_savings_pct".to_string(), savings_pct));
    println!("{}", table.render());
    println!(
        "streaming: {stream_frames} frames per session per client; cumulative temporal \
         savings over per-frame spatial re-evaluation: {savings_pct:.1}%"
    );

    // Scrape the server's own view before drain: the cache must have
    // served the repeats, and every measured request must be a 200.
    let metrics = get(addr, "/metrics", TIMEOUT).expect("scrape /metrics");
    assert_eq!(metrics.status, 200);
    let m = diffy_core::json::parse(&metrics.body).expect("metrics body parses");
    let hits = m.get("cache").unwrap().get("hits").unwrap().as_u64().unwrap();
    let oks = m.get("responses").unwrap().get("200").unwrap().as_u64().unwrap();
    assert!(hits > 0, "warm levels must hit the cache");
    let s = m.get("sessions").unwrap();
    let sget = |k: &str| s.get(k).unwrap().as_u64().unwrap();
    assert!(sget("created") > 0, "streaming levels must have opened sessions");
    assert_eq!(
        sget("created"),
        sget("closed") + sget("expired") + sget("evicted") + sget("open"),
        "session accounting must conserve: {s:?}"
    );
    println!(
        "server metrics: {oks} 200s, {hits} cache hits, {} sessions created/closed",
        sget("created")
    );
    println!();

    handle.shutdown();
    thread.join().expect("server drains");

    // -- Disk-tier cold start -------------------------------------------
    // Precompute the workload into a scratch artifact directory, then
    // boot a *fresh* server over it with warmup: its very first request
    // is served off the memory tier loaded from disk — no trace build,
    // no evaluation — which is the cold-start story `diffy precompute`
    // + `diffy serve --artifact-dir --warmup` sells. Measured one-shot
    // and keep-alive at c1, so p50 is the honest per-request latency.
    let art_dir =
        std::env::temp_dir().join(format!("diffy-bench-artifacts-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&art_dir);
    {
        use diffy_serve::protocol::EvalRequest;
        let req = EvalRequest::from_json(&diffy_core::json::parse(&body).unwrap())
            .expect("bench body is a valid request");
        let tier = diffy_core::DiskTier::open(&art_dir).expect("open scratch artifact dir");
        let cache = diffy_core::SweepCache::new().with_disk(tier);
        cache.evaluate_keyed(
            req.model,
            req.dataset,
            req.sample,
            &req.workload(),
            &req.eval_options(),
        );
    }
    let cold_server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        artifact_dir: Some(art_dir.to_string_lossy().into_owned()),
        warmup: true,
        ..Default::default()
    })
    .expect("bind cold-start server");
    let cold_addr = cold_server.local_addr();
    let cold_handle = cold_server.handle();
    let cold_thread = std::thread::spawn(move || cold_server.run().expect("cold server run"));
    let cold_requests = if bench_smoke() { 12 } else { 60 };
    let mut cold_table = TextTable::new(vec![
        "mode", "clients", "ok", "errors", "rps", "mean ms", "p50 ms", "p90 ms", "p99 ms",
    ]);
    for (mode_name, key_prefix, mode) in
        [("disk-cold", "disk_cold_", LoadMode::OneShot), ("disk-warm-ka", "disk_ka_", LoadMode::KeepAlive)]
    {
        let report = closed_loop_mode(cold_addr, &body, 1, cold_requests, TIMEOUT, mode);
        assert_eq!(report.errors, 0, "cold-start run must not shed");
        cold_table.row(vec![
            mode_name.to_string(),
            "1".to_string(),
            report.ok.to_string(),
            report.errors.to_string(),
            format!("{:.2}", report.throughput_rps),
            format!("{:.2}", report.mean_ms),
            format!("{:.2}", report.p50_ms),
            format!("{:.2}", report.p90_ms),
            format!("{:.2}", report.p99_ms),
        ]);
        records.push(BenchRecord {
            name: format!("serve_{key_prefix}c1"),
            wall_ms: report.mean_ms,
            iters: report.ok,
            per_second: Some(report.throughput_rps),
        });
        summary.push((format!("rps_{key_prefix}c1"), report.throughput_rps));
        summary.push((format!("p50_ms_{key_prefix}c1"), report.p50_ms));
        summary.push((format!("p99_ms_{key_prefix}c1"), report.p99_ms));
    }
    println!("disk-tier cold start: precomputed artifacts, fresh server, --warmup");
    println!("{}", cold_table.render());
    // The server's own view: warmup means the requests above never went
    // back to disk, and nothing was corrupt.
    let m = diffy_core::json::parse(&get(cold_addr, "/metrics", TIMEOUT).unwrap().body).unwrap();
    let disk = m.get("cache").unwrap().get("disk").unwrap();
    assert_eq!(disk.get("hits").unwrap().as_u64(), Some(0), "warmed serve must skip disk");
    assert_eq!(disk.get("corrupt").unwrap().as_u64(), Some(0));
    cold_handle.shutdown();
    cold_thread.join().expect("cold server drains");
    let _ = std::fs::remove_dir_all(&art_dir);

    // -- Poller: measured load beside an idle keep-alive fleet ----------
    // The event-driven core's claim is that parked connections are free:
    // a fleet of idle keep-alive sockets sits in the epoll watch set
    // while keep-alive load runs at c2, and throughput should match the
    // fleetless keep-alive row above. The scrape afterwards proves the
    // fleet stayed parked (never handed to a worker) and that poller
    // wakeups tracked the poll tick, not the connection count.
    let idle_conns: usize = if bench_smoke() { 64 } else { 512 };
    let idle_server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        idle_timeout_ms: 300_000,
        ..Default::default()
    })
    .expect("bind idle-fleet server");
    let idle_addr = idle_server.local_addr();
    let idle_handle = idle_server.handle();
    let idle_thread = std::thread::spawn(move || idle_server.run().expect("idle server run"));
    let warm = post(idle_addr, "/evaluate", &body, TIMEOUT).expect("idle-fleet warm-up");
    assert_eq!(warm.status, 200, "idle-fleet warm-up failed: {}", warm.body);
    let fleet: Vec<_> = (0..idle_conns).map(|_| park_idle_conn(idle_addr, TIMEOUT)).collect();
    // Wait for the event loop to absorb the whole fleet into its watch
    // set before measuring (the hand-off rides the parking inbox).
    let parked_deadline = std::time::Instant::now() + Duration::from_secs(10);
    while poller_counter(idle_addr, "parked") < idle_conns as u64 {
        assert!(std::time::Instant::now() < parked_deadline, "idle fleet never parked");
        std::thread::sleep(Duration::from_millis(25));
    }
    let wakeups_before = poller_counter(idle_addr, "wakeups");
    let idle_report = closed_loop_bodies(
        idle_addr,
        &[&body],
        2,
        (total_requests / 2).max(1),
        TIMEOUT,
        LoadMode::KeepAlive,
    );
    assert_eq!(idle_report.errors, 0, "idle-fleet run must not shed");
    let wakeups_per_s =
        (poller_counter(idle_addr, "wakeups") - wakeups_before) as f64 / idle_report.wall_s;
    assert!(
        poller_counter(idle_addr, "parked") >= idle_conns as u64,
        "the idle fleet must still be parked after the measured run"
    );
    println!(
        "poller: {idle_conns} idle keep-alive connections parked; keep-alive c2 under the \
         fleet: {:.2} rps, p50 {:.2} ms, {wakeups_per_s:.0} poller wakeups/s",
        idle_report.throughput_rps, idle_report.p50_ms
    );
    println!();
    records.push(BenchRecord {
        name: format!("serve_idle{idle_conns}_keepalive_c2"),
        wall_ms: idle_report.mean_ms,
        iters: idle_report.ok,
        per_second: Some(idle_report.throughput_rps),
    });
    summary.push(("rps_idle_fleet_keepalive_c2".to_string(), idle_report.throughput_rps));
    summary.push(("p50_ms_idle_fleet_keepalive_c2".to_string(), idle_report.p50_ms));
    summary.push(("poller_wakeups_per_s_under_idle_fleet".to_string(), wakeups_per_s));
    drop(fleet);
    idle_handle.shutdown();
    idle_thread.join().expect("idle server drains");

    // -- Sharded ensemble vs single instance ----------------------------
    // A four-key workload mix (distinct seeds → distinct trace keys →
    // distinct shard placements) at c4, against one instance and against
    // `--shards 2` behind the fan-out router. On a multi-core host the
    // sharded rps scales with the shard count; on a 1-core container the
    // two rows share the core and the ratio reads as the router tax.
    // Seeds are picked against the router's own ring so the mix provably
    // covers both shards — a blind handful of keys can all hash to one
    // partition, which would make the sharded row measure nothing.
    let ring = diffy_serve::shard::ShardRing::new(2);
    let mut per_shard = [0usize; 2];
    let mut shard_bodies: Vec<String> = Vec::with_capacity(4);
    for seed in 1u64.. {
        let body = format!(
            r#"{{"model": "IRCNN", "dataset": "Kodak24", "resolution": {resolution}, "seed": {seed}}}"#
        );
        let key = diffy_serve::shard::trace_key(body.as_bytes()).expect("mix body has a trace key");
        let shard = ring.shard_of_key(&key);
        if per_shard[shard] < 2 {
            per_shard[shard] += 1;
            shard_bodies.push(body);
        }
        if shard_bodies.len() == 4 {
            break;
        }
    }
    let mix: Vec<&str> = shard_bodies.iter().map(|b| b.as_str()).collect();
    let mix_concurrency = 4usize;
    let mix_per_client = (total_requests / mix_concurrency).max(1);
    let mut shard_table = TextTable::new(vec![
        "topology", "clients", "ok", "errors", "rps", "mean ms", "p50 ms", "p90 ms", "p99 ms",
    ]);
    let mut mix_rps_single = None;
    for shards in [1usize, 2] {
        let (addr, handle, thread, topology) = if shards == 1 {
            let server =
                Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
                    .expect("bind single instance");
            let addr = server.local_addr();
            let handle = server.handle();
            let thread = std::thread::spawn(move || server.run().expect("single run"));
            (addr, Ok(handle), thread, "single".to_string())
        } else {
            let ensemble = ShardedServer::bind(ShardedConfig {
                addr: "127.0.0.1:0".into(),
                shards,
                base: ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
                ..ShardedConfig::default()
            })
            .expect("bind sharded ensemble");
            let addr = ensemble.local_addr();
            let handle = ensemble.handle();
            let thread = std::thread::spawn(move || ensemble.run().expect("ensemble run"));
            (addr, Err(handle), thread, format!("shards={shards}"))
        };
        // One untimed pass per body: every shard serves its keys warm.
        for b in &mix {
            let warm = post(addr, "/evaluate", b, TIMEOUT).expect("mix warm-up");
            assert_eq!(warm.status, 200, "mix warm-up failed: {}", warm.body);
        }
        let report = closed_loop_bodies(
            addr,
            &mix,
            mix_concurrency,
            mix_per_client,
            TIMEOUT,
            LoadMode::KeepAlive,
        );
        assert_eq!(report.errors, 0, "sharded mix run must not shed");
        shard_table.row(vec![
            topology.clone(),
            mix_concurrency.to_string(),
            report.ok.to_string(),
            report.errors.to_string(),
            format!("{:.2}", report.throughput_rps),
            format!("{:.2}", report.mean_ms),
            format!("{:.2}", report.p50_ms),
            format!("{:.2}", report.p90_ms),
            format!("{:.2}", report.p99_ms),
        ]);
        let key = if shards == 1 { "mix_single".to_string() } else { format!("mix_shard{shards}") };
        records.push(BenchRecord {
            name: format!("serve_{key}_keepalive_c{mix_concurrency}"),
            wall_ms: report.mean_ms,
            iters: report.ok,
            per_second: Some(report.throughput_rps),
        });
        summary.push((format!("rps_{key}_c{mix_concurrency}"), report.throughput_rps));
        summary.push((format!("p50_ms_{key}_c{mix_concurrency}"), report.p50_ms));
        if shards == 1 {
            mix_rps_single = Some(report.throughput_rps);
        } else if let Some(base) = mix_rps_single {
            summary.push((format!("speedup_shard{shards}_vs_single"), report.throughput_rps / base));
        }
        if shards > 1 {
            // The router's own ledger: every evaluation attributed to a
            // shard, no forwarding failures, both partitions exercised.
            let m = diffy_core::json::parse(&get(addr, "/metrics", TIMEOUT).unwrap().body).unwrap();
            let sh = m.get("shards").expect("shards block");
            assert_eq!(sh.get("route_errors").and_then(|v| v.as_u64()), Some(0));
            let routed: Vec<u64> = sh
                .get("routed")
                .and_then(|r| r.as_array())
                .expect("routed array")
                .iter()
                .map(|n| n.as_u64().unwrap())
                .collect();
            assert!(
                routed.iter().all(|&n| n > 0),
                "the four-key mix must land on every shard: {routed:?}"
            );
        }
        match handle {
            Ok(h) => h.shutdown(),
            Err(h) => h.shutdown(),
        }
        thread.join().expect("topology drains");
    }
    println!("workload mix: 4 trace keys, keep-alive, c{mix_concurrency} (closed loop)");
    println!("{}", shard_table.render());
    println!(
        "(1-core host: both topologies share the core, so the sharded row reads as \
         router overhead; rps scales with shards only when cores do)"
    );
    println!();

    let meta = [
        ("model", "IRCNN".to_string()),
        ("dataset", "Kodak24".to_string()),
        ("resolution", format!("{resolution}x{resolution}")),
        ("requests_per_level", total_requests.to_string()),
        ("batch_size", BATCH_SIZE.to_string()),
        ("stream_frames_per_session", stream_frames.to_string()),
        ("modes", "one-shot,keep-alive,batch,streaming,disk-cold,idle-fleet,sharded".to_string()),
        ("disk_cold_requests", cold_requests.to_string()),
        ("idle_fleet_conns", idle_conns.to_string()),
        ("shard_mix", format!("4 trace keys, keep-alive, c{mix_concurrency}, shards 1 vs 2")),
        ("server_workers", workers.to_string()),
        ("host_parallelism", num_cores().to_string()),
    ];
    let summary_refs: Vec<(&str, f64)> =
        summary.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    if let Some(path) = write_bench_json("serve_load", &meta, &records, &summary_refs) {
        println!("wrote {}", path.display());
    }
}

fn num_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Opens one raw keep-alive connection, serves a `/healthz` on it, and
/// returns the socket idle — parked in the server's epoll watch set.
fn park_idle_conn(addr: std::net::SocketAddr, timeout: Duration) -> std::net::TcpStream {
    use std::io::{BufRead, Read, Write};
    let mut conn = std::net::TcpStream::connect(addr).expect("connect idle conn");
    conn.set_read_timeout(Some(timeout)).expect("read timeout");
    conn.write_all(b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
        .expect("write healthz");
    let mut reader = std::io::BufReader::new(conn.try_clone().expect("clone socket"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        if line == "\r\n" {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
    conn
}

/// One counter out of the server's `/metrics` poller block.
fn poller_counter(addr: std::net::SocketAddr, key: &str) -> u64 {
    let resp = get(addr, "/metrics", TIMEOUT).expect("scrape /metrics");
    diffy_core::json::parse(&resp.body)
        .expect("metrics body parses")
        .get("poller")
        .and_then(|p| p.get(key))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("metrics missing poller.{key}"))
}
