//! Ablation: where do Diffy's losses come from? Decomposes the gap
//! between the Fig. 4 potential and the achieved speedup into the two
//! causes the paper names (§IV-A): cross-lane synchronization and filter
//! underutilization, by comparing the T16 design, the T1 design (no lane
//! sync) and the raw potential.

use diffy_bench::{all_ci_bundles, banner, bench_options};
use diffy_core::summary::TextTable;
use diffy_sim::potential::network_potential;
use diffy_sim::{term_serial_network, vaa_network, AcceleratorConfig, ValueMode};

fn main() {
    let mut opts = bench_options();
    opts.samples_per_dataset = opts.samples_per_dataset.min(1);
    banner(
        "Ablation",
        "potential vs T1 (no lane sync) vs T16 (shipping design)",
        &opts,
    );

    let t16 = AcceleratorConfig::table4();
    let mut t1 = AcceleratorConfig::table4();
    t1.lanes = 1;
    t1.terms_per_group = 1;

    let mut table = TextTable::new(vec![
        "network",
        "potential (deltaE)",
        "T1 speedup",
        "T16 speedup",
        "sync loss",
        "other losses",
    ]);
    for (model, bundles) in all_ci_bundles(&opts) {
        let mut pot_all = 0u64;
        let mut pot_delta = 0u64;
        let mut vaa16 = 0u64;
        let mut diffy16 = 0u64;
        let mut vaa1 = 0u64;
        let mut diffy1 = 0u64;
        for b in &bundles {
            let p = network_potential(&b.trace);
            pot_all += p.all_terms;
            pot_delta += p.delta_terms;
            vaa16 += vaa_network(&b.trace, &t16).total_cycles();
            diffy16 +=
                term_serial_network(&b.trace, &t16, ValueMode::Differential).total_cycles();
            vaa1 += vaa_network(&b.trace, &t1).total_cycles();
            diffy1 +=
                term_serial_network(&b.trace, &t1, ValueMode::Differential).total_cycles();
        }
        let potential = pot_all as f64 / pot_delta.max(1) as f64;
        let s16 = vaa16 as f64 / diffy16 as f64;
        let s1 = vaa1 as f64 / diffy1 as f64;
        table.row(vec![
            model.name().to_string(),
            format!("{potential:.2}x"),
            format!("{s1:.2}x"),
            format!("{s16:.2}x"),
            format!("{:.2}x", s1 / s16),
            format!("{:.2}x", potential / s1),
        ]);
    }
    println!("{}", table.render());
    println!("sync loss: T1/T16 — what cross-lane synchronization costs.");
    println!("other losses: potential/T1 — filter underutilization, pallet");
    println!("edges and the raw leftmost window per row.");
}
