//! Fig. 19: Diffy on classification/segmentation/detection models —
//! showing differential convolution also helps (more modestly) outside
//! CI-DNNs, with the largest wins in the early, image-like layers.
//!
//! Traces run at half the native resolution to bound simulation cost
//! (statistics of convolutional stacks are resolution-stationary); the
//! reduction is printed.

use diffy_bench::geomean;
use diffy_core::accelerator::{EvalOptions, SchemeChoice};
use diffy_core::runner::class_trace_bundle;
use diffy_core::summary::TextTable;
use diffy_models::ClassModel;
use diffy_sim::Architecture;

fn main() {
    println!("== Fig. 19: classification & detection models ==");
    let divisor: usize = std::env::var("DIFFY_BENCH_CLASS_DIV")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    println!("traces at native/{divisor} resolution (DIFFY_BENCH_CLASS_DIV)\n");

    let mut table = TextTable::new(vec![
        "model",
        "res",
        "PRA vs VAA",
        "Diffy vs VAA",
        "Diffy vs PRA",
        "early-layer Diffy vs PRA",
    ]);
    let mut pra_all = Vec::new();
    let mut diffy_all = Vec::new();
    for model in ClassModel::ALL {
        let (nh, _) = model.native_resolution();
        let res = (nh / divisor).max(model.min_resolution());
        let bundle = class_trace_bundle(model, res, 1);
        let scheme = SchemeChoice::Ideal;
        let vaa = bundle.evaluate(&EvalOptions::new(Architecture::Vaa, scheme));
        let pra = bundle.evaluate(&EvalOptions::new(Architecture::Pra, scheme));
        let diffy = bundle.evaluate(&EvalOptions::new(Architecture::Diffy, scheme));
        let pra_s = vaa.total_cycles() as f64 / pra.total_cycles() as f64;
        let diffy_s = vaa.total_cycles() as f64 / diffy.total_cycles() as f64;
        pra_all.push(pra_s);
        diffy_all.push(diffy_s);
        // Early layers: the first 3 convs, where inputs are image-like.
        let early = 3.min(diffy.layers.len());
        let pra_early: u64 = pra.layers[..early].iter().map(|l| l.timing.total_cycles).sum();
        let diffy_early: u64 =
            diffy.layers[..early].iter().map(|l| l.timing.total_cycles).sum();
        table.row(vec![
            model.name().to_string(),
            format!("{res}"),
            format!("{pra_s:.2}x"),
            format!("{diffy_s:.2}x"),
            format!("{:.2}x", pra.total_cycles() as f64 / diffy.total_cycles() as f64),
            format!("{:.2}x", pra_early as f64 / diffy_early.max(1) as f64),
        ]);
    }
    table.row(vec![
        "geomean".to_string(),
        String::new(),
        format!("{:.2}x", geomean(&pra_all)),
        format!("{:.2}x", geomean(&diffy_all)),
        format!("{:.2}x", geomean(&diffy_all) / geomean(&pra_all)),
        String::new(),
    ]);
    println!("{}", table.render());
    println!("paper: Diffy 6.1x over VAA and 1.16x over PRA on average; early");
    println!("       layers see over 2.1x over PRA (inputs are still images).");
}
