//! Fig. 18: the minimum configuration — tiles × off-chip memory — for
//! real-time (30 FPS) HD processing with Diffy, per model and per
//! compression scheme.

use diffy_bench::{banner, bench_options, ci_bundles};
use diffy_core::accelerator::SchemeChoice;
use diffy_core::scaling::min_realtime_config;
use diffy_core::summary::TextTable;
use diffy_encoding::StorageScheme;
use diffy_models::CiModel;

fn main() {
    let mut opts = bench_options();
    opts.samples_per_dataset = opts.samples_per_dataset.min(1);
    banner("Fig. 18", "minimum Diffy configuration for 30 FPS at HD", &opts);

    let schemes: [(&str, SchemeChoice); 3] = [
        ("NoCompression", SchemeChoice::Scheme(StorageScheme::NoCompression)),
        ("Profiled", SchemeChoice::Profiled { quantile: 0.999 }),
        ("DeltaD16", SchemeChoice::Scheme(StorageScheme::delta_d(16))),
    ];

    let mut table = TextTable::new(vec!["network", "scheme", "tiles", "memory"]);
    for model in CiModel::ALL {
        let bundles = ci_bundles(model, &opts);
        // Use the HD33 bundle (the target content class) when present.
        let bundle = bundles
            .iter()
            .find(|b| b.dataset == Some(diffy_imaging::datasets::DatasetId::Hd33))
            .unwrap_or(&bundles[0]);
        for (label, scheme) in schemes {
            match min_realtime_config(bundle, scheme) {
                Some((tiles, mem)) => {
                    table.row(vec![
                        model.name().to_string(),
                        label.to_string(),
                        tiles.to_string(),
                        mem.to_string(),
                    ]);
                }
                None => {
                    table.row(vec![
                        model.name().to_string(),
                        label.to_string(),
                        "-".to_string(),
                        "not reachable".to_string(),
                    ]);
                }
            }
        }
    }
    println!("{}", table.render());
    println!("paper: DnCNN is the most demanding (32 tiles + HBM2 under");
    println!("       DeltaD16); FFDNet/JointNet need 8 tiles with dual-channel");
    println!("       DDR3-1600; VDSR 16 tiles with dual LPDDR3E-2133.");
}
