//! Fig. 13: absolute frame rate at HD (1920×1080) for VAA, PRA and
//! Diffy under each compression scheme. Traces run at reduced resolution
//! and are projected to HD linearly in pixel count (CI-DNNs are fully
//! convolutional; DESIGN.md §2.3).

use diffy_bench::{all_ci_bundles, banner, bench_options};
use diffy_core::accelerator::{EvalOptions, SchemeChoice};
use diffy_core::summary::TextTable;
use diffy_encoding::StorageScheme;
use diffy_sim::Architecture;

fn main() {
    let opts = bench_options();
    banner("Fig. 13", "HD (1920x1080) frames per second", &opts);

    let schemes: [(&str, SchemeChoice); 3] = [
        ("NoCompression", SchemeChoice::Scheme(StorageScheme::NoCompression)),
        ("Profiled", SchemeChoice::Profiled { quantile: 0.999 }),
        ("DeltaD16", SchemeChoice::Scheme(StorageScheme::delta_d(16))),
    ];

    let mut table = TextTable::new(vec![
        "network", "arch", "NoCompression", "Profiled", "DeltaD16",
    ]);
    for (model, bundles) in all_ci_bundles(&opts) {
        for arch in [Architecture::Vaa, Architecture::Pra, Architecture::Diffy] {
            let mut row = vec![model.name().to_string(), arch.name().to_string()];
            for (_, scheme) in schemes {
                // Average FPS over the workload (FPS varies with content,
                // as the paper notes: +-7.5% PRA, +-15% Diffy).
                let fps: f64 = bundles
                    .iter()
                    .map(|b| b.hd_fps(&b.evaluate(&EvalOptions::new(arch, scheme))))
                    .sum::<f64>()
                    / bundles.len() as f64;
                row.push(format!("{fps:.1}"));
            }
            table.row(row);
        }
    }
    println!("{}", table.render());
    println!("paper: VAA 0.7-3.9 FPS, PRA 2.6-18.9 FPS, Diffy 3.9-28.5 FPS;");
    println!("       only JointNet approaches real-time 30 FPS at 4 tiles.");
}
