//! Table V: on-chip storage requirements — the AM capacity needed under
//! each storage scheme (max over networks and layers of "two rows of
//! windows plus two output rows") and the double-buffered WM.
//!
//! AM row requirements scale linearly with image width, so measurements
//! at the trace resolution are projected to HD width (1920).

use diffy_bench::{all_ci_bundles, banner, bench_options};
use diffy_core::summary::{fmt_bytes, TextTable};
use diffy_encoding::precision::profiled_precision;
use diffy_encoding::StorageScheme;
use diffy_memsys::am::{layer_am_bits, round_up_pow2};
use diffy_memsys::traffic::tensor_signedness;
use diffy_memsys::wm::network_wm_bytes;
use diffy_tensor::stats::MagnitudeHistogram;

fn main() {
    let mut opts = bench_options();
    opts.samples_per_dataset = opts.samples_per_dataset.min(1);
    banner("Table V", "on-chip AM/WM provisioning per scheme", &opts);

    let hd_scale = 1920.0 / opts.resolution as f64;
    let mut am_max = [0u64; 4]; // NoCompression, Profiled, RawD16, DeltaD16
    let mut wm_max = 0u64;

    for (_, bundles) in all_ci_bundles(&opts) {
        for b in &bundles {
            wm_max = wm_max.max(network_wm_bytes(&b.trace));
            for (i, l) in b.trace.layers.iter().enumerate() {
                let omap = b.trace.omap(i);
                let profiled = {
                    let mut h = MagnitudeHistogram::new();
                    h.extend_from_slice(l.imap.as_slice());
                    StorageScheme::Profiled {
                        bits: profiled_precision(&h, tensor_signedness(&l.imap), 0.999),
                    }
                };
                let schemes = [
                    StorageScheme::NoCompression,
                    profiled,
                    StorageScheme::raw_d(16),
                    StorageScheme::delta_d(16),
                ];
                for (slot, s) in am_max.iter_mut().zip(schemes) {
                    let bits = (layer_am_bits(l, omap, s) as f64 * hd_scale) as u64;
                    *slot = (*slot).max(bits);
                }
            }
        }
    }

    let labels = ["Baseline (16b)", "Profiled", "RawD16", "DeltaD16"];
    let mut table = TextTable::new(vec!["scheme", "AM needed (HD)", "provisioned (pow2)"]);
    for (label, bits) in labels.iter().zip(am_max) {
        let bytes = bits / 8;
        table.row(vec![
            label.to_string(),
            fmt_bytes(bytes),
            fmt_bytes(round_up_pow2(bytes)),
        ]);
    }
    println!("{}", table.render());
    println!("WM (double-buffered largest per-layer filter set): {}", fmt_bytes(wm_max));
    println!("provisioned WM: {}\n", fmt_bytes(round_up_pow2(wm_max)));
    println!("paper: AM 964 KB baseline -> 782 KB Profiled -> 514 KB RawD16 ->");
    println!("       348 KB DeltaD16 (55% less than Profiled, 32% less than");
    println!("       RawD16); WM 324 KB rounded to 512 KB.");
}
