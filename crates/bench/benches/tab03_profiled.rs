//! Table III: profile-derived per-layer activation precisions — the
//! smallest precision covering the 99.9th-percentile magnitude of each
//! layer's imap population over the workload.

use diffy_bench::{banner, bench_options, ci_bundles};
use diffy_encoding::precision::profiled_precision;
use diffy_memsys::traffic::tensor_signedness;
use diffy_models::CiModel;
use diffy_tensor::stats::MagnitudeHistogram;

fn main() {
    let opts = bench_options();
    banner("Table III", "profiled per-layer activation precisions", &opts);

    for model in CiModel::ALL {
        let bundles = ci_bundles(model, &opts);
        let layer_count = bundles[0].trace.layers.len();
        let mut precisions = Vec::with_capacity(layer_count);
        for li in 0..layer_count {
            let mut hist = MagnitudeHistogram::new();
            let mut sign = diffy_encoding::precision::Signedness::Unsigned;
            for b in &bundles {
                let imap = &b.trace.layers[li].imap;
                hist.extend_from_slice(imap.as_slice());
                if tensor_signedness(imap) == diffy_encoding::precision::Signedness::Signed {
                    sign = diffy_encoding::precision::Signedness::Signed;
                }
            }
            precisions.push(profiled_precision(&hist, sign, 0.999).to_string());
        }
        println!("{:<9} {}", model.name(), precisions.join("-"));
    }
    println!();
    println!("paper (Table III): DnCNN 9-13 bits, FFDNet 9-10, IRCNN 7-9,");
    println!("VDSR 7-10 across layers — profiled precisions well under 16 b.");
}
