//! Extension (paper §V): differential convolution on a Dynamic-Stripes
//! style bit-serial accelerator. The paper suggests "Since deltas are
//! smaller values than the activations, their precision requirements will
//! be lower as well" — this bench quantifies that follow-up, alongside
//! the PRA/Diffy pair for context.

use diffy_bench::{all_ci_bundles, banner, bench_options, geomean};
use diffy_core::summary::TextTable;
use diffy_sim::{
    stripes_network, term_serial_network, vaa_network, AcceleratorConfig, ValueMode,
};

fn main() {
    let mut opts = bench_options();
    opts.samples_per_dataset = opts.samples_per_dataset.min(1);
    banner(
        "Extension (paper §V)",
        "delta processing on Dynamic Stripes (speedup over VAA)",
        &opts,
    );

    let cfg = AcceleratorConfig::table4();
    let mut table = TextTable::new(vec![
        "network",
        "DStripes",
        "DStripes+delta",
        "PRA",
        "Diffy",
    ]);
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (model, bundles) in all_ci_bundles(&opts) {
        let mut cyc = [0u64; 5];
        for b in &bundles {
            cyc[0] += vaa_network(&b.trace, &cfg).total_cycles();
            cyc[1] += stripes_network(&b.trace, &cfg, ValueMode::Raw).total_cycles();
            cyc[2] += stripes_network(&b.trace, &cfg, ValueMode::Differential).total_cycles();
            cyc[3] += term_serial_network(&b.trace, &cfg, ValueMode::Raw).total_cycles();
            cyc[4] +=
                term_serial_network(&b.trace, &cfg, ValueMode::Differential).total_cycles();
        }
        let mut row = vec![model.name().to_string()];
        for i in 1..5 {
            let s = cyc[0] as f64 / cyc[i] as f64;
            geo[i - 1].push(s);
            row.push(format!("{s:.2}x"));
        }
        table.row(row);
    }
    let mut row = vec!["geomean".to_string()];
    for g in &geo {
        row.push(format!("{:.2}x", geomean(g)));
    }
    table.row(row);
    println!("{}", table.render());
    println!("expected shape: DStripes < PRA (bits >= terms per value), and");
    println!("delta processing lifts the bit-serial design just as it lifts");
    println!("PRA — confirming the paper's §V follow-up suggestion.");
}
