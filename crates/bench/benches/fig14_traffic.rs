//! Fig. 14: off-chip activation traffic (imap reads + omap writes,
//! including the per-group headers) under every scheme, normalized to
//! NoCompression.

use diffy_bench::{all_ci_bundles, banner, bench_options, geomean};
use diffy_core::summary::TextTable;
use diffy_encoding::StorageScheme;
use diffy_memsys::traffic::{network_traffic, network_traffic_profiled};
use diffy_models::NetworkTrace;

fn activation_bytes(trace: &NetworkTrace, scheme: StorageScheme) -> u64 {
    network_traffic(trace, scheme).iter().map(|t| t.activation_bytes()).sum()
}

fn main() {
    let opts = bench_options();
    banner("Fig. 14", "off-chip activation traffic per scheme", &opts);

    let labels =
        ["RLEz", "RLE", "Profiled", "RawD256", "RawD16", "RawD8", "DeltaD256", "DeltaD16"];
    let mut header = vec!["network"];
    header.extend(labels);
    let mut table = TextTable::new(header);
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];

    for (model, bundles) in all_ci_bundles(&opts) {
        let mut base = 0u64;
        let mut totals = vec![0u64; labels.len()];
        for b in &bundles {
            base += activation_bytes(&b.trace, StorageScheme::NoCompression);
            let per_scheme = [
                activation_bytes(&b.trace, StorageScheme::RleZ),
                activation_bytes(&b.trace, StorageScheme::Rle),
                network_traffic_profiled(&b.trace, 0.999)
                    .iter()
                    .map(|t| t.activation_bytes())
                    .sum(),
                activation_bytes(&b.trace, StorageScheme::raw_d(256)),
                activation_bytes(&b.trace, StorageScheme::raw_d(16)),
                activation_bytes(&b.trace, StorageScheme::raw_d(8)),
                activation_bytes(&b.trace, StorageScheme::delta_d(256)),
                activation_bytes(&b.trace, StorageScheme::delta_d(16)),
            ];
            for (slot, v) in totals.iter_mut().zip(per_scheme) {
                *slot += v;
            }
        }
        let mut row = vec![model.name().to_string()];
        for (i, &t) in totals.iter().enumerate() {
            let frac = t as f64 / base as f64;
            geo[i].push(frac);
            row.push(format!("{:.1}%", frac * 100.0));
        }
        table.row(row);
    }
    let mut row = vec!["geomean".to_string()];
    for g in &geo {
        row.push(format!("{:.1}%", geomean(g) * 100.0));
    }
    table.row(row);
    println!("{}", table.render());
    println!("values are % of NoCompression traffic; lower is better.");
    println!("paper: Profiled ~54%, RawD256 ~39%, RawD16/RawD8 ~28%, DeltaD16");
    println!("       ~22% (1.43x less than RawD16); RLEz/RLE help only VDSR.");
}
