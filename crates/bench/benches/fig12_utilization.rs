//! Fig. 12: per-layer lane-utilization breakdown for Diffy — useful
//! cycles, idle cycles (cross-lane synchronization + filter
//! underutilization) and off-chip stalls. DeltaD16, DDR4-3200.

use diffy_bench::{banner, bench_options, ci_bundles};
use diffy_core::accelerator::{EvalOptions, SchemeChoice};
use diffy_core::summary::TextTable;
use diffy_encoding::StorageScheme;
use diffy_models::CiModel;
use diffy_sim::Architecture;

fn main() {
    let mut opts = bench_options();
    opts.samples_per_dataset = opts.samples_per_dataset.min(1);
    banner("Fig. 12", "per-layer Diffy lane utilization breakdown", &opts);

    let eval = EvalOptions::new(
        Architecture::Diffy,
        SchemeChoice::Scheme(StorageScheme::delta_d(16)),
    );
    for model in CiModel::ALL {
        let bundles = ci_bundles(model, &opts);
        println!("{}:", model.name());
        let mut table = TextTable::new(vec!["layer", "useful", "idle", "stall"]);
        let layer_count = bundles[0].trace.layers.len();
        for li in 0..layer_count {
            let mut useful = 0u64;
            let mut total = 0u64;
            let mut stall = 0u64;
            let mut total_time = 0u64;
            let mut name = String::new();
            for b in &bundles {
                let r = b.evaluate(&eval);
                let l = &r.layers[li];
                name = l.name.clone();
                useful += l.compute.useful_slots;
                total += l.compute.total_slots;
                stall += l.timing.stall_cycles;
                total_time += l.timing.total_cycles;
            }
            // Useful fraction of compute slots, scaled by the share of
            // the layer's wall-clock that was compute (the rest is stall).
            let compute_frac = if total_time == 0 {
                0.0
            } else {
                (total_time - stall) as f64 / total_time as f64
            };
            let useful_frac =
                if total == 0 { 0.0 } else { useful as f64 / total as f64 } * compute_frac;
            let stall_frac = if total_time == 0 { 0.0 } else { stall as f64 / total_time as f64 };
            let idle_frac = (1.0 - useful_frac - stall_frac).max(0.0);
            table.row(vec![
                name,
                format!("{:.1}%", useful_frac * 100.0),
                format!("{:.1}%", idle_frac * 100.0),
                format!("{:.1}%", stall_frac * 100.0),
            ]);
        }
        println!("{}", table.render());
    }
    println!("paper: utilization varies widely per layer; first layers idle on");
    println!("       3-channel inputs (13/16 lanes), last layers on few filters;");
    println!("       VDSR's high sparsity makes cross-lane sync dominate.");
}
