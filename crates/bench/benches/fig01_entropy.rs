//! Fig. 1: per-network entropy of the activation stream — H(A), the
//! conditional entropy H(A|A') given the adjacent-along-X activation, and
//! the delta entropy H(Δ).
//!
//! The paper reads compression potential off these: H(A)/H(A|A') and
//! H(A)/H(Δ) were ~1.41x/1.40x on average over the CI-DNNs.

use diffy_bench::{banner, bench_options, ci_bundles, geomean};
use diffy_core::summary::TextTable;
use diffy_encoding::entropy::EntropyAccumulator;
use diffy_models::CiModel;

fn main() {
    let mut opts = bench_options();
    // Entropy needs a joint histogram over value pairs; one sample per
    // dataset keeps the table builds bounded (printed, not silent).
    opts.samples_per_dataset = opts.samples_per_dataset.min(1);
    banner("Fig. 1", "entropy of activations vs deltas", &opts);

    let mut table = TextTable::new(vec![
        "network", "H(A)", "H(A|A')", "H(delta)", "H(A)/H(A|A')", "H(A)/H(delta)",
    ]);
    let mut pot_cond = Vec::new();
    let mut pot_delta = Vec::new();
    for model in CiModel::ALL {
        let mut acc = EntropyAccumulator::new();
        for bundle in ci_bundles(model, &opts) {
            for layer in &bundle.trace.layers {
                acc.push_tensor(&layer.imap);
            }
        }
        let ha = acc.h_a();
        let hc = acc.h_a_given_prev();
        let hd = acc.h_delta();
        pot_cond.push(ha / hc.max(1e-9));
        pot_delta.push(ha / hd.max(1e-9));
        table.row(vec![
            model.name().to_string(),
            format!("{ha:.2}"),
            format!("{hc:.2}"),
            format!("{hd:.2}"),
            format!("{:.2}x", ha / hc.max(1e-9)),
            format!("{:.2}x", ha / hd.max(1e-9)),
        ]);
    }
    table.row(vec![
        "geomean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.2}x", geomean(&pot_cond)),
        format!("{:.2}x", geomean(&pot_delta)),
    ]);
    println!("{}", table.render());
    println!("paper: compression potential 1.29x (IRCNN) to 1.62x (VDSR);");
    println!("       averages 1.41x via H(A|A') and 1.40x via H(delta).");
}
