//! Table VII: area breakdown per architecture from the calibrated
//! analytical model. Diffy's DeltaD16-halved AM more than pays for its DR
//! engines and Delta_out, so its overhead over VAA is lower than PRA's.

use diffy_core::summary::TextTable;
use diffy_energy::components::{area_breakdown, REF_AM_BYTES, REF_WM_BYTES};
use diffy_sim::{AcceleratorConfig, Architecture};

fn main() {
    println!("== Table VII: area breakdown [mm^2, 65 nm] ==\n");
    let cfg = AcceleratorConfig::table4();
    let breakdowns = [
        ("Diffy", area_breakdown(Architecture::Diffy, &cfg, 512 << 10, REF_WM_BYTES)),
        ("PRA", area_breakdown(Architecture::Pra, &cfg, REF_AM_BYTES, REF_WM_BYTES)),
        ("VAA", area_breakdown(Architecture::Vaa, &cfg, REF_AM_BYTES, REF_WM_BYTES)),
    ];
    let mut table = TextTable::new(vec!["component", "Diffy", "PRA", "VAA"]);
    for i in 0..7 {
        let label = breakdowns[0].1.rows()[i].0;
        table.row(vec![
            label.to_string(),
            format!("{:.2}", breakdowns[0].1.rows()[i].1),
            format!("{:.2}", breakdowns[1].1.rows()[i].1),
            format!("{:.2}", breakdowns[2].1.rows()[i].1),
        ]);
    }
    let totals: Vec<f64> = breakdowns.iter().map(|(_, b)| b.total()).collect();
    table.row(vec![
        "Total".to_string(),
        format!("{:.2}", totals[0]),
        format!("{:.2}", totals[1]),
        format!("{:.2}", totals[2]),
    ]);
    table.row(vec![
        "Normalized".to_string(),
        format!("{:.2}x", totals[0] / totals[2]),
        format!("{:.2}x", totals[1] / totals[2]),
        "1.00x".to_string(),
    ]);
    println!("{}", table.render());
    println!("paper: Diffy 1.24x and PRA 1.33x the area of VAA; Diffy's area");
    println!("       overhead is far below its 7.1x performance advantage.");
}
