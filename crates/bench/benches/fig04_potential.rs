//! Fig. 4: potential speedups when processing only the effectual terms of
//! the raw imaps (RawE) or their deltas (ΔE), normalized over processing
//! all terms (ALL). No synchronization or underutilization losses — the
//! idealized ceiling the accelerators chase.

use diffy_bench::{all_ci_bundles, banner, bench_options, geomean};
use diffy_core::summary::TextTable;
use diffy_sim::potential::{network_potential, Potential};

fn main() {
    let opts = bench_options();
    banner("Fig. 4", "potential work reduction (ALL vs RawE vs deltaE)", &opts);

    let mut table = TextTable::new(vec!["network", "RawE", "deltaE"]);
    let mut raws = Vec::new();
    let mut deltas = Vec::new();
    for (model, bundles) in all_ci_bundles(&opts) {
        let mut p = Potential::default();
        for b in &bundles {
            p.merge(&network_potential(&b.trace));
        }
        raws.push(p.raw_speedup());
        deltas.push(p.delta_speedup());
        table.row(vec![
            model.name().to_string(),
            format!("{:.2}x", p.raw_speedup()),
            format!("{:.2}x", p.delta_speedup()),
        ]);
    }
    table.row(vec![
        "geomean".to_string(),
        format!("{:.2}x", geomean(&raws)),
        format!("{:.2}x", geomean(&deltas)),
    ]);
    println!("{}", table.render());
    println!("paper: deltaE exceeds RawE for every CI-DNN; these bounds are");
    println!("       approached (not met) by PRA/Diffy due to cross-lane sync.");
}
