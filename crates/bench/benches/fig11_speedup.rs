//! Fig. 11: PRA and Diffy performance normalized to VAA, under four
//! off-chip compression schemes (NoCompression, Profiled, DeltaD16,
//! Ideal). DDR4-3200, Table IV configuration, HD-class workload traced
//! at reduced resolution (per-pixel work is resolution-stationary).

use diffy_bench::{all_ci_bundles, banner, bench_options, geomean};
use diffy_core::accelerator::{EvalOptions, SchemeChoice};
use diffy_core::summary::TextTable;
use diffy_encoding::StorageScheme;
use diffy_sim::Architecture;

fn schemes() -> [(&'static str, SchemeChoice); 4] {
    [
        ("NoCompression", SchemeChoice::Scheme(StorageScheme::NoCompression)),
        ("Profiled", SchemeChoice::Profiled { quantile: 0.999 }),
        ("DeltaD16", SchemeChoice::Scheme(StorageScheme::delta_d(16))),
        ("Ideal", SchemeChoice::Ideal),
    ]
}

fn main() {
    let opts = bench_options();
    banner("Fig. 11", "PRA/Diffy speedup over VAA per compression scheme", &opts);

    let mut table = TextTable::new(vec![
        "network", "arch", "NoCompression", "Profiled", "DeltaD16", "Ideal",
    ]);
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 8];

    for (model, bundles) in all_ci_bundles(&opts) {
        // VAA baseline: compute-bound, unaffected by compression (checked
        // by the integration tests); use NoCompression.
        let vaa_cycles: u64 = bundles
            .iter()
            .map(|b| {
                b.evaluate(&EvalOptions::new(
                    Architecture::Vaa,
                    SchemeChoice::Scheme(StorageScheme::NoCompression),
                ))
                .total_cycles()
            })
            .sum();
        for (ai, arch) in [Architecture::Pra, Architecture::Diffy].into_iter().enumerate() {
            let mut row = vec![model.name().to_string(), arch.name().to_string()];
            for (si, (_, scheme)) in schemes().into_iter().enumerate() {
                let cycles: u64 = bundles
                    .iter()
                    .map(|b| b.evaluate(&EvalOptions::new(arch, scheme)).total_cycles())
                    .sum();
                let speedup = vaa_cycles as f64 / cycles as f64;
                geo[ai * 4 + si].push(speedup);
                row.push(format!("{speedup:.2}x"));
            }
            table.row(row);
        }
    }
    for (ai, arch) in ["PRA", "Diffy"].into_iter().enumerate() {
        let mut row = vec!["geomean".to_string(), arch.to_string()];
        for si in 0..4 {
            row.push(format!("{:.2}x", geomean(&geo[ai * 4 + si])));
        }
        table.row(row);
    }
    println!("{}", table.render());

    // Per-layer Diffy-over-PRA distribution (§IV-A: "fairly uniform with
    // a mean of 1.42x and a standard deviation of 0.32").
    let mut ratios = Vec::new();
    for (_, bundles) in all_ci_bundles(&opts) {
        for b in &bundles {
            let pra = b.evaluate(&EvalOptions::new(Architecture::Pra, SchemeChoice::Ideal));
            let diffy = b.evaluate(&EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal));
            for (p, d) in pra.layers.iter().zip(diffy.layers.iter()) {
                if d.timing.compute_cycles > 0 {
                    ratios
                        .push(p.timing.compute_cycles as f64 / d.timing.compute_cycles as f64);
                }
            }
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / ratios.len() as f64;
    let worst = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "per-layer Diffy over PRA: mean {:.2}x, std {:.2}, worst layer {:.2}x \
         (paper: mean 1.42x, std 0.32, worst ~0.9x)",
        mean,
        var.sqrt(),
        worst
    );
    println!();
    println!("paper: PRA 5.0x and Diffy 7.1x over VAA with DeltaD16 (nearly");
    println!("       ideal); NoCompression leaves both stalling off-chip.");
}
