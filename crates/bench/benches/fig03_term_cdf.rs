//! Fig. 3: cumulative distribution of effectual terms per activation and
//! per delta, over all CI-DNNs and datasets, plus the average sparsity of
//! both streams.

use diffy_bench::{all_ci_bundles, banner, bench_options};
use diffy_core::summary::TextTable;
use diffy_encoding::delta::delta_rows_wrapping;
use diffy_encoding::terms::{stats_of_acts, TermStats};

fn main() {
    let opts = bench_options();
    banner("Fig. 3", "CDF of effectual terms per activation/delta", &opts);

    let mut raw_all = TermStats::new();
    let mut delta_all = TermStats::new();
    for (_, bundles) in all_ci_bundles(&opts) {
        for b in bundles {
            for l in &b.trace.layers {
                raw_all.merge(&stats_of_acts(&l.imap));
                let d = delta_rows_wrapping(&l.imap, l.geom.stride);
                delta_all.merge(&stats_of_acts(&d));
            }
        }
    }

    let raw_cdf = raw_all.cdf();
    let delta_cdf = delta_all.cdf();
    let mut table = TextTable::new(vec!["terms <=", "raw CDF", "delta CDF"]);
    for i in 0..=9usize {
        table.row(vec![
            i.to_string(),
            format!("{:.3}", raw_cdf.get(i).copied().unwrap_or(1.0)),
            format!("{:.3}", delta_cdf.get(i).copied().unwrap_or(1.0)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "mean terms/value: raw {:.2}, delta {:.2} ({:.2}x reduction)",
        raw_all.mean_terms(),
        delta_all.mean_terms(),
        raw_all.mean_terms() / delta_all.mean_terms().max(1e-9)
    );
    println!(
        "sparsity: raw {:.1}%, delta {:.1}%",
        raw_all.sparsity() * 100.0,
        delta_all.sparsity() * 100.0
    );
    println!("\npaper: raw sparsity 43%, delta sparsity 48%; the delta CDF sits");
    println!("       strictly above the raw CDF (fewer terms per value).");
}
