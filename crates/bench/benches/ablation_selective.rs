//! Ablation (paper §IV-A): profiled *selective* differential convolution
//! — apply DC per layer only where it wins. The paper: "While this
//! eliminated the per layer slowdowns compared to PRA, the overall
//! improvement was negligible and below 1% at best."

use diffy_bench::{all_ci_bundles, banner, bench_options};
use diffy_core::summary::TextTable;
use diffy_sim::{selective_network, term_serial_network, AcceleratorConfig, ValueMode};

fn main() {
    let mut opts = bench_options();
    opts.samples_per_dataset = opts.samples_per_dataset.min(1);
    banner("Ablation (§IV-A)", "always-on vs per-layer selective DC", &opts);

    let cfg = AcceleratorConfig::table4();
    let mut table = TextTable::new(vec![
        "network",
        "Diffy cycles",
        "selective cycles",
        "gain",
        "layers reverted to raw",
    ]);
    for (model, bundles) in all_ci_bundles(&opts) {
        let mut diffy = 0u64;
        let mut sel = 0u64;
        let mut reverted = 0usize;
        let mut layer_total = 0usize;
        for b in &bundles {
            let d = term_serial_network(&b.trace, &cfg, ValueMode::Differential);
            let r = term_serial_network(&b.trace, &cfg, ValueMode::Raw);
            let s = selective_network(&b.trace, &cfg);
            diffy += d.total_cycles();
            sel += s.total_cycles();
            for (dl, rl) in d.layers.iter().zip(r.layers.iter()) {
                layer_total += 1;
                if rl.cycles < dl.cycles {
                    reverted += 1;
                }
            }
        }
        table.row(vec![
            model.name().to_string(),
            diffy.to_string(),
            sel.to_string(),
            format!("{:.2}%", 100.0 * (diffy as f64 - sel as f64) / diffy as f64),
            format!("{reverted}/{layer_total}"),
        ]);
    }
    println!("{}", table.render());
    println!("paper: selective DC removes the rare per-layer slowdowns but the");
    println!("       overall improvement is negligible (below 1%).");
}
