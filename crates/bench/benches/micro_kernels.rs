//! Criterion micro-benchmarks of the library's hot kernels: Booth term
//! counting, the delta transform, storage-scheme encoding, the three
//! convolution implementations, and the term-serial cycle model
//! (reference loop nest vs the group-reduced plane kernel).
//!
//! The term-serial section measures wall time explicitly (the vendored
//! criterion stub has no measurement API) and, when `DIFFY_BENCH_JSON`
//! is set, writes its records plus the headline reference/optimized
//! speedup to that path — the repo commits the full-HD run as
//! `BENCH_term_serial.json`. `DIFFY_BENCH_SMOKE=1` shrinks the workload
//! to seconds for CI. Both kernels are asserted cycle-identical here, so
//! the bench doubles as a divergence gate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use diffy_bench::{bench_smoke, time_kernel, write_bench_json, BenchRecord};
use diffy_core::dc::differential_conv2d;
use diffy_core::runner::{sweep_par, SweepCache, SweepJob, WorkloadOptions};
use diffy_core::{EvalOptions, SchemeChoice};
use diffy_encoding::bitstream::BitWriter;
use diffy_encoding::delta::{delta_rows_wrapping, undelta_rows_wrapping};
use diffy_encoding::precision::Signedness;
use diffy_encoding::{booth_terms, booth_terms_slice, booth_terms_slice_swar, StorageScheme};
use diffy_imaging::datasets::DatasetId;
use diffy_models::{CiModel, LayerTrace};
use diffy_sim::{
    term_serial_layer, term_serial_layer_reference, term_serial_layer_with_terms,
    AcceleratorConfig, Architecture, PaddedTerms, ValueMode,
};
use diffy_tensor::{conv2d, conv2d_fast, conv2d_im2col, ConvGeometry, Tensor3, Tensor4};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn pseudo_values(n: usize) -> Vec<i16> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(6364136223846793005) >> 48) as i16)
        .collect()
}

fn bench_booth(c: &mut Criterion) {
    let values = pseudo_values(64 * 1024);
    let mut g = c.benchmark_group("booth_terms");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("closed_form_64k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &values {
                acc += booth_terms(black_box(v)) as u64;
            }
            acc
        })
    });
    let mut counts = vec![0u8; values.len()];
    g.bench_function("lane_dispatch_64k", |b| {
        b.iter(|| {
            booth_terms_slice(black_box(&values), &mut counts);
            counts[0]
        })
    });
    g.bench_function("lane_swar_64k", |b| {
        b.iter(|| {
            booth_terms_slice_swar(black_box(&values), &mut counts);
            counts[0]
        })
    });
    g.finish();
}

fn bench_delta(c: &mut Criterion) {
    let t = Tensor3::from_vec(16, 64, 64, pseudo_values(16 * 64 * 64));
    let mut g = c.benchmark_group("delta_transform");
    g.throughput(Throughput::Elements(t.len() as u64));
    g.bench_function("wrapping_rows_64x64x16", |b| {
        b.iter(|| delta_rows_wrapping(black_box(&t), 1))
    });
    g.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let row: Vec<i16> = pseudo_values(1024).iter().map(|v| v.unsigned_abs() as i16).collect();
    let mut g = c.benchmark_group("scheme_encode");
    g.throughput(Throughput::Elements(row.len() as u64));
    for scheme in [
        StorageScheme::raw_d(16),
        StorageScheme::delta_d(16),
        StorageScheme::RleZ,
    ] {
        g.bench_function(scheme.to_string(), |b| {
            b.iter(|| {
                let mut w = BitWriter::new();
                scheme.encode_row(black_box(&row), Signedness::Unsigned, &mut w);
                w.finish()
            })
        });
    }
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let imap = Tensor3::from_vec(16, 32, 32, pseudo_values(16 * 32 * 32));
    let fmaps = Tensor4::from_vec(16, 16, 3, 3, pseudo_values(16 * 16 * 9));
    let geom = ConvGeometry::same(3, 3);
    let macs = (16 * 32 * 32 * 16 * 9) as u64;
    let mut g = c.benchmark_group("conv2d_32x32x16_k16");
    g.throughput(Throughput::Elements(macs));
    g.bench_function("reference", |b| {
        b.iter(|| conv2d(black_box(&imap), black_box(&fmaps), None, geom))
    });
    g.bench_function("fast", |b| {
        b.iter(|| conv2d_fast(black_box(&imap), black_box(&fmaps), None, geom))
    });
    g.bench_function("im2col", |b| {
        b.iter(|| conv2d_im2col(black_box(&imap), black_box(&fmaps), None, geom))
    });
    g.bench_function("differential", |b| {
        b.iter(|| differential_conv2d(black_box(&imap), black_box(&fmaps), None, geom))
    });
    g.finish();
}

/// A synthetic HD-resolution layer for the term-serial kernels: 16
/// channels of pseudo-random activations, 16 3×3 filters, same-padded —
/// the shape of a CI-DNN trunk layer at 1080p.
fn term_serial_trace(c: usize, h: usize, w: usize, k: usize) -> LayerTrace {
    let imap = Tensor3::from_vec(c, h, w, pseudo_values(c * h * w));
    LayerTrace {
        name: format!("bench_{c}x{h}x{w}"),
        index: 0,
        fmaps: Tensor4::<i16>::filled(k, c, 3, 3, 1),
        geom: ConvGeometry::same(3, 3),
        relu: true,
        requant_shift: 12,
        requant_bias: 0,
        next_stride: 1,
        imap,
    }
}

fn bench_term_serial(_c: &mut Criterion) {
    let smoke = bench_smoke();
    let (h, w) = if smoke { (96, 96) } else { (1080, 1920) };
    let trace = term_serial_trace(16, h, w, 16);
    let cfg = AcceleratorConfig::table4();
    let windows = (h * w) as u64; // stride-1 same-pad: one window per output
    let min_total = Duration::from_millis(if smoke { 50 } else { 200 });
    let label = |kernel: &str, mode: ValueMode| {
        let m = if mode == ValueMode::Raw { "raw" } else { "diff" };
        format!("term_serial_{h}p_{kernel}_{m}")
    };

    println!("== term-serial cycle-model kernels ({}x{h}x{w}, 16 filters 3x3) ==", 16);
    let mut records: Vec<BenchRecord> = Vec::new();

    // Bulk-kernel micro-records: the scalar closed form vs the
    // lane-parallel Booth paths, each gated byte-identical in-bench
    // before its timing counts, plus the fused delta transform.
    let kvals = pseudo_values(1 << 20);
    let kn = kvals.len() as u64;
    let mut scalar_counts = vec![0u8; kvals.len()];
    let (rec, _) = time_kernel("booth_count_scalar_1m", 3, min_total, Some(kn), || {
        for (d, &v) in scalar_counts.iter_mut().zip(&kvals) {
            *d = booth_terms(black_box(v)) as u8;
        }
    });
    records.push(rec);
    let mut lane_counts = vec![0u8; kvals.len()];
    let (rec, _) = time_kernel("booth_count_lanes_1m", 3, min_total, Some(kn), || {
        booth_terms_slice(black_box(&kvals), &mut lane_counts);
    });
    assert_eq!(scalar_counts, lane_counts, "lane booth kernel diverged from scalar");
    records.push(rec);
    let (rec, _) = time_kernel("booth_count_swar_1m", 3, min_total, Some(kn), || {
        booth_terms_slice_swar(black_box(&kvals), &mut lane_counts);
    });
    assert_eq!(scalar_counts, lane_counts, "SWAR booth kernel diverged from scalar");
    records.push(rec);

    let dt = Tensor3::from_vec(16, 256, 256, pseudo_values(16 * 256 * 256));
    let (rec, dplanes) = time_kernel(
        "delta_transform_wrapping_256x256x16",
        3,
        min_total,
        Some(dt.len() as u64),
        || delta_rows_wrapping(black_box(&dt), 1),
    );
    assert_eq!(
        undelta_rows_wrapping(&dplanes, 1).as_slice(),
        dt.as_slice(),
        "delta transform no longer roundtrips"
    );
    records.push(rec);
    // Release the micro-record buffers before the cold-path loops below;
    // see the record-ordering note there.
    drop(dplanes);
    drop(dt);
    drop(lane_counts);
    drop(scalar_counts);
    drop(kvals);

    // Record ordering matters: the reference/cold records and the
    // standalone build records run while NO other plane set is resident,
    // so each measures what a fresh single evaluation pays. Holding the
    // shared planes (~115 MiB) across these loops defeats the
    // allocator's page recycling — the dropped planes of iteration N
    // stop being reused by iteration N+1 and every build re-faults its
    // working set, inflating the cold records by ~50% with costs no
    // standalone evaluation sees. The shared-plane set is therefore
    // built after them and only the amortized records run against it.
    let mut ref_recs = Vec::new();
    let mut ref_results = Vec::new();
    for mode in [ValueMode::Raw, ValueMode::Differential] {
        let (ref_rec, ref_cycles) =
            time_kernel(&label("reference", mode), 2, min_total, Some(windows), || {
                term_serial_layer_reference(black_box(&trace), &cfg, mode)
            });
        // Cold: builds the planes inside the call, like a single
        // standalone evaluation would.
        let (cold_rec, cold_cycles) =
            time_kernel(&label("planes_cold", mode), 2, min_total, Some(windows), || {
                term_serial_layer(black_box(&trace), &cfg, mode)
            });
        // Divergence gate: the optimized kernel must reproduce the
        // reference cycle/slot accounting bit-for-bit.
        assert_eq!(cold_cycles, ref_cycles, "{mode:?}: cold kernel diverged from reference");
        ref_recs.push((ref_rec, cold_rec));
        ref_results.push(ref_cycles);
    }

    // The once-per-layer plane build, measured on its own so the
    // amortized and cold costs above can be read against it; the grouped
    // variant additionally pays the cold group-max reduction — together
    // they are the cold-path plane cost of one standalone evaluation.
    let (grouped_rec, _) = time_kernel(
        &format!("plane_build_grouped_{h}p"),
        2,
        min_total,
        Some(windows),
        || {
            let t = PaddedTerms::for_layer(&trace);
            t.grouped(cfg.terms_per_group)
        },
    );
    let (build_rec, terms) = time_kernel(
        &format!("plane_build_{h}p"),
        5,
        min_total,
        Some(windows),
        || Arc::new(PaddedTerms::for_layer(&trace)),
    );
    records.push(build_rec);
    records.push(grouped_rec);

    let mut speedup_cold = f64::MAX;
    let mut speedup_kernel = f64::MAX;
    for ((mode, (ref_rec, cold_rec)), ref_cycles) in
        [ValueMode::Raw, ValueMode::Differential].into_iter().zip(ref_recs).zip(ref_results)
    {
        // Amortized: planes prebuilt and shared, the sweep steady state.
        let (warm_rec, warm_cycles) =
            time_kernel(&label("planes_shared", mode), 2, min_total, Some(windows), || {
                term_serial_layer_with_terms(black_box(&trace), &cfg, mode, &terms)
            });
        assert_eq!(warm_cycles, ref_cycles, "{mode:?}: shared kernel diverged from reference");

        speedup_cold = speedup_cold.min(ref_rec.wall_ms / cold_rec.wall_ms);
        speedup_kernel = speedup_kernel.min(ref_rec.wall_ms / warm_rec.wall_ms);
        println!(
            "{:?}: reference {:.1} ms, cold {:.2} ms ({:.1}x), shared {:.2} ms ({:.1}x)",
            mode,
            ref_rec.wall_ms,
            cold_rec.wall_ms,
            ref_rec.wall_ms / cold_rec.wall_ms,
            warm_rec.wall_ms,
            ref_rec.wall_ms / warm_rec.wall_ms,
        );
        records.extend([ref_rec, cold_rec, warm_rec]);
    }

    // One end-to-end sweep: N architectures priced on one trace through
    // the shared cache (trace + planes built once, then reused).
    let opts = if smoke {
        WorkloadOptions::test_small()
    } else {
        WorkloadOptions { resolution: 96, samples_per_dataset: 1, seed: 1 }
    };
    let jobs: Vec<SweepJob> = [Architecture::Vaa, Architecture::Pra, Architecture::Diffy]
        .into_iter()
        .map(|arch| SweepJob {
            model: CiModel::Ircnn,
            dataset: DatasetId::Kodak24,
            sample: 0,
            eval: EvalOptions::new(arch, SchemeChoice::Ideal),
        })
        .collect();
    let (sweep_rec, _) = time_kernel(
        &format!("sweep_3arch_ircnn_{}px", opts.resolution),
        1,
        Duration::ZERO,
        Some(jobs.len() as u64),
        || {
            let cache = SweepCache::new();
            sweep_par(&jobs, &opts, diffy_bench::bench_jobs(), &cache)
        },
    );
    println!(
        "end-to-end sweep ({} jobs, fresh cache): {:.1} ms",
        jobs.len(),
        sweep_rec.wall_ms
    );
    records.push(sweep_rec);

    // Tracing-overhead gate: with the collector disabled (the default),
    // wrapping the kernel in a span must cost nothing measurable — the
    // entire span path is one relaxed atomic load and the args closure
    // is never called. Alternating min-of-rounds cancels drift: each
    // round times a bare batch and a span-wrapped batch back to back,
    // and the minima are compared.
    assert!(
        !diffy_core::trace::enabled(),
        "overhead bench requires the collector off (it is off by default)"
    );
    // The shared-plane kernel is ~0.05ms/call in smoke, ~1.5ms at full
    // HD: size batches so every timed batch spans >=100ms of work and
    // the sub-1% comparison stays above scheduler noise.
    let (rounds, batch) = if smoke { (6u32, 256u32) } else { (9u32, 128u32) };
    let mut bare_min = f64::MAX;
    let mut traced_min = f64::MAX;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        for _ in 0..batch {
            black_box(term_serial_layer_with_terms(black_box(&trace), &cfg, ValueMode::Differential, &terms));
        }
        bare_min = bare_min.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        for _ in 0..batch {
            let _span =
                diffy_core::trace::span_args("tile_sim", || vec![("arch", "bench".into())]);
            black_box(term_serial_layer_with_terms(black_box(&trace), &cfg, ValueMode::Differential, &terms));
        }
        traced_min = traced_min.min(t.elapsed().as_secs_f64());
    }
    let overhead = traced_min / bare_min - 1.0;
    // The gate guards against accidental work on the disabled path — a
    // live span there costs tens of percent, so the budgets only need to
    // sit above timer noise: the row-span walk left full-HD batches a
    // few hundred ms where min-of-rounds still jitters ~1%, hence 2%;
    // smoke batches are milliseconds, so grant noise 10% there.
    let budget = if smoke { 0.10 } else { 0.02 };
    println!(
        "tracing-off span overhead: {:+.3}% (budget {:.0}%)",
        overhead * 100.0,
        budget * 100.0
    );
    assert!(
        overhead < budget,
        "disabled-tracing overhead {:.3}% exceeds the {:.0}% budget",
        overhead * 100.0,
        budget * 100.0
    );
    for (name, min) in
        [("trace_overhead_bare", bare_min), ("trace_overhead_span_wrapped", traced_min)]
    {
        records.push(BenchRecord {
            name: format!("{name}_{h}p"),
            wall_ms: min * 1e3 / batch as f64,
            iters: (rounds * batch) as u64,
            per_second: None,
        });
    }

    println!(
        "headline kernel speedup (shared planes, min over modes): {speedup_kernel:.1}x; \
         cold incl. build: {speedup_cold:.1}x"
    );
    let meta = [
        ("workload", format!("16x{h}x{w} imap, 16 filters 3x3, same pad, stride 1")),
        ("config", "table4 (4 tiles, 16 windows, 16 lanes, T16)".to_string()),
        ("smoke", smoke.to_string()),
        (
            "note",
            "planes_cold includes the per-layer plane build; planes_shared amortizes \
             it as in sweeps; both asserted cycle-identical to reference"
                .to_string(),
        ),
    ];
    let summary = [
        ("speedup_hd", speedup_kernel),
        ("speedup_hd_cold", speedup_cold),
        ("trace_off_overhead_pct", overhead * 100.0),
    ];
    if let Some(path) = write_bench_json("term_serial", &meta, &records, &summary) {
        println!("wrote {}", path.display());
    }
}

criterion_group!(
    benches,
    bench_booth,
    bench_delta,
    bench_schemes,
    bench_conv,
    bench_term_serial
);
criterion_main!(benches);
