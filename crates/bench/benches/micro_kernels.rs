//! Criterion micro-benchmarks of the library's hot kernels: Booth term
//! counting, the delta transform, storage-scheme encoding, and the three
//! convolution implementations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use diffy_core::dc::differential_conv2d;
use diffy_encoding::bitstream::BitWriter;
use diffy_encoding::delta::delta_rows_wrapping;
use diffy_encoding::precision::Signedness;
use diffy_encoding::{booth_terms, StorageScheme};
use diffy_tensor::{conv2d, conv2d_fast, conv2d_im2col, ConvGeometry, Tensor3, Tensor4};
use std::hint::black_box;

fn pseudo_values(n: usize) -> Vec<i16> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(6364136223846793005) >> 48) as i16)
        .collect()
}

fn bench_booth(c: &mut Criterion) {
    let values = pseudo_values(64 * 1024);
    let mut g = c.benchmark_group("booth_terms");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("lookup_64k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &values {
                acc += booth_terms(black_box(v)) as u64;
            }
            acc
        })
    });
    g.finish();
}

fn bench_delta(c: &mut Criterion) {
    let t = Tensor3::from_vec(16, 64, 64, pseudo_values(16 * 64 * 64));
    let mut g = c.benchmark_group("delta_transform");
    g.throughput(Throughput::Elements(t.len() as u64));
    g.bench_function("wrapping_rows_64x64x16", |b| {
        b.iter(|| delta_rows_wrapping(black_box(&t), 1))
    });
    g.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let row: Vec<i16> = pseudo_values(1024).iter().map(|v| v.unsigned_abs() as i16).collect();
    let mut g = c.benchmark_group("scheme_encode");
    g.throughput(Throughput::Elements(row.len() as u64));
    for scheme in [
        StorageScheme::raw_d(16),
        StorageScheme::delta_d(16),
        StorageScheme::RleZ,
    ] {
        g.bench_function(scheme.to_string(), |b| {
            b.iter(|| {
                let mut w = BitWriter::new();
                scheme.encode_row(black_box(&row), Signedness::Unsigned, &mut w);
                w.finish()
            })
        });
    }
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let imap = Tensor3::from_vec(16, 32, 32, pseudo_values(16 * 32 * 32));
    let fmaps = Tensor4::from_vec(16, 16, 3, 3, pseudo_values(16 * 16 * 9));
    let geom = ConvGeometry::same(3, 3);
    let macs = (16 * 32 * 32 * 16 * 9) as u64;
    let mut g = c.benchmark_group("conv2d_32x32x16_k16");
    g.throughput(Throughput::Elements(macs));
    g.bench_function("reference", |b| {
        b.iter(|| conv2d(black_box(&imap), black_box(&fmaps), None, geom))
    });
    g.bench_function("fast", |b| {
        b.iter(|| conv2d_fast(black_box(&imap), black_box(&fmaps), None, geom))
    });
    g.bench_function("im2col", |b| {
        b.iter(|| conv2d_im2col(black_box(&imap), black_box(&fmaps), None, geom))
    });
    g.bench_function("differential", |b| {
        b.iter(|| differential_conv2d(black_box(&imap), black_box(&fmaps), None, geom))
    });
    g.finish();
}

criterion_group!(benches, bench_booth, bench_delta, bench_schemes, bench_conv);
criterion_main!(benches);
