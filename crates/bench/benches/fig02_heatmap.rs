//! Fig. 2: the imap of DnCNN's conv_3 while denoising the Barbara image —
//! raw values vs deltas vs effectual-term reduction.
//!
//! Rendered here as (a) coarse ASCII heatmaps of the mean |value| and
//! mean |delta| per spatial block, and (b) the per-activation term
//! statistics the paper quotes (3.65 raw vs 1.9 delta terms/value on its
//! trace).

use diffy_bench::bench_options;
use diffy_core::runner::WorkloadOptions;
use diffy_encoding::delta::delta_rows_wrapping;
use diffy_encoding::terms::stats_of_acts;
use diffy_imaging::barbara::barbara;
use diffy_models::{run_network, CiModel, NetworkWeights};
use diffy_tensor::{Quantizer, Tensor3};

const GRID: usize = 24;

fn ascii_heatmap(label: &str, plane: &[f64], h: usize, w: usize) {
    println!("{label} ({GRID}x{GRID} blocks, darker = larger):");
    let ramp: Vec<char> = " .:-=+*#%@".chars().collect();
    let max = plane.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    for by in 0..GRID.min(h) {
        let mut line = String::new();
        for bx in 0..GRID.min(w) {
            let v = plane[by * GRID + bx] / max;
            let idx = ((v * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1);
            line.push(ramp[idx]);
            line.push(ramp[idx]);
        }
        println!("  {line}");
    }
    println!();
}

fn block_means(t: &Tensor3<i16>) -> Vec<f64> {
    let s = t.shape();
    let mut sums = vec![0.0f64; GRID * GRID];
    let mut counts = vec![0u64; GRID * GRID];
    for c in 0..s.c {
        for y in 0..s.h {
            for x in 0..s.w {
                let by = y * GRID / s.h;
                let bx = x * GRID / s.w;
                sums[by * GRID + bx] += (*t.at(c, y, x) as f64).abs();
                counts[by * GRID + bx] += 1;
            }
        }
    }
    sums.iter()
        .zip(counts.iter())
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

fn main() {
    let WorkloadOptions { resolution, .. } = bench_options();
    println!("== Fig. 2: spatial correlation of DnCNN conv_3 on Barbara ==");
    println!("workload: {resolution}x{resolution} procedural Barbara stand-in\n");

    let img = barbara(resolution, resolution);
    let model = CiModel::DnCnn;
    let weights =
        NetworkWeights::generate(&model.spec(), model.weight_gen(1), Quantizer::default());
    let input = model.prepare_input(&img, 7);
    let trace = run_network(&model.spec(), &weights, &input);

    // conv_3's input imap (the third convolutional layer).
    let layer = &trace.layers[2];
    let deltas = delta_rows_wrapping(&layer.imap, layer.geom.stride);

    ascii_heatmap("(a) raw imap |values|", &block_means(&layer.imap), GRID, GRID);
    ascii_heatmap("(b) |deltas| (peaks only at edges/stripes)", &block_means(&deltas), GRID, GRID);

    let raw = stats_of_acts(&layer.imap);
    let delta = stats_of_acts(&deltas);
    println!("(c) effectual terms per value:");
    println!("  raw:   {:.2} terms/act (sparsity {:.1}%)", raw.mean_terms(), raw.sparsity() * 100.0);
    println!("  delta: {:.2} terms/val (sparsity {:.1}%)", delta.mean_terms(), delta.sparsity() * 100.0);
    println!(
        "  work reduction from differential processing: {:.2}x",
        raw.mean_terms() / delta.mean_terms().max(1e-9)
    );
    println!("\npaper: 3.65 raw vs 1.9 delta terms per value -> 1.9x on its trace.");
}
