//! Shared plumbing for the table/figure benches.
//!
//! Every bench target under `benches/` regenerates one artefact of the
//! paper (see `diffy_core::experiment::ExperimentId`). The workload size
//! is configurable without recompiling:
//!
//! * `DIFFY_BENCH_RES` — square trace resolution (default 96).
//! * `DIFFY_BENCH_SAMPLES` — samples per dataset (default 2; the original
//!   corpora are larger — the cap is printed, never silent).
//! * `DIFFY_BENCH_JOBS` — worker threads for trace generation (default:
//!   available parallelism). Results are bit-identical and in the same
//!   order at any job count; see `diffy_core::parallel`.
//! * `DIFFY_BENCH_JSON` — when set, benches that measure wall time (the
//!   term-serial section of `micro_kernels`) also write their records to
//!   this path as JSON (see [`bench_json_string`]).
//! * `DIFFY_BENCH_SMOKE` — when set, wall-time benches shrink to a
//!   seconds-scale smoke workload (used by CI to exercise the emitter).

#![warn(missing_docs)]

use diffy_core::parallel::{run_jobs, Jobs};
use diffy_core::runner::{datasets_for, SweepCache, TraceBundle, WorkloadOptions};
use diffy_models::CiModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reads the bench workload options from the environment.
pub fn bench_options() -> WorkloadOptions {
    let resolution = std::env::var("DIFFY_BENCH_RES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96);
    let samples_per_dataset = std::env::var("DIFFY_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    WorkloadOptions { resolution, samples_per_dataset, seed: 1 }
}

/// Reads the bench worker count from `DIFFY_BENCH_JOBS` (default:
/// available parallelism). Job count never changes bench output — only
/// how fast the traces materialize.
pub fn bench_jobs() -> Jobs {
    std::env::var("DIFFY_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_default()
}

/// Prints the standard bench banner: which artefact this regenerates and
/// the workload cap.
pub fn banner(artefact: &str, what: &str, opts: &WorkloadOptions) {
    println!("== {artefact}: {what} ==");
    println!(
        "workload: {}x{} synthetic traces, {} sample(s) per dataset \
         (original corpora are larger; cap set by DIFFY_BENCH_SAMPLES)",
        opts.resolution, opts.resolution, opts.samples_per_dataset
    );
    println!();
}

/// The `(model, dataset, sample)` work-list of one or all models, in the
/// canonical (model-major, dataset-major) order every consumer sees.
fn work_list(models: &[CiModel], opts: &WorkloadOptions) -> Vec<(CiModel, diffy_imaging::datasets::DatasetId, usize)> {
    let mut specs = Vec::new();
    for &model in models {
        for dataset in datasets_for(model) {
            for sample in 0..opts.samples_per_dataset.min(dataset.samples()) {
                specs.push((model, dataset, sample));
            }
        }
    }
    specs
}

/// Traces every Table I model over its datasets at the bench workload,
/// fanning trace generation out over [`bench_jobs`] workers.
///
/// Returns `(model, bundles)` pairs in `CiModel::ALL` order; weights are
/// generated once per model and each trace exactly once, whatever the
/// job count (results are bit-identical to the serial path).
pub fn all_ci_bundles(opts: &WorkloadOptions) -> Vec<(CiModel, Vec<TraceBundle>)> {
    let specs = work_list(&CiModel::ALL, opts);
    let bundles = trace_bundles(&specs, opts, bench_jobs());
    let mut out: Vec<(CiModel, Vec<TraceBundle>)> =
        CiModel::ALL.into_iter().map(|m| (m, Vec::new())).collect();
    for ((model, _, _), bundle) in specs.into_iter().zip(bundles) {
        let slot = out
            .iter_mut()
            .find(|(m, _)| *m == model)
            .expect("model from CiModel::ALL");
        slot.1.push(bundle);
    }
    out
}

/// Traces one model over its datasets at the bench workload (parallel,
/// same order and bit-identical content as the historical serial loop).
pub fn ci_bundles(model: CiModel, opts: &WorkloadOptions) -> Vec<TraceBundle> {
    trace_bundles(&work_list(&[model], opts), opts, bench_jobs())
}

/// Traces an explicit work-list across `par` workers, returning owned
/// bundles in work-list order.
pub fn trace_bundles(
    specs: &[(CiModel, diffy_imaging::datasets::DatasetId, usize)],
    opts: &WorkloadOptions,
    par: Jobs,
) -> Vec<TraceBundle> {
    let cache = SweepCache::new();
    let tasks: Vec<_> = specs
        .iter()
        .map(|&(model, dataset, sample)| {
            let cache = &cache;
            move || cache.bundle(model, dataset, sample, opts)
        })
        .collect();
    run_jobs(tasks, par)
        .into_iter()
        .map(|arc: Arc<TraceBundle>| (*arc).clone())
        .collect()
}

/// Whether wall-time benches should run their seconds-scale smoke
/// workload instead of the full one (`DIFFY_BENCH_SMOKE` set non-empty).
pub fn bench_smoke() -> bool {
    std::env::var("DIFFY_BENCH_SMOKE").is_ok_and(|v| !v.is_empty())
}

// The JSON emitter grew a parser and moved to `diffy_core::json` so the
// evaluation service can share it; re-exported here so existing callers
// (benches, tests) are untouched.
pub use diffy_core::json::{bench_json_string, json_escape, json_number, BenchRecord};

/// Times `f`: one unmeasured warmup call, then iterations until both
/// `min_iters` and `min_total` are reached. Returns the record and the
/// last output, so callers can assert on results without a separate run.
///
/// The vendored criterion stub prints timings but exposes no measurement
/// API, so wall-time benches that feed the JSON emitter measure here.
pub fn time_kernel<T>(
    name: &str,
    min_iters: u64,
    min_total: Duration,
    work_units: Option<u64>,
    mut f: impl FnMut() -> T,
) -> (BenchRecord, T) {
    let _ = f(); // warmup, not measured
    let start = Instant::now();
    let mut last = Some(f());
    let mut iters = 1u64;
    while iters < min_iters.max(1) || start.elapsed() < min_total {
        // Drop the previous output before recomputing: peak memory stays
        // 1× the output size, and the allocator can hand the freed pages
        // straight back instead of faulting in fresh ones.
        drop(last.take());
        last = Some(f());
        iters += 1;
    }
    let last = last.expect("at least one measured iteration");
    let total = start.elapsed().as_secs_f64();
    let record = BenchRecord {
        name: name.to_string(),
        wall_ms: total * 1e3 / iters as f64,
        iters,
        per_second: work_units.map(|u| u as f64 * iters as f64 / total),
    };
    (record, last)
}

/// Writes [`bench_json_string`] to the path named by `DIFFY_BENCH_JSON`,
/// if that variable is set. Returns the path written to, if any.
pub fn write_bench_json(
    bench: &str,
    meta: &[(&str, String)],
    records: &[BenchRecord],
    summary: &[(&str, f64)],
) -> Option<std::path::PathBuf> {
    let path = std::path::PathBuf::from(std::env::var_os("DIFFY_BENCH_JSON")?);
    let doc = bench_json_string(bench, meta, records, summary);
    std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    Some(path)
}

/// Geometric mean of a non-empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_core::runner::{ci_trace_bundle, datasets_for};

    #[test]
    fn json_emitter_renders_valid_structure() {
        let records = vec![
            BenchRecord {
                name: "ref".into(),
                wall_ms: 1200.5,
                iters: 3,
                per_second: Some(2.0e6),
            },
            BenchRecord { name: "opt".into(), wall_ms: 80.0, iters: 10, per_second: None },
        ];
        let doc = bench_json_string(
            "term_serial",
            &[("resolution", "16x1080x1920".to_string())],
            &records,
            &[("speedup_hd", 15.0)],
        );
        assert!(doc.contains("\"bench\": \"term_serial\""));
        assert!(doc.contains("\"resolution\": \"16x1080x1920\""));
        assert!(doc.contains("\"name\": \"ref\", \"wall_ms_per_iter\": 1200.5, \"iters\": 3"));
        assert!(doc.contains("\"per_second\": 2000000.0"));
        assert!(doc.contains("\"speedup_hd\": 15.0"));
        // Integral floats must still read as JSON numbers with a decimal
        // point, and the optional per_second key is really optional.
        assert!(doc.contains("\"wall_ms_per_iter\": 80.0, \"iters\": 10}"));
        // Balanced braces/brackets — cheap well-formedness check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = doc.matches(open).count();
            let closes = doc.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
    }

    #[test]
    fn json_emitter_escapes_strings() {
        let doc = bench_json_string(
            "a\"b\\c\nd",
            &[("k\t", "v\u{1}".to_string())],
            &[],
            &[],
        );
        assert!(doc.contains("\"bench\": \"a\\\"b\\\\c\\nd\""));
        assert!(doc.contains("\"k\\t\": \"v\\u0001\""));
        assert!(doc.contains("\"records\": []"));
    }

    #[test]
    fn time_kernel_measures_and_returns_last_output() {
        let mut calls = 0u64;
        let (rec, out) = time_kernel("tick", 4, Duration::ZERO, Some(100), || {
            calls += 1;
            calls
        });
        assert_eq!(rec.iters, 4);
        assert_eq!(out, 5, "warmup + 4 measured iterations");
        assert_eq!(calls, 5);
        assert!(rec.wall_ms >= 0.0);
        let ps = rec.per_second.expect("work units given");
        assert!(ps > 0.0);
    }

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn options_default_sanely() {
        let o = bench_options();
        assert!(o.resolution >= 16);
        assert!(o.samples_per_dataset >= 1);
        assert!(bench_jobs().get() >= 1);
    }

    #[test]
    fn small_bundle_generation_works() {
        let opts = WorkloadOptions::test_small();
        let bundles = ci_bundles(CiModel::Ircnn, &opts);
        assert_eq!(bundles.len(), datasets_for(CiModel::Ircnn).len());
    }

    #[test]
    fn parallel_bundles_match_serial_reference() {
        let opts = WorkloadOptions::test_small();
        let bundles = ci_bundles(CiModel::JointNet, &opts);
        let mut i = 0;
        for dataset in datasets_for(CiModel::JointNet) {
            for sample in 0..opts.samples_per_dataset.min(dataset.samples()) {
                let fresh = ci_trace_bundle(CiModel::JointNet, dataset, sample, &opts);
                assert_eq!(bundles[i].dataset, fresh.dataset);
                assert_eq!(bundles[i].trace.output, fresh.trace.output);
                i += 1;
            }
        }
        assert_eq!(i, bundles.len());
    }

    #[test]
    fn all_models_grouped_in_table_order() {
        let opts = WorkloadOptions::test_small();
        let all = all_ci_bundles(&opts);
        let models: Vec<CiModel> = all.iter().map(|(m, _)| *m).collect();
        assert_eq!(models, CiModel::ALL.to_vec());
        for (m, bundles) in &all {
            assert_eq!(bundles.len(), datasets_for(*m).len(), "{m}");
        }
    }
}
