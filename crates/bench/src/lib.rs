//! Shared plumbing for the table/figure benches.
//!
//! Every bench target under `benches/` regenerates one artefact of the
//! paper (see `diffy_core::experiment::ExperimentId`). The workload size
//! is configurable without recompiling:
//!
//! * `DIFFY_BENCH_RES` — square trace resolution (default 96).
//! * `DIFFY_BENCH_SAMPLES` — samples per dataset (default 2; the original
//!   corpora are larger — the cap is printed, never silent).


#![warn(missing_docs)]

use diffy_core::runner::{
    ci_trace_bundle_with_weights, ci_weights, datasets_for, TraceBundle, WorkloadOptions,
};
use diffy_models::CiModel;

/// Reads the bench workload options from the environment.
pub fn bench_options() -> WorkloadOptions {
    let resolution = std::env::var("DIFFY_BENCH_RES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96);
    let samples_per_dataset = std::env::var("DIFFY_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    WorkloadOptions { resolution, samples_per_dataset, seed: 1 }
}

/// Prints the standard bench banner: which artefact this regenerates and
/// the workload cap.
pub fn banner(artefact: &str, what: &str, opts: &WorkloadOptions) {
    println!("== {artefact}: {what} ==");
    println!(
        "workload: {}x{} synthetic traces, {} sample(s) per dataset \
         (original corpora are larger; cap set by DIFFY_BENCH_SAMPLES)",
        opts.resolution, opts.resolution, opts.samples_per_dataset
    );
    println!();
}

/// Traces every Table I model over its datasets at the bench workload.
///
/// Returns `(model, bundles)` pairs; weights are generated once per
/// model.
pub fn all_ci_bundles(opts: &WorkloadOptions) -> Vec<(CiModel, Vec<TraceBundle>)> {
    CiModel::ALL
        .into_iter()
        .map(|m| (m, ci_bundles(m, opts)))
        .collect()
}

/// Traces one model over its datasets at the bench workload.
pub fn ci_bundles(model: CiModel, opts: &WorkloadOptions) -> Vec<TraceBundle> {
    let weights = ci_weights(model, opts.seed);
    let mut bundles = Vec::new();
    for dataset in datasets_for(model) {
        for sample in 0..opts.samples_per_dataset.min(dataset.samples()) {
            bundles.push(ci_trace_bundle_with_weights(
                model, &weights, dataset, sample, opts,
            ));
        }
    }
    bundles
}

/// Geometric mean of a non-empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn options_default_sanely() {
        let o = bench_options();
        assert!(o.resolution >= 16);
        assert!(o.samples_per_dataset >= 1);
    }

    #[test]
    fn small_bundle_generation_works() {
        let opts = WorkloadOptions::test_small();
        let bundles = ci_bundles(CiModel::Ircnn, &opts);
        assert_eq!(bundles.len(), diffy_core::runner::datasets_for(CiModel::Ircnn).len());
    }
}
