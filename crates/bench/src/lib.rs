//! Shared plumbing for the table/figure benches.
//!
//! Every bench target under `benches/` regenerates one artefact of the
//! paper (see `diffy_core::experiment::ExperimentId`). The workload size
//! is configurable without recompiling:
//!
//! * `DIFFY_BENCH_RES` — square trace resolution (default 96).
//! * `DIFFY_BENCH_SAMPLES` — samples per dataset (default 2; the original
//!   corpora are larger — the cap is printed, never silent).
//! * `DIFFY_BENCH_JOBS` — worker threads for trace generation (default:
//!   available parallelism). Results are bit-identical and in the same
//!   order at any job count; see `diffy_core::parallel`.

#![warn(missing_docs)]

use diffy_core::parallel::{run_jobs, Jobs};
use diffy_core::runner::{datasets_for, SweepCache, TraceBundle, WorkloadOptions};
use diffy_models::CiModel;
use std::sync::Arc;

/// Reads the bench workload options from the environment.
pub fn bench_options() -> WorkloadOptions {
    let resolution = std::env::var("DIFFY_BENCH_RES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96);
    let samples_per_dataset = std::env::var("DIFFY_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    WorkloadOptions { resolution, samples_per_dataset, seed: 1 }
}

/// Reads the bench worker count from `DIFFY_BENCH_JOBS` (default:
/// available parallelism). Job count never changes bench output — only
/// how fast the traces materialize.
pub fn bench_jobs() -> Jobs {
    std::env::var("DIFFY_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_default()
}

/// Prints the standard bench banner: which artefact this regenerates and
/// the workload cap.
pub fn banner(artefact: &str, what: &str, opts: &WorkloadOptions) {
    println!("== {artefact}: {what} ==");
    println!(
        "workload: {}x{} synthetic traces, {} sample(s) per dataset \
         (original corpora are larger; cap set by DIFFY_BENCH_SAMPLES)",
        opts.resolution, opts.resolution, opts.samples_per_dataset
    );
    println!();
}

/// The `(model, dataset, sample)` work-list of one or all models, in the
/// canonical (model-major, dataset-major) order every consumer sees.
fn work_list(models: &[CiModel], opts: &WorkloadOptions) -> Vec<(CiModel, diffy_imaging::datasets::DatasetId, usize)> {
    let mut specs = Vec::new();
    for &model in models {
        for dataset in datasets_for(model) {
            for sample in 0..opts.samples_per_dataset.min(dataset.samples()) {
                specs.push((model, dataset, sample));
            }
        }
    }
    specs
}

/// Traces every Table I model over its datasets at the bench workload,
/// fanning trace generation out over [`bench_jobs`] workers.
///
/// Returns `(model, bundles)` pairs in `CiModel::ALL` order; weights are
/// generated once per model and each trace exactly once, whatever the
/// job count (results are bit-identical to the serial path).
pub fn all_ci_bundles(opts: &WorkloadOptions) -> Vec<(CiModel, Vec<TraceBundle>)> {
    let specs = work_list(&CiModel::ALL, opts);
    let bundles = trace_bundles(&specs, opts, bench_jobs());
    let mut out: Vec<(CiModel, Vec<TraceBundle>)> =
        CiModel::ALL.into_iter().map(|m| (m, Vec::new())).collect();
    for ((model, _, _), bundle) in specs.into_iter().zip(bundles) {
        let slot = out
            .iter_mut()
            .find(|(m, _)| *m == model)
            .expect("model from CiModel::ALL");
        slot.1.push(bundle);
    }
    out
}

/// Traces one model over its datasets at the bench workload (parallel,
/// same order and bit-identical content as the historical serial loop).
pub fn ci_bundles(model: CiModel, opts: &WorkloadOptions) -> Vec<TraceBundle> {
    trace_bundles(&work_list(&[model], opts), opts, bench_jobs())
}

/// Traces an explicit work-list across `par` workers, returning owned
/// bundles in work-list order.
pub fn trace_bundles(
    specs: &[(CiModel, diffy_imaging::datasets::DatasetId, usize)],
    opts: &WorkloadOptions,
    par: Jobs,
) -> Vec<TraceBundle> {
    let cache = SweepCache::new();
    let tasks: Vec<_> = specs
        .iter()
        .map(|&(model, dataset, sample)| {
            let cache = &cache;
            move || cache.bundle(model, dataset, sample, opts)
        })
        .collect();
    run_jobs(tasks, par)
        .into_iter()
        .map(|arc: Arc<TraceBundle>| (*arc).clone())
        .collect()
}

/// Geometric mean of a non-empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_core::runner::{ci_trace_bundle, datasets_for};

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn options_default_sanely() {
        let o = bench_options();
        assert!(o.resolution >= 16);
        assert!(o.samples_per_dataset >= 1);
        assert!(bench_jobs().get() >= 1);
    }

    #[test]
    fn small_bundle_generation_works() {
        let opts = WorkloadOptions::test_small();
        let bundles = ci_bundles(CiModel::Ircnn, &opts);
        assert_eq!(bundles.len(), datasets_for(CiModel::Ircnn).len());
    }

    #[test]
    fn parallel_bundles_match_serial_reference() {
        let opts = WorkloadOptions::test_small();
        let bundles = ci_bundles(CiModel::JointNet, &opts);
        let mut i = 0;
        for dataset in datasets_for(CiModel::JointNet) {
            for sample in 0..opts.samples_per_dataset.min(dataset.samples()) {
                let fresh = ci_trace_bundle(CiModel::JointNet, dataset, sample, &opts);
                assert_eq!(bundles[i].dataset, fresh.dataset);
                assert_eq!(bundles[i].trace.output, fresh.trace.output);
                i += 1;
            }
        }
        assert_eq!(i, bundles.len());
    }

    #[test]
    fn all_models_grouped_in_table_order() {
        let opts = WorkloadOptions::test_small();
        let all = all_ci_bundles(&opts);
        let models: Vec<CiModel> = all.iter().map(|(m, _)| *m).collect();
        assert_eq!(models, CiModel::ALL.to_vec());
        for (m, bundles) in &all {
            assert_eq!(bundles.len(), datasets_for(*m).len(), "{m}");
        }
    }
}
