//! Floating-point reference inference.
//!
//! The accelerators process 16-bit fixed point; the paper's premise
//! (inherited from Stripes/Proteus) is that 16 bits with per-layer
//! scaling preserve CI-DNN output quality. This module runs the same
//! network in `f32` so that premise can be checked on this codebase:
//! the fixed-point path's outputs should track the float path closely
//! (quantified as signal-to-quantization-noise by the tests and the
//! quantization example).

use crate::graph::ModelSpec;
use crate::layer::LayerSpec;
use crate::weights::{NetworkWeights, WEIGHT_FRAC_BITS};
use diffy_tensor::{ConvGeometry, Quantizer, Tensor3};

/// Runs `spec` in f32, mirroring the fixed-point engine's architecture
/// (same weights, dequantized; same dynamic bias in σ units; per-layer
/// unit-std normalization standing in for the shift calibration).
///
/// Returns the per-layer post-activation feature maps plus the output.
///
/// # Panics
///
/// Same conditions as [`crate::run_network`].
pub fn run_network_f32(
    spec: &ModelSpec,
    weights: &NetworkWeights,
    input: &Tensor3<f32>,
) -> Vec<Tensor3<f32>> {
    assert_eq!(input.shape().c, spec.input_channels, "input channels mismatch");
    let wq = Quantizer::new(WEIGHT_FRAC_BITS);
    let mut current = input.clone();
    let mut maps = Vec::new();
    let mut conv_idx = 0usize;
    for layer in &spec.layers {
        match layer {
            LayerSpec::Conv(c) => {
                let lw = weights.conv(conv_idx);
                let mut acc = conv2d_f32(&current, &lw.fmaps, wq, c.geom);
                // Mirror the dynamic sparsity bias (σ units).
                if lw.dynamic_bias_shift != 0.0 {
                    let std = std_f32(&acc);
                    let bias = lw.dynamic_bias_shift * std;
                    for v in acc.as_mut_slice() {
                        *v += bias;
                    }
                }
                // Mirror the calibration: normalize to unit-ish scale so
                // deep stacks stay conditioned, as the shift does.
                let std = std_f32(&acc).max(1e-12);
                let mut out = acc.map(|v| v / std);
                if c.relu {
                    for v in out.as_mut_slice() {
                        if *v < 0.0 {
                            *v = 0.0;
                        }
                    }
                }
                maps.push(out.clone());
                current = out;
                conv_idx += 1;
            }
            LayerSpec::MaxPool { window } => {
                current = max_pool_f32(&current, *window);
            }
            LayerSpec::Upsample2x => {
                current = upsample2x_f32(&current);
            }
        }
    }
    maps
}

fn conv2d_f32(
    imap: &Tensor3<f32>,
    fmaps: &diffy_tensor::Tensor4<i16>,
    wq: Quantizer,
    geom: ConvGeometry,
) -> Tensor3<f32> {
    let ishape = imap.shape();
    let fshape = fmaps.shape();
    assert_eq!(ishape.c, fshape.c);
    let oh = geom.out_dim(ishape.h, fshape.h);
    let ow = geom.out_dim(ishape.w, fshape.w);
    let mut out = Tensor3::<f32>::new(fshape.k, oh, ow);
    let pad = geom.pad as isize;
    let s = geom.stride as isize;
    let d = geom.dilation as isize;
    for n in 0..fshape.k {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for c in 0..fshape.c {
                    for j in 0..fshape.h {
                        let iy = oy as isize * s - pad + j as isize * d;
                        if iy < 0 || iy as usize >= ishape.h {
                            continue;
                        }
                        for i in 0..fshape.w {
                            let ix = ox as isize * s - pad + i as isize * d;
                            if ix < 0 || ix as usize >= ishape.w {
                                continue;
                            }
                            let w = wq.dequantize(*fmaps.at(n, c, j, i));
                            acc += w * imap.at(c, iy as usize, ix as usize);
                        }
                    }
                }
                *out.at_mut(n, oy, ox) = acc;
            }
        }
    }
    out
}

fn std_f32(t: &Tensor3<f32>) -> f32 {
    if t.is_empty() {
        return 0.0;
    }
    let n = t.len() as f64;
    let mean: f64 = t.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var: f64 = t.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() as f32
}

fn max_pool_f32(t: &Tensor3<f32>, window: usize) -> Tensor3<f32> {
    let s = t.shape();
    let (oh, ow) = (s.h / window, s.w / window);
    let mut out = Tensor3::<f32>::new(s.c, oh, ow);
    for c in 0..s.c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = f32::NEG_INFINITY;
                for j in 0..window {
                    for i in 0..window {
                        m = m.max(*t.at(c, oy * window + j, ox * window + i));
                    }
                }
                *out.at_mut(c, oy, ox) = m;
            }
        }
    }
    out
}

fn upsample2x_f32(t: &Tensor3<f32>) -> Tensor3<f32> {
    let s = t.shape();
    let mut out = Tensor3::<f32>::new(s.c, s.h * 2, s.w * 2);
    for c in 0..s.c {
        for y in 0..s.h {
            for x in 0..s.w {
                let v = *t.at(c, y, x);
                for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    *out.at_mut(c, 2 * y + dy, 2 * x + dx) = v;
                }
            }
        }
    }
    out
}

/// Pearson correlation between a fixed-point feature map and its float
/// reference (scale-free, since the two paths normalize differently).
///
/// Returns 0 for degenerate (constant) inputs.
pub fn correlation(fixed: &Tensor3<i16>, float: &Tensor3<f32>) -> f64 {
    assert_eq!(fixed.shape(), float.shape(), "shape mismatch");
    let n = fixed.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mx: f64 = fixed.iter().map(|&v| v as f64).sum::<f64>() / n;
    let my: f64 = float.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in fixed.iter().zip(float.iter()) {
        let dx = x as f64 - mx;
        let dy = y as f64 - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::run_network;
    use crate::layer::ConvSpec;
    use crate::weights::WeightGen;

    fn spec() -> ModelSpec {
        ModelSpec::new(
            "f",
            1,
            vec![
                LayerSpec::Conv(ConvSpec::same3("c0", 8, true)),
                LayerSpec::Conv(ConvSpec::same3("c1", 8, true)),
                LayerSpec::Conv(ConvSpec::same3("c2", 2, false)),
            ],
        )
    }

    fn inputs() -> (Tensor3<i16>, Tensor3<f32>) {
        let q = Quantizer::default();
        let f: Vec<f32> = (0..24 * 24)
            .map(|i| {
                let x = (i % 24) as f32;
                let y = (i / 24) as f32;
                0.5 + 0.3 * ((x / 5.0).sin() * (y / 7.0).cos())
            })
            .collect();
        let float = Tensor3::from_vec(1, 24, 24, f);
        let fixed = float.map(|v| q.quantize(v));
        (fixed, float)
    }

    #[test]
    fn fixed_point_tracks_float_reference() {
        // The paper's 16-bit premise: per-layer feature maps of the
        // quantized path correlate >0.99 with the float path.
        let s = spec();
        let w = NetworkWeights::generate(&s, WeightGen::new(9), Quantizer::default());
        let (fixed_in, float_in) = inputs();
        let fixed = run_network(&s, &w, &fixed_in);
        let float = run_network_f32(&s, &w, &float_in);
        assert_eq!(float.len(), fixed.layers.len());
        for (i, fmap) in float.iter().enumerate() {
            let fixed_map = fixed.omap(i);
            let r = correlation(fixed_map, fmap);
            assert!(r > 0.99, "layer {i} correlation {r}");
        }
    }

    #[test]
    fn correlation_edge_cases() {
        let a = Tensor3::from_vec(1, 1, 3, vec![1i16, 2, 3]);
        let b = Tensor3::from_vec(1, 1, 3, vec![1.0f32, 2.0, 3.0]);
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c = Tensor3::from_vec(1, 1, 3, vec![3.0f32, 2.0, 1.0]);
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
        let konst = Tensor3::from_vec(1, 1, 3, vec![5i16, 5, 5]);
        assert_eq!(correlation(&konst, &b), 0.0);
    }

    #[test]
    fn float_path_shapes_match_spec() {
        let s = spec();
        let w = NetworkWeights::generate(&s, WeightGen::new(2), Quantizer::default());
        let (_, float_in) = inputs();
        let maps = run_network_f32(&s, &w, &float_in);
        let shapes = s.shapes(24, 24);
        for (i, m) in maps.iter().enumerate() {
            assert_eq!(m.shape(), shapes[i + 1]);
        }
    }
}
