//! Activation traces: the imaps every simulator and compression
//! experiment consumes.

use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

/// The recorded execution of one conv layer.
#[derive(Debug, Clone)]
pub struct LayerTrace {
    /// Layer name from the spec.
    pub name: String,
    /// Conv-layer index (0-based).
    pub index: usize,
    /// The imap this layer consumed (post-activation output of the
    /// previous layer, or the prepared network input).
    pub imap: Tensor3<i16>,
    /// The layer's filters.
    pub fmaps: Tensor4<i16>,
    /// Convolution geometry.
    pub geom: ConvGeometry,
    /// Whether a ReLU followed (determines the omap's signedness).
    pub relu: bool,
    /// The requantization shift the calibration chose for this layer.
    pub requant_shift: u32,
    /// Accumulator-domain bias added before requantization (the
    /// data-dependent sparsity bias of the synthetic weights; zero when
    /// the knob is off). Recorded so downstream emulators can reproduce
    /// the omap bit-exactly.
    pub requant_bias: i64,
    /// Stride of the *next* conv layer, used by Delta_out when writing
    /// this layer's omap as deltas (1 for the last layer).
    pub next_stride: usize,
}

impl LayerTrace {
    /// Output spatial shape of this layer.
    pub fn out_shape(&self) -> diffy_tensor::Shape3 {
        self.geom.out_shape(self.imap.shape(), self.fmaps.shape())
    }

    /// MACs this layer performs.
    pub fn macs(&self) -> u64 {
        let o = self.out_shape();
        let f = self.fmaps.shape();
        (o.c * o.h * o.w) as u64 * (f.c * f.h * f.w) as u64
    }
}

/// The recorded execution of a whole network on one input.
#[derive(Debug, Clone)]
pub struct NetworkTrace {
    /// Model name.
    pub model: String,
    /// Conv layers in execution order.
    pub layers: Vec<LayerTrace>,
    /// The network's final output (after the last layer's activation).
    pub output: Tensor3<i16>,
}

impl NetworkTrace {
    /// Total MACs across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Total activation count across all imaps (the value population the
    /// compression experiments measure).
    pub fn total_activations(&self) -> u64 {
        self.layers.iter().map(|l| l.imap.len() as u64).sum()
    }

    /// The omap of layer `i`: the imap of layer `i + 1`, or the network
    /// output for the last layer.
    ///
    /// The inference engine guarantees adjacency (pool/upsample stages
    /// between convs are folded into the next layer's imap), so the omap
    /// as written to AM by Delta_out is approximated by the next imap —
    /// exact for all CI-DNNs, which are purely convolutional.
    pub fn omap(&self, i: usize) -> &Tensor3<i16> {
        if i + 1 < self.layers.len() {
            &self.layers[i + 1].imap
        } else {
            &self.output
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_tensor::Shape3;

    fn mk_layer(index: usize, imap: Tensor3<i16>) -> LayerTrace {
        let c = imap.shape().c;
        LayerTrace {
            name: format!("conv_{index}"),
            index,
            imap,
            fmaps: Tensor4::<i16>::filled(2, c, 3, 3, 1),
            geom: ConvGeometry::same(3, 3),
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    #[test]
    fn out_shape_and_macs() {
        let l = mk_layer(0, Tensor3::<i16>::new(3, 4, 5));
        assert_eq!(l.out_shape(), Shape3::new(2, 4, 5));
        assert_eq!(l.macs(), (2 * 4 * 5) as u64 * 27);
    }

    #[test]
    fn network_trace_accessors() {
        let l0 = mk_layer(0, Tensor3::<i16>::filled(3, 4, 4, 1));
        let l1 = mk_layer(1, Tensor3::<i16>::filled(2, 4, 4, 2));
        let out = Tensor3::<i16>::filled(2, 4, 4, 3);
        let t = NetworkTrace { model: "m".into(), layers: vec![l0, l1], output: out };
        assert_eq!(t.total_activations(), 48 + 32);
        assert_eq!(t.omap(0).as_slice()[0], 2);
        assert_eq!(t.omap(1).as_slice()[0], 3);
        assert!(t.total_macs() > 0);
    }
}
