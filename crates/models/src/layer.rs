//! Layer specifications.

use diffy_tensor::ConvGeometry;

/// A convolutional layer: `k` square `f × f` filters over the incoming
/// channel count, with optional fused ReLU.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Human-readable layer name (e.g. `conv_3`).
    pub name: String,
    /// Number of output channels `K`.
    pub out_channels: usize,
    /// Square filter side `F` (`Fh == Fw == F`).
    pub filter: usize,
    /// Stride / padding / dilation.
    pub geom: ConvGeometry,
    /// Whether a ReLU follows the convolution.
    pub relu: bool,
}

impl ConvSpec {
    /// A 3×3 stride-1 same-padded conv — the CI-DNN workhorse.
    pub fn same3(name: impl Into<String>, out_channels: usize, relu: bool) -> Self {
        Self {
            name: name.into(),
            out_channels,
            filter: 3,
            geom: ConvGeometry::same(3, 3),
            relu,
        }
    }

    /// A dilated 3×3 same-padded conv (IRCNN style).
    pub fn dilated3(name: impl Into<String>, out_channels: usize, dilation: usize, relu: bool) -> Self {
        Self {
            name: name.into(),
            out_channels,
            filter: 3,
            geom: ConvGeometry::same_dilated(3, dilation),
            relu,
        }
    }

    /// Total weights of this layer for `in_channels` incoming channels.
    pub fn weight_count(&self, in_channels: usize) -> usize {
        self.out_channels * in_channels * self.filter * self.filter
    }

    /// Size in bytes of a single filter at 16-bit weights.
    pub fn filter_bytes(&self, in_channels: usize) -> usize {
        in_channels * self.filter * self.filter * 2
    }

    /// Size in bytes of all this layer's filters at 16-bit weights
    /// (Table I's "total filter size per layer").
    pub fn total_filter_bytes(&self, in_channels: usize) -> usize {
        self.out_channels * self.filter_bytes(in_channels)
    }
}

/// One layer of a model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LayerSpec {
    /// A convolution (the only layer kind the accelerators execute).
    Conv(ConvSpec),
    /// Non-overlapping max pooling (classification models).
    MaxPool {
        /// Square window/stride.
        window: usize,
    },
    /// 2× nearest-neighbour upsampling (decoder halves).
    Upsample2x,
}

impl LayerSpec {
    /// Convenience accessor: the conv spec if this is a conv layer.
    pub fn as_conv(&self) -> Option<&ConvSpec> {
        match self {
            LayerSpec::Conv(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same3_has_unit_stride_and_pad_one() {
        let c = ConvSpec::same3("c", 64, true);
        assert_eq!(c.geom.stride, 1);
        assert_eq!(c.geom.pad, 1);
        assert_eq!(c.geom.dilation, 1);
        assert!(c.relu);
    }

    #[test]
    fn dilated3_pads_to_preserve_size() {
        let c = ConvSpec::dilated3("c", 64, 4, true);
        assert_eq!(c.geom.dilation, 4);
        assert_eq!(c.geom.pad, 4);
        assert_eq!(c.geom.out_dim(57, 3), 57);
    }

    #[test]
    fn table1_filter_sizes() {
        // 64-channel 3x3 filter = 1.125 KB; 64 of them = 72 KB (Table I,
        // DnCNN/IRCNN/VDSR columns).
        let c = ConvSpec::same3("c", 64, true);
        assert_eq!(c.filter_bytes(64), 1152);
        assert_eq!(c.total_filter_bytes(64), 73_728);
        assert_eq!(c.weight_count(64), 36_864);
    }

    #[test]
    fn as_conv_filters_non_conv_layers() {
        assert!(LayerSpec::MaxPool { window: 2 }.as_conv().is_none());
        assert!(LayerSpec::Conv(ConvSpec::same3("c", 8, false)).as_conv().is_some());
    }
}
