//! Model zoo and fixed-point inference engine.
//!
//! Implements every network the paper evaluates:
//!
//! * The five CI-DNNs of Table I — DnCNN, FFDNet, IRCNN, JointNet and VDSR
//!   ([`zoo::ci`]).
//! * The classification/detection models of Fig. 19 — AlexNet, VGG16, a
//!   ResNet-18-style stack, FCN_Seg, YOLOv2 and SegNet ([`zoo::classify`]).
//!
//! Since pretrained checkpoints are unavailable offline, weights are
//! generated synthetically ([`weights`]): He-scaled Gaussians with a
//! controllable bias shift that sets the post-ReLU sparsity (used to
//! reproduce VDSR's documented high activation sparsity) and optional
//! magnitude sparsification (used by the SCNN comparison, Fig. 20).
//! DESIGN.md §2 explains why this preserves the behaviour Diffy exploits.
//!
//! The [`inference`] engine executes a [`graph::ModelSpec`] in 16-bit
//! fixed point with per-layer requantization calibration and produces a
//! [`trace::NetworkTrace`] — the per-layer imaps every simulator and
//! compression experiment in this reproduction consumes.


#![warn(missing_docs)]

pub mod float_ref;
pub mod graph;
pub mod inference;
pub mod layer;
pub mod streaming;
pub mod trace;
pub mod weights;
pub mod zoo;

pub use graph::ModelSpec;
pub use inference::run_network;
pub use layer::{ConvSpec, LayerSpec};
pub use streaming::{run_network_streaming, CollectTrace, LayerStatsSink, TraceSink};
pub use trace::{LayerTrace, NetworkTrace};
pub use weights::{NetworkWeights, WeightGen};
pub use zoo::ci::CiModel;
pub use zoo::classify::ClassModel;
