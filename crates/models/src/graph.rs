//! Sequential model graphs with shape inference and work accounting.

use crate::layer::{ConvSpec, LayerSpec};
use diffy_tensor::Shape3;

/// A sequential CNN: an input channel count plus a list of layers.
///
/// All models the paper studies are sequential at the granularity the
/// accelerator sees (inception blocks and residual stacks are flattened
/// into their constituent convolutions; see `zoo::classify`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Model name as the paper spells it (e.g. "DnCNN").
    pub name: String,
    /// Channels of the prepared input imap.
    pub input_channels: usize,
    /// The layer stack.
    pub layers: Vec<LayerSpec>,
    /// Spatial scale of the prepared input relative to the source image
    /// (e.g. 2 means the model runs at half resolution, like FFDNet).
    pub input_downscale: usize,
}

impl ModelSpec {
    /// Creates a model with a full-resolution input.
    pub fn new(name: impl Into<String>, input_channels: usize, layers: Vec<LayerSpec>) -> Self {
        Self { name: name.into(), input_channels, layers, input_downscale: 1 }
    }

    /// Number of convolutional layers (Table I row "Conv. Layers").
    pub fn conv_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.as_conv().is_some()).count()
    }

    /// Number of ReLU activations (Table I row "ReLU Layers").
    pub fn relu_layers(&self) -> usize {
        self.layers
            .iter()
            .filter_map(|l| l.as_conv())
            .filter(|c| c.relu)
            .count()
    }

    /// Per-layer input shapes given the prepared input's spatial size.
    /// Entry `i` is the shape flowing *into* layer `i`; the final entry is
    /// the output shape.
    ///
    /// # Panics
    ///
    /// Panics if a layer produces an empty shape (input too small).
    pub fn shapes(&self, h: usize, w: usize) -> Vec<Shape3> {
        let mut shapes = Vec::with_capacity(self.layers.len() + 1);
        let mut cur = Shape3::new(self.input_channels, h, w);
        shapes.push(cur);
        for (i, layer) in self.layers.iter().enumerate() {
            cur = match layer {
                LayerSpec::Conv(c) => {
                    let out = Shape3::new(
                        c.out_channels,
                        c.geom.out_dim(cur.h, c.filter),
                        c.geom.out_dim(cur.w, c.filter),
                    );
                    assert!(!out.is_empty(), "layer {i} ({}) produces empty output", self.name);
                    out
                }
                LayerSpec::MaxPool { window } => {
                    Shape3::new(cur.c, cur.h / window, cur.w / window)
                }
                LayerSpec::Upsample2x => Shape3::new(cur.c, cur.h * 2, cur.w * 2),
            };
            shapes.push(cur);
        }
        shapes
    }

    /// Multiply-accumulate operations of every conv layer at the given
    /// prepared-input size, in layer order.
    pub fn macs_per_layer(&self, h: usize, w: usize) -> Vec<u64> {
        let shapes = self.shapes(h, w);
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_conv().map(|c| (i, c)))
            .map(|(i, c)| {
                let input = shapes[i];
                let out = shapes[i + 1];
                (out.c * out.h * out.w) as u64 * (input.c * c.filter * c.filter) as u64
            })
            .collect()
    }

    /// Total MACs at the given prepared-input size.
    pub fn total_macs(&self, h: usize, w: usize) -> u64 {
        self.macs_per_layer(h, w).iter().sum()
    }

    /// Largest single filter in bytes (Table I "Max Filter Size").
    pub fn max_filter_bytes(&self, h: usize, w: usize) -> usize {
        self.conv_iter(h, w)
            .map(|(in_c, c)| c.filter_bytes(in_c))
            .max()
            .unwrap_or(0)
    }

    /// Largest per-layer total filter size in bytes (Table I "Max Total
    /// Filter Size per Layer").
    pub fn max_total_filter_bytes(&self, h: usize, w: usize) -> usize {
        self.conv_iter(h, w)
            .map(|(in_c, c)| c.total_filter_bytes(in_c))
            .max()
            .unwrap_or(0)
    }

    /// Total weight bytes across all conv layers.
    pub fn total_weight_bytes(&self, h: usize, w: usize) -> usize {
        self.conv_iter(h, w).map(|(in_c, c)| c.total_filter_bytes(in_c)).sum()
    }

    /// Iterator over `(input_channels, conv_spec)` for every conv layer.
    fn conv_iter(&self, h: usize, w: usize) -> impl Iterator<Item = (usize, &ConvSpec)> {
        let shapes = self.shapes(h, w);
        self.layers
            .iter()
            .enumerate()
            .filter_map(move |(i, l)| l.as_conv().map(|c| (shapes[i].c, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ConvSpec;

    fn tiny_model() -> ModelSpec {
        ModelSpec::new(
            "tiny",
            3,
            vec![
                LayerSpec::Conv(ConvSpec::same3("c1", 8, true)),
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Conv(ConvSpec::same3("c2", 4, false)),
                LayerSpec::Upsample2x,
            ],
        )
    }

    #[test]
    fn layer_counters() {
        let m = tiny_model();
        assert_eq!(m.conv_layers(), 2);
        assert_eq!(m.relu_layers(), 1);
    }

    #[test]
    fn shape_inference_through_pool_and_upsample() {
        let m = tiny_model();
        let shapes = m.shapes(8, 12);
        assert_eq!(shapes[0].as_tuple(), (3, 8, 12));
        assert_eq!(shapes[1].as_tuple(), (8, 8, 12)); // same conv
        assert_eq!(shapes[2].as_tuple(), (8, 4, 6)); // pool
        assert_eq!(shapes[3].as_tuple(), (4, 4, 6)); // conv
        assert_eq!(shapes[4].as_tuple(), (4, 8, 12)); // upsample
    }

    #[test]
    fn macs_match_hand_computation() {
        let m = tiny_model();
        let macs = m.macs_per_layer(8, 12);
        // c1: out 8x8x12, per-output work 3*3*3 = 27.
        assert_eq!(macs[0], (8 * 8 * 12) as u64 * 27);
        // c2: out 4x4x6, per-output work 8*3*3 = 72.
        assert_eq!(macs[1], (4 * 4 * 6) as u64 * 72);
        assert_eq!(m.total_macs(8, 12), macs[0] + macs[1]);
    }

    #[test]
    fn filter_size_accounting() {
        let m = tiny_model();
        // c2 sees 8 input channels: filter 8*9*2 = 144 B, total 4*144 B.
        assert_eq!(m.max_filter_bytes(8, 12), 144);
        // c1: 8 filters x 54 B = 432; c2: 4 filters x 144 B = 576 -> max 576.
        assert_eq!(m.max_total_filter_bytes(8, 12), 576);
        assert_eq!(m.total_weight_bytes(8, 12), 432 + 576);
    }

    #[test]
    #[should_panic(expected = "empty output")]
    fn too_small_input_panics() {
        let m = ModelSpec::new(
            "bad",
            1,
            vec![LayerSpec::Conv(ConvSpec {
                name: "c".into(),
                out_channels: 1,
                filter: 5,
                geom: diffy_tensor::ConvGeometry::unit(),
                relu: false,
            })],
        );
        let _ = m.shapes(3, 3);
    }
}
