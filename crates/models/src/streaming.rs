//! Streaming inference: consume each layer's activations as they are
//! produced instead of retaining the whole trace.
//!
//! A full [`crate::NetworkTrace`] of DnCNN at 96×96 holds ~24 MB of
//! imaps; at higher resolutions or long sweeps that multiplies quickly.
//! [`run_network_streaming`] walks the same fixed-point execution but
//! hands every layer to a [`TraceSink`] and then drops it, so
//! statistics-only consumers (entropy, term CDFs, footprints) run in
//! O(one layer) memory.
//!
//! The full-trace path is a special case: [`CollectTrace`] is the sink
//! that rebuilds a `NetworkTrace`, and equivalence between the two paths
//! is tested below.

use crate::graph::ModelSpec;
use crate::inference::run_network;
use crate::trace::{LayerTrace, NetworkTrace};
use crate::weights::NetworkWeights;
use diffy_tensor::Tensor3;

/// Receives layers as they complete.
pub trait TraceSink {
    /// Called once per conv layer, in execution order. `layer.imap` is
    /// the layer's input; `omap` its post-activation output.
    fn layer(&mut self, layer: &LayerTrace, omap: &Tensor3<i16>);

    /// Called once with the network's final output.
    fn finish(&mut self, output: &Tensor3<i16>);
}

/// Runs `spec` on `input`, streaming layers into `sink`.
///
/// Semantically identical to [`run_network`] (same arithmetic, same
/// calibration); the difference is purely memory lifetime.
///
/// # Panics
///
/// Same conditions as [`run_network`].
pub fn run_network_streaming<S: TraceSink>(
    spec: &ModelSpec,
    weights: &NetworkWeights,
    input: &Tensor3<i16>,
    sink: &mut S,
) {
    // One authoritative execution path: reuse run_network and stream the
    // resulting layers. Layer tensors are dropped as the sink consumes
    // them, which is what bounds peak memory for statistics sinks.
    //
    // (A fully incremental implementation would duplicate the engine's
    // calibration logic; keeping a single path guarantees the two APIs
    // can never diverge numerically. The trace is consumed layer by
    // layer and freed as we go.)
    let trace = run_network(spec, weights, input);
    let NetworkTrace { layers, output, .. } = trace;
    let mut layers = layers.into_iter().peekable();
    while let Some(layer) = layers.next() {
        let omap_owned;
        let omap: &Tensor3<i16> = match layers.peek() {
            Some(next) => &next.imap,
            None => {
                omap_owned = output.clone();
                &omap_owned
            }
        };
        sink.layer(&layer, omap);
        // `layer` (and its imap) dropped here.
    }
    sink.finish(&output);
}

/// A sink that rebuilds the full [`NetworkTrace`].
#[derive(Debug, Default)]
pub struct CollectTrace {
    layers: Vec<LayerTrace>,
    output: Option<Tensor3<i16>>,
    model: String,
}

impl CollectTrace {
    /// Creates an empty collector for the given model name.
    pub fn new(model: impl Into<String>) -> Self {
        Self { layers: Vec::new(), output: None, model: model.into() }
    }

    /// Consumes the collector, returning the trace.
    ///
    /// # Panics
    ///
    /// Panics if the run never finished.
    pub fn into_trace(self) -> NetworkTrace {
        NetworkTrace {
            model: self.model,
            layers: self.layers,
            output: self.output.expect("streaming run did not finish"),
        }
    }
}

impl TraceSink for CollectTrace {
    fn layer(&mut self, layer: &LayerTrace, _omap: &Tensor3<i16>) {
        self.layers.push(layer.clone());
    }

    fn finish(&mut self, output: &Tensor3<i16>) {
        self.output = Some(output.clone());
    }
}

/// A memory-light sink gathering the per-layer statistics the motivation
/// figures need: value counts, zero counts, and byte totals under raw
/// 16-bit storage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LayerStatsSink {
    /// Total activations across all imaps.
    pub activations: u64,
    /// Zero activations across all imaps.
    pub zeros: u64,
    /// Conv layers seen.
    pub layers: usize,
    /// Total MACs.
    pub macs: u64,
}

impl TraceSink for LayerStatsSink {
    fn layer(&mut self, layer: &LayerTrace, _omap: &Tensor3<i16>) {
        self.activations += layer.imap.len() as u64;
        self.zeros += layer.imap.iter().filter(|&&v| v == 0).count() as u64;
        self.layers += 1;
        self.macs += layer.macs();
    }

    fn finish(&mut self, _output: &Tensor3<i16>) {}
}

impl LayerStatsSink {
    /// Fraction of zero activations.
    pub fn sparsity(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            self.zeros as f64 / self.activations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvSpec, LayerSpec};
    use crate::weights::WeightGen;
    use diffy_tensor::Quantizer;

    fn spec() -> ModelSpec {
        ModelSpec::new(
            "s",
            1,
            vec![
                LayerSpec::Conv(ConvSpec::same3("c0", 6, true)),
                LayerSpec::Conv(ConvSpec::same3("c1", 2, false)),
            ],
        )
    }

    fn input() -> Tensor3<i16> {
        Tensor3::from_vec(1, 8, 8, (0..64).map(|v| (v * 3) as i16).collect())
    }

    #[test]
    fn streaming_collect_equals_batch_trace() {
        let s = spec();
        let w = NetworkWeights::generate(&s, WeightGen::new(5), Quantizer::default());
        let batch = run_network(&s, &w, &input());
        let mut sink = CollectTrace::new("s");
        run_network_streaming(&s, &w, &input(), &mut sink);
        let streamed = sink.into_trace();
        assert_eq!(streamed.layers.len(), batch.layers.len());
        assert_eq!(streamed.output, batch.output);
        for (a, b) in streamed.layers.iter().zip(batch.layers.iter()) {
            assert_eq!(a.imap, b.imap);
            assert_eq!(a.requant_shift, b.requant_shift);
            assert_eq!(a.next_stride, b.next_stride);
        }
    }

    #[test]
    fn stats_sink_counts_match_trace() {
        let s = spec();
        let w = NetworkWeights::generate(&s, WeightGen::new(5), Quantizer::default());
        let batch = run_network(&s, &w, &input());
        let mut sink = LayerStatsSink::default();
        run_network_streaming(&s, &w, &input(), &mut sink);
        assert_eq!(sink.layers, 2);
        assert_eq!(sink.activations, batch.total_activations());
        assert_eq!(sink.macs, batch.total_macs());
        assert!((0.0..=1.0).contains(&sink.sparsity()));
    }

    #[test]
    fn omap_argument_is_the_next_layers_imap() {
        struct Check {
            prev_omap: Option<Tensor3<i16>>,
        }
        impl TraceSink for Check {
            fn layer(&mut self, layer: &LayerTrace, omap: &Tensor3<i16>) {
                if let Some(prev) = self.prev_omap.take() {
                    assert_eq!(prev, layer.imap, "omap chain broken");
                }
                self.prev_omap = Some(omap.clone());
            }
            fn finish(&mut self, output: &Tensor3<i16>) {
                assert_eq!(self.prev_omap.as_ref(), Some(output));
            }
        }
        let s = spec();
        let w = NetworkWeights::generate(&s, WeightGen::new(5), Quantizer::default());
        run_network_streaming(&s, &w, &input(), &mut Check { prev_omap: None });
    }
}
