//! The five computational-imaging DNNs of Table I.
//!
//! | Network  | Conv | ReLU | Task |
//! |----------|------|------|------|
//! | DnCNN    | 20   | 19   | image denoising |
//! | FFDNet   | 10   | 9    | denoising on packed half-res input + noise map |
//! | IRCNN    | 7    | 6    | denoising with dilated (1-2-3-4-3-2-1) filters |
//! | JointNet | 19   | 16   | joint demosaicking + denoising |
//! | VDSR     | 20   | 19   | single-image super-resolution (high sparsity) |
//!
//! Each model knows how to *prepare* its input from a clean RGB image
//! (adding noise, mosaicking, packing, degrading — the degradation model
//! of its task) and which weight-generation knobs reproduce its documented
//! activation statistics (VDSR's high sparsity in particular, §IV-A).

use crate::graph::ModelSpec;
use crate::layer::{ConvSpec, LayerSpec};
use crate::weights::WeightGen;
use diffy_tensor::{Quantizer, Tensor3};

/// Noise level used by the denoising pipelines (σ in `[0,1]` units,
/// equivalent to σ=25 on 8-bit images — the standard benchmark setting).
pub const NOISE_SIGMA: f32 = 0.1;

/// One of the five CI-DNNs of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CiModel {
    /// 20-layer residual denoiser.
    DnCnn,
    /// 10-layer denoiser on a packed 15-channel half-resolution input.
    FfdNet,
    /// 7-layer dilated denoiser.
    Ircnn,
    /// 19-layer joint demosaicking + denoising network.
    JointNet,
    /// 20-layer super-resolution network.
    Vdsr,
}

impl CiModel {
    /// All models in Table I order.
    pub const ALL: [CiModel; 5] = [
        CiModel::DnCnn,
        CiModel::FfdNet,
        CiModel::Ircnn,
        CiModel::JointNet,
        CiModel::Vdsr,
    ];

    /// The model's name as the paper spells it.
    pub fn name(&self) -> &'static str {
        match self {
            CiModel::DnCnn => "DnCNN",
            CiModel::FfdNet => "FFDNet",
            CiModel::Ircnn => "IRCNN",
            CiModel::JointNet => "JointNet",
            CiModel::Vdsr => "VDSR",
        }
    }

    /// The layer stack.
    pub fn spec(&self) -> ModelSpec {
        match self {
            CiModel::DnCnn => plain_stack("DnCNN", 3, 64, 20, 3),
            CiModel::FfdNet => {
                let mut m = plain_stack("FFDNet", 15, 96, 10, 12);
                m.input_downscale = 2;
                m
            }
            CiModel::Ircnn => {
                let dilations = [1usize, 2, 3, 4, 3, 2, 1];
                let layers: Vec<LayerSpec> = dilations
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| {
                        let last = i == dilations.len() - 1;
                        LayerSpec::Conv(ConvSpec::dilated3(
                            format!("conv_{}", i + 1),
                            if last { 3 } else { 64 },
                            d,
                            !last,
                        ))
                    })
                    .collect();
                ModelSpec::new("IRCNN", 3, layers)
            }
            CiModel::JointNet => {
                let mut layers = Vec::new();
                layers.push(LayerSpec::Conv(ConvSpec::same3("conv_1", 64, true)));
                for i in 2..=16 {
                    layers.push(LayerSpec::Conv(ConvSpec::same3(format!("conv_{i}"), 64, true)));
                }
                // Feature-expansion pair (the 144 KB layers of Table I),
                // then the 12-channel packed output; all linear so the
                // ReLU count matches Table I's 16.
                layers.push(LayerSpec::Conv(ConvSpec::same3("conv_17", 128, false)));
                layers.push(LayerSpec::Conv(ConvSpec::same3("conv_18", 64, false)));
                layers.push(LayerSpec::Conv(ConvSpec::same3("conv_19", 12, false)));
                let mut m = ModelSpec::new("JointNet", 4, layers);
                m.input_downscale = 2;
                m
            }
            CiModel::Vdsr => plain_stack("VDSR", 3, 64, 20, 3),
        }
    }

    /// Weight-generation options reproducing the model's documented
    /// activation statistics.
    pub fn weight_gen(&self, seed: u64) -> WeightGen {
        // Imaging filters are predominantly low-pass (they reconstruct
        // image structure), so all CI models get strong kernel
        // smoothing; see DESIGN.md §2.1.
        let base = WeightGen::new(seed ^ model_ordinal(*self) as u64).with_kernel_smoothness(0.7);
        match self {
            // "VDSR exhibits high activation sparsity in the intermediate
            // layers" (§IV-A): push pre-activations below zero.
            CiModel::Vdsr => base.with_bias_shift(-0.42),
            // Slight positive shift for the rest lands the average raw
            // sparsity near the ~43% of Fig. 3.
            _ => base.with_bias_shift(0.18),
        }
    }

    /// Prepares the model's input imap from a clean `[0,1]` RGB image
    /// (3 × H × W), applying the task's degradation model. `seed`
    /// randomizes the degradation (noise draw).
    ///
    /// # Panics
    ///
    /// Panics if the image is not 3-channel or is smaller than 2×2.
    pub fn prepare_input(&self, clean: &Tensor3<f32>, seed: u64) -> Tensor3<i16> {
        use diffy_imaging_shim::*;
        let s = clean.shape();
        assert_eq!(s.c, 3, "CI models expect RGB input");
        assert!(s.h >= 2 && s.w >= 2, "image too small");
        // Even dimensions for the half-resolution models.
        let clean = trim_even(clean);
        let q = Quantizer::default();
        match self {
            CiModel::DnCnn | CiModel::Ircnn => to_fixed(&add_noise(&clean, seed), q),
            CiModel::FfdNet => {
                let noisy = add_noise(&clean, seed);
                let packed = space_to_depth_f32(&noisy, 2); // 12 channels
                let with_sigma = append_constant_channels(&packed, 3, NOISE_SIGMA);
                to_fixed(&with_sigma, q)
            }
            CiModel::JointNet => {
                let noisy = add_noise(&clean, seed);
                let mosaic = bayer(&noisy);
                to_fixed(&pack(&mosaic), q)
            }
            CiModel::Vdsr => to_fixed(&degrade(&clean, 2), q),
        }
    }
}

fn model_ordinal(m: CiModel) -> usize {
    CiModel::ALL.iter().position(|&x| x == m).expect("in ALL")
}

impl std::fmt::Display for CiModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A plain stack of same-padded 3×3 convs: `in -> hidden x (n-1) -> out`,
/// ReLU everywhere except the final layer.
fn plain_stack(
    name: &str,
    input_channels: usize,
    hidden: usize,
    convs: usize,
    out_channels: usize,
) -> ModelSpec {
    assert!(convs >= 2);
    let mut layers = Vec::with_capacity(convs);
    for i in 0..convs {
        let last = i == convs - 1;
        layers.push(LayerSpec::Conv(ConvSpec::same3(
            format!("conv_{}", i + 1),
            if last { out_channels } else { hidden },
            !last,
        )));
    }
    ModelSpec::new(name, input_channels, layers)
}

/// Local image-processing helpers. The imaging crate cannot be a
/// dependency here (it would create a cycle once core ties everything
/// together is not an issue, but models is deliberately independent of
/// the dataset generators), so the few degradations the zoo needs are
/// implemented in terms of `diffy_tensor` directly.
mod diffy_imaging_shim {
    use diffy_tensor::{Quantizer, Tensor3};

    pub fn to_fixed(img: &Tensor3<f32>, q: Quantizer) -> Tensor3<i16> {
        img.map(|v| q.quantize(v))
    }

    pub fn trim_even(img: &Tensor3<f32>) -> Tensor3<f32> {
        let s = img.shape();
        let (h, w) = (s.h & !1, s.w & !1);
        if (h, w) == (s.h, s.w) {
            return img.clone();
        }
        let mut out = Tensor3::<f32>::new(s.c, h, w);
        for c in 0..s.c {
            for y in 0..h {
                for x in 0..w {
                    *out.at_mut(c, y, x) = *img.at(c, y, x);
                }
            }
        }
        out
    }

    /// Deterministic pseudo-Gaussian noise from a hash of the pixel
    /// coordinate and seed (12-term Irwin–Hall sum).
    pub fn add_noise(img: &Tensor3<f32>, seed: u64) -> Tensor3<f32> {
        let s = img.shape();
        let mut out = img.clone();
        for c in 0..s.c {
            for y in 0..s.h {
                for x in 0..s.w {
                    let mut h = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(((c * s.h + y) * s.w + x) as u64);
                    let mut sum = 0.0f32;
                    for _ in 0..12 {
                        h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        sum += (h >> 40) as f32 / (1u64 << 24) as f32;
                    }
                    let n = sum - 6.0; // ~N(0,1)
                    let v = out.at_mut(c, y, x);
                    *v = (*v + super::NOISE_SIGMA * n).clamp(0.0, 1.0);
                }
            }
        }
        out
    }

    pub fn space_to_depth_f32(img: &Tensor3<f32>, f: usize) -> Tensor3<f32> {
        let s = img.shape();
        assert!(s.h.is_multiple_of(f) && s.w.is_multiple_of(f));
        let (oh, ow) = (s.h / f, s.w / f);
        let mut out = Tensor3::<f32>::new(s.c * f * f, oh, ow);
        for c in 0..s.c {
            for dy in 0..f {
                for dx in 0..f {
                    let oc = c * f * f + dy * f + dx;
                    for y in 0..oh {
                        for x in 0..ow {
                            *out.at_mut(oc, y, x) = *img.at(c, y * f + dy, x * f + dx);
                        }
                    }
                }
            }
        }
        out
    }

    pub fn append_constant_channels(img: &Tensor3<f32>, n: usize, value: f32) -> Tensor3<f32> {
        let s = img.shape();
        let mut data = img.as_slice().to_vec();
        data.extend(std::iter::repeat_n(value, n * s.h * s.w));
        Tensor3::from_vec(s.c + n, s.h, s.w, data)
    }

    pub fn bayer(img: &Tensor3<f32>) -> Tensor3<f32> {
        let s = img.shape();
        let mut out = Tensor3::<f32>::new(1, s.h, s.w);
        for y in 0..s.h {
            for x in 0..s.w {
                let c = match (y % 2, x % 2) {
                    (0, 0) => 0,
                    (0, 1) | (1, 0) => 1,
                    _ => 2,
                };
                *out.at_mut(0, y, x) = *img.at(c, y, x);
            }
        }
        out
    }

    pub fn pack(mosaic: &Tensor3<f32>) -> Tensor3<f32> {
        let s = mosaic.shape();
        let (oh, ow) = (s.h / 2, s.w / 2);
        let mut out = Tensor3::<f32>::new(4, oh, ow);
        for y in 0..oh {
            for x in 0..ow {
                *out.at_mut(0, y, x) = *mosaic.at(0, 2 * y, 2 * x);
                *out.at_mut(1, y, x) = *mosaic.at(0, 2 * y, 2 * x + 1);
                *out.at_mut(2, y, x) = *mosaic.at(0, 2 * y + 1, 2 * x);
                *out.at_mut(3, y, x) = *mosaic.at(0, 2 * y + 1, 2 * x + 1);
            }
        }
        out
    }

    pub fn degrade(img: &Tensor3<f32>, f: usize) -> Tensor3<f32> {
        let s = img.shape();
        let (oh, ow) = (s.h / f, s.w / f);
        let mut out = Tensor3::<f32>::new(s.c, oh * f, ow * f);
        for c in 0..s.c {
            for by in 0..oh {
                for bx in 0..ow {
                    let mut acc = 0.0f32;
                    for j in 0..f {
                        for i in 0..f {
                            acc += *img.at(c, by * f + j, bx * f + i);
                        }
                    }
                    let mean = acc / (f * f) as f32;
                    for j in 0..f {
                        for i in 0..f {
                            *out.at_mut(c, by * f + j, bx * f + i) = mean;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_conv_and_relu_counts() {
        let expect = [
            (CiModel::DnCnn, 20, 19),
            (CiModel::FfdNet, 10, 9),
            (CiModel::Ircnn, 7, 6),
            (CiModel::JointNet, 19, 16),
            (CiModel::Vdsr, 20, 19),
        ];
        for (m, convs, relus) in expect {
            let s = m.spec();
            assert_eq!(s.conv_layers(), convs, "{m} conv count");
            assert_eq!(s.relu_layers(), relus, "{m} relu count");
        }
    }

    #[test]
    fn table1_filter_sizes() {
        // Max single filter ~1.1 KB, max per-layer total 72-162 KB.
        let dn = CiModel::DnCnn.spec();
        assert_eq!(dn.max_filter_bytes(64, 64), 1152); // 1.13 KB
        assert_eq!(dn.max_total_filter_bytes(64, 64), 73_728); // 72 KB
        let ffd = CiModel::FfdNet.spec();
        assert_eq!(ffd.max_total_filter_bytes(32, 32), 96 * 96 * 9 * 2); // 162 KB
        let joint = CiModel::JointNet.spec();
        assert_eq!(joint.max_total_filter_bytes(32, 32), 128 * 64 * 9 * 2); // 144 KB
        let ir = CiModel::Ircnn.spec();
        assert_eq!(ir.max_total_filter_bytes(64, 64), 73_728); // 72 KB
    }

    #[test]
    fn ircnn_uses_dilated_pyramid() {
        let s = CiModel::Ircnn.spec();
        let dil: Vec<usize> = s
            .layers
            .iter()
            .filter_map(|l| l.as_conv().map(|c| c.geom.dilation))
            .collect();
        assert_eq!(dil, vec![1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn prepared_inputs_have_expected_shapes() {
        let clean = diffy_tensor::Tensor3::<f32>::filled(3, 16, 20, 0.5);
        let cases = [
            (CiModel::DnCnn, (3, 16, 20)),
            (CiModel::FfdNet, (15, 8, 10)),
            (CiModel::Ircnn, (3, 16, 20)),
            (CiModel::JointNet, (4, 8, 10)),
            (CiModel::Vdsr, (3, 16, 20)),
        ];
        for (m, shape) in cases {
            let input = m.prepare_input(&clean, 1);
            assert_eq!(input.shape().as_tuple(), shape, "{m}");
            assert_eq!(input.shape().c, m.spec().input_channels, "{m} channels");
        }
    }

    #[test]
    fn prepared_input_is_deterministic() {
        let clean = diffy_tensor::Tensor3::<f32>::filled(3, 8, 8, 0.4);
        let a = CiModel::DnCnn.prepare_input(&clean, 5);
        let b = CiModel::DnCnn.prepare_input(&clean, 5);
        let c = CiModel::DnCnn.prepare_input(&clean, 6);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn odd_images_are_trimmed_even() {
        let clean = diffy_tensor::Tensor3::<f32>::filled(3, 9, 11, 0.4);
        let input = CiModel::FfdNet.prepare_input(&clean, 1);
        assert_eq!(input.shape().as_tuple(), (15, 4, 5));
    }

    #[test]
    fn vdsr_gets_sparsity_boosting_weights() {
        assert!(CiModel::Vdsr.weight_gen(1).bias_shift < -0.2);
        assert!(CiModel::DnCnn.weight_gen(1).bias_shift >= 0.0);
    }

    #[test]
    fn weight_seeds_differ_across_models() {
        let a = CiModel::DnCnn.weight_gen(1).seed;
        let b = CiModel::Vdsr.weight_gen(1).seed;
        assert_ne!(a, b);
    }
}
