//! The model zoo: CI-DNNs (Table I) and classification/detection models
//! (Fig. 19).

pub mod ci;
pub mod classify;
