//! Classification, segmentation and detection models (Fig. 19).
//!
//! The paper runs "several well known ImageNet classification models"
//! plus FCN_Seg, YOLO v2 and SegNet. The accelerators only execute
//! convolutional layers, so each model is expressed as its convolutional
//! backbone (inception/residual structure flattened to the constituent
//! convolutions, fully-connected heads omitted — the same scope every
//! conv-accelerator study uses).

use crate::graph::ModelSpec;
use crate::layer::{ConvSpec, LayerSpec};
use diffy_tensor::ConvGeometry;

/// One of the Fig. 19 models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassModel {
    /// 5-conv AlexNet backbone (224×224).
    AlexNet,
    /// 13-conv VGG-16 backbone (224×224).
    Vgg16,
    /// ResNet-18-style 17-conv stack (224×224).
    ResNet18,
    /// FCN semantic segmentation: VGG backbone + score layer (500×500).
    FcnSeg,
    /// YOLO v2 / Darknet-19 detector (416×416).
    YoloV2,
    /// SegNet encoder–decoder (352×480).
    SegNet,
}

impl ClassModel {
    /// All models, in Fig. 19 order.
    pub const ALL: [ClassModel; 6] = [
        ClassModel::AlexNet,
        ClassModel::Vgg16,
        ClassModel::ResNet18,
        ClassModel::FcnSeg,
        ClassModel::YoloV2,
        ClassModel::SegNet,
    ];

    /// The model's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ClassModel::AlexNet => "AlexNet",
            ClassModel::Vgg16 => "VGG16",
            ClassModel::ResNet18 => "ResNet18",
            ClassModel::FcnSeg => "FCN_Seg",
            ClassModel::YoloV2 => "YOLO_V2",
            ClassModel::SegNet => "SegNet",
        }
    }

    /// Native input resolution `(h, w)`.
    pub fn native_resolution(&self) -> (usize, usize) {
        match self {
            ClassModel::AlexNet | ClassModel::Vgg16 | ClassModel::ResNet18 => (224, 224),
            ClassModel::FcnSeg => (500, 500),
            ClassModel::YoloV2 => (416, 416),
            ClassModel::SegNet => (352, 480),
        }
    }

    /// Smallest input the layer stack accepts without a spatial dimension
    /// collapsing to zero (traces may run at reduced resolutions to bound
    /// simulation cost; this is the floor).
    pub fn min_resolution(&self) -> usize {
        match self {
            ClassModel::AlexNet => 64,
            ClassModel::Vgg16 | ClassModel::FcnSeg => 32,
            ClassModel::ResNet18 => 64,
            ClassModel::YoloV2 => 32,
            ClassModel::SegNet => 32,
        }
    }

    /// The layer stack.
    pub fn spec(&self) -> ModelSpec {
        match self {
            ClassModel::AlexNet => ModelSpec::new(
                "AlexNet",
                3,
                vec![
                    LayerSpec::Conv(ConvSpec {
                        name: "conv1".into(),
                        out_channels: 64,
                        filter: 11,
                        geom: ConvGeometry { stride: 4, pad: 2, dilation: 1 },
                        relu: true,
                    }),
                    LayerSpec::MaxPool { window: 2 },
                    LayerSpec::Conv(ConvSpec {
                        name: "conv2".into(),
                        out_channels: 192,
                        filter: 5,
                        geom: ConvGeometry { stride: 1, pad: 2, dilation: 1 },
                        relu: true,
                    }),
                    LayerSpec::MaxPool { window: 2 },
                    LayerSpec::Conv(ConvSpec::same3("conv3", 384, true)),
                    LayerSpec::Conv(ConvSpec::same3("conv4", 256, true)),
                    LayerSpec::Conv(ConvSpec::same3("conv5", 256, true)),
                ],
            ),
            ClassModel::Vgg16 => ModelSpec::new("VGG16", 3, vgg16_backbone()),
            ClassModel::ResNet18 => {
                let mut layers = vec![
                    LayerSpec::Conv(ConvSpec {
                        name: "stem".into(),
                        out_channels: 64,
                        filter: 7,
                        geom: ConvGeometry { stride: 2, pad: 3, dilation: 1 },
                        relu: true,
                    }),
                    LayerSpec::MaxPool { window: 2 },
                ];
                let stages: [(usize, usize); 4] = [(64, 4), (128, 4), (256, 4), (512, 4)];
                for (si, &(ch, convs)) in stages.iter().enumerate() {
                    for ci in 0..convs {
                        let downsample = si > 0 && ci == 0;
                        layers.push(LayerSpec::Conv(ConvSpec {
                            name: format!("res{}_{}", si + 2, ci + 1),
                            out_channels: ch,
                            filter: 3,
                            geom: if downsample {
                                ConvGeometry { stride: 2, pad: 1, dilation: 1 }
                            } else {
                                ConvGeometry::same(3, 3)
                            },
                            relu: true,
                        }));
                    }
                }
                ModelSpec::new("ResNet18", 3, layers)
            }
            ClassModel::FcnSeg => {
                let mut layers = vgg16_backbone();
                layers.push(LayerSpec::Conv(ConvSpec {
                    name: "score".into(),
                    out_channels: 21,
                    filter: 1,
                    geom: ConvGeometry::unit(),
                    relu: false,
                }));
                ModelSpec::new("FCN_Seg", 3, layers)
            }
            ClassModel::YoloV2 => {
                let mut layers = Vec::new();
                let block = |layers: &mut Vec<LayerSpec>, name: &str, ch: usize, f: usize| {
                    layers.push(LayerSpec::Conv(ConvSpec {
                        name: name.into(),
                        out_channels: ch,
                        filter: f,
                        geom: if f == 1 {
                            ConvGeometry::unit()
                        } else {
                            ConvGeometry::same(3, 3)
                        },
                        relu: true,
                    }));
                };
                block(&mut layers, "conv1", 32, 3);
                layers.push(LayerSpec::MaxPool { window: 2 });
                block(&mut layers, "conv2", 64, 3);
                layers.push(LayerSpec::MaxPool { window: 2 });
                block(&mut layers, "conv3", 128, 3);
                block(&mut layers, "conv4", 64, 1);
                block(&mut layers, "conv5", 128, 3);
                layers.push(LayerSpec::MaxPool { window: 2 });
                block(&mut layers, "conv6", 256, 3);
                block(&mut layers, "conv7", 128, 1);
                block(&mut layers, "conv8", 256, 3);
                layers.push(LayerSpec::MaxPool { window: 2 });
                block(&mut layers, "conv9", 512, 3);
                block(&mut layers, "conv10", 256, 1);
                block(&mut layers, "conv11", 512, 3);
                block(&mut layers, "conv12", 256, 1);
                block(&mut layers, "conv13", 512, 3);
                layers.push(LayerSpec::MaxPool { window: 2 });
                block(&mut layers, "conv14", 1024, 3);
                block(&mut layers, "conv15", 512, 1);
                block(&mut layers, "conv16", 1024, 3);
                block(&mut layers, "conv17", 512, 1);
                block(&mut layers, "conv18", 1024, 3);
                block(&mut layers, "conv19", 1024, 3);
                block(&mut layers, "conv20", 1024, 3);
                layers.push(LayerSpec::Conv(ConvSpec {
                    name: "detect".into(),
                    out_channels: 425,
                    filter: 1,
                    geom: ConvGeometry::unit(),
                    relu: false,
                }));
                ModelSpec::new("YOLO_V2", 3, layers)
            }
            ClassModel::SegNet => {
                let mut layers = Vec::new();
                // Encoder (VGG-13 style).
                let enc: [(usize, usize); 4] = [(64, 2), (128, 2), (256, 2), (512, 2)];
                for (si, &(ch, convs)) in enc.iter().enumerate() {
                    for ci in 0..convs {
                        layers.push(LayerSpec::Conv(ConvSpec::same3(
                            format!("enc{}_{}", si + 1, ci + 1),
                            ch,
                            true,
                        )));
                    }
                    layers.push(LayerSpec::MaxPool { window: 2 });
                }
                // Decoder (mirrored with upsampling).
                let dec: [(usize, usize); 4] = [(512, 2), (256, 2), (128, 2), (64, 2)];
                for (si, &(ch, convs)) in dec.iter().enumerate() {
                    layers.push(LayerSpec::Upsample2x);
                    for ci in 0..convs {
                        let next_stage_ch = if si + 1 < dec.len() { dec[si + 1].0 } else { ch };
                        let out = if ci == convs - 1 { next_stage_ch } else { ch };
                        layers.push(LayerSpec::Conv(ConvSpec::same3(
                            format!("dec{}_{}", si + 1, ci + 1),
                            out,
                            true,
                        )));
                    }
                }
                layers.push(LayerSpec::Conv(ConvSpec {
                    name: "classes".into(),
                    out_channels: 12,
                    filter: 3,
                    geom: ConvGeometry::same(3, 3),
                    relu: false,
                }));
                ModelSpec::new("SegNet", 3, layers)
            }
        }
    }
}

impl std::fmt::Display for ClassModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn vgg16_backbone() -> Vec<LayerSpec> {
    let stages: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut layers = Vec::new();
    for (si, &(ch, convs)) in stages.iter().enumerate() {
        for ci in 0..convs {
            layers.push(LayerSpec::Conv(ConvSpec::same3(
                format!("conv{}_{}", si + 1, ci + 1),
                ch,
                true,
            )));
        }
        layers.push(LayerSpec::MaxPool { window: 2 });
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_counts_match_architectures() {
        assert_eq!(ClassModel::AlexNet.spec().conv_layers(), 5);
        assert_eq!(ClassModel::Vgg16.spec().conv_layers(), 13);
        assert_eq!(ClassModel::ResNet18.spec().conv_layers(), 17);
        assert_eq!(ClassModel::FcnSeg.spec().conv_layers(), 14);
        assert_eq!(ClassModel::YoloV2.spec().conv_layers(), 21);
        assert_eq!(ClassModel::SegNet.spec().conv_layers(), 17);
    }

    #[test]
    fn native_resolutions_flow_through_the_stack() {
        for m in ClassModel::ALL {
            let (h, w) = m.native_resolution();
            let shapes = m.spec().shapes(h, w);
            let last = shapes.last().unwrap();
            assert!(!last.is_empty(), "{m} collapses at native res");
        }
    }

    #[test]
    fn min_resolutions_are_valid() {
        for m in ClassModel::ALL {
            let r = m.min_resolution();
            let shapes = m.spec().shapes(r, r);
            assert!(!shapes.last().unwrap().is_empty(), "{m} collapses at min res {r}");
        }
    }

    #[test]
    fn segnet_restores_input_resolution() {
        let shapes = ClassModel::SegNet.spec().shapes(64, 96);
        let last = shapes.last().unwrap();
        assert_eq!((last.h, last.w), (64, 96));
        assert_eq!(last.c, 12);
    }

    #[test]
    fn vgg16_total_macs_at_native_res_are_plausible() {
        // VGG16 conv MACs at 224x224 are famously ~15.3 GMACs.
        let macs = ClassModel::Vgg16.spec().total_macs(224, 224);
        assert!(
            (14.0e9..17.0e9).contains(&(macs as f64)),
            "VGG16 macs {macs}"
        );
    }

    #[test]
    fn alexnet_first_layer_is_strided_11x11() {
        let spec = ClassModel::AlexNet.spec();
        let c = spec.layers[0].as_conv().unwrap();
        assert_eq!(c.filter, 11);
        assert_eq!(c.geom.stride, 4);
        let shapes = spec.shapes(224, 224);
        assert_eq!((shapes[1].h, shapes[1].w), (55, 55));
    }
}
