//! Fixed-point forward inference with per-layer requantization
//! calibration.
//!
//! The engine executes a [`ModelSpec`] on a prepared 16-bit input and
//! records a [`NetworkTrace`]. Requantization after each convolution uses
//! a *calibrated* arithmetic shift: the shift is chosen so that the
//! 99.9th-percentile magnitude of the layer's outputs lands near a target
//! working point (2^10), the standard per-layer Q-format selection of
//! fixed-point CNN deployment. This keeps activations well-conditioned
//! through 20-layer stacks regardless of the synthetic weights' gain, and
//! is what produces the 7–13 bit profiled precisions analogous to the
//! paper's Table III.

use crate::graph::ModelSpec;
use crate::layer::LayerSpec;
use crate::trace::{LayerTrace, NetworkTrace};
use crate::weights::NetworkWeights;
use diffy_tensor::ops::{max_pool, relu_inplace, upsample2x};
use diffy_tensor::{conv2d_fast, sat16, Tensor3};

/// Target post-requantization 99.9th-percentile magnitude: 2^10, leaving
/// 5 bits of headroom inside the 16-bit activation.
const TARGET_MAG_BITS: u32 = 10;

/// Runs `spec` on `input`, returning the full activation trace.
///
/// # Panics
///
/// Panics if the input channel count does not match the spec, or if the
/// weights were generated for a different spec.
///
/// # Example
///
/// ```
/// use diffy_models::{ModelSpec, LayerSpec, ConvSpec, NetworkWeights, WeightGen, run_network};
/// use diffy_tensor::{Quantizer, Tensor3};
///
/// let spec = ModelSpec::new("demo", 1, vec![
///     LayerSpec::Conv(ConvSpec::same3("c1", 4, true)),
///     LayerSpec::Conv(ConvSpec::same3("c2", 1, false)),
/// ]);
/// let weights = NetworkWeights::generate(&spec, WeightGen::new(1), Quantizer::default());
/// let input = Tensor3::<i16>::filled(1, 8, 8, 100);
/// let trace = run_network(&spec, &weights, &input);
/// assert_eq!(trace.layers.len(), 2);
/// ```
pub fn run_network(
    spec: &ModelSpec,
    weights: &NetworkWeights,
    input: &Tensor3<i16>,
) -> NetworkTrace {
    assert_eq!(
        input.shape().c,
        spec.input_channels,
        "input channels {} != spec input channels {} for {}",
        input.shape().c,
        spec.input_channels,
        spec.name
    );
    assert_eq!(
        weights.len(),
        spec.conv_layers(),
        "weights were generated for a different spec"
    );

    let mut current = input.clone();
    let mut layers: Vec<LayerTrace> = Vec::with_capacity(spec.conv_layers());
    let mut conv_idx = 0usize;

    for layer in &spec.layers {
        match layer {
            LayerSpec::Conv(c) => {
                let lw = weights.conv(conv_idx);
                let mut acc = conv2d_fast(&current, &lw.fmaps, Some(&lw.bias), c.geom);
                let mut requant_bias = 0i64;
                if lw.dynamic_bias_shift != 0.0 {
                    // Data-dependent bias: shift every pre-activation by
                    // a multiple of the layer's measured std, steering
                    // the post-ReLU sparsity (see `LayerWeights`).
                    requant_bias = (lw.dynamic_bias_shift as f64 * acc_std(&acc)) as i64;
                    for v in acc.as_mut_slice() {
                        *v += requant_bias;
                    }
                }
                let shift = calibrate_shift(&acc);
                let mut out = acc.map(|v| sat16(v >> shift));
                if c.relu {
                    relu_inplace(&mut out);
                }
                layers.push(LayerTrace {
                    name: c.name.clone(),
                    index: conv_idx,
                    imap: current,
                    fmaps: lw.fmaps.clone(),
                    geom: c.geom,
                    relu: c.relu,
                    requant_shift: shift,
                    requant_bias,
                    next_stride: 1, // patched below
                });
                current = out;
                conv_idx += 1;
            }
            LayerSpec::MaxPool { window } => {
                current = max_pool(&current, *window);
            }
            LayerSpec::Upsample2x => {
                current = upsample2x(&current);
            }
        }
    }

    // Patch next_stride: each layer's omap is written as deltas at the
    // stride of the conv that will consume it (§III-E).
    let strides: Vec<usize> = layers.iter().map(|l| l.geom.stride).collect();
    for (i, l) in layers.iter_mut().enumerate() {
        l.next_stride = if i + 1 < strides.len() { strides[i + 1] } else { 1 };
    }

    NetworkTrace { model: spec.name.clone(), layers, output: current }
}

/// Population standard deviation of an accumulator omap.
fn acc_std(acc: &Tensor3<i64>) -> f64 {
    if acc.is_empty() {
        return 0.0;
    }
    let n = acc.len() as f64;
    let mean: f64 = acc.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var: f64 = acc.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
    var.sqrt()
}

/// Chooses the arithmetic right shift for a layer's accumulator omap so
/// the 99.9th-percentile |value| lands near `2^TARGET_MAG_BITS`.
fn calibrate_shift(acc: &Tensor3<i64>) -> u32 {
    // Percentile via a coarse magnitude-bit histogram (exact enough: the
    // shift is integral anyway).
    let mut bit_counts = [0u64; 64];
    for &v in acc.iter() {
        let mag = v.unsigned_abs();
        let bits = 64 - mag.leading_zeros();
        bit_counts[bits as usize] += 1;
    }
    let total: u64 = bit_counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = (0.999 * total as f64).ceil() as u64;
    let mut cum = 0u64;
    let mut p999_bits = 0u32;
    for (bits, &cnt) in bit_counts.iter().enumerate() {
        cum += cnt;
        if cum >= target {
            p999_bits = bits as u32;
            break;
        }
    }
    p999_bits.saturating_sub(TARGET_MAG_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ConvSpec;
    use crate::weights::WeightGen;
    use diffy_tensor::ops::sparsity;
    use diffy_tensor::Quantizer;

    fn demo_spec(layers: usize, channels: usize, relu_last: bool) -> ModelSpec {
        let mut ls = Vec::new();
        for i in 0..layers {
            let last = i == layers - 1;
            ls.push(LayerSpec::Conv(ConvSpec::same3(
                format!("conv_{i}"),
                if last { 1 } else { channels },
                !last || relu_last,
            )));
        }
        ModelSpec::new("demo", 1, ls)
    }

    fn smooth_input(h: usize, w: usize) -> Tensor3<i16> {
        let data: Vec<i16> = (0..h * w)
            .map(|i| {
                let x = (i % w) as f32;
                let y = (i / w) as f32;
                (128.0 + 60.0 * ((x / 9.0).sin() + (y / 7.0).cos())) as i16
            })
            .collect();
        Tensor3::from_vec(1, h, w, data)
    }

    #[test]
    fn trace_has_one_entry_per_conv_layer() {
        let spec = demo_spec(3, 8, false);
        let w = NetworkWeights::generate(&spec, WeightGen::new(1), Quantizer::default());
        let t = run_network(&spec, &w, &smooth_input(12, 12));
        assert_eq!(t.layers.len(), 3);
        assert_eq!(t.layers[0].imap.shape().as_tuple(), (1, 12, 12));
        assert_eq!(t.layers[1].imap.shape().as_tuple(), (8, 12, 12));
        assert_eq!(t.output.shape().as_tuple(), (1, 12, 12));
    }

    #[test]
    fn omap_adjacency_holds() {
        let spec = demo_spec(2, 4, false);
        let w = NetworkWeights::generate(&spec, WeightGen::new(2), Quantizer::default());
        let t = run_network(&spec, &w, &smooth_input(8, 8));
        assert_eq!(t.omap(0).shape(), t.layers[1].imap.shape());
        assert_eq!(t.omap(1).shape(), t.output.shape());
    }

    #[test]
    fn activations_stay_well_conditioned_through_deep_stacks() {
        // 10 layers of random weights: without calibration activations
        // would explode or vanish; with it, intermediate imaps keep a
        // healthy dynamic range.
        let spec = demo_spec(10, 8, false);
        let w = NetworkWeights::generate(&spec, WeightGen::new(3), Quantizer::default());
        let t = run_network(&spec, &w, &smooth_input(16, 16));
        for l in &t.layers[1..] {
            let max_mag = l.imap.iter().map(|&v| (v as i32).abs()).max().unwrap();
            assert!(max_mag > 16, "layer {} vanished (max {max_mag})", l.name);
            assert!(max_mag <= i16::MAX as i32);
        }
    }

    #[test]
    fn relu_layers_produce_nonnegative_imaps() {
        let spec = demo_spec(3, 8, false);
        let w = NetworkWeights::generate(&spec, WeightGen::new(4), Quantizer::default());
        let t = run_network(&spec, &w, &smooth_input(10, 10));
        // imaps of layers 1.. are post-ReLU outputs of previous layers.
        for l in &t.layers[1..] {
            assert!(l.imap.iter().all(|&v| v >= 0), "layer {}", l.name);
        }
    }

    #[test]
    fn bias_shift_raises_sparsity() {
        let spec = demo_spec(4, 8, false);
        let dense_w = NetworkWeights::generate(&spec, WeightGen::new(5), Quantizer::default());
        let sparse_w = NetworkWeights::generate(
            &spec,
            WeightGen::new(5).with_bias_shift(-1.0),
            Quantizer::default(),
        );
        let input = smooth_input(16, 16);
        let dense = run_network(&spec, &dense_w, &input);
        let sparse = run_network(&spec, &sparse_w, &input);
        let avg = |t: &NetworkTrace| {
            t.layers[1..].iter().map(|l| sparsity(&l.imap)).sum::<f64>()
                / (t.layers.len() - 1) as f64
        };
        assert!(
            avg(&sparse) > avg(&dense) + 0.1,
            "bias shift did not raise sparsity: {} vs {}",
            avg(&sparse),
            avg(&dense)
        );
    }

    #[test]
    fn next_stride_is_propagated() {
        let mut layers = vec![
            LayerSpec::Conv(ConvSpec::same3("c0", 4, true)),
            LayerSpec::Conv(ConvSpec {
                name: "c1".into(),
                out_channels: 4,
                filter: 3,
                geom: diffy_tensor::ConvGeometry::strided(2, 1),
                relu: true,
            }),
        ];
        layers.push(LayerSpec::Conv(ConvSpec::same3("c2", 1, false)));
        let spec = ModelSpec::new("s", 1, layers);
        let w = NetworkWeights::generate(&spec, WeightGen::new(1), Quantizer::default());
        let t = run_network(&spec, &w, &smooth_input(12, 12));
        assert_eq!(t.layers[0].next_stride, 2);
        assert_eq!(t.layers[1].next_stride, 1);
        assert_eq!(t.layers[2].next_stride, 1);
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn rejects_wrong_input_channels() {
        let spec = demo_spec(1, 4, false);
        let w = NetworkWeights::generate(&spec, WeightGen::new(1), Quantizer::default());
        let bad = Tensor3::<i16>::new(3, 8, 8);
        let _ = run_network(&spec, &w, &bad);
    }

    #[test]
    fn pooling_between_convs_is_applied() {
        let spec = ModelSpec::new(
            "p",
            1,
            vec![
                LayerSpec::Conv(ConvSpec::same3("c0", 4, true)),
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Conv(ConvSpec::same3("c1", 2, true)),
                LayerSpec::Upsample2x,
            ],
        );
        let w = NetworkWeights::generate(&spec, WeightGen::new(1), Quantizer::default());
        let t = run_network(&spec, &w, &smooth_input(8, 8));
        assert_eq!(t.layers[1].imap.shape().as_tuple(), (4, 4, 4));
        assert_eq!(t.output.shape().as_tuple(), (2, 8, 8));
    }
}
