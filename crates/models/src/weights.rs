//! Synthetic weight generation.
//!
//! No pretrained checkpoints are available offline, so weights are drawn
//! from a He-scaled Gaussian (`std = sqrt(2 / fan_in)`), quantized to
//! 16-bit fixed point. Two knobs shape the activation statistics the
//! accelerators care about:
//!
//! * `bias_shift` — bias expressed in units of the layer's expected output
//!   standard deviation; a negative shift pushes more pre-activations
//!   below zero, raising post-ReLU sparsity (used to reproduce VDSR's
//!   documented high sparsity, §IV-A of the paper).
//! * `weight_sparsity` — fraction of smallest-magnitude weights zeroed
//!   per layer (magnitude pruning), used by the SCNN comparison where the
//!   paper sweeps 0/50/75/90% weight sparsity (Fig. 20).

use crate::graph::ModelSpec;
use crate::layer::LayerSpec;
use diffy_tensor::{Quantizer, Tensor4};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fixed-point format of weights: 12 fractional bits. He-initialized
/// weights for fan-ins up to ~10 000 stay well inside ±8, so 12 fractional
/// bits leave 3 integer bits of headroom.
pub const WEIGHT_FRAC_BITS: u32 = 12;

/// Weight-generation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightGen {
    /// RNG seed; the same seed always yields the same network weights.
    pub seed: u64,
    /// Bias in units of the expected pre-activation standard deviation
    /// (0.0 = median sparsity ≈ 50% after ReLU; negative = sparser).
    pub bias_shift: f32,
    /// Fraction of weights zeroed by magnitude pruning (0.0..=1.0).
    pub weight_sparsity: f64,
    /// Spatial low-pass blend per kernel (0 = white random, 1 = flat
    /// box filter). Trained imaging filters are predominantly smooth —
    /// they must preserve image structure — whereas white-random kernels
    /// act as high-pass filters half the time and destroy the spatial
    /// correlation Diffy exploits. Blending each kernel toward its
    /// spatial mean restores the trained-filter frequency profile
    /// (DESIGN.md §2.1).
    pub kernel_smoothness: f32,
}

impl WeightGen {
    /// Defaults: seed 1, zero bias shift, dense weights, no smoothing.
    pub fn new(seed: u64) -> Self {
        Self { seed, bias_shift: 0.0, weight_sparsity: 0.0, kernel_smoothness: 0.0 }
    }

    /// Sets the kernel spatial smoothness (see field docs).
    ///
    /// # Panics
    ///
    /// Panics if `s` is outside `[0, 1]`.
    pub fn with_kernel_smoothness(mut self, s: f32) -> Self {
        assert!((0.0..=1.0).contains(&s), "smoothness must be in [0,1]");
        self.kernel_smoothness = s;
        self
    }

    /// Sets the bias shift (see struct docs).
    pub fn with_bias_shift(mut self, shift: f32) -> Self {
        self.bias_shift = shift;
        self
    }

    /// Sets the weight sparsity fraction.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1]`.
    pub fn with_weight_sparsity(mut self, sparsity: f64) -> Self {
        assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
        self.weight_sparsity = sparsity;
        self
    }
}

impl Default for WeightGen {
    fn default() -> Self {
        Self::new(1)
    }
}

/// Weights and biases of one conv layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// The filter bank (`K × C × F × F`), 16-bit fixed point with
    /// [`WEIGHT_FRAC_BITS`] fractional bits.
    pub fmaps: Tensor4<i16>,
    /// Per-filter bias in *accumulator* units (activation scale × weight
    /// scale).
    pub bias: Vec<i64>,
    /// Data-dependent bias shift in units of the layer's *measured*
    /// pre-activation standard deviation, applied by the inference
    /// engine before requantization. This is how the sparsity knob is
    /// made effective: the pre-activation scale of a synthetic network
    /// is unknowable at generation time.
    pub dynamic_bias_shift: f32,
}

impl LayerWeights {
    /// Fraction of zero weights.
    pub fn sparsity(&self) -> f64 {
        if self.fmaps.is_empty() {
            return 0.0;
        }
        self.fmaps.iter().filter(|&&w| w == 0).count() as f64 / self.fmaps.len() as f64
    }
}

/// All conv-layer weights of a network, in conv-layer order.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkWeights {
    layers: Vec<LayerWeights>,
}

impl NetworkWeights {
    /// Generates weights for every conv layer of `spec`.
    ///
    /// `act_quant` is the activation quantizer; biases are scaled into
    /// accumulator units using it.
    pub fn generate(spec: &ModelSpec, gen: WeightGen, act_quant: Quantizer) -> Self {
        let mut rng = StdRng::seed_from_u64(gen.seed ^ 0x57E1_6875);
        let wq = Quantizer::new(WEIGHT_FRAC_BITS);
        let mut layers = Vec::new();
        let mut in_channels = spec.input_channels;
        for layer in &spec.layers {
            match layer {
                LayerSpec::Conv(c) => {
                    layers.push(generate_layer(
                        &mut rng,
                        in_channels,
                        c.out_channels,
                        c.filter,
                        gen,
                        wq,
                        act_quant,
                    ));
                    in_channels = c.out_channels;
                }
                LayerSpec::MaxPool { .. } | LayerSpec::Upsample2x => {}
            }
        }
        Self { layers }
    }

    /// Weights of conv layer `i` (conv-layer numbering, not layer index).
    pub fn conv(&self, i: usize) -> &LayerWeights {
        &self.layers[i]
    }

    /// Number of conv layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether there are no conv layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterator over all conv-layer weights.
    pub fn iter(&self) -> std::slice::Iter<'_, LayerWeights> {
        self.layers.iter()
    }
}

fn generate_layer(
    rng: &mut StdRng,
    in_channels: usize,
    out_channels: usize,
    filter: usize,
    gen: WeightGen,
    wq: Quantizer,
    aq: Quantizer,
) -> LayerWeights {
    let fan_in = (in_channels * filter * filter) as f32;
    let std = (2.0 / fan_in).sqrt();
    let n = out_channels * in_channels * filter * filter;
    let mut raw: Vec<f32> = (0..n).map(|_| gaussian(rng) * std).collect();

    if gen.kernel_smoothness > 0.0 && filter > 1 {
        // Blend each (k, c) kernel toward its spatial mean, then rescale
        // to preserve the He gain so the calibration stays centred.
        let s = gen.kernel_smoothness;
        let taps = filter * filter;
        for kernel in raw.chunks_mut(taps) {
            let mean: f32 = kernel.iter().sum::<f32>() / taps as f32;
            let mut energy = 0.0f32;
            for w in kernel.iter_mut() {
                *w = (1.0 - s) * *w + s * mean;
                energy += *w * *w;
            }
            let target = std * std * taps as f32;
            if energy > 1e-20 {
                let scale = (target / energy).sqrt();
                for w in kernel.iter_mut() {
                    *w *= scale;
                }
            }
        }
    }

    if gen.weight_sparsity > 0.0 {
        // Magnitude pruning: zero the smallest |w| fraction.
        let mut mags: Vec<f32> = raw.iter().map(|w| w.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("no NaN magnitudes"));
        let cut_idx = ((n as f64 * gen.weight_sparsity) as usize).min(n.saturating_sub(1));
        let threshold = mags[cut_idx];
        for w in &mut raw {
            if w.abs() <= threshold {
                *w = 0.0;
            }
        }
    }

    let data: Vec<i16> = raw.iter().map(|&w| wq.quantize(w)).collect();
    let fmaps = Tensor4::from_vec(out_channels, in_channels, filter, filter, data);
    let _ = aq; // bias is applied dynamically (see `dynamic_bias_shift`)

    LayerWeights {
        fmaps,
        bias: vec![0; out_channels],
        dynamic_bias_shift: gen.bias_shift,
    }
}

/// One standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-12);
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ConvSpec;
    use crate::ModelSpec;

    fn spec() -> ModelSpec {
        ModelSpec::new(
            "t",
            3,
            vec![
                LayerSpec::Conv(ConvSpec::same3("c1", 16, true)),
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Conv(ConvSpec::same3("c2", 8, true)),
            ],
        )
    }

    #[test]
    fn generates_one_entry_per_conv_layer() {
        let w = NetworkWeights::generate(&spec(), WeightGen::new(1), Quantizer::default());
        assert_eq!(w.len(), 2);
        assert_eq!(w.conv(0).fmaps.shape().as_tuple(), (16, 3, 3, 3));
        assert_eq!(w.conv(1).fmaps.shape().as_tuple(), (8, 16, 3, 3));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NetworkWeights::generate(&spec(), WeightGen::new(7), Quantizer::default());
        let b = NetworkWeights::generate(&spec(), WeightGen::new(7), Quantizer::default());
        let c = NetworkWeights::generate(&spec(), WeightGen::new(8), Quantizer::default());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_are_nontrivial_and_bounded() {
        let w = NetworkWeights::generate(&spec(), WeightGen::new(1), Quantizer::default());
        let f = &w.conv(0).fmaps;
        assert!(f.iter().any(|&v| v != 0));
        // He std for fan-in 27 is ~0.27; 6 sigma at 12 frac bits ~ 6700.
        assert!(f.iter().all(|&v| v.abs() < 8000));
    }

    #[test]
    fn sparsity_knob_hits_target() {
        for target in [0.0, 0.5, 0.75, 0.9] {
            let gen = WeightGen::new(3).with_weight_sparsity(target);
            let w = NetworkWeights::generate(&spec(), gen, Quantizer::default());
            let s = w.conv(1).sparsity();
            assert!(
                (s - target).abs() < 0.1,
                "target {target} measured {s}"
            );
        }
    }

    #[test]
    fn bias_shift_is_recorded_for_dynamic_application() {
        let gen = WeightGen::new(3).with_bias_shift(-0.8);
        let w = NetworkWeights::generate(&spec(), gen, Quantizer::default());
        assert_eq!(w.conv(0).dynamic_bias_shift, -0.8);
        // The static bias vector stays zero; the inference engine applies
        // the shift against the measured pre-activation std.
        assert!(w.conv(0).bias.iter().all(|&b| b == 0));
        let dense = NetworkWeights::generate(&spec(), WeightGen::new(3), Quantizer::default());
        assert_eq!(dense.conv(0).dynamic_bias_shift, 0.0);
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn rejects_invalid_sparsity() {
        let _ = WeightGen::new(1).with_weight_sparsity(1.5);
    }
}
