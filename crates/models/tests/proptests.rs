//! Property tests on the inference engine and weight generation.

use diffy_models::{run_network, ConvSpec, LayerSpec, ModelSpec, NetworkWeights, WeightGen};
use diffy_tensor::{Quantizer, Tensor3};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = ModelSpec> {
    (1usize..=3, 1usize..=4, 1usize..=8).prop_map(|(depth, in_c, hidden)| {
        let mut layers = Vec::new();
        for i in 0..depth {
            let last = i == depth - 1;
            layers.push(LayerSpec::Conv(ConvSpec::same3(
                format!("c{i}"),
                if last { 2 } else { hidden },
                !last,
            )));
        }
        ModelSpec::new("prop", in_c, layers)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn inference_is_total_and_shape_correct(
        spec in arb_spec(),
        seed in 0u64..1000,
        h in 4usize..10,
        w in 4usize..10,
    ) {
        let weights = NetworkWeights::generate(&spec, WeightGen::new(seed), Quantizer::default());
        let input = Tensor3::<i16>::filled(spec.input_channels, h, w, 77);
        let trace = run_network(&spec, &weights, &input);
        prop_assert_eq!(trace.layers.len(), spec.conv_layers());
        let shapes = spec.shapes(h, w);
        for (i, l) in trace.layers.iter().enumerate() {
            prop_assert_eq!(l.imap.shape(), shapes[i]);
        }
        prop_assert_eq!(trace.output.shape(), *shapes.last().unwrap());
    }

    #[test]
    fn relu_imaps_are_nonnegative(spec in arb_spec(), seed in 0u64..1000) {
        let weights = NetworkWeights::generate(&spec, WeightGen::new(seed), Quantizer::default());
        let input = Tensor3::<i16>::filled(spec.input_channels, 6, 6, 100);
        let trace = run_network(&spec, &weights, &input);
        for l in trace.layers.iter().skip(1) {
            prop_assert!(l.imap.iter().all(|&v| v >= 0), "{}", l.name);
        }
    }

    #[test]
    fn weight_sparsity_is_monotone_in_the_knob(
        spec in arb_spec(),
        seed in 0u64..100,
        s1 in 0.0f64..0.5,
        extra in 0.1f64..0.4,
    ) {
        let s2 = (s1 + extra).min(1.0);
        let q = Quantizer::default();
        let w1 = NetworkWeights::generate(&spec, WeightGen::new(seed).with_weight_sparsity(s1), q);
        let w2 = NetworkWeights::generate(&spec, WeightGen::new(seed).with_weight_sparsity(s2), q);
        for (a, b) in w1.iter().zip(w2.iter()) {
            prop_assert!(b.sparsity() >= a.sparsity() - 1e-9);
        }
    }

    #[test]
    fn kernel_smoothing_preserves_shapes_and_energy_scale(
        spec in arb_spec(),
        seed in 0u64..100,
    ) {
        let q = Quantizer::default();
        let rough = NetworkWeights::generate(&spec, WeightGen::new(seed), q);
        let smooth = NetworkWeights::generate(
            &spec,
            WeightGen::new(seed).with_kernel_smoothness(0.7),
            q,
        );
        let wq = Quantizer::new(diffy_models::weights::WEIGHT_FRAC_BITS);
        for (a, b) in rough.iter().zip(smooth.iter()) {
            prop_assert_eq!(a.fmaps.shape(), b.fmaps.shape());
            // The blend rescales each smoothed kernel to the He target
            // energy std^2 * taps (exact before quantization).
            let shape = b.fmaps.shape();
            let taps = shape.h * shape.w;
            let fan_in = (shape.c * taps) as f64;
            let target = (2.0 / fan_in) * taps as f64;
            let vol = shape.c * taps;
            for k in 0..shape.k {
                let kernel = &b.fmaps.as_slice()[k * vol..(k + 1) * vol];
                for kern in kernel.chunks(taps) {
                    let energy: f64 = kern
                        .iter()
                        .map(|&w| {
                            let f = wq.dequantize(w) as f64;
                            f * f
                        })
                        .sum();
                    prop_assert!(
                        (0.5..1.6).contains(&(energy / target)),
                        "kernel energy {energy} vs target {target}"
                    );
                }
            }
        }
    }
}
