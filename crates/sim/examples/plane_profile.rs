//! Stage-by-stage wall-time profile of the term-plane build at full HD —
//! a developer tool for attributing the cold-path cost (run with
//! `cargo run --release -p diffy-sim --example plane_profile`).

use diffy_encoding::{booth_terms_slice, delta_row_wrapping_into};
use diffy_models::trace::LayerTrace;
use diffy_sim::term_serial::{term_serial_layer, PaddedTerms};
use diffy_sim::{AcceleratorConfig, ValueMode};
use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};
use std::hint::black_box;
use std::time::Instant;

fn minor_faults() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    stat.split_whitespace().nth(9).and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn timeit<T>(name: &str, mut f: impl FnMut() -> T) -> T {
    let _ = f();
    let n = 3;
    let flt0 = minor_faults();
    let t = Instant::now();
    let mut out = None;
    for _ in 0..n {
        out = Some(black_box(f()));
    }
    let wall = t.elapsed().as_secs_f64() * 1e3 / n as f64;
    let flt = (minor_faults() - flt0) / n as u64;
    println!("{name:40} {wall:8.2} ms  ({flt} minor faults/iter)");
    out.unwrap()
}

fn main() {
    let (c, ph, pw) = (16usize, 1082usize, 1922usize);
    let plane_len = ph * pw;
    let vals: Vec<i16> = (0..c * plane_len)
        .map(|i| ((i as u64).wrapping_mul(6364136223846793005) >> 48) as i16)
        .collect();

    // Stage 1: metric kernel over both streams (raw + delta).
    let mut u8planes = vec![0u8; c * plane_len];
    timeit("metric raw+delta (2x 33.3M)", || {
        booth_terms_slice(&vals, &mut u8planes);
        booth_terms_slice(&vals, &mut u8planes);
    });

    // Stage 2: per-row staging (copy + wrapped delta).
    let mut padded = vec![0i16; pw];
    let mut drow = vec![0i16; pw];
    timeit("row stage copy+delta (33.3M rows)", || {
        let mut acc = 0i16;
        for ch in 0..c {
            for y in 0..ph {
                let row = &vals[(ch * ph + y) * pw..(ch * ph + y + 1) * pw];
                padded.copy_from_slice(row);
                delta_row_wrapping_into(&padded, 1, &mut drow);
                acc ^= drow[pw - 1];
            }
        }
        acc
    });

    // Stage 3: channel sum, position-blocked (per stream).
    const POS_BLOCK: usize = 4096;
    let sum = timeit("channel_sum blocked (1 stream)", || {
        let mut sum = vec![0u32; plane_len];
        for (b, blk) in sum.chunks_mut(POS_BLOCK).enumerate() {
            let s0 = b * POS_BLOCK;
            let n = blk.len();
            for ch in 0..c {
                let base = ch * plane_len + s0;
                for (dst, &t) in blk.iter_mut().zip(&u8planes[base..base + n]) {
                    *dst += t as u32;
                }
            }
        }
        sum
    });

    // Stage 4: group cost g=16, position-blocked (per stream).
    timeit("group_cost g16 blocked (1 stream)", || {
        let mut cost = vec![0u32; plane_len];
        let mut chunk_max = [0u8; POS_BLOCK];
        for (b, blk) in cost.chunks_mut(POS_BLOCK).enumerate() {
            let s0 = b * POS_BLOCK;
            let n = blk.len();
            chunk_max[..n].fill(0);
            for ch in 0..c {
                let base = ch * plane_len + s0;
                for (m, &t) in chunk_max[..n].iter_mut().zip(&u8planes[base..base + n]) {
                    *m = (*m).max(t);
                }
            }
            for (dst, &m) in blk.iter_mut().zip(&chunk_max[..n]) {
                *dst += m as u32;
            }
        }
        cost
    });

    // Stage 5: summed-area table (per plane).
    timeit("summed_area (1 plane)", || {
        let w1 = pw + 1;
        let mut sat = vec![0u64; (ph + 1) * w1];
        for y in 0..ph {
            let mut row_acc = 0u64;
            for x in 0..pw {
                row_acc += sum[y * pw + x] as u64;
                sat[(y + 1) * w1 + (x + 1)] = sat[y * w1 + (x + 1)] + row_acc;
            }
        }
        sat
    });

    // Candidate: channel sum with u16 block accumulator, widened once.
    timeit("channel_sum u16-block (1 stream)", || {
        let mut sum = vec![0u32; plane_len];
        let mut acc16 = [0u16; POS_BLOCK];
        for (b, blk) in sum.chunks_mut(POS_BLOCK).enumerate() {
            let s0 = b * POS_BLOCK;
            let n = blk.len();
            acc16[..n].fill(0);
            for ch in 0..c {
                let base = ch * plane_len + s0;
                for (dst, &t) in acc16[..n].iter_mut().zip(&u8planes[base..base + n]) {
                    *dst += t as u16;
                }
            }
            for (dst, &t) in blk.iter_mut().zip(&acc16[..n]) {
                *dst = t as u32;
            }
        }
        sum
    });

    // Candidate: summed-area with split prefix/vertical loops.
    timeit("summed_area split (1 plane)", || {
        let w1 = pw + 1;
        let mut sat = vec![0u64; (ph + 1) * w1];
        for y in 0..ph {
            let src = &sum[y * pw..(y + 1) * pw];
            let (prev_rows, cur_rows) = sat.split_at_mut((y + 1) * w1);
            let prev = &prev_rows[y * w1..];
            let cur = &mut cur_rows[..w1];
            let mut acc = 0u64;
            for (d, &v) in cur[1..].iter_mut().zip(src) {
                acc += v as u64;
                *d = acc;
            }
            for (d, &p) in cur[1..].iter_mut().zip(&prev[1..]) {
                *d += p;
            }
        }
        sat
    });

    // End-to-end: the real build and group-reduce at full HD.
    let imap = Tensor3::from_vec(
        c,
        1080,
        1920,
        (0..c * 1080 * 1920)
            .map(|i| ((i as u64).wrapping_mul(6364136223846793005) >> 48) as i16)
            .collect(),
    );
    timeit("PaddedTerms::build 1080p", || PaddedTerms::build(&imap, 1, 1));
    timeit("build + grouped(16) 1080p", || {
        let t = PaddedTerms::build(&imap, 1, 1);
        t.grouped(16)
    });
    timeit("PaddedTerms::build 1080p (again)", || PaddedTerms::build(&imap, 1, 1));
    timeit("build + grouped(16) 1080p (again)", || {
        let t = PaddedTerms::build(&imap, 1, 1);
        t.grouped(16)
    });

    // The full cold evaluation the bench's `planes_cold` record times.
    let trace = LayerTrace {
        name: "profile".into(),
        index: 0,
        imap: imap.clone(),
        fmaps: Tensor4::<i16>::filled(16, c, 3, 3, 1),
        geom: ConvGeometry::same(3, 3),
        relu: true,
        requant_shift: 12,
        requant_bias: 0,
        next_stride: 1,
    };
    let cfg = AcceleratorConfig::default();
    timeit("term_serial_layer cold (raw)", || {
        term_serial_layer(&trace, &cfg, ValueMode::Raw)
    });
    timeit("term_serial_layer cold (diff)", || {
        term_serial_layer(&trace, &cfg, ValueMode::Differential)
    });

    // Same measurement with another full plane set held live, mimicking
    // the bench harness (which keeps the shared planes alive across the
    // cold-path records).
    let kept = PaddedTerms::build(&imap, 1, 1);
    let kept_group = kept.grouped(16);
    timeit("cold (raw), planes held live", || {
        term_serial_layer(&trace, &cfg, ValueMode::Raw)
    });
    drop(kept_group);
    drop(kept);

    // Stage 6: the allocation cost itself.
    timeit("alloc+zero 2x 33.3M u8", || {
        (vec![0u8; c * plane_len], vec![0u8; c * plane_len])
    });
    timeit("alloc+zero 2x 2M u32", || {
        (vec![0u32; plane_len], vec![0u32; plane_len])
    });
}
