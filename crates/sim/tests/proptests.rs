//! Property tests on the cycle models' invariants.

use diffy_models::LayerTrace;
use diffy_sim::scnn::{scnn_layer, ScnnConfig};
use diffy_sim::stripes::stripes_layer;
use diffy_sim::{
    term_serial_layer, term_serial_layer_reference, vaa_layer, AcceleratorConfig, ValueMode,
};
use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};
use proptest::prelude::*;

// Layers with at least 24 windows: PRA's "always matches or exceeds VAA"
// guarantee relies on filling its 16 concurrent windows (the paper notes
// 16 are provisioned where 8 suffice); a handful-of-pixels layer cannot
// amortize a pallet and is outside every workload the paper runs.
fn arb_trace() -> impl Strategy<Value = LayerTrace> {
    (1usize..=8, 2usize..=6, 12usize..=24, 1usize..=24, prop_oneof![Just(1usize), Just(3)])
        .prop_flat_map(|(c, h, w, k, f)| {
            let geom = if f == 1 { ConvGeometry::unit() } else { ConvGeometry::same(3, 3) };
            (
                proptest::collection::vec(any::<i16>(), c * h * w),
                proptest::collection::vec(-100i16..=100, k * c * f * f),
            )
                .prop_map(move |(imap, fmaps)| LayerTrace {
                    name: "p".into(),
                    index: 0,
                    imap: Tensor3::from_vec(c, h, w, imap),
                    fmaps: Tensor4::from_vec(k, c, f, f, fmaps),
                    geom,
                    relu: true,
                    requant_shift: 12,
                    requant_bias: 0,
                    next_stride: 1,
                })
        })
}

fn cfg() -> AcceleratorConfig {
    AcceleratorConfig::table4()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn term_serial_never_slower_than_vaa(t in arb_trace()) {
        // NAF needs at most 9 terms for any 16-bit value while VAA always
        // spends the full 16-bit slot, and PRA keeps 16 windows in
        // flight: the paper's "PRA always matches or exceeds the
        // throughput of an equivalent VAA".
        let vaa = vaa_layer(&t, &cfg());
        for mode in [ValueMode::Raw, ValueMode::Differential] {
            let ts = term_serial_layer(&t, &cfg(), mode);
            prop_assert!(
                ts.cycles <= vaa.cycles,
                "{mode:?} {} > VAA {}", ts.cycles, vaa.cycles
            );
        }
    }

    #[test]
    fn stripes_never_faster_than_pragmatic(t in arb_trace()) {
        // A value's NAF term count never exceeds its bit length.
        let pra = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let ds = stripes_layer(&t, &cfg(), ValueMode::Raw);
        prop_assert!(pra.cycles <= ds.cycles);
    }

    #[test]
    fn utilization_in_unit_interval(t in arb_trace()) {
        for r in [
            vaa_layer(&t, &cfg()),
            term_serial_layer(&t, &cfg(), ValueMode::Raw),
            term_serial_layer(&t, &cfg(), ValueMode::Differential),
            stripes_layer(&t, &cfg(), ValueMode::Raw),
            scnn_layer(&t, &ScnnConfig::default()),
        ] {
            let u = r.utilization();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&u), "u={u}");
            prop_assert!(r.useful_slots <= r.total_slots.max(r.useful_slots));
        }
    }

    #[test]
    fn more_tiles_never_hurt(t in arb_trace()) {
        for mode in [ValueMode::Raw, ValueMode::Differential] {
            let c4 = term_serial_layer(&t, &cfg(), mode);
            let c8 = term_serial_layer(&t, &cfg().with_tiles(8), mode);
            prop_assert!(c8.cycles <= c4.cycles, "{mode:?}");
        }
        let v4 = vaa_layer(&t, &cfg());
        let v8 = vaa_layer(&t, &cfg().with_tiles(8));
        prop_assert!(v8.cycles <= v4.cycles);
    }

    #[test]
    fn macs_are_architecture_independent(t in arb_trace()) {
        let vaa = vaa_layer(&t, &cfg());
        let pra = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let scnn = scnn_layer(&t, &ScnnConfig::default());
        prop_assert_eq!(vaa.macs, pra.macs);
        prop_assert_eq!(vaa.macs, scnn.macs);
        prop_assert_eq!(vaa.macs, t.macs());
    }

    #[test]
    fn scnn_products_bounded_by_macs(t in arb_trace()) {
        let r = scnn_layer(&t, &ScnnConfig::default());
        // Nonzero products can never exceed the dense product count of
        // the unit-stride full-overlap bound: nnz_a x nnz_w <= |a| x |w|.
        let ishape = t.imap.shape();
        let fshape = t.fmaps.shape();
        let dense: u64 = (ishape.len() / ishape.c) as u64
            * (fshape.len()) as u64;
        prop_assert!(r.useful_slots <= dense);
    }

    #[test]
    fn plane_kernel_matches_reference_on_random_geometries(
        c in 1usize..=5,
        h in 8usize..=12,
        w in 8usize..=14,
        k in 1usize..=20,
        f in 1usize..=3,
        stride in 1usize..=3,
        pad in 0usize..=2,
        dilation in 1usize..=3,
        g in prop_oneof![Just(1usize), Just(2), Just(3), Just(16)],
        seed in any::<u64>(),
    ) {
        // The tentpole guarantee: the group-reduced plane kernel is
        // bit-identical to the reference loop nest — full LayerCycles
        // equality (cycles, slots, macs) — on arbitrary combinations of
        // stride, padding, dilation, channel counts not divisible by the
        // synchronization group, and narrow layers.
        let span = (f - 1) * dilation + 1; // ≤ 7 ≤ h ≤ w, so out dims ≥ 1
        prop_assert!(h + 2 * pad >= span && w + 2 * pad >= span);
        let imap: Vec<i16> = (0..c * h * w)
            .map(|i| ((i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed) >> 41) as i16)
            .collect();
        let t = LayerTrace {
            name: "geom".into(),
            index: 0,
            imap: Tensor3::from_vec(c, h, w, imap),
            fmaps: Tensor4::filled(k, c, f, f, 1),
            geom: ConvGeometry { stride, pad, dilation },
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        };
        let cfg = cfg().with_terms_per_group(g);
        for mode in [ValueMode::Raw, ValueMode::Differential] {
            let optimized = term_serial_layer(&t, &cfg, mode);
            let reference = term_serial_layer_reference(&t, &cfg, mode);
            prop_assert_eq!(optimized, reference, "mode {:?} g {}", mode, g);
        }
    }

    #[test]
    fn constant_rows_make_diffy_at_least_as_fast(
        c in 1usize..=4, h in 2usize..=5, w in 17usize..=40, v in 1i16..2000,
    ) {
        // Perfectly correlated content: the canonical Diffy win.
        let t = LayerTrace {
            name: "const".into(),
            index: 0,
            imap: Tensor3::filled(c, h, w, v),
            fmaps: Tensor4::filled(4, c, 3, 3, 1),
            geom: ConvGeometry::same(3, 3),
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        };
        let pra = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let diffy = term_serial_layer(&t, &cfg(), ValueMode::Differential);
        prop_assert!(diffy.cycles <= pra.cycles);
    }
}
