//! Thread-local recycling pools for the plane builders' backing stores.
//!
//! One cold term-serial evaluation at full HD allocates and frees on the
//! order of 130 MiB of plane and summed-area buffers. Whether those pages
//! survive to the next evaluation is up to the C allocator's adaptive
//! mmap/trim thresholds — which depend on the *process's entire prior
//! allocation history*, so two binaries running the identical kernel can
//! differ 2× in cold wall time purely on page-fault churn. These pools
//! take the allocator out of the loop: [`PaddedTerms`] and
//! [`GroupPlanes`] return their buffers here on drop, and the builders
//! draw from the pool first, so steady-state evaluations reuse the same
//! resident pages with no faulting and no large zeroing passes.
//!
//! Returned buffers are **dirty** (old contents, truncated/zero-extended
//! to the requested length): every consumer fully overwrites its buffer
//! or explicitly zeroes the regions it relies on (padding border rows).
//! Retention is bounded per element type — vectors beyond the byte or
//! count budget are simply freed — and each thread's pool dies with the
//! thread.
//!
//! [`PaddedTerms`]: crate::term_serial::PaddedTerms
//! [`GroupPlanes`]: crate::term_serial::GroupPlanes

use std::cell::RefCell;

/// Per-pool retention caps. The byte budgets are sized to hold the full
/// working set of one full-HD 16-channel layer (term planes ~66 MiB,
/// sum/cost planes ~33 MiB, summed-area tables ~66 MiB) with headroom;
/// the count cap bounds accumulation of small buffers from sweeps over
/// many little layers.
const MAX_VECS: usize = 64;
const U8_CAP_BYTES: usize = 128 << 20;
const U32_CAP_BYTES: usize = 64 << 20;
const U64_CAP_BYTES: usize = 96 << 20;

macro_rules! pool {
    ($take:ident, $put:ident, $tl:ident, $t:ty, $cap:expr) => {
        thread_local! {
            static $tl: RefCell<Vec<Vec<$t>>> = const { RefCell::new(Vec::new()) };
        }

        /// Takes a length-`len` vector, recycled when a pooled allocation
        /// fits (LIFO, so the most recently dropped — hottest — buffer is
        /// reused first). Contents are unspecified: recycled buffers keep
        /// their old data, fresh ones are zeroed. Callers must fully
        /// initialize whatever they read back.
        pub(crate) fn $take(len: usize) -> Vec<$t> {
            $tl.with(|p| {
                let mut pool = p.borrow_mut();
                for i in (0..pool.len()).rev() {
                    if pool[i].capacity() >= len {
                        let mut v = pool.swap_remove(i);
                        v.truncate(len);
                        v.resize(len, 0);
                        return v;
                    }
                }
                vec![0; len]
            })
        }

        /// Offers a buffer back to the pool; freed instead when the pool
        /// is at its count or byte budget.
        pub(crate) fn $put(v: Vec<$t>) {
            $tl.with(|p| {
                let mut pool = p.borrow_mut();
                let held: usize =
                    pool.iter().map(|v| v.capacity() * size_of::<$t>()).sum();
                if pool.len() < MAX_VECS && held + v.capacity() * size_of::<$t>() <= $cap {
                    pool.push(v);
                }
            })
        }
    };
}

pool!(take_u8, put_u8, U8_POOL, u8, U8_CAP_BYTES);
pool!(take_u32, put_u32, U32_POOL, u32, U32_CAP_BYTES);
pool!(take_u64, put_u64, U64_POOL, u64, U64_CAP_BYTES);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_and_zero_extends() {
        let mut v = take_u32(16);
        v.iter_mut().for_each(|x| *x = 7);
        let cap = v.capacity();
        put_u32(v);
        // Smaller request: recycled, stale contents, truncated.
        let v = take_u32(8);
        assert_eq!(v.len(), 8);
        assert!(v.capacity() >= cap.min(16));
        put_u32(v);
        // Request within capacity but past the truncated length: the
        // regrown tail must be zeroed.
        let v = take_u32(12);
        assert_eq!(v.len(), 12);
        assert!(v[8..].iter().all(|&x| x == 0));
    }

    #[test]
    fn oversized_requests_allocate_fresh_zeroed() {
        put_u8(vec![9u8; 4]);
        let v = take_u8(1 << 12);
        assert_eq!(v.len(), 1 << 12);
        assert!(v.iter().all(|&x| x == 0));
    }

    #[test]
    fn pool_respects_count_budget() {
        U8_POOL.with(|p| p.borrow_mut().clear());
        for _ in 0..2 * MAX_VECS {
            put_u8(vec![0u8; 8]);
        }
        U8_POOL.with(|p| assert!(p.borrow().len() <= MAX_VECS));
    }
}
