//! A Dynamic-Stripes-style bit-serial cycle model — the related-work
//! extension the paper explicitly motivates (§V): "Another accelerator
//! that could potentially benefit from differential convolution is
//! Dynamic Stripes whose performance varies with the precision of the
//! activations. Since deltas are smaller values than the activations,
//! their precision requirements will be lower as well."
//!
//! Dynamic Stripes processes activations bit-serially: a brick step costs
//! as many cycles as the dynamically detected *precision* of its
//! activation group — the position of the highest significant bit — not
//! the number of effectual terms. It is simpler and cheaper than PRA but
//! slower; running it on deltas quantifies the paper's suggestion.
//!
//! # Precision planes
//!
//! The cost structure is the same shape as the term-serial model's — a
//! per-value `u8` metric, summed per position over channels and
//! group-max-reduced per synchronization group — so the fast path reuses
//! the [`PaddedTerms`] machinery wholesale with [`stripes_bits`] as the
//! plane metric ([`PaddedTerms::build_with_metric`]). Precision planes
//! are built **once per layer** with summed-area tables instead of the
//! `Kh·Kw·C` per-window fetch walk the original loop performed;
//! the original survives as [`stripes_layer_reference`] and the plane
//! kernel is cross-validated against it for exact equality.

use crate::config::AcceleratorConfig;
use crate::report::{tile_partition, LayerCycles, NetworkCycles};
use crate::term_serial::{PaddedTerms, ValueMode};
use diffy_models::{LayerTrace, NetworkTrace};

/// Bits needed for a signed value in the Stripes datapath (sign +
/// magnitude of the two's-complement form; zero needs 0 cycles — zero
/// groups are skipped like zero bricks in PRA).
#[inline]
pub fn stripes_bits(v: i16) -> u32 {
    if v == 0 {
        0
    } else if v > 0 {
        17 - v.leading_zeros()
    } else {
        17 - v.leading_ones()
    }
}

/// [`stripes_bits`] lifted to rows — the plane metric handed to
/// [`PaddedTerms::build_with_metric`].
fn stripes_metric(values: &[i16], out: &mut [u8]) {
    for (o, &v) in out.iter_mut().zip(values) {
        *o = stripes_bits(v) as u8;
    }
}

/// Builds the dynamic-precision planes of one layer: per-channel
/// raw/delta precision, per-position channel sums with summed-area
/// tables, and memoized group-max cost planes — the Stripes analogue of
/// the Booth term planes.
pub fn stripes_planes(trace: &LayerTrace) -> PaddedTerms {
    PaddedTerms::build_with_metric(
        &trace.imap,
        trace.geom.pad,
        trace.geom.stride,
        &stripes_metric,
    )
}

/// Simulates one layer on a Dynamic-Stripes-style accelerator.
///
/// The structure mirrors [`crate::term_serial::term_serial_layer`] — same
/// tiles, windows and synchronization groups — but a group's brick step
/// costs its maximum *precision* instead of its maximum term count.
/// Builds the layer's precision planes and delegates to
/// [`stripes_layer_with_planes`].
pub fn stripes_layer(trace: &LayerTrace, cfg: &AcceleratorConfig, mode: ValueMode) -> LayerCycles {
    let planes = stripes_planes(trace);
    stripes_layer_with_planes(trace, cfg, mode, &planes)
}

/// The optimized Stripes kernel over prebuilt precision planes —
/// bit-identical to [`stripes_layer_reference`], but each window costs
/// O(1) summed-area lookups (dilation 1) instead of `Kh·Kw·C` activation
/// fetches. Note Stripes dispatches pallets per output row (no packing
/// across row boundaries), unlike the term-serial dispatcher.
pub fn stripes_layer_with_planes(
    trace: &LayerTrace,
    cfg: &AcceleratorConfig,
    mode: ValueMode,
    planes: &PaddedTerms,
) -> LayerCycles {
    let fshape = trace.fmaps.shape();
    let out = trace.out_shape();
    let s = trace.geom.stride;
    let d = trace.geom.dilation;
    let grouped = planes.grouped(cfg.terms_per_group);

    let (passes, spatial) = tile_partition(out.c, out.h, cfg.filters_per_tile, cfg.tiles);
    let mut cycles_per_pass: u64 = 0;
    let mut useful_bits: u64 = 0;

    // Dense windows amortize the summed-area lookups per output row via
    // the row-span prefixes (same trick as the term-serial walk, same
    // integers); dilated geometries keep the direct window reads.
    let dense = d == 1;
    let spans_delta = mode == ValueMode::Differential;
    let pw1 = planes.padded_dims().1 + 1;
    let mut cost_spans = vec![0u64; if dense { pw1 } else { 0 }];
    let mut sum_spans = vec![0u64; if dense { pw1 } else { 0 }];
    for oy in 0..out.h {
        let py0 = oy * s;
        if dense {
            grouped.cost_row_spans(spans_delta, py0, fshape.h, &mut cost_spans);
            planes.sum_row_spans(spans_delta, py0, fshape.h, &mut sum_spans);
        }
        let mut px0 = 0usize;
        while px0 < out.w {
            let pallet_end = (px0 + cfg.windows).min(out.w);
            let mut pallet_max: u64 = 0;
            for ox in px0..pallet_end {
                let use_delta = mode == ValueMode::Differential && ox != 0;
                let px = ox * s;
                let (col, wnd) = if dense && use_delta == spans_delta {
                    (
                        cost_spans[px + fshape.w] - cost_spans[px],
                        sum_spans[px + fshape.w] - sum_spans[px],
                    )
                } else {
                    (
                        grouped.cost_window(use_delta, py0, px, fshape.h, fshape.w, d),
                        planes.sum_window(use_delta, py0, px, fshape.h, fshape.w, d),
                    )
                };
                useful_bits += wnd;
                pallet_max = pallet_max.max(col);
            }
            cycles_per_pass += pallet_max;
            px0 = pallet_end;
        }
    }

    let cycles = (cycles_per_pass * passes).div_ceil(spatial);
    let lane_capacity = (cfg.lanes * cfg.windows * cfg.filters_per_tile * cfg.tiles) as u64;
    let macs = (out.c * out.h * out.w) as u64 * (fshape.c * fshape.h * fshape.w) as u64;
    LayerCycles {
        cycles,
        useful_slots: useful_bits * out.c as u64,
        total_slots: cycles * lane_capacity,
        compute_events: useful_bits * out.c as u64,
        filter_passes: passes,
        macs,
    }
}

/// The original per-window fetch walk, kept verbatim as the
/// cross-validation oracle for the plane kernel. Semantically
/// authoritative; never used on the hot path.
pub fn stripes_layer_reference(
    trace: &LayerTrace,
    cfg: &AcceleratorConfig,
    mode: ValueMode,
) -> LayerCycles {
    let ishape = trace.imap.shape();
    let fshape = trace.fmaps.shape();
    let out = trace.out_shape();
    let g = cfg.terms_per_group;
    let s = trace.geom.stride;
    let d = trace.geom.dilation;
    let pad = trace.geom.pad;

    let fetch = |c: usize, py: usize, px: usize| -> i16 {
        let y = py as isize - pad as isize;
        let x = px as isize - pad as isize;
        if y < 0 || x < 0 || y as usize >= ishape.h || x as usize >= ishape.w {
            0
        } else {
            *trace.imap.at(c, y as usize, x as usize)
        }
    };
    let value = |c: usize, py: usize, px: usize, use_delta: bool| -> i16 {
        let v = fetch(c, py, px);
        if use_delta {
            let prev = if px >= s { fetch(c, py, px - s) } else { 0 };
            v.wrapping_sub(prev)
        } else {
            v
        }
    };

    let (passes, spatial) = tile_partition(out.c, out.h, cfg.filters_per_tile, cfg.tiles);
    let mut cycles_per_pass: u64 = 0;
    let mut useful_bits: u64 = 0;

    for oy in 0..out.h {
        let mut px0 = 0usize;
        while px0 < out.w {
            let pallet_end = (px0 + cfg.windows).min(out.w);
            let mut pallet_max: u64 = 0;
            for ox in px0..pallet_end {
                let use_delta = mode == ValueMode::Differential && ox != 0;
                let mut col: u64 = 0;
                for j in 0..fshape.h {
                    let py = oy * s + j * d;
                    for i in 0..fshape.w {
                        let px = ox * s + i * d;
                        let mut c0 = 0usize;
                        while c0 < ishape.c {
                            let c1 = (c0 + g).min(ishape.c);
                            let mut mx = 0u32;
                            let mut sum = 0u32;
                            for c in c0..c1 {
                                let b = stripes_bits(value(c, py, px, use_delta));
                                mx = mx.max(b);
                                sum += b;
                            }
                            col += mx as u64;
                            useful_bits += sum as u64;
                            c0 = c1;
                        }
                    }
                }
                pallet_max = pallet_max.max(col);
            }
            cycles_per_pass += pallet_max;
            px0 = pallet_end;
        }
    }

    let cycles = (cycles_per_pass * passes).div_ceil(spatial);
    let lane_capacity = (cfg.lanes * cfg.windows * cfg.filters_per_tile * cfg.tiles) as u64;
    let macs = (out.c * out.h * out.w) as u64 * (fshape.c * fshape.h * fshape.w) as u64;
    LayerCycles {
        cycles,
        useful_slots: useful_bits * out.c as u64,
        total_slots: cycles * lane_capacity,
        compute_events: useful_bits * out.c as u64,
        filter_passes: passes,
        macs,
    }
}

/// Simulates every layer of a network on the Stripes-style design.
pub fn stripes_network(
    trace: &NetworkTrace,
    cfg: &AcceleratorConfig,
    mode: ValueMode,
) -> NetworkCycles {
    NetworkCycles {
        arch: match mode {
            ValueMode::Raw => "DStripes",
            ValueMode::Differential => "DStripes+delta",
        },
        layers: trace.layers.iter().map(|l| stripes_layer(l, cfg, mode)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term_serial::term_serial_layer;
    use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

    fn mk_trace(imap: Tensor3<i16>, k: usize, f: usize) -> LayerTrace {
        mk_trace_geom(imap, k, f, ConvGeometry::same(f, f))
    }

    fn mk_trace_geom(imap: Tensor3<i16>, k: usize, f: usize, geom: ConvGeometry) -> LayerTrace {
        let c = imap.shape().c;
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap,
            fmaps: Tensor4::<i16>::filled(k, c, f, f, 1),
            geom,
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    fn pseudo_imap(c: usize, h: usize, w: usize, salt: u64) -> Tensor3<i16> {
        let data: Vec<i16> = (0..c * h * w)
            .map(|i| ((i as u64).wrapping_mul(6364136223846793005).wrapping_add(salt) >> 41) as i16)
            .collect();
        Tensor3::from_vec(c, h, w, data)
    }

    #[test]
    fn stripes_bits_matches_definition() {
        assert_eq!(stripes_bits(0), 0);
        assert_eq!(stripes_bits(1), 2);
        assert_eq!(stripes_bits(-1), 1);
        assert_eq!(stripes_bits(255), 9);
        assert_eq!(stripes_bits(i16::MAX), 16);
        assert_eq!(stripes_bits(i16::MIN), 16);
    }

    #[test]
    fn plane_kernel_matches_reference_across_geometries() {
        // Stride / pad / dilation / odd-C sweep, both value modes — the
        // precision-plane analogue of the term-serial cross-validation.
        for (c, h, w, k, f, geom, salt) in [
            (16, 8, 8, 16, 3, ConvGeometry::same(3, 3), 1u64),
            (3, 5, 17, 7, 3, ConvGeometry::same(3, 3), 2),
            (16, 6, 33, 16, 1, ConvGeometry::unit(), 3),
            (5, 9, 40, 8, 3, ConvGeometry::strided(2, 1), 4),
            (8, 11, 11, 8, 3, ConvGeometry::same_dilated(3, 2), 5),
            (1, 3, 24, 2, 1, ConvGeometry::unit(), 6),
            (5, 14, 23, 8, 3, ConvGeometry { stride: 2, pad: 2, dilation: 2 }, 7),
        ] {
            let t = mk_trace_geom(pseudo_imap(c, h, w, salt), k, f, geom);
            assert!(t.out_shape().h > 0 && t.out_shape().w > 0, "degenerate geometry");
            for g in [1usize, 3, 16] {
                let cfg = AcceleratorConfig::table4().with_terms_per_group(g);
                for mode in [ValueMode::Raw, ValueMode::Differential] {
                    let fast = stripes_layer(&t, &cfg, mode);
                    let reference = stripes_layer_reference(&t, &cfg, mode);
                    assert_eq!(fast, reference, "salt {salt} g {g} mode {mode:?}");
                }
            }
        }
    }

    #[test]
    fn shared_planes_match_fresh_build() {
        let t = mk_trace(pseudo_imap(6, 7, 21, 11), 8, 3);
        let cfg = AcceleratorConfig::table4();
        let planes = stripes_planes(&t);
        for mode in [ValueMode::Raw, ValueMode::Differential] {
            assert_eq!(
                stripes_layer_with_planes(&t, &cfg, mode, &planes),
                stripes_layer(&t, &cfg, mode)
            );
        }
    }

    #[test]
    fn stripes_never_beats_pragmatic_on_the_same_values() {
        // Terms <= bits for every value (NAF nonzero digits <= bit count),
        // so PRA is at least as fast per group.
        let data: Vec<i16> = (0..16 * 4 * 16).map(|i| ((i * 37) % 1021) as i16).collect();
        let t = mk_trace(Tensor3::from_vec(16, 4, 16, data), 16, 3);
        let cfg = AcceleratorConfig::table4();
        let stripes = stripes_layer(&t, &cfg, ValueMode::Raw);
        let pra = term_serial_layer(&t, &cfg, ValueMode::Raw);
        assert!(pra.cycles <= stripes.cycles);
    }

    #[test]
    fn deltas_help_stripes_on_smooth_data() {
        // The paper's §V claim, quantified: smaller deltas -> lower
        // dynamic precision -> fewer bit-serial cycles.
        let data: Vec<i16> = (0..4 * 4 * 64).map(|i| 4000 + (i % 64) as i16).collect();
        let t = mk_trace(Tensor3::from_vec(4, 4, 64, data), 8, 3);
        let cfg = AcceleratorConfig::table4();
        let raw = stripes_layer(&t, &cfg, ValueMode::Raw);
        let delta = stripes_layer(&t, &cfg, ValueMode::Differential);
        assert!(
            (delta.cycles as f64) < raw.cycles as f64 * 0.7,
            "delta {} vs raw {}",
            delta.cycles,
            raw.cycles
        );
    }

    #[test]
    fn zero_imap_is_free() {
        let t = mk_trace(Tensor3::<i16>::new(16, 4, 8), 16, 1);
        let r = stripes_layer(&t, &AcceleratorConfig::table4(), ValueMode::Raw);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn network_labels() {
        let t = NetworkTrace {
            model: "m".into(),
            layers: vec![mk_trace(Tensor3::<i16>::filled(4, 4, 4, 3), 4, 1)],
            output: Tensor3::<i16>::new(1, 1, 1),
        };
        let cfg = AcceleratorConfig::table4();
        assert_eq!(stripes_network(&t, &cfg, ValueMode::Raw).arch, "DStripes");
        assert_eq!(
            stripes_network(&t, &cfg, ValueMode::Differential).arch,
            "DStripes+delta"
        );
    }
}
