//! The value-agnostic baseline accelerator (Fig. 6).
//!
//! A VAA tile has `filters_per_tile` inner-product units, each consuming a
//! brick of `lanes` activations per cycle; filters are partitioned across
//! tiles and every tile walks the same window sequence. Execution time
//! depends only on the layer's dimensions — never on the values — which is
//! exactly what makes it the "déjà vu" baseline the paper improves on.

use crate::config::AcceleratorConfig;
use crate::report::{LayerCycles, NetworkCycles};
use diffy_models::{LayerTrace, NetworkTrace};

/// Simulates one layer on VAA.
pub fn vaa_layer(trace: &LayerTrace, cfg: &AcceleratorConfig) -> LayerCycles {
    let ishape = trace.imap.shape();
    let fshape = trace.fmaps.shape();
    let out = trace.out_shape();

    let chunks = ishape.c.div_ceil(cfg.lanes) as u64;
    let window_cycles = chunks * (fshape.h * fshape.w) as u64;
    let (passes, spatial) =
        crate::report::tile_partition(out.c, out.h, cfg.filters_per_tile, cfg.tiles);
    let cycles = ((out.h * out.w) as u64 * window_cycles * passes).div_ceil(spatial);

    let macs = (out.c * out.h * out.w) as u64 * (fshape.c * fshape.h * fshape.w) as u64;
    // One MAC occupies one lane slot; capacity is lanes × filter rows ×
    // tiles (VAA processes a single window at a time per tile).
    let lane_capacity = (cfg.lanes * cfg.filters_per_tile * cfg.tiles) as u64;
    LayerCycles {
        cycles,
        useful_slots: macs,
        total_slots: cycles * lane_capacity,
        compute_events: macs,
        filter_passes: passes,
        macs,
    }
}

/// Simulates every layer of a network trace on VAA.
pub fn vaa_network(trace: &NetworkTrace, cfg: &AcceleratorConfig) -> NetworkCycles {
    NetworkCycles {
        arch: "VAA",
        layers: trace.layers.iter().map(|l| vaa_layer(l, cfg)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term_serial::{term_serial_layer, ValueMode};
    use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

    fn mk_trace(c: usize, h: usize, w: usize, k: usize, f: usize) -> LayerTrace {
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap: Tensor3::<i16>::filled(c, h, w, 85), // 0b0101_0101: 4 terms
            fmaps: Tensor4::<i16>::filled(k, c, f, f, 1),
            geom: ConvGeometry::same(f, f),
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    #[test]
    fn cycles_match_closed_form() {
        let t = mk_trace(64, 8, 8, 64, 3);
        let cfg = AcceleratorConfig::table4();
        let r = vaa_layer(&t, &cfg);
        // 8x8 windows x ceil(64/16)=4 chunks x 9 positions x 1 pass.
        assert_eq!(r.cycles, 64 * 4 * 9);
        assert_eq!(r.filter_passes, 1);
    }

    #[test]
    fn underutilized_channels_do_not_reduce_cycles() {
        let full = vaa_layer(&mk_trace(16, 8, 8, 16, 3), &AcceleratorConfig::table4());
        let thin = vaa_layer(&mk_trace(3, 8, 8, 16, 3), &AcceleratorConfig::table4());
        // 3 channels still occupy a full 16-lane brick step.
        assert_eq!(full.cycles, thin.cycles);
        assert!(thin.utilization() < full.utilization());
    }

    #[test]
    fn vaa_is_value_agnostic() {
        let mut a = mk_trace(16, 6, 6, 16, 3);
        let b = mk_trace(16, 6, 6, 16, 3);
        for v in a.imap.as_mut_slice() {
            *v = 0; // all-zero values
        }
        let cfg = AcceleratorConfig::table4();
        assert_eq!(vaa_layer(&a, &cfg).cycles, vaa_layer(&b, &cfg).cycles);
    }

    #[test]
    fn more_tiles_cut_cycles_only_with_enough_filters() {
        let t = mk_trace(64, 8, 8, 128, 3);
        let c4 = vaa_layer(&t, &AcceleratorConfig::table4());
        let c8 = vaa_layer(&t, &AcceleratorConfig::table4().with_tiles(8));
        assert_eq!(c4.cycles, 2 * c8.cycles); // 128 filters: 2 passes vs 1
        // A shallow-K layer cannot use more tiles on the filter axis, but
        // surplus tiles split output rows spatially.
        let small = mk_trace(64, 8, 8, 8, 3);
        let s4 = vaa_layer(&small, &AcceleratorConfig::table4());
        let s8 = vaa_layer(&small, &AcceleratorConfig::table4().with_tiles(8));
        assert_eq!(s4.cycles, 2 * s8.cycles);
    }

    #[test]
    fn pra_worst_case_matches_vaa() {
        // 0x5555 activations have the max 8 effectual terms; PRA processes
        // 16 windows concurrently, so per-window it spends 8 cycles where
        // VAA spends 1 x 16-window-equivalent... with the paper's 2x
        // over-provisioning PRA can only tie or win.
        let mut t = mk_trace(16, 4, 32, 16, 1);
        for v in t.imap.as_mut_slice() {
            *v = 0x5555;
        }
        let cfg = AcceleratorConfig::table4();
        let vaa = vaa_layer(&t, &cfg);
        let pra = term_serial_layer(&t, &cfg, ValueMode::Raw);
        // VAA: 128 windows x 1 chunk x 1 pos = 128 cycles, split across
        // 4 tiles spatially (K=16 fills one tile group) -> 32.
        // PRA: 8 pallets x 8 terms = 64 cycles (16 windows in flight),
        // same 4-way split -> 16.
        assert_eq!(vaa.cycles, 32);
        assert_eq!(pra.cycles, 16);
    }

    #[test]
    fn network_aggregation() {
        let t = NetworkTrace {
            model: "m".into(),
            layers: vec![mk_trace(16, 4, 4, 16, 3), mk_trace(16, 4, 4, 16, 3)],
            output: Tensor3::<i16>::new(16, 4, 4),
        };
        let n = vaa_network(&t, &AcceleratorConfig::table4());
        assert_eq!(n.arch, "VAA");
        assert_eq!(n.layers.len(), 2);
        assert_eq!(n.total_cycles(), 2 * n.layers[0].cycles);
    }
}
