//! Work-reduction potential (Fig. 4): the idealized speedups of
//! processing only effectual terms, with no synchronization or
//! underutilization losses.
//!
//! Three computation approaches are compared over the convolution's
//! activation-fetch stream:
//!
//! * **ALL** — the value-agnostic baseline processes all 16 terms of
//!   every activation.
//! * **RawE** — only the effectual terms of the raw activations.
//! * **ΔE** — only the effectual terms of the deltas (leftmost window of
//!   each row raw, as in Diffy's dataflow).

use crate::term_serial::PaddedTerms;
use diffy_models::{LayerTrace, NetworkTrace};
use diffy_tensor::ACT_BITS;

/// Term totals over a convolution stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Potential {
    /// Terms the value-agnostic approach processes (16 per fetch).
    pub all_terms: u64,
    /// Effectual terms of the raw activations.
    pub raw_terms: u64,
    /// Effectual terms of the deltas (row-anchored).
    pub delta_terms: u64,
}

impl Potential {
    /// Merges another accumulation.
    pub fn merge(&mut self, other: &Potential) {
        self.all_terms += other.all_terms;
        self.raw_terms += other.raw_terms;
        self.delta_terms += other.delta_terms;
    }

    /// Idealized speedup of RawE over ALL.
    pub fn raw_speedup(&self) -> f64 {
        ratio(self.all_terms, self.raw_terms)
    }

    /// Idealized speedup of ΔE over ALL.
    pub fn delta_speedup(&self) -> f64 {
        ratio(self.all_terms, self.delta_terms)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        f64::INFINITY
    } else {
        num as f64 / den as f64
    }
}

/// Accumulates the potential of one layer's convolution stream.
///
/// Builds the layer's [`PaddedTerms`] and delegates to
/// [`layer_potential_with_terms`]; callers that also run the cycle model
/// on the same trace should share one plane build per layer.
pub fn layer_potential(trace: &LayerTrace) -> Potential {
    let terms = PaddedTerms::for_layer(trace);
    layer_potential_with_terms(trace, &terms)
}

/// [`layer_potential`] over prebuilt term planes.
///
/// Per window the three counters are whole-window integers the planes
/// already hold: `ALL` is the fetch count times [`ACT_BITS`], and the
/// effectual raw/delta totals are summed-area lookups over the
/// channel-sum planes — identical integers to the element-wise
/// accumulation, without re-walking `Kh·Kw·C` term fetches per window.
pub fn layer_potential_with_terms(trace: &LayerTrace, terms: &PaddedTerms) -> Potential {
    let ishape = trace.imap.shape();
    let fshape = trace.fmaps.shape();
    let out = trace.out_shape();
    let s = trace.geom.stride;
    let d = trace.geom.dilation;
    let fetches_per_window = (fshape.h * fshape.w * ishape.c) as u64;

    let mut p = Potential::default();
    for oy in 0..out.h {
        let py0 = oy * s;
        for ox in 0..out.w {
            let use_delta = ox != 0;
            let px0 = ox * s;
            p.all_terms += fetches_per_window * ACT_BITS as u64;
            let raw = terms.sum_window(false, py0, px0, fshape.h, fshape.w, d);
            p.raw_terms += raw;
            p.delta_terms += if use_delta {
                terms.sum_window(true, py0, px0, fshape.h, fshape.w, d)
            } else {
                raw
            };
        }
    }
    p
}

/// Accumulates the potential over a whole network trace.
pub fn network_potential(trace: &NetworkTrace) -> Potential {
    let mut p = Potential::default();
    for l in &trace.layers {
        p.merge(&layer_potential(l));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

    fn mk_trace(imap: Tensor3<i16>, f: usize) -> LayerTrace {
        let c = imap.shape().c;
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap,
            fmaps: Tensor4::<i16>::filled(4, c, f, f, 1),
            geom: ConvGeometry::same(f, f),
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    #[test]
    fn all_terms_count_sixteen_per_fetch() {
        let t = mk_trace(Tensor3::<i16>::filled(2, 3, 4, 1), 1);
        let p = layer_potential(&t);
        // 12 windows x 1 filter pos x 2 channels x 16 bits.
        assert_eq!(p.all_terms, 12 * 2 * 16);
    }

    #[test]
    fn constant_image_has_huge_delta_potential() {
        let t = mk_trace(Tensor3::<i16>::filled(4, 4, 32, 85), 3);
        let p = layer_potential(&t);
        assert!(p.delta_speedup() > p.raw_speedup() * 2.0);
    }

    #[test]
    fn zero_image_is_infinitely_compressible() {
        let t = mk_trace(Tensor3::<i16>::new(2, 2, 4), 1);
        let p = layer_potential(&t);
        assert_eq!(p.raw_terms, 0);
        assert!(p.raw_speedup().is_infinite());
    }

    #[test]
    fn speedups_are_at_least_sixteen_over_max_terms() {
        // raw_speedup >= 16 / 9 always (NAF of 16-bit needs <= 9 terms).
        let data: Vec<i16> = (0..4 * 4 * 8).map(|i| (i * 7919) as i16).collect();
        let t = mk_trace(Tensor3::from_vec(4, 4, 8, data), 3);
        let p = layer_potential(&t);
        assert!(p.raw_speedup() >= 16.0 / 9.0);
        assert!(p.delta_speedup() >= 16.0 / 10.0); // 17-bit deltas, wrapped to 16
    }

    /// The original element-wise accumulation, kept as the oracle for the
    /// plane-based fast path.
    fn layer_potential_reference(trace: &LayerTrace) -> Potential {
        let ishape = trace.imap.shape();
        let fshape = trace.fmaps.shape();
        let out = trace.out_shape();
        let s = trace.geom.stride;
        let d = trace.geom.dilation;
        let terms = PaddedTerms::for_layer(trace);
        let mut p = Potential::default();
        for oy in 0..out.h {
            for ox in 0..out.w {
                let use_delta = ox != 0;
                for j in 0..fshape.h {
                    let py = oy * s + j * d;
                    for i in 0..fshape.w {
                        let px = ox * s + i * d;
                        for c in 0..ishape.c {
                            p.all_terms += ACT_BITS as u64;
                            p.raw_terms += terms.raw_at(c, py, px) as u64;
                            p.delta_terms += if use_delta {
                                terms.delta_at(c, py, px) as u64
                            } else {
                                terms.raw_at(c, py, px) as u64
                            };
                        }
                    }
                }
            }
        }
        p
    }

    #[test]
    fn plane_based_potential_matches_elementwise_reference() {
        use diffy_tensor::ConvGeometry;
        let mk = |c: usize, h: usize, w: usize, geom: ConvGeometry, salt: u64| {
            let data: Vec<i16> = (0..c * h * w)
                .map(|i| ((i as u64).wrapping_mul(2862933555777941757).wrapping_add(salt) >> 43) as i16)
                .collect();
            LayerTrace {
                name: "t".into(),
                index: 0,
                imap: Tensor3::from_vec(c, h, w, data),
                fmaps: Tensor4::<i16>::filled(4, c, 3, 3, 1),
                geom,
                relu: true,
                requant_shift: 12,
                requant_bias: 0,
                next_stride: 1,
            }
        };
        for (geom, salt) in [
            (ConvGeometry::same(3, 3), 1u64),
            (ConvGeometry::strided(2, 1), 2),
            (ConvGeometry::same_dilated(3, 2), 3),
            (ConvGeometry { stride: 2, pad: 2, dilation: 2 }, 4),
        ] {
            let t = mk(5, 12, 15, geom, salt);
            assert_eq!(layer_potential(&t), layer_potential_reference(&t), "{geom:?}");
        }
    }

    #[test]
    fn network_potential_merges_layers() {
        let l = mk_trace(Tensor3::<i16>::filled(2, 3, 4, 3), 1);
        let single = layer_potential(&l);
        let t = NetworkTrace {
            model: "m".into(),
            layers: vec![l.clone(), l],
            output: Tensor3::<i16>::new(1, 1, 1),
        };
        let p = network_potential(&t);
        assert_eq!(p.all_terms, 2 * single.all_terms);
        assert_eq!(p.raw_terms, 2 * single.raw_terms);
    }
}
