//! The term-serial cycle model shared by PRA and Diffy.
//!
//! A tile holds `filters_per_tile` SIP rows × `windows` SIP columns; each
//! SIP processes `lanes` activation lanes, one effectual Booth term per
//! lane per cycle. Execution advances in *brick steps* — one `(channel
//! chunk, j, i)` position of the sliding window — and a step costs the
//! **maximum** term count across each `terms_per_group` lane group
//! (cross-lane synchronization, the paper's `T_x`). A *pallet* of
//! `windows` consecutive windows completes when its slowest column does
//! (the weight brick is shared across columns).
//!
//! [`ValueMode::Differential`] is Diffy: every window except the leftmost
//! of each output row consumes the term counts of the *wrapped deltas*
//! between horizontally adjacent (stride-distant) activations; the
//! leftmost window is processed raw (§III-D). The DR reconstruction adds
//! and the Delta_out engine are fully overlapped with compute (§III-E:
//! "there is plenty of time to reconstruct") and add no cycles.

use crate::config::AcceleratorConfig;
use crate::report::{LayerCycles, NetworkCycles};
use diffy_encoding::booth_terms;
use diffy_models::{LayerTrace, NetworkTrace};

/// Which value stream the SIP lanes consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueMode {
    /// Raw activations — the PRA baseline.
    Raw,
    /// Row-anchored deltas — Diffy.
    Differential,
}

/// Zero-padded per-element Booth-term counts for one imap, for both the
/// raw values and their horizontal deltas.
///
/// Public within the crate so the potential model (Fig. 4) can reuse it.
pub(crate) struct PaddedTerms {
    c: usize,
    ph: usize,
    pw: usize,
    raw: Vec<u8>,
    delta: Vec<u8>,
}

impl PaddedTerms {
    /// Builds term counts for `imap` padded by `pad` on every spatial
    /// border, with deltas taken at distance `stride` along W.
    pub(crate) fn build(imap: &diffy_tensor::Tensor3<i16>, pad: usize, stride: usize) -> Self {
        let s = imap.shape();
        let (ph, pw) = (s.h + 2 * pad, s.w + 2 * pad);
        let mut raw = vec![0u8; s.c * ph * pw];
        let mut delta = vec![0u8; s.c * ph * pw];
        let at = |c: usize, py: usize, px: usize| -> i16 {
            let y = py as isize - pad as isize;
            let x = px as isize - pad as isize;
            if y < 0 || x < 0 || y as usize >= s.h || x as usize >= s.w {
                0
            } else {
                *imap.at(c, y as usize, x as usize)
            }
        };
        for c in 0..s.c {
            for py in 0..ph {
                for px in 0..pw {
                    let idx = (c * ph + py) * pw + px;
                    let v = at(c, py, px);
                    raw[idx] = booth_terms(v) as u8;
                    let prev = if px >= stride { at(c, py, px - stride) } else { 0 };
                    delta[idx] = booth_terms(v.wrapping_sub(prev)) as u8;
                }
            }
        }
        Self { c: s.c, ph, pw, raw, delta }
    }

    #[inline]
    pub(crate) fn raw_at(&self, c: usize, py: usize, px: usize) -> u32 {
        debug_assert!(c < self.c && py < self.ph && px < self.pw);
        self.raw[(c * self.ph + py) * self.pw + px] as u32
    }

    #[inline]
    pub(crate) fn delta_at(&self, c: usize, py: usize, px: usize) -> u32 {
        debug_assert!(c < self.c && py < self.ph && px < self.pw);
        self.delta[(c * self.ph + py) * self.pw + px] as u32
    }
}

/// Simulates one layer on the term-serial architecture.
///
/// Returns compute cycles and slot accounting (memory stalls are folded
/// in by the experiment runner, which owns the memory model).
pub fn term_serial_layer(
    trace: &LayerTrace,
    cfg: &AcceleratorConfig,
    mode: ValueMode,
) -> LayerCycles {
    let ishape = trace.imap.shape();
    let fshape = trace.fmaps.shape();
    let out = trace.out_shape();
    let g = cfg.terms_per_group;
    let s = trace.geom.stride;
    let d = trace.geom.dilation;
    let terms = PaddedTerms::build(&trace.imap, trace.geom.pad, s);

    let (passes, spatial) =
        crate::report::tile_partition(out.c, out.h, cfg.filters_per_tile, cfg.tiles);
    // Sum of active filter rows across passes == K; idle rows in the last
    // pass are captured by total_slots.
    let active_filter_sum = out.c as u64;

    let mut cycles_per_pass: u64 = 0;
    let mut window_terms: u64 = 0;

    // Windows are dispatched 16 (cfg.windows) at a time in row-major
    // order; the dispatcher packs pallets across row boundaries, so
    // narrow layers keep the full window-level parallelism.
    let mut pallet_max: u64 = 0;
    let mut pallet_fill = 0usize;
    for oy in 0..out.h {
        for ox in 0..out.w {
            let use_delta = mode == ValueMode::Differential && ox != 0;
            let mut col: u64 = 0;
            for j in 0..fshape.h {
                let py = oy * s + j * d;
                for i in 0..fshape.w {
                    let px = ox * s + i * d;
                    let mut c0 = 0usize;
                    while c0 < ishape.c {
                        let c1 = (c0 + g).min(ishape.c);
                        let mut mx = 0u32;
                        let mut sum = 0u32;
                        for c in c0..c1 {
                            let t = if use_delta {
                                terms.delta_at(c, py, px)
                            } else {
                                terms.raw_at(c, py, px)
                            };
                            if t > mx {
                                mx = t;
                            }
                            sum += t;
                        }
                        col += mx as u64;
                        window_terms += sum as u64;
                        c0 = c1;
                    }
                }
            }
            if col > pallet_max {
                pallet_max = col;
            }
            pallet_fill += 1;
            if pallet_fill == cfg.windows {
                cycles_per_pass += pallet_max;
                pallet_max = 0;
                pallet_fill = 0;
            }
        }
    }
    cycles_per_pass += pallet_max;

    let cycles = (cycles_per_pass * passes).div_ceil(spatial);
    let lane_capacity = (cfg.lanes * cfg.windows * cfg.filters_per_tile * cfg.tiles) as u64;
    let macs = (out.c * out.h * out.w) as u64 * (fshape.c * fshape.h * fshape.w) as u64;
    LayerCycles {
        cycles,
        useful_slots: window_terms * active_filter_sum,
        total_slots: cycles * lane_capacity,
        compute_events: window_terms * active_filter_sum,
        filter_passes: passes,
        macs,
    }
}

/// The paper's profiled *selective* Diffy variant (§IV-A): apply
/// differential convolution per layer only where it wins, reverting to
/// raw (PRA) processing otherwise — the per-SIP DR multiplexer makes
/// this free in hardware. The paper found the overall gain "negligible
/// and below 1% at best"; this model lets that ablation be reproduced.
pub fn selective_network(trace: &NetworkTrace, cfg: &AcceleratorConfig) -> NetworkCycles {
    NetworkCycles {
        arch: "Diffy-selective",
        layers: trace
            .layers
            .iter()
            .map(|l| {
                let raw = term_serial_layer(l, cfg, ValueMode::Raw);
                let diff = term_serial_layer(l, cfg, ValueMode::Differential);
                if raw.cycles < diff.cycles {
                    raw
                } else {
                    diff
                }
            })
            .collect(),
    }
}

/// Simulates every layer of a network trace.
pub fn term_serial_network(
    trace: &NetworkTrace,
    cfg: &AcceleratorConfig,
    mode: ValueMode,
) -> NetworkCycles {
    NetworkCycles {
        arch: match mode {
            ValueMode::Raw => "PRA",
            ValueMode::Differential => "Diffy",
        },
        layers: trace
            .layers
            .iter()
            .map(|l| term_serial_layer(l, cfg, mode))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

    fn mk_trace(imap: Tensor3<i16>, k: usize, f: usize, geom: ConvGeometry) -> LayerTrace {
        let c = imap.shape().c;
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap,
            fmaps: Tensor4::<i16>::filled(k, c, f, f, 1),
            geom,
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::table4()
    }

    #[test]
    fn zero_imap_costs_zero_compute_cycles() {
        let t = mk_trace(Tensor3::<i16>::new(16, 8, 8), 16, 3, ConvGeometry::same(3, 3));
        let r = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.useful_slots, 0);
    }

    #[test]
    fn constant_imap_is_free_for_diffy_after_first_window() {
        // All-7 imap: raw terms 3 per value (7 = 8 - 1 -> 2 terms actually),
        // deltas all zero except the leftmost window per row.
        let t = mk_trace(Tensor3::<i16>::filled(16, 6, 33, 7), 16, 1, ConvGeometry::unit());
        let raw = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let diff = term_serial_layer(&t, &cfg(), ValueMode::Differential);
        assert!(diff.cycles < raw.cycles);
        // Rows are 33 wide = 3 pallets (16+16+1); only the pallet holding
        // window 0 has nonzero max per row. terms(7) = 2, so 6 rows x 2
        // cycles, split 4 ways spatially (K=16 fills one tile group,
        // the other 3 tiles split rows).
        assert_eq!(diff.cycles, (6 * 2u64).div_ceil(4));
    }

    #[test]
    fn diffy_equals_pra_on_uncorrelated_worst_case() {
        // A pathological imap alternating 0x5555 / 0 kills correlation:
        // diffy must not be (much) better, and both are bounded by 16
        // cycles per brick step worst case.
        let data: Vec<i16> = (0..16 * 4 * 32)
            .map(|i| if i % 2 == 0 { 0x5555 } else { 0 })
            .collect();
        let t = mk_trace(
            Tensor3::from_vec(16, 4, 32, data),
            16,
            1,
            ConvGeometry::unit(),
        );
        let raw = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let diff = term_serial_layer(&t, &cfg(), ValueMode::Differential);
        // deltas of alternating +v/-v need at least as many terms.
        assert!(diff.cycles >= raw.cycles);
    }

    #[test]
    fn smooth_ramp_strongly_favours_diffy() {
        let data: Vec<i16> = (0..8 * 64).map(|i| 1000 + (i % 64) as i16 * 3).collect();
        let t = mk_trace(
            Tensor3::from_vec(1, 8, 64, data.clone()),
            16,
            3,
            ConvGeometry::same(3, 3),
        );
        let raw = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let diff = term_serial_layer(&t, &cfg(), ValueMode::Differential);
        assert!(
            (diff.cycles as f64) < raw.cycles as f64 * 0.7,
            "diffy {} vs pra {}",
            diff.cycles,
            raw.cycles
        );
    }

    #[test]
    fn t1_serializes_but_improves_relative_speedup() {
        // A T_x configuration has x lanes per filter, so absolute cycles
        // grow as x shrinks — but the speedup over an equally-provisioned
        // VAA improves because cross-lane synchronization disappears
        // (Fig. 16: 7.1x at T16 becomes 11.9x at T1).
        let data: Vec<i16> = (0..16 * 4 * 20)
            .map(|i| ((i * 37) % 97) as i16)
            .collect();
        let t = mk_trace(Tensor3::from_vec(16, 4, 20, data), 8, 3, ConvGeometry::same(3, 3));
        let cfg16 = cfg();
        let mut cfg1 = cfg();
        cfg1.lanes = 1;
        cfg1.terms_per_group = 1;
        let term16 = term_serial_layer(&t, &cfg16, ValueMode::Raw);
        let term1 = term_serial_layer(&t, &cfg1, ValueMode::Raw);
        assert!(term1.cycles >= term16.cycles, "T1 must serialize");
        let vaa16 = crate::vaa::vaa_layer(&t, &cfg16);
        let vaa1 = crate::vaa::vaa_layer(&t, &cfg1);
        let speedup16 = vaa16.cycles as f64 / term16.cycles as f64;
        let speedup1 = vaa1.cycles as f64 / term1.cycles as f64;
        assert!(
            speedup1 > speedup16,
            "T1 speedup {speedup1} should beat T16 speedup {speedup16}"
        );
    }

    #[test]
    fn t1_reaches_per_window_term_totals() {
        // With T1 a column's cycles equal its total term count; with one
        // window per pallet... windows=16, so the pallet max still
        // applies. Use a single output column to isolate.
        let data: Vec<i16> = vec![3, 5, 9, 17];
        let t = mk_trace(Tensor3::from_vec(4, 1, 1, data), 1, 1, ConvGeometry::unit());
        let r = term_serial_layer(&t, &cfg().with_terms_per_group(1), ValueMode::Raw);
        // terms: 3->2, 5->2, 9->2, 17->2 = 8 total.
        assert_eq!(r.cycles, 8);
        let r16 = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        assert_eq!(r16.cycles, 2); // max over the 4 lanes in one group
    }

    #[test]
    fn filter_passes_multiply_cycles() {
        let data: Vec<i16> = (0..4 * 2 * 8).map(|i| (i % 13) as i16).collect();
        let base = mk_trace(
            Tensor3::from_vec(4, 2, 8, data.clone()),
            64,
            1,
            ConvGeometry::unit(),
        );
        let double = mk_trace(Tensor3::from_vec(4, 2, 8, data), 128, 1, ConvGeometry::unit());
        let a = term_serial_layer(&base, &cfg(), ValueMode::Raw);
        let b = term_serial_layer(&double, &cfg(), ValueMode::Raw);
        assert_eq!(a.filter_passes, 1);
        assert_eq!(b.filter_passes, 2);
        assert_eq!(b.cycles, 2 * a.cycles);
    }

    #[test]
    fn utilization_is_in_unit_interval_and_sane() {
        let data: Vec<i16> = (0..16 * 4 * 16).map(|i| (i % 251) as i16).collect();
        let t = mk_trace(Tensor3::from_vec(16, 4, 16, data), 64, 3, ConvGeometry::same(3, 3));
        let r = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let u = r.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn three_channel_first_layer_has_low_utilization() {
        // The paper: "the first layer ... 13 out of the 16 available
        // activation lanes are typically idle".
        let data: Vec<i16> = (0..3 * 4 * 16).map(|i| (i % 251) as i16 + 1).collect();
        let t = mk_trace(Tensor3::from_vec(3, 4, 16, data), 64, 3, ConvGeometry::same(3, 3));
        let r = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        assert!(r.utilization() < 0.25, "got {}", r.utilization());
    }

    #[test]
    fn selective_never_loses_to_either_pure_mode() {
        let data: Vec<i16> = (0..8 * 4 * 20).map(|i| ((i * 91) % 509) as i16).collect();
        let t = mk_trace(Tensor3::from_vec(8, 4, 20, data), 8, 3, ConvGeometry::same(3, 3));
        let net = diffy_models::NetworkTrace {
            model: "m".into(),
            layers: vec![t],
            output: Tensor3::<i16>::new(1, 1, 1),
        };
        let c = cfg();
        let sel = crate::term_serial::selective_network(&net, &c).total_cycles();
        let raw = term_serial_network(&net, &c, ValueMode::Raw).total_cycles();
        let diff = term_serial_network(&net, &c, ValueMode::Differential).total_cycles();
        assert!(sel <= raw && sel <= diff);
        assert_eq!(sel, raw.min(diff));
    }

    #[test]
    fn strided_layers_use_stride_distant_deltas() {
        // Stride-2 constant imap: deltas at distance 2 are zero, so Diffy
        // still wins.
        let t = mk_trace(
            Tensor3::<i16>::filled(4, 4, 40, 21),
            8,
            3,
            ConvGeometry::strided(2, 1),
        );
        let raw = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let diff = term_serial_layer(&t, &cfg(), ValueMode::Differential);
        assert!(diff.cycles < raw.cycles / 2);
    }
}
