//! The term-serial cycle model shared by PRA and Diffy.
//!
//! A tile holds `filters_per_tile` SIP rows × `windows` SIP columns; each
//! SIP processes `lanes` activation lanes, one effectual Booth term per
//! lane per cycle. Execution advances in *brick steps* — one `(channel
//! chunk, j, i)` position of the sliding window — and a step costs the
//! **maximum** term count across each `terms_per_group` lane group
//! (cross-lane synchronization, the paper's `T_x`). A *pallet* of
//! `windows` consecutive windows completes when its slowest column does
//! (the weight brick is shared across columns).
//!
//! [`ValueMode::Differential`] is Diffy: every window except the leftmost
//! of each output row consumes the term counts of the *wrapped deltas*
//! between horizontally adjacent (stride-distant) activations; the
//! leftmost window is processed raw (§III-D). The DR reconstruction adds
//! and the Delta_out engine are fully overlapped with compute (§III-E:
//! "there is plenty of time to reconstruct") and add no cycles.
//!
//! # Group-reduced term planes
//!
//! Every window that touches a padded position `(py, px)` pays the same
//! per-position price: the sum over `⌈C/g⌉` channel chunks of each
//! chunk's maximum term count (its synchronization cost), and the plain
//! channel sum (its slot/energy accounting). Both are pure functions of
//! the imap, so [`PaddedTerms`] precomputes them **once per layer**
//! instead of re-reducing `Kh·Kw·C` term fetches per window:
//!
//! * the per-channel raw/delta term planes (`u8`, as fetched by the
//!   reference loop nest and the potential model);
//! * per-position channel-sum planes plus their summed-area tables, so a
//!   window's total term count is four lookups;
//! * per-`g` [`GroupPlanes`] — the chunk-max reduction collapsed into a
//!   per-position cost plane with its own summed-area table, memoized per
//!   synchronization group so `T_x` sweeps over one trace reuse the
//!   expensive Booth pass.
//!
//! With dilation 1 (any stride) a window's cost is O(1) via the summed
//! area tables; dilated windows fall back to `Kh·Kw` plane lookups —
//! still `C/g`-fold (16× at the paper's T16) less inner work than the
//! reference. The reference loop nest survives as
//! [`term_serial_layer_reference`] and the optimized kernel is
//! cross-validated against it for exact cycle/slot equality (unit tests,
//! `crates/sim/tests/proptests.rs`, `tests/tile_cross_validation.rs`).

use crate::config::AcceleratorConfig;
use crate::report::{LayerCycles, NetworkCycles};
use crate::scratch;
use diffy_encoding::{booth_terms_slice, delta_row_wrapping_into};
use diffy_models::{LayerTrace, NetworkTrace};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Which value stream the SIP lanes consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueMode {
    /// Raw activations — the PRA baseline.
    Raw,
    /// Row-anchored deltas — Diffy.
    Differential,
}

/// Zero-padded per-element Booth-term counts for one imap — raw values
/// and their horizontal (stride-distant) deltas — plus the group-reduced
/// planes the optimized kernel reads.
///
/// Building one is the expensive, `O(C·PH·PW)` part of the term-serial
/// model; everything downstream ([`term_serial_layer_with_terms`],
/// [`selective_network`], [`crate::potential`]) reuses a shared build.
/// The experiment runner additionally keys these per layer in its sweep
/// cache so N architectures evaluated on one trace pay the build once.
pub struct PaddedTerms {
    c: usize,
    ph: usize,
    pw: usize,
    /// Per-channel raw term counts, one `ph × pw` plane per channel.
    ///
    /// One allocation per channel rather than a single `c × ph × pw`
    /// block on purpose: a full-HD 16-channel stream is ~33 MiB, past
    /// glibc's mmap-threshold cap, so a monolithic buffer is unmapped on
    /// every drop and every rebuild re-faults its pages from the kernel.
    /// Per-channel planes stay modest, and — together with every other
    /// buffer here — are recycled through the [`crate::scratch`] pool on
    /// drop, so repeated evaluations (the bench loop, the serve layer)
    /// reuse resident pages instead of paying ~20 ms of page faults per
    /// build, independent of the C allocator's adaptive thresholds.
    raw: Vec<Vec<u8>>,
    /// Per-channel delta term counts, same layout.
    delta: Vec<Vec<u8>>,
    /// Per-position channel sums of `raw` (`ph × pw`).
    raw_sum: Vec<u32>,
    /// Per-position channel sums of `delta`.
    delta_sum: Vec<u32>,
    /// Summed-area table of `raw_sum`, `(ph+1) × (pw+1)`.
    raw_sum_sat: Vec<u64>,
    /// Summed-area table of `delta_sum`.
    delta_sum_sat: Vec<u64>,
    /// Group-reduced cost planes, memoized per synchronization group `g`.
    grouped: Mutex<HashMap<usize, Arc<GroupPlanes>>>,
}

/// The group-reduced cost planes for one synchronization group size `g`:
/// per padded position, the sum over channel chunks of each chunk's
/// maximum term count — exactly the integer the reference loop nest
/// accumulates per `(j, i)` brick step — for both value streams, with
/// summed-area tables for O(1) dense-window evaluation.
pub struct GroupPlanes {
    g: usize,
    pw: usize,
    raw_cost: Vec<u32>,
    delta_cost: Vec<u32>,
    raw_cost_sat: Vec<u64>,
    delta_cost_sat: Vec<u64>,
}

/// Sums `plane` over one filter window anchored at `(py0, px0)`.
///
/// Dilation 1 uses the summed-area table (four lookups, any stride);
/// dilated windows walk the `kh × kw` sampled positions directly. Both
/// paths compute the identical integer: addition over `u32` entries is
/// exact in `u64` at any association.
#[inline]
#[allow(clippy::too_many_arguments)]
fn window_total(
    plane: &[u32],
    sat: &[u64],
    pw: usize,
    py0: usize,
    px0: usize,
    kh: usize,
    kw: usize,
    dilation: usize,
) -> u64 {
    if dilation == 1 {
        let w1 = pw + 1;
        (sat[(py0 + kh) * w1 + (px0 + kw)] + sat[py0 * w1 + px0])
            - (sat[py0 * w1 + (px0 + kw)] + sat[(py0 + kh) * w1 + px0])
    } else {
        let mut total = 0u64;
        for j in 0..kh {
            let row = (py0 + j * dilation) * pw;
            for i in 0..kw {
                total += plane[row + px0 + i * dilation] as u64;
            }
        }
        total
    }
}

/// Writes the vertical-span prefix row of a summed-area table:
/// `out[x] = sat[py0+kh][x] - sat[py0][x]`, the sum of plane rows
/// `py0..py0+kh` over columns `< x`. A window `[px0, px0+kw)` of that
/// span is then `out[px0+kw] - out[px0]` — the same integer as the
/// four-corner [`window_total`] lookup by associativity of exact `u64`
/// sums, but row-major walks touch two sequential streams once per row
/// instead of four scattered table reads per window.
fn sat_row_spans(sat: &[u64], w1: usize, py0: usize, kh: usize, out: &mut [u64]) {
    let top = &sat[py0 * w1..(py0 + 1) * w1];
    let bot = &sat[(py0 + kh) * w1..(py0 + kh + 1) * w1];
    for ((d, &b), &t) in out.iter_mut().zip(bot).zip(top) {
        *d = b - t;
    }
}

/// Builds the `(ph+1) × (pw+1)` summed-area table of a `ph × pw` plane
/// into a pool-recycled buffer.
///
/// Split into two passes per row: the horizontal prefix sum (one
/// loop-carried `u64` add per element) and a vertical add of the
/// previous table row (independent lanes, vectorizes). The fused
/// single-loop form chained both adds through one dependency and ran
/// ~3× slower at full HD. Every entry is written explicitly (the zero
/// top row and left column included), so a dirty recycled buffer is
/// safe.
fn summed_area(plane: &[u32], ph: usize, pw: usize) -> Vec<u64> {
    let w1 = pw + 1;
    let mut sat = scratch::take_u64((ph + 1) * w1);
    sat[..w1].fill(0);
    for y in 0..ph {
        let src = &plane[y * pw..(y + 1) * pw];
        let (prev_rows, cur_rows) = sat.split_at_mut((y + 1) * w1);
        let prev = &prev_rows[y * w1..];
        let cur = &mut cur_rows[..w1];
        cur[0] = 0;
        let mut acc = 0u64;
        for (d, &v) in cur[1..].iter_mut().zip(src) {
            acc += v as u64;
            *d = acc;
        }
        for (d, &p) in cur[1..].iter_mut().zip(&prev[1..]) {
            *d += p;
        }
    }
    sat
}

/// Worker count for the plane builders (available parallelism; 1 when
/// the platform cannot report it). Queried from the OS exactly once —
/// `available_parallelism` reads cgroup/affinity state on every call,
/// which used to show up on every plane build.
fn parallelism() -> usize {
    static PAR: OnceLock<usize> = OnceLock::new();
    *PAR.get_or_init(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Runs `fill(start, slice)` over contiguous position ranges of `out`,
/// fanning large planes out over scoped threads. Each position's value
/// depends only on that position, so any worker count (including the
/// serial path) produces identical planes.
fn fill_positions(out: &mut [u32], fill: impl Fn(usize, &mut [u32]) + Sync) {
    let len = out.len();
    let workers = parallelism();
    if workers > 1 && len >= PAR_BUILD_THRESHOLD {
        let per = len.div_ceil(workers);
        std::thread::scope(|scope| {
            for (t, chunk) in out.chunks_mut(per).enumerate() {
                let fill = &fill;
                scope.spawn(move || fill(t * per, chunk));
            }
        });
    } else {
        fill(0, out);
    }
}

/// Position-block size for the plane reductions: 4096 positions keep the
/// `u32` accumulator block (16 KiB) plus the `u8` scratch and source rows
/// L1-resident while the channel loop revisits them `C` times. The
/// previous channel-major sweeps streamed the entire (up to multi-MiB)
/// accumulator plane through cache once per channel.
const POS_BLOCK: usize = 4096;

/// Collapses per-channel term planes into per-position channel sums,
/// position-blocked: the outer loop walks `POS_BLOCK`-sized position
/// blocks, the inner loop walks channels, so each accumulator block is
/// loaded once and stays hot across all `c` passes. Writes every
/// position of `sum` (a dirty recycled buffer is safe).
fn channel_sum_into(terms: &[Vec<u8>], sum: &mut [u32]) {
    let c = terms.len();
    // With ≤256 channels the block sum fits `u16` (255 × 256 = 65280),
    // doubling the SIMD lane count of the accumulating adds; the final
    // widening to the `u32` plane is one pass over the hot block. Wider
    // layers fall back to accumulating in `u32` directly.
    let narrow = c <= 256;
    fill_positions(sum, |start, out| {
        let mut acc16 = [0u16; POS_BLOCK];
        for (b, blk) in out.chunks_mut(POS_BLOCK).enumerate() {
            let s0 = start + b * POS_BLOCK;
            let n = blk.len();
            if narrow {
                acc16[..n].fill(0);
                for plane in terms {
                    for (dst, &t) in acc16[..n].iter_mut().zip(&plane[s0..s0 + n]) {
                        *dst += t as u16;
                    }
                }
                for (dst, &t) in blk.iter_mut().zip(&acc16[..n]) {
                    *dst = t as u32;
                }
            } else {
                blk.fill(0);
                for plane in terms {
                    for (dst, &t) in blk.iter_mut().zip(&plane[s0..s0 + n]) {
                        *dst += t as u32;
                    }
                }
            }
        }
    });
}

/// Collapses per-channel term planes into the group-reduced cost plane:
/// per position, the sum over `⌈c/g⌉` chunks of the chunk maximum. Same
/// position-blocked structure as [`channel_sum_into`]; the branch-free
/// `max` lets the compiler vectorize the chunk reduction (`pmaxub`).
/// The first chunk assigns and later chunks accumulate, so every
/// position of `cost` is written (a dirty recycled buffer is safe).
fn group_cost_into(terms: &[Vec<u8>], g: usize, cost: &mut [u32]) {
    let c = terms.len();
    if c == 0 {
        cost.fill(0);
        return;
    }
    fill_positions(cost, |start, out| {
        let mut chunk_max = [0u8; POS_BLOCK];
        for (b, blk) in out.chunks_mut(POS_BLOCK).enumerate() {
            let s0 = start + b * POS_BLOCK;
            let n = blk.len();
            let mut c0 = 0usize;
            while c0 < c {
                let c1 = (c0 + g).min(c);
                chunk_max[..n].fill(0);
                for plane in &terms[c0..c1] {
                    for (m, &t) in chunk_max[..n].iter_mut().zip(&plane[s0..s0 + n]) {
                        *m = (*m).max(t);
                    }
                }
                if c0 == 0 {
                    for (dst, &m) in blk.iter_mut().zip(&chunk_max[..n]) {
                        *dst = m as u32;
                    }
                } else {
                    for (dst, &m) in blk.iter_mut().zip(&chunk_max[..n]) {
                        *dst += m as u32;
                    }
                }
                c0 = c1;
            }
        }
    });
}

/// A per-value plane metric lifted to whole rows: `metric(values, out)`
/// writes one `u8` per value. Term planes use the lane-parallel Booth
/// kernel; the Stripes model supplies a dynamic-precision metric. Must
/// map `0 → 0` (padded border rows stay at the plane's zero init) and
/// fit every result in `u8`.
pub trait RowMetric: Sync {
    /// Computes the metric of each value in `values` into `out`
    /// (equal lengths).
    fn apply(&self, values: &[i16], out: &mut [u8]);
}

impl<F: Fn(&[i16], &mut [u8]) + Sync> RowMetric for F {
    fn apply(&self, values: &[i16], out: &mut [u8]) {
        self(values, out)
    }
}

/// The Booth effectual-term metric — the lane-parallel closed-form
/// kernel, dispatched per CPU (AVX2 / SSE2 / SWAR) and bit-identical to
/// the scalar `booth_terms` on every path.
fn booth_metric(values: &[i16], out: &mut [u8]) {
    booth_terms_slice(values, out);
}

/// Fills one channel's raw/delta metric planes (`ph × pw` each).
///
/// Interior rows are staged into a reusable padded row buffer, delta'd
/// in one fused streaming pass ([`delta_row_wrapping_into`]), and both
/// rows pushed through the lane-parallel metric kernel — whole-row slice
/// calls instead of two metric evaluations per element. Fully-padded
/// border rows are all-zero values with all-zero stride-distant
/// predecessors, so their metric stays at the plane's zero
/// initialization. Left/right padding of the scratch rows is written
/// once and never overwritten; only the interior span changes per row.
#[allow(clippy::too_many_arguments)]
fn fill_channel<M: RowMetric + ?Sized>(
    imap: &diffy_tensor::Tensor3<i16>,
    c: usize,
    pad: usize,
    stride: usize,
    pw: usize,
    padded_row: &mut [i16],
    delta_row: &mut [i16],
    raw: &mut [u8],
    delta: &mut [u8],
    metric: &M,
) {
    let h = imap.shape().h;
    for py in pad..pad + h {
        padded_row[pad..pad + imap.shape().w].copy_from_slice(imap.row(c, py - pad));
        delta_row_wrapping_into(padded_row, stride, delta_row);
        let base = py * pw;
        metric.apply(padded_row, &mut raw[base..base + pw]);
        metric.apply(delta_row, &mut delta[base..base + pw]);
    }
}

/// Plane size (elements) above which the builders fan channel fills and
/// plane reductions out over scoped threads. Small layers stay serial —
/// thread spawn costs more than the fill.
const PAR_BUILD_THRESHOLD: usize = 1 << 20;

impl PaddedTerms {
    /// Builds term counts for `imap` padded by `pad` on every spatial
    /// border, with deltas taken at distance `stride` along W.
    ///
    /// Large imaps fill their per-channel planes on scoped threads —
    /// channels are disjoint, so the parallel build is bit-identical to
    /// the serial one at any worker count.
    pub fn build(imap: &diffy_tensor::Tensor3<i16>, pad: usize, stride: usize) -> Self {
        Self::build_with_metric(imap, pad, stride, &booth_metric)
    }

    /// [`PaddedTerms::build`] under an arbitrary per-value plane metric —
    /// the machinery (padding, row delta, channel fan-out, channel sums,
    /// summed-area tables, memoized group reductions) is metric-agnostic,
    /// so other cost models (e.g. the Stripes dynamic-precision planes)
    /// reuse it wholesale.
    pub fn build_with_metric<M: RowMetric + ?Sized>(
        imap: &diffy_tensor::Tensor3<i16>,
        pad: usize,
        stride: usize,
        metric: &M,
    ) -> Self {
        let s = imap.shape();
        let (ph, pw) = (s.h + 2 * pad, s.w + 2 * pad);
        let plane_len = ph * pw;
        // Pool-recycled buffers arrive dirty: the metric fill covers
        // every interior row in full (the scratch row carries the zero
        // left/right padding through the metric), so only the
        // fully-padded border rows need explicit zeroing.
        let border = pad * pw;
        let take_plane = || {
            let mut p = scratch::take_u8(plane_len);
            p[..border].fill(0);
            p[plane_len - border..].fill(0);
            p
        };
        let mut raw: Vec<Vec<u8>> = (0..s.c).map(|_| take_plane()).collect();
        let mut delta: Vec<Vec<u8>> = (0..s.c).map(|_| take_plane()).collect();
        let mut raw_sum = scratch::take_u32(plane_len);
        let mut delta_sum = scratch::take_u32(plane_len);
        let workers = parallelism().min(s.c);
        if workers > 1 && s.c * plane_len >= PAR_BUILD_THRESHOLD {
            let per = s.c.div_ceil(workers);
            std::thread::scope(|scope| {
                for (t, (raw_chunk, delta_chunk)) in
                    raw.chunks_mut(per).zip(delta.chunks_mut(per)).enumerate()
                {
                    let first = t * per;
                    scope.spawn(move || {
                        let mut padded_row = vec![0i16; pw];
                        let mut delta_row = vec![0i16; pw];
                        for (k, (r, d)) in
                            raw_chunk.iter_mut().zip(delta_chunk.iter_mut()).enumerate()
                        {
                            fill_channel(
                                imap,
                                first + k,
                                pad,
                                stride,
                                pw,
                                &mut padded_row,
                                &mut delta_row,
                                r,
                                d,
                                metric,
                            );
                        }
                    });
                }
            });
            channel_sum_into(&raw, &mut raw_sum);
            channel_sum_into(&delta, &mut delta_sum);
        } else {
            // Serial path: walk rows in the outer loop and channels in
            // the inner one, accumulating the channel sums while each
            // freshly computed metric row is still L1-resident — the
            // channel-major order (and the separate [`channel_sum`]
            // sweep the parallel path keeps) would re-stream all
            // `2·C·ph·pw` term bytes from memory. Both paths add the
            // same per-channel values in the same channel order, so the
            // sum planes are bit-identical. Border rows of the planes
            // are zeroed above (metric(0) = 0); the recycled sum
            // buffers get their border rows zeroed here and every
            // interior row either assigned (narrow) or zeroed before
            // accumulation (wide).
            raw_sum[..border].fill(0);
            raw_sum[plane_len - border..].fill(0);
            delta_sum[..border].fill(0);
            delta_sum[plane_len - border..].fill(0);
            let mut padded_row = vec![0i16; pw];
            let mut delta_row = vec![0i16; pw];
            let narrow = s.c <= 256;
            let mut acc_raw = vec![0u16; pw];
            let mut acc_delta = vec![0u16; pw];
            for py in pad..pad + s.h {
                let base = py * pw;
                if narrow {
                    acc_raw.fill(0);
                    acc_delta.fill(0);
                } else {
                    raw_sum[base..base + pw].fill(0);
                    delta_sum[base..base + pw].fill(0);
                }
                for ch in 0..s.c {
                    padded_row[pad..pad + s.w].copy_from_slice(imap.row(ch, py - pad));
                    delta_row_wrapping_into(&padded_row, stride, &mut delta_row);
                    let r = &mut raw[ch][base..base + pw];
                    let d = &mut delta[ch][base..base + pw];
                    metric.apply(&padded_row, r);
                    metric.apply(&delta_row, d);
                    if narrow {
                        for (a, &t) in acc_raw.iter_mut().zip(r.iter()) {
                            *a += t as u16;
                        }
                        for (a, &t) in acc_delta.iter_mut().zip(d.iter()) {
                            *a += t as u16;
                        }
                    } else {
                        for (a, &t) in raw_sum[base..base + pw].iter_mut().zip(r.iter()) {
                            *a += t as u32;
                        }
                        for (a, &t) in delta_sum[base..base + pw].iter_mut().zip(d.iter()) {
                            *a += t as u32;
                        }
                    }
                }
                if narrow {
                    for (dst, &a) in raw_sum[base..base + pw].iter_mut().zip(&acc_raw) {
                        *dst = a as u32;
                    }
                    for (dst, &a) in delta_sum[base..base + pw].iter_mut().zip(&acc_delta) {
                        *dst = a as u32;
                    }
                }
            }
        }
        let raw_sum_sat = summed_area(&raw_sum, ph, pw);
        let delta_sum_sat = summed_area(&delta_sum, ph, pw);
        Self {
            c: s.c,
            ph,
            pw,
            raw,
            delta,
            raw_sum,
            delta_sum,
            raw_sum_sat,
            delta_sum_sat,
            grouped: Mutex::new(HashMap::new()),
        }
    }

    /// Builds the planes a layer's geometry implies (`pad` and `stride`
    /// from the trace) — the one keying rule every consumer shares.
    pub fn for_layer(trace: &LayerTrace) -> Self {
        Self::build(&trace.imap, trace.geom.pad, trace.geom.stride)
    }

    /// Channel count of the underlying imap.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Padded spatial extent `(ph, pw)`.
    pub fn padded_dims(&self) -> (usize, usize) {
        (self.ph, self.pw)
    }

    /// Raw term count at a padded position.
    #[inline]
    pub fn raw_at(&self, c: usize, py: usize, px: usize) -> u32 {
        debug_assert!(c < self.c && py < self.ph && px < self.pw);
        self.raw[c][py * self.pw + px] as u32
    }

    /// Delta term count at a padded position.
    #[inline]
    pub fn delta_at(&self, c: usize, py: usize, px: usize) -> u32 {
        debug_assert!(c < self.c && py < self.ph && px < self.pw);
        self.delta[c][py * self.pw + px] as u32
    }

    /// Total term count of one filter window over all channels, for the
    /// chosen stream — the slot-accounting integer of one window visit.
    #[inline]
    pub fn sum_window(
        &self,
        delta: bool,
        py0: usize,
        px0: usize,
        kh: usize,
        kw: usize,
        dilation: usize,
    ) -> u64 {
        let (plane, sat) = if delta {
            (&self.delta_sum, &self.delta_sum_sat)
        } else {
            (&self.raw_sum, &self.raw_sum_sat)
        };
        window_total(plane, sat, self.pw, py0, px0, kh, kw, dilation)
    }

    /// Vertical-span prefix of the chosen stream's sum plane over rows
    /// `py0..py0+kh`: fills `out` (length `pw+1`) so that any
    /// stride-1-dilation window `[px0, px0+kw)` of those rows equals
    /// `out[px0+kw] - out[px0]` — bit-identical to [`Self::sum_window`].
    /// Row-major walks amortize one sequential fill per output row
    /// instead of four summed-area lookups per window.
    pub fn sum_row_spans(&self, delta: bool, py0: usize, kh: usize, out: &mut [u64]) {
        let sat = if delta { &self.delta_sum_sat } else { &self.raw_sum_sat };
        sat_row_spans(sat, self.pw + 1, py0, kh, out);
    }

    /// The group-reduced cost planes for synchronization group `g`,
    /// computed once per `g` and shared by every subsequent caller
    /// (both value modes, the selective ablation, `T_x` sweeps).
    pub fn grouped(&self, g: usize) -> Arc<GroupPlanes> {
        assert!(g > 0, "synchronization group must be at least 1");
        let mut map = self.grouped.lock().expect("group plane memo poisoned");
        Arc::clone(map.entry(g).or_insert_with(|| {
            let plane_len = self.ph * self.pw;
            let mut raw_cost = scratch::take_u32(plane_len);
            let mut delta_cost = scratch::take_u32(plane_len);
            group_cost_into(&self.raw, g, &mut raw_cost);
            group_cost_into(&self.delta, g, &mut delta_cost);
            let raw_cost_sat = summed_area(&raw_cost, self.ph, self.pw);
            let delta_cost_sat = summed_area(&delta_cost, self.ph, self.pw);
            Arc::new(GroupPlanes {
                g,
                pw: self.pw,
                raw_cost,
                delta_cost,
                raw_cost_sat,
                delta_cost_sat,
            })
        }))
    }
}

impl Drop for PaddedTerms {
    /// Returns the plane and table buffers to the thread-local scratch
    /// pool so the next build (same thread, any geometry that fits)
    /// reuses resident pages instead of re-faulting fresh ones. The
    /// memoized [`GroupPlanes`] recycle themselves when their last
    /// `Arc` drops.
    fn drop(&mut self) {
        for v in self.raw.drain(..).chain(self.delta.drain(..)) {
            scratch::put_u8(v);
        }
        scratch::put_u32(std::mem::take(&mut self.raw_sum));
        scratch::put_u32(std::mem::take(&mut self.delta_sum));
        scratch::put_u64(std::mem::take(&mut self.raw_sum_sat));
        scratch::put_u64(std::mem::take(&mut self.delta_sum_sat));
    }
}

impl Drop for GroupPlanes {
    /// Same recycling as [`PaddedTerms`] for the group-reduced planes.
    fn drop(&mut self) {
        scratch::put_u32(std::mem::take(&mut self.raw_cost));
        scratch::put_u32(std::mem::take(&mut self.delta_cost));
        scratch::put_u64(std::mem::take(&mut self.raw_cost_sat));
        scratch::put_u64(std::mem::take(&mut self.delta_cost_sat));
    }
}

impl GroupPlanes {
    /// The synchronization group these planes were reduced at.
    pub fn group(&self) -> usize {
        self.g
    }

    /// Synchronization cost of one filter window for the chosen stream:
    /// the sum over its positions and channel chunks of each chunk's
    /// maximum term count — the cycles one SIP column spends on it.
    #[inline]
    pub fn cost_window(
        &self,
        delta: bool,
        py0: usize,
        px0: usize,
        kh: usize,
        kw: usize,
        dilation: usize,
    ) -> u64 {
        let (plane, sat) = if delta {
            (&self.delta_cost, &self.delta_cost_sat)
        } else {
            (&self.raw_cost, &self.raw_cost_sat)
        };
        window_total(plane, sat, self.pw, py0, px0, kh, kw, dilation)
    }

    /// Vertical-span prefix of the chosen stream's cost plane over rows
    /// `py0..py0+kh` — the [`PaddedTerms::sum_row_spans`] analogue for
    /// synchronization costs, bit-identical to [`Self::cost_window`] at
    /// dilation 1.
    pub fn cost_row_spans(&self, delta: bool, py0: usize, kh: usize, out: &mut [u64]) {
        let sat = if delta { &self.delta_cost_sat } else { &self.raw_cost_sat };
        sat_row_spans(sat, self.pw + 1, py0, kh, out);
    }

    /// Per-position cost at a padded position (test/diagnostic access).
    #[inline]
    pub fn cost_at(&self, delta: bool, py: usize, px: usize) -> u32 {
        let plane = if delta { &self.delta_cost } else { &self.raw_cost };
        plane[py * self.pw + px]
    }
}

/// Shared prelude of both kernels: shapes, tiling, lane capacity.
struct KernelGeometry {
    out: diffy_tensor::Shape3,
    kh: usize,
    kw: usize,
    stride: usize,
    dilation: usize,
    passes: u64,
    spatial: u64,
}

fn kernel_geometry(trace: &LayerTrace, cfg: &AcceleratorConfig) -> KernelGeometry {
    let fshape = trace.fmaps.shape();
    let out = trace.out_shape();
    let (passes, spatial) =
        crate::report::tile_partition(out.c, out.h, cfg.filters_per_tile, cfg.tiles);
    KernelGeometry {
        out,
        kh: fshape.h,
        kw: fshape.w,
        stride: trace.geom.stride,
        dilation: trace.geom.dilation,
        passes,
        spatial,
    }
}

fn finish_layer(
    trace: &LayerTrace,
    cfg: &AcceleratorConfig,
    geo: &KernelGeometry,
    cycles_per_pass: u64,
    window_terms: u64,
) -> LayerCycles {
    let fshape = trace.fmaps.shape();
    // Sum of active filter rows across passes == K; idle rows in the last
    // pass are captured by total_slots.
    let active_filter_sum = geo.out.c as u64;
    let cycles = (cycles_per_pass * geo.passes).div_ceil(geo.spatial);
    let lane_capacity = (cfg.lanes * cfg.windows * cfg.filters_per_tile * cfg.tiles) as u64;
    let macs = (geo.out.c * geo.out.h * geo.out.w) as u64
        * (fshape.c * fshape.h * fshape.w) as u64;
    LayerCycles {
        cycles,
        useful_slots: window_terms * active_filter_sum,
        total_slots: cycles * lane_capacity,
        compute_events: window_terms * active_filter_sum,
        filter_passes: geo.passes,
        macs,
    }
}

/// Simulates one layer on the term-serial architecture.
///
/// Returns compute cycles and slot accounting (memory stalls are folded
/// in by the experiment runner, which owns the memory model). Builds the
/// layer's [`PaddedTerms`] and delegates to
/// [`term_serial_layer_with_terms`]; callers evaluating several modes or
/// configurations on one trace should build the planes once and share
/// them.
pub fn term_serial_layer(
    trace: &LayerTrace,
    cfg: &AcceleratorConfig,
    mode: ValueMode,
) -> LayerCycles {
    let terms = PaddedTerms::for_layer(trace);
    term_serial_layer_with_terms(trace, cfg, mode, &terms)
}

/// The optimized term-serial kernel over prebuilt term planes.
///
/// Bit-identical to [`term_serial_layer_reference`] (cycles,
/// `useful_slots`, `total_slots`, every field): per window it reads the
/// same integers the reference reduces, just precomputed — O(1) lookups
/// at dilation 1, `Kh·Kw` plane reads otherwise, versus the reference's
/// `Kh·Kw·C` term fetches.
pub fn term_serial_layer_with_terms(
    trace: &LayerTrace,
    cfg: &AcceleratorConfig,
    mode: ValueMode,
    terms: &PaddedTerms,
) -> LayerCycles {
    let geo = kernel_geometry(trace, cfg);
    let grouped = terms.grouped(cfg.terms_per_group);

    let mut cycles_per_pass: u64 = 0;
    let mut window_terms: u64 = 0;

    // Windows are dispatched 16 (cfg.windows) at a time in row-major
    // order; the dispatcher packs pallets across row boundaries, so
    // narrow layers keep the full window-level parallelism.
    let mut pallet_max: u64 = 0;
    let mut pallet_fill = 0usize;
    if geo.dilation == 1 {
        // Dense windows: amortize the summed-area lookups over each
        // output row. The row-span prefixes turn every window into two
        // adjacent reads of a sequential buffer — the same integers the
        // four-corner lookups produce, without the scattered table
        // traffic. The one raw-stream window per differential row (ox =
        // 0, no left neighbour) keeps the direct lookup.
        let pw1 = terms.padded_dims().1 + 1;
        let spans_delta = mode == ValueMode::Differential;
        let mut cost_spans = vec![0u64; pw1];
        let mut sum_spans = vec![0u64; pw1];
        for oy in 0..geo.out.h {
            let py0 = oy * geo.stride;
            grouped.cost_row_spans(spans_delta, py0, geo.kh, &mut cost_spans);
            terms.sum_row_spans(spans_delta, py0, geo.kh, &mut sum_spans);
            for ox in 0..geo.out.w {
                let px0 = ox * geo.stride;
                let (col, wnd) = if spans_delta && ox == 0 {
                    (
                        grouped.cost_window(false, py0, px0, geo.kh, geo.kw, 1),
                        terms.sum_window(false, py0, px0, geo.kh, geo.kw, 1),
                    )
                } else {
                    (
                        cost_spans[px0 + geo.kw] - cost_spans[px0],
                        sum_spans[px0 + geo.kw] - sum_spans[px0],
                    )
                };
                window_terms += wnd;
                if col > pallet_max {
                    pallet_max = col;
                }
                pallet_fill += 1;
                if pallet_fill == cfg.windows {
                    cycles_per_pass += pallet_max;
                    pallet_max = 0;
                    pallet_fill = 0;
                }
            }
        }
    } else {
        for oy in 0..geo.out.h {
            let py0 = oy * geo.stride;
            for ox in 0..geo.out.w {
                let use_delta = mode == ValueMode::Differential && ox != 0;
                let px0 = ox * geo.stride;
                let col = grouped.cost_window(use_delta, py0, px0, geo.kh, geo.kw, geo.dilation);
                window_terms += terms.sum_window(use_delta, py0, px0, geo.kh, geo.kw, geo.dilation);
                if col > pallet_max {
                    pallet_max = col;
                }
                pallet_fill += 1;
                if pallet_fill == cfg.windows {
                    cycles_per_pass += pallet_max;
                    pallet_max = 0;
                    pallet_fill = 0;
                }
            }
        }
    }
    cycles_per_pass += pallet_max;

    finish_layer(trace, cfg, &geo, cycles_per_pass, window_terms)
}

/// The original loop nest, kept verbatim as the cross-validation oracle
/// and the "before" side of the kernel benchmarks: per window it
/// re-reduces every `terms_per_group` lane group over all `Kh·Kw·C` term
/// fetches. Semantically authoritative; never used on the hot path.
pub fn term_serial_layer_reference(
    trace: &LayerTrace,
    cfg: &AcceleratorConfig,
    mode: ValueMode,
) -> LayerCycles {
    let ishape = trace.imap.shape();
    let g = cfg.terms_per_group;
    let geo = kernel_geometry(trace, cfg);
    let terms = PaddedTerms::for_layer(trace);

    let mut cycles_per_pass: u64 = 0;
    let mut window_terms: u64 = 0;

    let mut pallet_max: u64 = 0;
    let mut pallet_fill = 0usize;
    for oy in 0..geo.out.h {
        for ox in 0..geo.out.w {
            let use_delta = mode == ValueMode::Differential && ox != 0;
            let mut col: u64 = 0;
            for j in 0..geo.kh {
                let py = oy * geo.stride + j * geo.dilation;
                for i in 0..geo.kw {
                    let px = ox * geo.stride + i * geo.dilation;
                    let mut c0 = 0usize;
                    while c0 < ishape.c {
                        let c1 = (c0 + g).min(ishape.c);
                        let mut mx = 0u32;
                        let mut sum = 0u32;
                        for c in c0..c1 {
                            let t = if use_delta {
                                terms.delta_at(c, py, px)
                            } else {
                                terms.raw_at(c, py, px)
                            };
                            if t > mx {
                                mx = t;
                            }
                            sum += t;
                        }
                        col += mx as u64;
                        window_terms += sum as u64;
                        c0 = c1;
                    }
                }
            }
            if col > pallet_max {
                pallet_max = col;
            }
            pallet_fill += 1;
            if pallet_fill == cfg.windows {
                cycles_per_pass += pallet_max;
                pallet_max = 0;
                pallet_fill = 0;
            }
        }
    }
    cycles_per_pass += pallet_max;

    finish_layer(trace, cfg, &geo, cycles_per_pass, window_terms)
}

/// The paper's profiled *selective* Diffy variant (§IV-A): apply
/// differential convolution per layer only where it wins, reverting to
/// raw (PRA) processing otherwise — the per-SIP DR multiplexer makes
/// this free in hardware. The paper found the overall gain "negligible
/// and below 1% at best"; this model lets that ablation be reproduced.
///
/// Builds each layer's [`PaddedTerms`] exactly once and shares it
/// between the raw and differential evaluations.
pub fn selective_network(trace: &NetworkTrace, cfg: &AcceleratorConfig) -> NetworkCycles {
    selective_network_with_terms(trace, cfg, |_, layer| Arc::new(PaddedTerms::for_layer(layer)))
}

/// [`selective_network`] over an external plane source: `terms_for(i,
/// layer)` is called **once per layer** and the result reused for both
/// value modes (the sweep cache passes its per-layer memo here).
pub fn selective_network_with_terms<F>(
    trace: &NetworkTrace,
    cfg: &AcceleratorConfig,
    mut terms_for: F,
) -> NetworkCycles
where
    F: FnMut(usize, &LayerTrace) -> Arc<PaddedTerms>,
{
    NetworkCycles {
        arch: "Diffy-selective",
        layers: trace
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let terms = terms_for(i, l);
                let raw = term_serial_layer_with_terms(l, cfg, ValueMode::Raw, &terms);
                let diff = term_serial_layer_with_terms(l, cfg, ValueMode::Differential, &terms);
                if raw.cycles < diff.cycles {
                    raw
                } else {
                    diff
                }
            })
            .collect(),
    }
}

/// Simulates every layer of a network trace.
pub fn term_serial_network(
    trace: &NetworkTrace,
    cfg: &AcceleratorConfig,
    mode: ValueMode,
) -> NetworkCycles {
    term_serial_network_with_terms(trace, cfg, mode, |_, layer| {
        Arc::new(PaddedTerms::for_layer(layer))
    })
}

/// [`term_serial_network`] over an external plane source: `terms_for(i,
/// layer)` supplies layer `i`'s [`PaddedTerms`] (typically a cache, so
/// PRA, Diffy and the selective ablation on one trace share one build
/// per layer).
pub fn term_serial_network_with_terms<F>(
    trace: &NetworkTrace,
    cfg: &AcceleratorConfig,
    mode: ValueMode,
    mut terms_for: F,
) -> NetworkCycles
where
    F: FnMut(usize, &LayerTrace) -> Arc<PaddedTerms>,
{
    NetworkCycles {
        arch: match mode {
            ValueMode::Raw => "PRA",
            ValueMode::Differential => "Diffy",
        },
        layers: trace
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| term_serial_layer_with_terms(l, cfg, mode, &terms_for(i, l)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

    fn mk_trace(imap: Tensor3<i16>, k: usize, f: usize, geom: ConvGeometry) -> LayerTrace {
        let c = imap.shape().c;
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap,
            fmaps: Tensor4::<i16>::filled(k, c, f, f, 1),
            geom,
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::table4()
    }

    fn pseudo_imap(c: usize, h: usize, w: usize, salt: u64) -> Tensor3<i16> {
        let data: Vec<i16> = (0..c * h * w)
            .map(|i| ((i as u64).wrapping_mul(6364136223846793005).wrapping_add(salt) >> 41) as i16)
            .collect();
        Tensor3::from_vec(c, h, w, data)
    }

    fn assert_kernels_agree(t: &LayerTrace, cfg: &AcceleratorConfig, what: &str) {
        for mode in [ValueMode::Raw, ValueMode::Differential] {
            let opt = term_serial_layer(t, cfg, mode);
            let reference = term_serial_layer_reference(t, cfg, mode);
            assert_eq!(opt, reference, "{what} mode {mode:?}");
        }
    }

    #[test]
    fn zero_imap_costs_zero_compute_cycles() {
        let t = mk_trace(Tensor3::<i16>::new(16, 8, 8), 16, 3, ConvGeometry::same(3, 3));
        let r = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.useful_slots, 0);
    }

    #[test]
    fn constant_imap_is_free_for_diffy_after_first_window() {
        // All-7 imap: raw terms are 2 per value (7 = 8 - 1, two Booth
        // terms); deltas are all zero except the leftmost window of each
        // output row, which is processed raw.
        let t = mk_trace(Tensor3::<i16>::filled(16, 6, 33, 7), 16, 1, ConvGeometry::unit());
        let raw = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let diff = term_serial_layer(&t, &cfg(), ValueMode::Differential);
        assert!(diff.cycles < raw.cycles);
        // 6 rows x 33 columns = 198 windows pack row-major into pallets
        // of 16; the six leftmost (raw) windows sit at indices 0, 33, …,
        // 165 and land in six *distinct* pallets, each of which costs
        // that window's terms(7) = 2 cycles (every other window in them
        // is all-zero deltas). Compute is therefore 6 x 2 = 12 cycles;
        // K = 16 fills one tile group, so the remaining 3 tiles split the
        // 6 output rows 4 ways spatially: ceil(12 / 4) = 3 cycles.
        assert_eq!(diff.cycles, (6 * 2u64).div_ceil(4));
    }

    #[test]
    fn diffy_equals_pra_on_uncorrelated_worst_case() {
        // A pathological imap alternating 0x5555 / 0 kills correlation:
        // diffy must not be (much) better, and both are bounded by 16
        // cycles per brick step worst case.
        let data: Vec<i16> = (0..16 * 4 * 32)
            .map(|i| if i % 2 == 0 { 0x5555 } else { 0 })
            .collect();
        let t = mk_trace(
            Tensor3::from_vec(16, 4, 32, data),
            16,
            1,
            ConvGeometry::unit(),
        );
        let raw = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let diff = term_serial_layer(&t, &cfg(), ValueMode::Differential);
        // deltas of alternating +v/-v need at least as many terms.
        assert!(diff.cycles >= raw.cycles);
    }

    #[test]
    fn smooth_ramp_strongly_favours_diffy() {
        let data: Vec<i16> = (0..8 * 64).map(|i| 1000 + (i % 64) as i16 * 3).collect();
        let t = mk_trace(
            Tensor3::from_vec(1, 8, 64, data.clone()),
            16,
            3,
            ConvGeometry::same(3, 3),
        );
        let raw = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let diff = term_serial_layer(&t, &cfg(), ValueMode::Differential);
        assert!(
            (diff.cycles as f64) < raw.cycles as f64 * 0.7,
            "diffy {} vs pra {}",
            diff.cycles,
            raw.cycles
        );
    }

    #[test]
    fn t1_serializes_but_improves_relative_speedup() {
        // A T_x configuration has x lanes per filter, so absolute cycles
        // grow as x shrinks — but the speedup over an equally-provisioned
        // VAA improves because cross-lane synchronization disappears
        // (Fig. 16: 7.1x at T16 becomes 11.9x at T1).
        let data: Vec<i16> = (0..16 * 4 * 20)
            .map(|i| ((i * 37) % 97) as i16)
            .collect();
        let t = mk_trace(Tensor3::from_vec(16, 4, 20, data), 8, 3, ConvGeometry::same(3, 3));
        let cfg16 = cfg();
        let mut cfg1 = cfg();
        cfg1.lanes = 1;
        cfg1.terms_per_group = 1;
        let term16 = term_serial_layer(&t, &cfg16, ValueMode::Raw);
        let term1 = term_serial_layer(&t, &cfg1, ValueMode::Raw);
        assert!(term1.cycles >= term16.cycles, "T1 must serialize");
        let vaa16 = crate::vaa::vaa_layer(&t, &cfg16);
        let vaa1 = crate::vaa::vaa_layer(&t, &cfg1);
        let speedup16 = vaa16.cycles as f64 / term16.cycles as f64;
        let speedup1 = vaa1.cycles as f64 / term1.cycles as f64;
        assert!(
            speedup1 > speedup16,
            "T1 speedup {speedup1} should beat T16 speedup {speedup16}"
        );
    }

    #[test]
    fn t1_reaches_per_window_term_totals() {
        // With T1 a column's cycles equal its total term count; with one
        // window per pallet... windows=16, so the pallet max still
        // applies. Use a single output column to isolate.
        let data: Vec<i16> = vec![3, 5, 9, 17];
        let t = mk_trace(Tensor3::from_vec(4, 1, 1, data), 1, 1, ConvGeometry::unit());
        let r = term_serial_layer(&t, &cfg().with_terms_per_group(1), ValueMode::Raw);
        // terms: 3->2, 5->2, 9->2, 17->2 = 8 total.
        assert_eq!(r.cycles, 8);
        let r16 = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        assert_eq!(r16.cycles, 2); // max over the 4 lanes in one group
    }

    #[test]
    fn filter_passes_multiply_cycles() {
        let data: Vec<i16> = (0..4 * 2 * 8).map(|i| (i % 13) as i16).collect();
        let base = mk_trace(
            Tensor3::from_vec(4, 2, 8, data.clone()),
            64,
            1,
            ConvGeometry::unit(),
        );
        let double = mk_trace(Tensor3::from_vec(4, 2, 8, data), 128, 1, ConvGeometry::unit());
        let a = term_serial_layer(&base, &cfg(), ValueMode::Raw);
        let b = term_serial_layer(&double, &cfg(), ValueMode::Raw);
        assert_eq!(a.filter_passes, 1);
        assert_eq!(b.filter_passes, 2);
        assert_eq!(b.cycles, 2 * a.cycles);
    }

    #[test]
    fn utilization_is_in_unit_interval_and_sane() {
        let data: Vec<i16> = (0..16 * 4 * 16).map(|i| (i % 251) as i16).collect();
        let t = mk_trace(Tensor3::from_vec(16, 4, 16, data), 64, 3, ConvGeometry::same(3, 3));
        let r = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let u = r.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn three_channel_first_layer_has_low_utilization() {
        // The paper: "the first layer ... 13 out of the 16 available
        // activation lanes are typically idle".
        let data: Vec<i16> = (0..3 * 4 * 16).map(|i| (i % 251) as i16 + 1).collect();
        let t = mk_trace(Tensor3::from_vec(3, 4, 16, data), 64, 3, ConvGeometry::same(3, 3));
        let r = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        assert!(r.utilization() < 0.25, "got {}", r.utilization());
    }

    #[test]
    fn selective_never_loses_to_either_pure_mode() {
        let data: Vec<i16> = (0..8 * 4 * 20).map(|i| ((i * 91) % 509) as i16).collect();
        let t = mk_trace(Tensor3::from_vec(8, 4, 20, data), 8, 3, ConvGeometry::same(3, 3));
        let net = diffy_models::NetworkTrace {
            model: "m".into(),
            layers: vec![t],
            output: Tensor3::<i16>::new(1, 1, 1),
        };
        let c = cfg();
        let sel = crate::term_serial::selective_network(&net, &c).total_cycles();
        let raw = term_serial_network(&net, &c, ValueMode::Raw).total_cycles();
        let diff = term_serial_network(&net, &c, ValueMode::Differential).total_cycles();
        assert!(sel <= raw && sel <= diff);
        assert_eq!(sel, raw.min(diff));
    }

    #[test]
    fn strided_layers_use_stride_distant_deltas() {
        // Stride-2 constant imap: deltas at distance 2 are zero, so Diffy
        // still wins.
        let t = mk_trace(
            Tensor3::<i16>::filled(4, 4, 40, 21),
            8,
            3,
            ConvGeometry::strided(2, 1),
        );
        let raw = term_serial_layer(&t, &cfg(), ValueMode::Raw);
        let diff = term_serial_layer(&t, &cfg(), ValueMode::Differential);
        assert!(diff.cycles < raw.cycles / 2);
    }

    #[test]
    fn optimized_matches_reference_on_basic_geometries() {
        for (c, h, w, k, f, geom, salt) in [
            (16, 8, 8, 16, 3, ConvGeometry::same(3, 3), 1u64),
            (3, 5, 17, 7, 3, ConvGeometry::same(3, 3), 2),
            (16, 6, 33, 16, 1, ConvGeometry::unit(), 3),
            (4, 9, 40, 8, 3, ConvGeometry::strided(2, 1), 4),
            (8, 11, 11, 8, 3, ConvGeometry::same_dilated(3, 2), 5),
            (1, 3, 24, 2, 1, ConvGeometry::unit(), 6),
        ] {
            let t = mk_trace(pseudo_imap(c, h, w, salt), k, f, geom);
            assert_kernels_agree(&t, &cfg(), &format!("salt {salt}"));
        }
    }

    #[test]
    fn optimized_matches_reference_with_combined_stride_and_dilation() {
        // Stride > 1 AND dilation > 1 in one geometry: the SAT fast path
        // must not engage (dilation gates it), and the sampled-position
        // fallback must price exactly the positions the reference visits.
        for (stride, dilation, pad) in [(2, 2, 2), (3, 2, 1), (2, 3, 3)] {
            let geom = ConvGeometry { stride, pad, dilation };
            let t = mk_trace(pseudo_imap(5, 14, 23, stride as u64 * 31 + dilation as u64), 8, 3, geom);
            assert!(t.out_shape().h > 0 && t.out_shape().w > 0, "degenerate geometry");
            assert_kernels_agree(&t, &cfg(), &format!("s{stride} d{dilation} p{pad}"));
            // Off-default synchronization groups, including one that does
            // not divide C = 5.
            for g in [1, 2, 3, 16] {
                let cfg_g = cfg().with_terms_per_group(g);
                assert_kernels_agree(&t, &cfg_g, &format!("s{stride} d{dilation} g{g}"));
            }
        }
    }

    #[test]
    fn rebuilds_through_dirty_scratch_pool_are_bit_identical() {
        // The plane builders draw dirty recycled buffers from the
        // thread-local scratch pool. Build A, snapshot every readable
        // plane value, then pollute the pool with builds of *different*
        // geometries (larger and smaller, padded and unpadded) so a
        // rebuild of A recycles truncated/extended buffers full of stale
        // data — it must reproduce the snapshot exactly, border rows
        // included.
        let t = mk_trace(pseudo_imap(6, 9, 31, 77), 8, 3, ConvGeometry::same(3, 3));
        let snapshot = |terms: &PaddedTerms| {
            let (ph, pw) = terms.padded_dims();
            let planes = terms.grouped(4);
            let mut vals = Vec::new();
            for py in 0..ph {
                for px in 0..pw {
                    for c in 0..terms.channels() {
                        vals.push(terms.raw_at(c, py, px));
                        vals.push(terms.delta_at(c, py, px));
                    }
                    for delta in [false, true] {
                        vals.push(planes.cost_at(delta, py, px));
                    }
                }
            }
            for (kh, kw) in [(3, 3), (1, 2)] {
                for py0 in 0..=ph - kh {
                    for px0 in 0..=pw - kw {
                        for delta in [false, true] {
                            vals.push(terms.sum_window(delta, py0, px0, kh, kw, 1) as u32);
                            vals.push(planes.cost_window(delta, py0, px0, kh, kw, 1) as u32);
                        }
                    }
                }
            }
            vals
        };
        let first = {
            let terms = PaddedTerms::for_layer(&t);
            snapshot(&terms)
        };
        for (c, h, w, pad) in [(9, 14, 40, 2), (2, 3, 5, 0), (7, 9, 31, 1)] {
            let big = PaddedTerms::build(&pseudo_imap(c, h, w, 1000 + c as u64), pad, 1);
            let _ = big.grouped(4);
            drop(big);
        }
        let again = {
            let terms = PaddedTerms::for_layer(&t);
            snapshot(&terms)
        };
        assert_eq!(first, again, "recycled-buffer rebuild diverged");
    }

    #[test]
    fn group_planes_are_memoized_per_group() {
        let t = mk_trace(pseudo_imap(8, 6, 10, 9), 4, 3, ConvGeometry::same(3, 3));
        let terms = PaddedTerms::for_layer(&t);
        let a = terms.grouped(4);
        let b = terms.grouped(4);
        assert!(Arc::ptr_eq(&a, &b), "same g must share one reduction");
        let c = terms.grouped(2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.group(), 4);
        assert_eq!(c.group(), 2);
    }

    #[test]
    fn group_cost_plane_matches_direct_reduction() {
        let t = mk_trace(pseudo_imap(5, 4, 6, 11), 4, 1, ConvGeometry::unit());
        let terms = PaddedTerms::for_layer(&t);
        let g = 2;
        let planes = terms.grouped(g);
        let (ph, pw) = terms.padded_dims();
        for py in 0..ph {
            for px in 0..pw {
                for delta in [false, true] {
                    let mut expect = 0u32;
                    let mut c0 = 0;
                    while c0 < terms.channels() {
                        let c1 = (c0 + g).min(terms.channels());
                        let mut mx = 0;
                        for c in c0..c1 {
                            let v = if delta {
                                terms.delta_at(c, py, px)
                            } else {
                                terms.raw_at(c, py, px)
                            };
                            mx = mx.max(v);
                        }
                        expect += mx;
                        c0 = c1;
                    }
                    assert_eq!(planes.cost_at(delta, py, px), expect, "({py},{px}) d={delta}");
                }
            }
        }
    }

    #[test]
    fn selective_with_terms_builds_once_per_layer() {
        let mk = |salt| mk_trace(pseudo_imap(6, 5, 18, salt), 8, 3, ConvGeometry::same(3, 3));
        let net = diffy_models::NetworkTrace {
            model: "m".into(),
            layers: vec![mk(1), mk(2), mk(3)],
            output: Tensor3::<i16>::new(1, 1, 1),
        };
        let mut builds = 0usize;
        let sel = selective_network_with_terms(&net, &cfg(), |_, layer| {
            builds += 1;
            Arc::new(PaddedTerms::for_layer(layer))
        });
        assert_eq!(builds, net.layers.len(), "one plane build per layer");
        assert_eq!(sel.total_cycles(), selective_network(&net, &cfg()).total_cycles());
    }

    #[test]
    fn network_with_terms_matches_per_layer_builds() {
        let mk = |salt| mk_trace(pseudo_imap(4, 6, 12, salt), 8, 3, ConvGeometry::same(3, 3));
        let net = diffy_models::NetworkTrace {
            model: "m".into(),
            layers: vec![mk(7), mk(8)],
            output: Tensor3::<i16>::new(1, 1, 1),
        };
        let shared: Vec<Arc<PaddedTerms>> = net
            .layers
            .iter()
            .map(|l| Arc::new(PaddedTerms::for_layer(l)))
            .collect();
        for mode in [ValueMode::Raw, ValueMode::Differential] {
            let fresh = term_serial_network(&net, &cfg(), mode);
            let cached = term_serial_network_with_terms(&net, &cfg(), mode, |i, _| {
                Arc::clone(&shared[i])
            });
            assert_eq!(fresh, cached);
        }
    }
}
