//! Per-layer and per-network cycle accounting structures.

/// Work-partitioning across tiles: filters are split `filters_per_tile`
/// per tile; when tiles outnumber the filter groups of a layer, surplus
/// tiles split the output rows spatially instead (how scaled-up
/// configurations keep shallow-K layers busy — Fig. 18).
///
/// Returns `(passes, spatial_split)`: the layer runs `passes` filter
/// passes, each `spatial_split`× faster than a single tile group.
pub fn tile_partition(
    out_channels: usize,
    out_rows: usize,
    filters_per_tile: usize,
    tiles: usize,
) -> (u64, u64) {
    let groups = out_channels.div_ceil(filters_per_tile).max(1);
    let passes = groups.div_ceil(tiles).max(1) as u64;
    let spatial = if tiles >= groups {
        (tiles / groups).clamp(1, out_rows.max(1))
    } else {
        1
    } as u64;
    (passes, spatial)
}

/// Compute-cycle result for one layer on one architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCycles {
    /// Compute cycles (excluding memory stalls, which the experiment
    /// runner folds in from the memory model).
    pub cycles: u64,
    /// Lane slots that performed effectual work.
    pub useful_slots: u64,
    /// Total lane slots elapsed (`cycles × lane capacity`).
    pub total_slots: u64,
    /// Effectual compute events, for the energy model: MACs for VAA,
    /// effectual shift-add operations (terms × active filters) for the
    /// term-serial designs.
    pub compute_events: u64,
    /// Number of filter passes the layer needed (`ceil(K / total filter
    /// lanes)`).
    pub filter_passes: u64,
    /// The layer's MAC count, for cross-checking.
    pub macs: u64,
}

impl LayerCycles {
    /// Fraction of lane slots doing useful work (the "useful" bar of
    /// Fig. 12, before memory stalls are folded in).
    pub fn utilization(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            self.useful_slots as f64 / self.total_slots as f64
        }
    }
}

/// Cycle results for a whole network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkCycles {
    /// Architecture label.
    pub arch: &'static str,
    /// Per-layer results, in execution order.
    pub layers: Vec<LayerCycles>,
}

impl NetworkCycles {
    /// Total compute cycles.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total MACs (identical across architectures for the same trace).
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Cycle-weighted average utilization.
    pub fn utilization(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.total_slots).sum();
        if total == 0 {
            return 0.0;
        }
        let useful: u64 = self.layers.iter().map(|l| l.useful_slots).sum();
        useful as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(cycles: u64, useful: u64, total: u64) -> LayerCycles {
        LayerCycles {
            cycles,
            useful_slots: useful,
            total_slots: total,
            compute_events: useful,
            filter_passes: 1,
            macs: useful,
        }
    }

    #[test]
    fn tile_partition_filter_and_spatial_axes() {
        use super::tile_partition;
        // K=128, 16/tile, 4 tiles: 8 groups over 4 tiles = 2 passes.
        assert_eq!(tile_partition(128, 100, 16, 4), (2, 1));
        // K=64 exactly fills 4 tiles.
        assert_eq!(tile_partition(64, 100, 16, 4), (1, 1));
        // K=16 on 4 tiles: surplus 3 tiles -> 4-way row split.
        assert_eq!(tile_partition(16, 100, 16, 4), (1, 4));
        // Spatial split cannot exceed the row count.
        assert_eq!(tile_partition(16, 2, 16, 8), (1, 2));
        // K=3 last layer: one group, full spatial split.
        assert_eq!(tile_partition(3, 100, 16, 32), (1, 32));
    }

    #[test]
    fn utilization_ratio() {
        let l = layer(10, 30, 60);
        assert!((l.utilization() - 0.5).abs() < 1e-12);
        let z = layer(0, 0, 0);
        assert_eq!(z.utilization(), 0.0);
    }

    #[test]
    fn network_totals() {
        let n = NetworkCycles { arch: "VAA", layers: vec![layer(10, 5, 10), layer(20, 10, 40)] };
        assert_eq!(n.total_cycles(), 30);
        assert_eq!(n.total_macs(), 15);
        assert!((n.utilization() - 0.3).abs() < 1e-12);
    }
}
