//! Accelerator configurations (Table IV).

use std::fmt;

/// Tile-level configuration shared by VAA, PRA and Diffy.
///
/// The paper's default (Table IV): 4 tiles, 16 filters per tile, 16
/// activation lanes per filter and (for the term-serial designs) 16
/// concurrent windows — 4 × 16 × 16 = 1K equivalent 16×16-bit MACs per
/// cycle at 1 GHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Number of tiles.
    pub tiles: usize,
    /// Filters processed concurrently per tile (IP/SIP rows).
    pub filters_per_tile: usize,
    /// Activation lanes per filter (brick size).
    pub lanes: usize,
    /// Windows processed concurrently per tile by the term-serial designs
    /// (PRA's pallet width; VAA ignores this).
    pub windows: usize,
    /// Cross-lane synchronization group: the `x` of the paper's `T_x`
    /// tiling study (Fig. 16). Lanes within a group advance in lockstep;
    /// `1` removes cross-lane synchronization entirely.
    pub terms_per_group: usize,
    /// Clock frequency in GHz (1.0 in the paper, set by CACTI's SRAM
    /// estimate).
    pub frequency_ghz: f64,
}

impl AcceleratorConfig {
    /// The paper's default configuration (Table IV).
    pub fn table4() -> Self {
        Self {
            tiles: 4,
            filters_per_tile: 16,
            lanes: 16,
            windows: 16,
            terms_per_group: 16,
            frequency_ghz: 1.0,
        }
    }

    /// Same configuration with a different tile count (the scaling study
    /// of Fig. 18).
    pub fn with_tiles(mut self, tiles: usize) -> Self {
        assert!(tiles > 0, "need at least one tile");
        self.tiles = tiles;
        self
    }

    /// Same configuration with a different synchronization group (the
    /// `T_x` study of Fig. 16).
    pub fn with_terms_per_group(mut self, x: usize) -> Self {
        assert!(x > 0 && x <= self.lanes, "T_x must be in 1..=lanes");
        self.terms_per_group = x;
        self
    }

    /// Peak equivalent 16×16-bit MACs per cycle (`tiles × filters ×
    /// lanes`).
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.tiles * self.filters_per_tile * self.lanes) as u64
    }

    /// Total filter lanes across the accelerator.
    pub fn total_filters(&self) -> usize {
        self.tiles * self.filters_per_tile
    }

    /// Cycles per second.
    pub fn cycles_per_second(&self) -> f64 {
        self.frequency_ghz * 1e9
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::table4()
    }
}

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}T x {}F x {}L (x{}W, T{}) @ {} GHz",
            self.tiles,
            self.filters_per_tile,
            self.lanes,
            self.windows,
            self.terms_per_group,
            self.frequency_ghz
        )
    }
}

/// The modelled architectures, for labelling results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Value-agnostic baseline.
    Vaa,
    /// Bit-Pragmatic, raw values.
    Pra,
    /// Differential-convolution accelerator.
    Diffy,
    /// Sparse CNN accelerator.
    Scnn,
}

impl Architecture {
    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::Vaa => "VAA",
            Architecture::Pra => "PRA",
            Architecture::Diffy => "Diffy",
            Architecture::Scnn => "SCNN",
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_is_one_kilo_mac() {
        let c = AcceleratorConfig::table4();
        assert_eq!(c.peak_macs_per_cycle(), 1024);
        assert_eq!(c.total_filters(), 64);
        assert_eq!(c.cycles_per_second(), 1e9);
    }

    #[test]
    fn builders_adjust_fields() {
        let c = AcceleratorConfig::table4().with_tiles(32).with_terms_per_group(1);
        assert_eq!(c.tiles, 32);
        assert_eq!(c.terms_per_group, 1);
        assert_eq!(c.peak_macs_per_cycle(), 32 * 16 * 16);
    }

    #[test]
    #[should_panic(expected = "T_x")]
    fn rejects_oversized_group() {
        let _ = AcceleratorConfig::table4().with_terms_per_group(17);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Architecture::Diffy.to_string(), "Diffy");
        let c = AcceleratorConfig::table4();
        assert!(c.to_string().contains("4T x 16F"));
    }
}
