//! Cycle models for the accelerators the paper evaluates.
//!
//! Four architectures are modelled at tile granularity, all normalized to
//! the same peak throughput (Table IV: 1K equivalent 16×16-bit MACs per
//! cycle at 1 GHz for the default 4-tile configuration):
//!
//! * **VAA** ([`vaa`]) — the value-agnostic baseline (DaDianNao-style,
//!   Fig. 6): 16 inner-product units × 16 MAC lanes per tile; execution
//!   time depends only on layer dimensions.
//! * **PRA** ([`term_serial`] with [`ValueMode::Raw`]) — Bit-Pragmatic
//!   (Fig. 7): term-serial SIPs processing 16 windows concurrently, one
//!   effectual Booth term per lane per cycle; execution time tracks the
//!   effectual content of the *raw* activations, including the cross-lane
//!   synchronization the paper identifies as the main potential/actual
//!   gap (§IV-A).
//! * **Diffy** ([`term_serial`] with [`ValueMode::Differential`]) — PRA
//!   plus differential convolution (Figs. 9/10): all windows except the
//!   leftmost of each row consume *delta* term counts; the DR and
//!   Delta_out engines are overlapped and add no cycles (§III-D/E).
//! * **SCNN** ([`scnn`]) — the sparse accelerator of the Fig. 20
//!   comparison: only nonzero-activation × nonzero-weight products are
//!   executed, on a 1024-multiplier configuration with a utilization
//!   model.
//!
//! [`potential`] computes the work-reduction bounds of Fig. 4 (ALL vs
//! RawE vs ΔE), and [`report`] aggregates per-layer results into
//! network-level summaries.


#![warn(missing_docs)]

pub mod config;
pub mod potential;
pub mod report;
mod scratch;
pub mod scnn;
pub mod stripes;
pub mod temporal;
pub mod term_serial;
pub mod vaa;

pub use config::{AcceleratorConfig, Architecture};
pub use report::{LayerCycles, NetworkCycles};
pub use stripes::{stripes_layer, stripes_network};
pub use temporal::{temporal_network, TemporalMode};
pub use term_serial::{
    selective_network, selective_network_with_terms, term_serial_layer,
    term_serial_layer_reference, term_serial_layer_with_terms, term_serial_network,
    term_serial_network_with_terms, GroupPlanes, PaddedTerms, ValueMode,
};
pub use vaa::{vaa_layer, vaa_network};
