//! A cycle model of SCNN, the sparse CNN accelerator Diffy is compared
//! against in Fig. 20.
//!
//! SCNN executes only the Cartesian products of nonzero activations and
//! nonzero weights, channel by channel: an activation `a(c, y, x)` is
//! multiplied against every nonzero weight of channel `c` across all
//! filters, and the products are scatter-added into output accumulators.
//! The model counts exactly those products and divides by the multiplier
//! throughput, discounted by a utilization factor covering the
//! fragmentation, halo and accumulator-bank-contention losses the SCNN
//! paper reports. We use the published configuration scale (1024
//! multipliers — 64 PEs × 4×4 arrays — matching the 1K-MAC Diffy
//! configuration of Table IV).

use crate::report::{LayerCycles, NetworkCycles};
use diffy_models::{LayerTrace, NetworkTrace};

/// SCNN configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScnnConfig {
    /// Total multipliers (64 PEs × 16 = 1024 in the published design).
    pub multipliers: usize,
    /// Sustained fraction of peak multiplier throughput. The SCNN paper
    /// reports ~70–80% across GoogLeNet/VGG; CI-DNN layer shapes sit in
    /// the same regime.
    pub efficiency: f64,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
}

impl Default for ScnnConfig {
    fn default() -> Self {
        Self { multipliers: 1024, efficiency: 0.75, frequency_ghz: 1.0 }
    }
}

/// Nonzero-product count of one layer: `Σ_c nnz_act(c) × nnz_w(c)`.
///
/// This is exact for unit-stride convolutions (every activation meets
/// every same-channel weight exactly once across the sliding windows,
/// border halo aside) and a close upper bound otherwise.
pub fn nonzero_products(trace: &LayerTrace) -> u64 {
    let ishape = trace.imap.shape();
    let fshape = trace.fmaps.shape();
    let mut products = 0u64;
    for c in 0..ishape.c {
        let nnz_a = trace.imap.channel(c).iter().filter(|&&v| v != 0).count() as u64;
        let mut nnz_w = 0u64;
        for k in 0..fshape.k {
            for j in 0..fshape.h {
                for i in 0..fshape.w {
                    if *trace.fmaps.at(k, c, j, i) != 0 {
                        nnz_w += 1;
                    }
                }
            }
        }
        products += nnz_a * nnz_w;
    }
    products
}

/// Simulates one layer on SCNN.
pub fn scnn_layer(trace: &LayerTrace, cfg: &ScnnConfig) -> LayerCycles {
    let products = nonzero_products(trace);
    let throughput = (cfg.multipliers as f64 * cfg.efficiency).max(1.0);
    let cycles = (products as f64 / throughput).ceil() as u64;
    let out = trace.out_shape();
    let fshape = trace.fmaps.shape();
    let macs = (out.c * out.h * out.w) as u64 * (fshape.c * fshape.h * fshape.w) as u64;
    LayerCycles {
        cycles,
        useful_slots: products,
        total_slots: cycles * cfg.multipliers as u64,
        compute_events: products,
        filter_passes: 1,
        macs,
    }
}

/// Simulates every layer of a network trace on SCNN.
pub fn scnn_network(trace: &NetworkTrace, cfg: &ScnnConfig) -> NetworkCycles {
    NetworkCycles {
        arch: "SCNN",
        layers: trace.layers.iter().map(|l| scnn_layer(l, cfg)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

    fn mk_trace(imap: Tensor3<i16>, fmaps: Tensor4<i16>) -> LayerTrace {
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap,
            fmaps,
            geom: ConvGeometry::same(3, 3),
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    #[test]
    fn products_count_nonzero_pairs_per_channel() {
        // Channel 0: 2 nonzero acts, 3 nonzero weights; channel 1: 1 x 1.
        let imap = Tensor3::from_vec(2, 1, 3, vec![5, 0, 7, 0, 0, 2]);
        let mut fmaps = Tensor4::<i16>::new(1, 2, 3, 3);
        *fmaps.at_mut(0, 0, 0, 0) = 1;
        *fmaps.at_mut(0, 0, 1, 1) = 2;
        *fmaps.at_mut(0, 0, 2, 2) = 3;
        *fmaps.at_mut(0, 1, 0, 0) = 4;
        let t = mk_trace(imap, fmaps);
        assert_eq!(nonzero_products(&t), 2 * 3 + 1);
    }

    #[test]
    fn weight_sparsity_cuts_scnn_cycles() {
        let imap = Tensor3::<i16>::filled(16, 8, 8, 3);
        let dense = Tensor4::<i16>::filled(16, 16, 3, 3, 1);
        let mut sparse = dense.clone();
        for (i, w) in sparse.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *w = 0;
            }
        }
        let cfg = ScnnConfig::default();
        let d = scnn_layer(&mk_trace(imap.clone(), dense), &cfg);
        let s = scnn_layer(&mk_trace(imap, sparse), &cfg);
        assert_eq!(s.useful_slots * 2, d.useful_slots);
        assert!(s.cycles < d.cycles);
    }

    #[test]
    fn activation_sparsity_cuts_scnn_cycles() {
        let dense = Tensor3::<i16>::filled(16, 8, 8, 3);
        let mut sparse = dense.clone();
        for (i, v) in sparse.as_mut_slice().iter_mut().enumerate() {
            if i % 4 != 0 {
                *v = 0;
            }
        }
        let fmaps = Tensor4::<i16>::filled(16, 16, 3, 3, 1);
        let cfg = ScnnConfig::default();
        let d = scnn_layer(&mk_trace(dense, fmaps.clone()), &cfg);
        let s = scnn_layer(&mk_trace(sparse, fmaps), &cfg);
        assert!(s.cycles * 3 < d.cycles);
    }

    #[test]
    fn zero_products_zero_cycles() {
        let t = mk_trace(Tensor3::<i16>::new(2, 4, 4), Tensor4::<i16>::filled(2, 2, 3, 3, 1));
        let r = scnn_layer(&t, &ScnnConfig::default());
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn efficiency_scales_cycles() {
        let t = mk_trace(
            Tensor3::<i16>::filled(16, 8, 8, 3),
            Tensor4::<i16>::filled(16, 16, 3, 3, 1),
        );
        let full = scnn_layer(&t, &ScnnConfig { efficiency: 1.0, ..Default::default() });
        let half = scnn_layer(&t, &ScnnConfig { efficiency: 0.5, ..Default::default() });
        assert!((half.cycles as f64 / full.cycles as f64 - 2.0).abs() < 0.01);
    }
}
