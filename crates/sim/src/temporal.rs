//! Temporal and spatio-temporal differential processing — the combination
//! of Diffy with CBInfer-style cross-frame deltas the paper's related
//! work motivates (§V: "the two concepts could potentially be combined").
//!
//! For video, each layer's imap at frame *t* can be expressed relative to
//! frame *t−1*: the temporal delta `a_t − a_{t−1}` is small wherever the
//! scene is static. Processing those deltas term-serially is the
//! temporal analogue of Diffy; applying Diffy's *spatial* delta transform
//! on top of the temporal deltas handles panning content where both
//! correlations exist. Unlike CBInfer (a GPU software technique keyed on
//! thresholded changes), this stays bit-exact: the previous frame's
//! outputs are buffered and updated, trading extra storage for work —
//! exactly the trade-off the paper sketches.

use crate::config::AcceleratorConfig;
use crate::report::NetworkCycles;
use crate::term_serial::{term_serial_layer, ValueMode};
use diffy_models::{LayerTrace, NetworkTrace};
use diffy_tensor::Tensor3;

/// How cross-frame information is exploited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemporalMode {
    /// Process raw temporal deltas (`a_t − a_{t−1}` element-wise).
    TemporalOnly,
    /// Diffy's spatial delta transform applied to the temporal deltas.
    SpatioTemporal,
}

/// The wrapped element-wise temporal delta of two imaps.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn temporal_imap(prev: &Tensor3<i16>, cur: &Tensor3<i16>) -> Tensor3<i16> {
    assert_eq!(prev.shape(), cur.shape(), "frame shape mismatch");
    let data = cur
        .iter()
        .zip(prev.iter())
        .map(|(&c, &p)| c.wrapping_sub(p))
        .collect();
    Tensor3::from_vec(cur.shape().c, cur.shape().h, cur.shape().w, data)
}

/// Simulates frame `cur` given frame `prev` of the same network under
/// temporal differential processing.
///
/// The cycle model is the term-serial engine run over the temporal-delta
/// imaps; [`TemporalMode::SpatioTemporal`] additionally applies Diffy's
/// row-anchored spatial delta on top.
///
/// # Panics
///
/// Panics if the two traces have different layer structure.
pub fn temporal_network(
    prev: &NetworkTrace,
    cur: &NetworkTrace,
    cfg: &AcceleratorConfig,
    mode: TemporalMode,
) -> NetworkCycles {
    assert_eq!(prev.layers.len(), cur.layers.len(), "trace structure mismatch");
    let layers = prev
        .layers
        .iter()
        .zip(cur.layers.iter())
        .map(|(p, c)| {
            assert_eq!(p.imap.shape(), c.imap.shape(), "layer {} shape mismatch", c.name);
            let fake = LayerTrace {
                name: c.name.clone(),
                index: c.index,
                imap: temporal_imap(&p.imap, &c.imap),
                fmaps: c.fmaps.clone(),
                geom: c.geom,
                relu: c.relu,
                requant_shift: c.requant_shift,
                requant_bias: c.requant_bias,
                next_stride: c.next_stride,
            };
            let value_mode = match mode {
                TemporalMode::TemporalOnly => ValueMode::Raw,
                TemporalMode::SpatioTemporal => ValueMode::Differential,
            };
            term_serial_layer(&fake, cfg, value_mode)
        })
        .collect();
    NetworkCycles {
        arch: match mode {
            TemporalMode::TemporalOnly => "Diffy-T",
            TemporalMode::SpatioTemporal => "Diffy-ST",
        },
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term_serial::term_serial_network;
    use diffy_tensor::{ConvGeometry, Tensor4};

    fn mk_layer(imap: Tensor3<i16>) -> LayerTrace {
        let c = imap.shape().c;
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap,
            fmaps: Tensor4::<i16>::filled(4, c, 3, 3, 1),
            geom: ConvGeometry::same(3, 3),
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    fn mk_net(imap: Tensor3<i16>) -> NetworkTrace {
        NetworkTrace {
            model: "m".into(),
            layers: vec![mk_layer(imap)],
            output: Tensor3::<i16>::new(1, 1, 1),
        }
    }

    fn busy_imap(shift: i16) -> Tensor3<i16> {
        let data: Vec<i16> = (0..4 * 8 * 32)
            .map(|i| 300 + ((i * 37) % 251) as i16 + shift)
            .collect();
        Tensor3::from_vec(4, 8, 32, data)
    }

    #[test]
    fn temporal_imap_wraps_exactly() {
        let a = Tensor3::from_vec(1, 1, 3, vec![i16::MAX, 0, -5]);
        let b = Tensor3::from_vec(1, 1, 3, vec![i16::MIN, 7, -5]);
        let d = temporal_imap(&a, &b);
        assert_eq!(d.as_slice(), &[1, 7, 0]); // MIN - MAX wraps to 1
    }

    #[test]
    fn static_video_is_nearly_free_temporally() {
        let frame = busy_imap(0);
        let prev = mk_net(frame.clone());
        let cur = mk_net(frame);
        let cfg = AcceleratorConfig::table4();
        let spatial = term_serial_network(&cur.clone(), &cfg, ValueMode::Differential);
        let temporal = temporal_network(&prev, &cur, &cfg, TemporalMode::TemporalOnly);
        assert_eq!(temporal.total_cycles(), 0, "identical frames cost nothing");
        assert!(spatial.total_cycles() > 0);
    }

    #[test]
    fn slowly_changing_video_favors_temporal_processing() {
        // Uniform brightness drift: temporal deltas are a constant +2,
        // spatial structure unchanged (and busy).
        let prev = mk_net(busy_imap(0));
        let cur = mk_net(busy_imap(2));
        let cfg = AcceleratorConfig::table4();
        let spatial = term_serial_network(&cur.clone(), &cfg, ValueMode::Differential);
        let temporal = temporal_network(&prev, &cur, &cfg, TemporalMode::TemporalOnly);
        assert!(
            temporal.total_cycles() < spatial.total_cycles(),
            "temporal {} !< spatial {}",
            temporal.total_cycles(),
            spatial.total_cycles()
        );
    }

    #[test]
    fn spatiotemporal_wins_when_temporal_deltas_are_spatially_smooth() {
        // Temporal deltas form a smooth gradient: combining both axes
        // compresses further than temporal alone.
        let base = busy_imap(0);
        let mut cur_imap = base.clone();
        let s = cur_imap.shape();
        for c in 0..s.c {
            for y in 0..s.h {
                for x in 0..s.w {
                    // Change slowly along x: delta(x) - delta(x-1) is tiny.
                    *cur_imap.at_mut(c, y, x) =
                        cur_imap.at(c, y, x).wrapping_add(100 + (x as i16) / 4);
                }
            }
        }
        let prev = mk_net(base);
        let cur = mk_net(cur_imap);
        let cfg = AcceleratorConfig::table4();
        let t = temporal_network(&prev, &cur, &cfg, TemporalMode::TemporalOnly);
        let st = temporal_network(&prev, &cur, &cfg, TemporalMode::SpatioTemporal);
        assert!(
            st.total_cycles() < t.total_cycles(),
            "spatio-temporal {} !< temporal {}",
            st.total_cycles(),
            t.total_cycles()
        );
    }

    #[test]
    #[should_panic(expected = "frame shape mismatch")]
    fn shape_mismatch_rejected() {
        let a = Tensor3::<i16>::new(1, 2, 2);
        let b = Tensor3::<i16>::new(1, 2, 3);
        let _ = temporal_imap(&a, &b);
    }
}
