//! Property-based tests for the encoding crate.

use diffy_encoding::bitstream::{BitReader, BitWriter};
use diffy_encoding::booth::{booth_term_stream, MAX_TERMS_I32};
use diffy_encoding::delta::{
    delta_rows_wrapping, undelta_rows_wrapping, delta_slice_wrapping, undelta_slice_wrapping,
};
use diffy_encoding::precision::Signedness;
use diffy_encoding::{booth_digits, booth_terms, booth_terms_i32, booth_terms_i32_reference,
    booth_terms_slice, booth_terms_slice_swar, delta_row_wrapping_into, delta_rows, undelta_rows,
    StorageScheme};
use diffy_tensor::Tensor3;
use proptest::prelude::*;

fn small_tensor3() -> impl Strategy<Value = Tensor3<i16>> {
    (1usize..=3, 1usize..=4, 1usize..=9).prop_flat_map(|(c, h, w)| {
        proptest::collection::vec(any::<i16>(), c * h * w)
            .prop_map(move |data| Tensor3::from_vec(c, h, w, data))
    })
}

proptest! {
    #[test]
    fn naf_digits_reconstruct(v in any::<i32>()) {
        let d = booth_digits(v);
        let sum: i64 = d.iter().enumerate().map(|(i, &x)| x as i64 * (1i64 << i)).sum();
        prop_assert_eq!(sum, v as i64);
    }

    #[test]
    fn naf_is_nonadjacent(v in any::<i32>()) {
        let d = booth_digits(v);
        for w in d.windows(2) {
            prop_assert!(w[0] == 0 || w[1] == 0);
        }
    }

    #[test]
    fn term_count_bounds(v in any::<i32>()) {
        let t = booth_terms_i32(v);
        prop_assert!(t <= MAX_TERMS_I32);
        prop_assert_eq!(t as usize, booth_term_stream(v).len());
        prop_assert_eq!(t == 0, v == 0);
    }

    #[test]
    fn term_count_table_agrees(v in any::<i16>()) {
        prop_assert_eq!(booth_terms(v), booth_terms_i32(v as i32));
    }

    #[test]
    fn closed_form_matches_digit_walk_reference(v in any::<i32>()) {
        // popcount(v XOR 3v) == the original NAF digit-walking count.
        prop_assert_eq!(booth_terms_i32(v), booth_terms_i32_reference(v));
    }

    #[test]
    fn lane_kernels_match_scalar_closed_form(
        vs in proptest::collection::vec(any::<i16>(), 0..200)
    ) {
        let want: Vec<u8> = vs.iter().map(|&v| booth_terms(v) as u8).collect();
        let mut got = vec![0xFFu8; vs.len()];
        booth_terms_slice(&vs, &mut got);
        prop_assert_eq!(&got, &want);
        got.fill(0xFF);
        booth_terms_slice_swar(&vs, &mut got);
        prop_assert_eq!(&got, &want);
    }

    #[test]
    fn wrapping_row_kernel_matches_tensor_transform(
        vs in proptest::collection::vec(any::<i16>(), 1..80),
        stride in 1usize..5,
    ) {
        let t = Tensor3::from_vec(1, 1, vs.len(), vs.clone());
        let d = delta_rows_wrapping(&t, stride);
        let mut got = vec![0i16; vs.len()];
        delta_row_wrapping_into(&vs, stride, &mut got);
        prop_assert_eq!(d.as_slice(), &got[..]);
    }

    #[test]
    fn triangle_inequality_of_terms(a in any::<i16>(), b in any::<i16>()) {
        // terms(a + b) <= terms(a) + terms(b): recoding each side and
        // concatenating is a valid signed-power-of-two form and NAF is
        // minimal.
        let sum = a as i32 + b as i32;
        prop_assert!(booth_terms_i32(sum) <= booth_terms(a) + booth_terms(b));
    }

    #[test]
    fn exact_delta_roundtrip(t in small_tensor3(), stride in 1usize..4) {
        let d = delta_rows(&t, stride);
        let back = undelta_rows(&d, stride);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn wrapping_delta_roundtrip(t in small_tensor3(), stride in 1usize..4) {
        let d = delta_rows_wrapping(&t, stride);
        let back = undelta_rows_wrapping(&d, stride);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn wrapping_slice_roundtrip(vs in proptest::collection::vec(any::<i16>(), 0..64)) {
        prop_assert_eq!(undelta_slice_wrapping(&delta_slice_wrapping(&vs)), vs);
    }

    #[test]
    fn wrapping_matches_exact_for_nonnegative(
        vs in proptest::collection::vec(0i16..=i16::MAX, 1..32)
    ) {
        let t = Tensor3::from_vec(1, 1, vs.len(), vs);
        let wrapped = delta_rows_wrapping(&t, 1);
        let exact = delta_rows(&t, 1);
        for (w, e) in wrapped.iter().zip(exact.iter()) {
            prop_assert_eq!(*w as i32, *e);
        }
    }

    #[test]
    fn schemes_roundtrip_signed(
        row in proptest::collection::vec(any::<i16>(), 1..80),
        group in prop_oneof![Just(4usize), Just(8), Just(16), Just(256)],
    ) {
        for scheme in [
            StorageScheme::NoCompression,
            StorageScheme::raw_d(group),
            StorageScheme::delta_d(group),
            StorageScheme::RleZ,
            StorageScheme::Rle,
        ] {
            let mut w = BitWriter::new();
            scheme.encode_row(&row, Signedness::Signed, &mut w);
            prop_assert_eq!(w.bit_len(), scheme.row_bits(&row, Signedness::Signed));
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let back = scheme.decode_row(&mut r, row.len(), Signedness::Signed).unwrap();
            prop_assert_eq!(&back, &row);
        }
    }

    #[test]
    fn schemes_roundtrip_unsigned(
        row in proptest::collection::vec(0i16..=i16::MAX, 1..80),
    ) {
        for scheme in [
            StorageScheme::raw_d(16),
            StorageScheme::delta_d(16),
        ] {
            let mut w = BitWriter::new();
            scheme.encode_row(&row, Signedness::Unsigned, &mut w);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let back = scheme.decode_row(&mut r, row.len(), Signedness::Unsigned).unwrap();
            prop_assert_eq!(&back, &row);
        }
    }

    #[test]
    fn dynamic_never_beats_entropy_floor_but_never_exceeds_raw_plus_headers(
        row in proptest::collection::vec(0i16..=i16::MAX, 1..100),
    ) {
        let bits = StorageScheme::raw_d(16).row_bits(&row, Signedness::Unsigned);
        let n = row.len() as u64;
        // Upper bound: 16 bits per value (15-bit values need <= 15, plus
        // 4/16 header amortization rounds to at most 16n + 4).
        prop_assert!(bits <= 16 * n + 4 * n.div_ceil(16) + 4);
        // Lower bound: at least 1 bit per value plus one header.
        prop_assert!(bits >= n + 4);
    }

    #[test]
    fn bitstream_roundtrip(values in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..40)) {
        let mut w = BitWriter::new();
        let masked: Vec<(u64, u32)> = values
            .iter()
            .map(|&(v, n)| (if n == 64 { v } else { v & ((1u64 << n) - 1) }, n))
            .collect();
        for &(v, n) in &masked {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &masked {
            prop_assert_eq!(r.read_bits(n), Some(v));
        }
    }
}
