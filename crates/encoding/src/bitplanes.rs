//! Bit-plane (virtual column) packing — the on-chip layout of §III-F.
//!
//! "On-chip, when compression is used the activations are stored in
//! virtual columns as in Proteus and a separate virtual column contains
//! the precisions per group." A group of `N` activations at dynamic
//! precision `p` is stored *transposed*: `p` planes of `N` bits each,
//! least-significant plane first. This is what lets a bit/term-serial
//! datapath stream one significance level per cycle across all lanes
//! without any unpacking logic, and it is why the effective AM capacity
//! scales with the detected precision.
//!
//! This module implements the transpose and its inverse bit-exactly, and
//! accounts the physical footprint including the 4-bit precision column.

use crate::precision::{group_precision, Signedness, GROUP_HEADER_BITS};

/// A packed group: `precision` bit-planes over `len` lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedGroup {
    /// Lanes in the group (16 in the paper).
    pub len: usize,
    /// Detected precision in bits.
    pub precision: u32,
    /// `precision` planes, LSB plane first; bit `i` of `planes[b]` is bit
    /// `b` of lane `i`'s two's-complement (or unsigned) representation.
    pub planes: Vec<u16>,
}

impl PackedGroup {
    /// Physical bits this group occupies in the virtual columns,
    /// including its precision-column entry.
    pub fn footprint_bits(&self) -> u64 {
        self.precision as u64 * self.len as u64 + GROUP_HEADER_BITS
    }
}

/// Packs one group of up to 16 values into bit-planes at its detected
/// dynamic precision.
///
/// # Panics
///
/// Panics if the group is empty or longer than 16 lanes, or contains a
/// negative value under [`Signedness::Unsigned`].
pub fn pack_group(values: &[i16], signedness: Signedness) -> PackedGroup {
    assert!(!values.is_empty() && values.len() <= 16, "group must be 1..=16 lanes");
    let wide: Vec<i32> = values.iter().map(|&v| v as i32).collect();
    let precision = group_precision(&wide, signedness);
    let mut planes = vec![0u16; precision as usize];
    for (lane, &v) in values.iter().enumerate() {
        let raw = v as u16; // two's complement bits
        for (b, plane) in planes.iter_mut().enumerate() {
            if (raw >> b) & 1 != 0 {
                *plane |= 1 << lane;
            }
        }
    }
    PackedGroup { len: values.len(), precision, planes }
}

/// Unpacks a group back to its values.
///
/// Under [`Signedness::Signed`] the top stored bit is sign-extended;
/// under [`Signedness::Unsigned`] upper bits are zero-filled.
pub fn unpack_group(group: &PackedGroup, signedness: Signedness) -> Vec<i16> {
    let p = group.precision;
    (0..group.len)
        .map(|lane| {
            let mut raw = 0u16;
            for (b, plane) in group.planes.iter().enumerate() {
                if (plane >> lane) & 1 != 0 {
                    raw |= 1 << b;
                }
            }
            match signedness {
                Signedness::Unsigned => raw as i16,
                Signedness::Signed => {
                    // Sign-extend from bit p-1.
                    if p < 16 && (raw >> (p - 1)) & 1 != 0 {
                        (raw | (u16::MAX << p)) as i16
                    } else {
                        raw as i16
                    }
                }
            }
        })
        .collect()
}

/// Packs a whole row into groups of `group_size`, returning the packed
/// groups and the total physical footprint in bits.
pub fn pack_row(
    values: &[i16],
    group_size: usize,
    signedness: Signedness,
) -> (Vec<PackedGroup>, u64) {
    assert!(group_size > 0 && group_size <= 16, "group size must be 1..=16");
    let groups: Vec<PackedGroup> =
        values.chunks(group_size).map(|g| pack_group(g, signedness)).collect();
    let bits = groups.iter().map(|g| g.footprint_bits()).sum();
    (groups, bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::StorageScheme;

    #[test]
    fn roundtrip_unsigned_group() {
        let vals: Vec<i16> = vec![0, 1, 255, 128, 7, 32767, 4, 9];
        let g = pack_group(&vals, Signedness::Unsigned);
        assert_eq!(g.precision, 15);
        assert_eq!(unpack_group(&g, Signedness::Unsigned), vals);
    }

    #[test]
    fn roundtrip_signed_group_with_negatives() {
        let vals: Vec<i16> = vec![-1, 1, -128, 127, 0, -32768, 42, -7];
        let g = pack_group(&vals, Signedness::Signed);
        assert_eq!(g.precision, 16);
        assert_eq!(unpack_group(&g, Signedness::Signed), vals);
    }

    #[test]
    fn small_deltas_pack_into_few_planes() {
        let vals: Vec<i16> = vec![1, -2, 0, 1, -1, 2, 0, 0, 1, -1, 0, 2, -2, 1, 0, 1];
        let g = pack_group(&vals, Signedness::Signed);
        assert_eq!(g.precision, 3); // [-2, 2] needs 3 signed bits
        assert_eq!(g.planes.len(), 3);
        assert_eq!(unpack_group(&g, Signedness::Signed), vals);
    }

    #[test]
    fn footprint_matches_dynamic_scheme_accounting() {
        // The virtual-column layout and the RawD16 footprint formula must
        // agree: p x 16 + 4 per group.
        let row: Vec<i16> = (0..64).map(|i| (i * 37 % 512) as i16).collect();
        let (_, bits) = pack_row(&row, 16, Signedness::Unsigned);
        let scheme_bits = StorageScheme::raw_d(16).row_bits(&row, Signedness::Unsigned);
        assert_eq!(bits, scheme_bits);
    }

    #[test]
    fn plane_layout_is_transposed() {
        // Lane i's bit b sits at bit i of plane b.
        let vals: Vec<i16> = vec![0b01, 0b10];
        let g = pack_group(&vals, Signedness::Unsigned);
        assert_eq!(g.precision, 2);
        assert_eq!(g.planes[0], 0b01); // LSBs: lane0=1, lane1=0
        assert_eq!(g.planes[1], 0b10); // next bits: lane0=0, lane1=1
    }

    #[test]
    fn partial_tail_group_roundtrips() {
        let row: Vec<i16> = (0..21).map(|i| i as i16 * 3).collect();
        let (groups, _) = pack_row(&row, 16, Signedness::Unsigned);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[1].len, 5);
        let mut back = Vec::new();
        for g in &groups {
            back.extend(unpack_group(g, Signedness::Unsigned));
        }
        assert_eq!(back, row);
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn oversized_group_rejected() {
        let vals = vec![0i16; 17];
        let _ = pack_group(&vals, Signedness::Unsigned);
    }
}
