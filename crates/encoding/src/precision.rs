//! Precision detection: profiled per-layer precisions (Table III) and
//! dynamic per-group precisions (Dynamic Stripes, §III-F).
//!
//! The paper stores activations in groups of 16 with a 4-bit header giving
//! the number of bits every activation in the group uses; Diffy applies the
//! same detection to *deltas*, which — being small for correlated imaps —
//! need fewer bits per group.

use diffy_tensor::stats::MagnitudeHistogram;

/// Whether a value population is stored as unsigned magnitudes (post-ReLU
/// activations) or as two's-complement signed values (deltas, or the
/// outputs of a final layer without ReLU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signedness {
    /// Non-negative values; no sign bit needed.
    Unsigned,
    /// Two's-complement values with a sign bit.
    Signed,
}

impl Signedness {
    /// Detects the signedness needed to represent every value in `vs`.
    pub fn detect(vs: &[i32]) -> Self {
        if vs.iter().any(|&v| v < 0) {
            Signedness::Signed
        } else {
            Signedness::Unsigned
        }
    }
}

/// Bits needed to represent `v` under the given signedness.
///
/// Unsigned: minimal `p` with `v < 2^p` (so 0 needs 0 bits).
/// Signed: minimal `p` with `-2^(p-1) <= v < 2^(p-1)`.
///
/// # Panics
///
/// Panics if `v < 0` with [`Signedness::Unsigned`].
#[inline]
pub fn value_bits(v: i32, signedness: Signedness) -> u32 {
    match signedness {
        Signedness::Unsigned => {
            assert!(v >= 0, "negative value {v} in unsigned population");
            32 - (v as u32).leading_zeros()
        }
        Signedness::Signed => {
            if v >= 0 {
                (32 - (v as u32).leading_zeros()) + 1
            } else {
                (32 - (v as u32).leading_ones()) + 1
            }
        }
    }
}

/// Minimal precision covering every value of one group. A group never
/// reports 0 bits (hardware stores at least one bit per value).
pub fn group_precision(group: &[i32], signedness: Signedness) -> u32 {
    group
        .iter()
        .map(|&v| value_bits(v, signedness))
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Per-group precisions for a value stream split into consecutive groups of
/// `group_size` (the final group may be shorter).
///
/// # Panics
///
/// Panics if `group_size == 0`.
pub fn group_precisions(vs: &[i32], group_size: usize, signedness: Signedness) -> Vec<u32> {
    assert!(group_size > 0, "group size must be positive");
    vs.chunks(group_size)
        .map(|g| group_precision(g, signedness))
        .collect()
}

/// Number of bits in the 4-bit-per-group header of the dynamic schemes.
pub const GROUP_HEADER_BITS: u64 = 4;

/// Total encoded bits of a value stream under dynamic per-group precision:
/// each group costs a 4-bit header plus `precision × group_len` payload
/// bits. This is the footprint model behind RawD8/RawD16/RawD256 and
/// DeltaD16/DeltaD256 in Figs. 5 and 14.
pub fn dynamic_encoded_bits(vs: &[i32], group_size: usize, signedness: Signedness) -> u64 {
    assert!(group_size > 0, "group size must be positive");
    vs.chunks(group_size)
        .map(|g| GROUP_HEADER_BITS + group_precision(g, signedness) as u64 * g.len() as u64)
        .sum()
}

/// Profile-derived precision for a whole layer (Table III): the smallest
/// precision covering the given magnitude `quantile` of the activation
/// population. Rare outliers above the quantile saturate, mirroring the
/// accuracy-preserving profiled precisions of Stripes/Proteus.
///
/// # Panics
///
/// Panics if `quantile` is outside `[0, 1]`.
pub fn profiled_precision(
    hist: &MagnitudeHistogram,
    signedness: Signedness,
    quantile: f64,
) -> u32 {
    let mag = hist.magnitude_quantile(quantile) as i32;
    let bits = value_bits(mag, Signedness::Unsigned);
    let p = match signedness {
        Signedness::Unsigned => bits,
        Signedness::Signed => bits + 1,
    };
    p.clamp(1, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bits_unsigned() {
        assert_eq!(value_bits(0, Signedness::Unsigned), 0);
        assert_eq!(value_bits(1, Signedness::Unsigned), 1);
        assert_eq!(value_bits(255, Signedness::Unsigned), 8);
        assert_eq!(value_bits(256, Signedness::Unsigned), 9);
    }

    #[test]
    fn value_bits_signed() {
        assert_eq!(value_bits(0, Signedness::Signed), 1);
        assert_eq!(value_bits(-1, Signedness::Signed), 1);
        assert_eq!(value_bits(1, Signedness::Signed), 2);
        assert_eq!(value_bits(-2, Signedness::Signed), 2);
        assert_eq!(value_bits(127, Signedness::Signed), 8);
        assert_eq!(value_bits(-128, Signedness::Signed), 8);
        assert_eq!(value_bits(-65536, Signedness::Signed), 17);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn unsigned_rejects_negative() {
        let _ = value_bits(-1, Signedness::Unsigned);
    }

    #[test]
    fn detect_signedness() {
        assert_eq!(Signedness::detect(&[0, 1, 2]), Signedness::Unsigned);
        assert_eq!(Signedness::detect(&[0, -1, 2]), Signedness::Signed);
        assert_eq!(Signedness::detect(&[]), Signedness::Unsigned);
    }

    #[test]
    fn group_precision_is_max_over_group() {
        assert_eq!(group_precision(&[0, 3, 255], Signedness::Unsigned), 8);
        assert_eq!(group_precision(&[0, 0, 0], Signedness::Unsigned), 1);
        assert_eq!(group_precision(&[-1, 1], Signedness::Signed), 2);
    }

    #[test]
    fn group_precisions_chunking() {
        let vs = vec![1, 1, 255, 255, 3];
        let ps = group_precisions(&vs, 2, Signedness::Unsigned);
        assert_eq!(ps, vec![1, 8, 2]);
    }

    #[test]
    fn dynamic_bits_small_groups_adapt_but_pay_headers() {
        // 16 tiny values + 16 large values.
        let mut vs = vec![1i32; 16];
        vs.extend(vec![255i32; 16]);
        let d16 = dynamic_encoded_bits(&vs, 16, Signedness::Unsigned);
        assert_eq!(d16, (4 + 16) + (4 + 16 * 8));
        let d32 = dynamic_encoded_bits(&vs, 32, Signedness::Unsigned);
        assert_eq!(d32, 4 + 32 * 8);
        assert!(d16 < d32);
    }

    #[test]
    fn dynamic_bits_headers_dominate_for_tiny_groups() {
        let vs = vec![0i32; 64];
        let d1 = dynamic_encoded_bits(&vs, 1, Signedness::Unsigned);
        let d16 = dynamic_encoded_bits(&vs, 16, Signedness::Unsigned);
        assert_eq!(d1, 64 * (4 + 1));
        assert_eq!(d16, 4 * (4 + 16));
        assert!(d16 < d1);
    }

    #[test]
    fn profiled_precision_covers_quantile() {
        let mut h = MagnitudeHistogram::new();
        // 999 values of magnitude <= 255, one outlier at 32000.
        for i in 0..999 {
            h.push((i % 256) as i16);
        }
        h.push(32000);
        assert_eq!(profiled_precision(&h, Signedness::Unsigned, 0.999), 8);
        assert_eq!(profiled_precision(&h, Signedness::Unsigned, 1.0), 15);
        assert_eq!(profiled_precision(&h, Signedness::Signed, 0.999), 9);
    }

    #[test]
    fn profiled_precision_clamps_to_16() {
        let mut h = MagnitudeHistogram::new();
        h.push(i16::MIN); // magnitude 32768 -> 16 unsigned bits, 17 signed
        assert_eq!(profiled_precision(&h, Signedness::Signed, 1.0), 16);
        let empty = MagnitudeHistogram::new();
        assert_eq!(profiled_precision(&empty, Signedness::Unsigned, 0.5), 1);
    }
}
