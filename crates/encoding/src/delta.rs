//! The delta transform: representing activations as differences of
//! spatially adjacent values.
//!
//! Diffy's dataflow (§III-D) computes the leftmost output of each row
//! directly and every other output along the row differentially; the
//! Delta_out engine (§III-E, Fig. 10) writes each omap brick back to the
//! activation memory as the element-wise difference from the brick
//! `s_next` columns to its left, where `s_next` is the *next* layer's
//! stride. This module implements that transform and its exact inverse.
//!
//! Deltas of 16-bit values need 17 bits in the worst case, so the delta
//! domain is `i32`.

use diffy_tensor::Tensor3;

/// Transforms an imap into its delta representation along the W axis.
///
/// For every channel and row, columns `x < stride` hold the raw value
/// (the row anchors) and columns `x >= stride` hold
/// `a(c, y, x) - a(c, y, x - stride)`.
///
/// # Panics
///
/// Panics if `stride == 0`.
///
/// # Example
///
/// ```
/// use diffy_tensor::Tensor3;
/// use diffy_encoding::{delta_rows, undelta_rows};
/// let t = Tensor3::from_vec(1, 1, 4, vec![10i16, 12, 11, 11]);
/// let d = delta_rows(&t, 1);
/// assert_eq!(d.as_slice(), &[10, 2, -1, 0]);
/// assert_eq!(undelta_rows(&d, 1).as_slice(), t.as_slice());
/// ```
pub fn delta_rows(t: &Tensor3<i16>, stride: usize) -> Tensor3<i32> {
    assert!(stride > 0, "stride must be positive");
    let s = t.shape();
    let mut out = Tensor3::<i32>::new(s.c, s.h, s.w);
    let k = stride.min(s.w);
    for c in 0..s.c {
        for y in 0..s.h {
            let src = t.row(c, y);
            let dst = out.row_mut(c, y);
            // Single fused streaming pass per row: anchor prefix, then a
            // branch-free zipped subtraction the compiler vectorizes
            // (src[x] - src[x - stride] expressed as two staggered views).
            for (d, &v) in dst[..k].iter_mut().zip(&src[..k]) {
                *d = v as i32;
            }
            for (d, (&cur, &prev)) in dst[k..].iter_mut().zip(src[k..].iter().zip(src.iter())) {
                *d = cur as i32 - prev as i32;
            }
        }
    }
    out
}

/// Inverse of [`delta_rows`]: reconstructs the raw imap exactly.
///
/// # Panics
///
/// Panics if `stride == 0` or if a reconstructed value falls outside the
/// 16-bit range (which cannot happen for tensors produced by
/// [`delta_rows`]).
pub fn undelta_rows(d: &Tensor3<i32>, stride: usize) -> Tensor3<i16> {
    assert!(stride > 0, "stride must be positive");
    let s = d.shape();
    let mut out = Tensor3::<i16>::new(s.c, s.h, s.w);
    let k = stride.min(s.w);
    for c in 0..s.c {
        for y in 0..s.h {
            let src = d.row(c, y);
            let dst = out.row_mut(c, y);
            // One streaming pass per row; the prefix-sum dependency is
            // loop-carried per stride lane but all accesses are
            // slice-local (no per-element shape math).
            for x in 0..k {
                let v = src[x];
                assert!(
                    (i16::MIN as i32..=i16::MAX as i32).contains(&v),
                    "reconstructed value {v} out of 16-bit range"
                );
                dst[x] = v as i16;
            }
            for x in k..s.w {
                let v = src[x] + dst[x - stride] as i32;
                assert!(
                    (i16::MIN as i32..=i16::MAX as i32).contains(&v),
                    "reconstructed value {v} out of 16-bit range"
                );
                dst[x] = v as i16;
            }
        }
    }
    out
}

/// Delta transform of a flat row of values with anchoring every
/// `anchor_every` elements (used to model finite on-chip row segments:
/// each segment restarts from a raw value so segments are independently
/// decodable).
///
/// With `anchor_every == usize::MAX` only the first element is raw.
///
/// # Panics
///
/// Panics if `anchor_every == 0`.
pub fn delta_slice_anchored(vs: &[i16], anchor_every: usize) -> Vec<i32> {
    assert!(anchor_every > 0, "anchor period must be positive");
    vs.iter()
        .enumerate()
        .map(|(i, &v)| {
            if i % anchor_every == 0 {
                v as i32
            } else {
                v as i32 - vs[i - 1] as i32
            }
        })
        .collect()
}

/// Inverse of [`delta_slice_anchored`].
pub fn undelta_slice_anchored(ds: &[i32], anchor_every: usize) -> Vec<i16> {
    assert!(anchor_every > 0, "anchor period must be positive");
    let mut out = Vec::with_capacity(ds.len());
    for (i, &d) in ds.iter().enumerate() {
        let v = if i % anchor_every == 0 {
            d
        } else {
            d + out[i - 1] as i32
        };
        debug_assert!((i16::MIN as i32..=i16::MAX as i32).contains(&v));
        out.push(v as i16);
    }
    out
}

/// Wrapping 16-bit delta transform along the W axis.
///
/// This is exactly what the Delta_out engine's element-wise 16-bit
/// subtractors produce in hardware: `a.wrapping_sub(prev)`. Reconstruction
/// adds modulo 2^16, so the roundtrip is exact for *all* 16-bit inputs.
/// For post-ReLU activations (the only values Diffy ever re-reads as
/// deltas) no wrap can occur, so the wrapped delta equals the true
/// arithmetic difference and Booth-term counts are faithful.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn delta_rows_wrapping(t: &Tensor3<i16>, stride: usize) -> Tensor3<i16> {
    assert!(stride > 0, "stride must be positive");
    let s = t.shape();
    let mut out = Tensor3::<i16>::new(s.c, s.h, s.w);
    for c in 0..s.c {
        for y in 0..s.h {
            delta_row_wrapping_into(t.row(c, y), stride, out.row_mut(c, y));
        }
    }
    out
}

/// Wrapping strided delta of one row into a caller-provided buffer — the
/// slice kernel behind [`delta_rows_wrapping`], also used by the
/// term-plane builders to delta a padded row without allocating.
///
/// Columns `x < stride` hold the raw value; columns `x >= stride` hold
/// `src[x].wrapping_sub(src[x - stride])`. A single branch-free streaming
/// pass the compiler auto-vectorizes.
///
/// # Panics
///
/// Panics if `stride == 0` or `dst.len() != src.len()`.
pub fn delta_row_wrapping_into(src: &[i16], stride: usize, dst: &mut [i16]) {
    assert!(stride > 0, "stride must be positive");
    assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
    let k = stride.min(src.len());
    dst[..k].copy_from_slice(&src[..k]);
    for (d, (&cur, &prev)) in dst[k..].iter_mut().zip(src[k..].iter().zip(src.iter())) {
        *d = cur.wrapping_sub(prev);
    }
}

/// Inverse of [`delta_rows_wrapping`].
pub fn undelta_rows_wrapping(d: &Tensor3<i16>, stride: usize) -> Tensor3<i16> {
    assert!(stride > 0, "stride must be positive");
    let s = d.shape();
    let mut out = Tensor3::<i16>::new(s.c, s.h, s.w);
    let k = stride.min(s.w);
    for c in 0..s.c {
        for y in 0..s.h {
            let src = d.row(c, y);
            let dst = out.row_mut(c, y);
            dst[..k].copy_from_slice(&src[..k]);
            for x in k..s.w {
                dst[x] = src[x].wrapping_add(dst[x - stride]);
            }
        }
    }
    out
}

/// Wrapping delta transform of a flat slice with the first element as the
/// anchor (one on-chip row segment).
pub fn delta_slice_wrapping(vs: &[i16]) -> Vec<i16> {
    vs.iter()
        .enumerate()
        .map(|(i, &v)| if i == 0 { v } else { v.wrapping_sub(vs[i - 1]) })
        .collect()
}

/// Inverse of [`delta_slice_wrapping`].
pub fn undelta_slice_wrapping(ds: &[i16]) -> Vec<i16> {
    let mut out: Vec<i16> = Vec::with_capacity(ds.len());
    for (i, &d) in ds.iter().enumerate() {
        let v = if i == 0 { d } else { d.wrapping_add(out[i - 1]) };
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_then_undelta_is_identity() {
        let t = Tensor3::from_vec(2, 2, 5, (0..20).map(|v| (v * v - 30) as i16).collect());
        for stride in 1..=3 {
            let d = delta_rows(&t, stride);
            let back = undelta_rows(&d, stride);
            assert_eq!(back.as_slice(), t.as_slice(), "stride={stride}");
        }
    }

    #[test]
    fn stride_one_keeps_first_column_raw() {
        let t = Tensor3::from_vec(1, 2, 3, vec![5i16, 6, 4, -3, -3, -3]);
        let d = delta_rows(&t, 1);
        assert_eq!(d.as_slice(), &[5, 1, -2, -3, 0, 0]);
    }

    #[test]
    fn stride_two_differences_values_two_apart() {
        let t = Tensor3::from_vec(1, 1, 5, vec![1i16, 2, 3, 4, 5]);
        let d = delta_rows(&t, 2);
        assert_eq!(d.as_slice(), &[1, 2, 2, 2, 2]);
    }

    #[test]
    fn extreme_values_roundtrip() {
        let t = Tensor3::from_vec(1, 1, 4, vec![i16::MAX, i16::MIN, i16::MAX, 0]);
        let d = delta_rows(&t, 1);
        // Deltas exceed 16 bits — that is why the delta domain is i32.
        assert_eq!(d.as_slice()[1], i16::MIN as i32 - i16::MAX as i32);
        assert_eq!(undelta_rows(&d, 1).as_slice(), t.as_slice());
    }

    #[test]
    fn constant_rows_become_all_zero_after_anchor() {
        let t = Tensor3::from_vec(1, 1, 6, vec![7i16; 6]);
        let d = delta_rows(&t, 1);
        assert_eq!(d.as_slice(), &[7, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn anchored_slice_roundtrip() {
        let vs: Vec<i16> = (0..23).map(|v| (v * 31 % 97) as i16 - 40).collect();
        for anchor in [1usize, 2, 5, 16, usize::MAX] {
            let d = delta_slice_anchored(&vs, anchor);
            assert_eq!(undelta_slice_anchored(&d, anchor), vs, "anchor={anchor}");
        }
    }

    #[test]
    fn anchor_every_one_is_identity() {
        let vs = vec![3i16, -4, 5];
        let d = delta_slice_anchored(&vs, 1);
        assert_eq!(d, vec![3, -4, 5]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let t = Tensor3::<i16>::new(1, 1, 1);
        let _ = delta_rows(&t, 0);
    }

    #[test]
    fn wrapping_roundtrip_on_extreme_values() {
        let t = Tensor3::from_vec(1, 1, 5, vec![i16::MAX, i16::MIN, 0, -1, i16::MAX]);
        for stride in 1..=2 {
            let d = delta_rows_wrapping(&t, stride);
            assert_eq!(
                undelta_rows_wrapping(&d, stride).as_slice(),
                t.as_slice(),
                "stride={stride}"
            );
        }
    }

    #[test]
    fn wrapping_equals_exact_for_post_relu_data() {
        // Non-negative values never wrap, so both transforms agree.
        let t = Tensor3::from_vec(1, 2, 4, vec![0i16, 100, 32767, 5, 9, 9, 0, 32000]);
        let wrapped = delta_rows_wrapping(&t, 1);
        let exact = delta_rows(&t, 1);
        for (w, e) in wrapped.iter().zip(exact.iter()) {
            assert_eq!(*w as i32, *e);
        }
    }

    #[test]
    fn row_kernel_matches_naive_definition() {
        let vs: Vec<i16> = (0..37)
            .map(|v| (v * v * 7 - 300) as i16)
            .chain([i16::MIN, i16::MAX, 0, -1])
            .collect();
        for stride in [1usize, 2, 3, 5, 41] {
            let mut got = vec![0i16; vs.len()];
            delta_row_wrapping_into(&vs, stride, &mut got);
            let want: Vec<i16> = (0..vs.len())
                .map(|x| {
                    if x < stride {
                        vs[x]
                    } else {
                        vs[x].wrapping_sub(vs[x - stride])
                    }
                })
                .collect();
            assert_eq!(got, want, "stride={stride}");
        }
    }

    #[test]
    fn wrapping_slice_roundtrip() {
        let vs = vec![i16::MIN, i16::MAX, 0, 17, -17];
        assert_eq!(undelta_slice_wrapping(&delta_slice_wrapping(&vs)), vs);
        assert!(delta_slice_wrapping(&[]).is_empty());
    }
}
