//! MSB-first bit-level serialization used by the storage schemes.

/// Writes values MSB-first into a growing byte buffer.
///
/// # Example
///
/// ```
/// use diffy_encoding::bitstream::{BitWriter, BitReader};
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xFFFF, 16);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the final partial byte (0 = byte-aligned).
    bit_pos: u32,
    bits_written: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `v`, most significant of those first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or if `v` has bits set above `n`.
    pub fn write_bits(&mut self, v: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        assert!(n == 64 || v < (1u128 << n) as u64, "value {v} does not fit in {n} bits");
        for i in (0..n).rev() {
            let bit = ((v >> i) & 1) as u8;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("just pushed");
            *last |= bit << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
        self.bits_written += n as u64;
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bits_written
    }

    /// Finishes, returning the padded byte buffer.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads values MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads the next `n` bits as an unsigned value.
    ///
    /// Returns `None` if fewer than `n` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if self.pos + n as u64 > self.bytes.len() as u64 * 8 {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..n {
            let byte = self.bytes[(self.pos / 8) as usize];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u64;
            self.pos += 1;
        }
        Some(v)
    }

    /// Reads `n` bits and sign-extends them as an `n`-bit two's-complement
    /// value.
    pub fn read_signed(&mut self, n: u32) -> Option<i64> {
        assert!(n >= 1);
        let raw = self.read_bits(n)?;
        let sign_bit = 1u64 << (n - 1);
        Some(if raw & sign_bit != 0 {
            raw as i64 - (1i64 << n)
        } else {
            raw as i64
        })
    }

    /// Number of bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }
}

/// Writes a signed value as `n`-bit two's complement.
///
/// # Panics
///
/// Panics if `v` does not fit in `n` bits.
pub fn write_signed(w: &mut BitWriter, v: i64, n: u32) {
    assert!((1..=63).contains(&n));
    let lo = -(1i64 << (n - 1));
    let hi = (1i64 << (n - 1)) - 1;
    assert!(v >= lo && v <= hi, "{v} does not fit in {n} signed bits");
    let raw = (v as u64) & ((1u64 << n) - 1);
    w.write_bits(raw, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 1);
        w.write_bits(0b1010_1010, 8);
        w.write_bits(12345, 14);
        w.write_bits(u64::MAX, 64);
        assert_eq!(w.bit_len(), 1 + 1 + 8 + 14 + 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1), Some(1));
        assert_eq!(r.read_bits(1), Some(0));
        assert_eq!(r.read_bits(8), Some(0b1010_1010));
        assert_eq!(r.read_bits(14), Some(12345));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn read_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2), Some(3));
        // Padding bits exist up to the byte boundary, but not 9 more bits.
        assert_eq!(r.read_bits(9), None);
    }

    #[test]
    fn signed_roundtrip_all_widths() {
        for n in 1..=17u32 {
            let lo = -(1i64 << (n - 1));
            let hi = (1i64 << (n - 1)) - 1;
            for v in [lo, lo / 2, -1, 0, 1, hi / 2, hi] {
                if v < lo || v > hi {
                    continue;
                }
                let mut w = BitWriter::new();
                write_signed(&mut w, v, n);
                let bytes = w.finish();
                let mut r = BitReader::new(&bytes);
                assert_eq!(r.read_signed(n), Some(v), "n={n} v={v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_bits_rejects_oversized_values() {
        let mut w = BitWriter::new();
        w.write_bits(4, 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_signed_rejects_out_of_range() {
        let mut w = BitWriter::new();
        write_signed(&mut w, 2, 2); // 2-bit signed range is [-2, 1]
    }

    #[test]
    fn zero_width_writes_nothing() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }
}
