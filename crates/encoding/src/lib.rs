//! Value encodings at the heart of Diffy.
//!
//! The paper's central observation is that CI-DNN activations are spatially
//! correlated, so the *deltas* of adjacent activations (a) contain fewer
//! effectual modified-Booth terms — less compute for a term-serial
//! accelerator like PRA — and (b) need fewer bits — less storage and
//! traffic under dynamic per-group precision encoding. This crate implements
//! every encoding the paper measures:
//!
//! * [`booth`] — modified (radix-4) Booth recoding and effectual-term
//!   counting, the quantity PRA's and Diffy's execution time is proportional
//!   to (§II-B, Eq. 2).
//! * [`delta`] — the delta transform along the W axis with row anchoring
//!   and stride awareness (§III-C/D), plus its exact inverse.
//! * [`terms`] — per-tensor term statistics and cumulative distributions
//!   (Fig. 3).
//! * [`precision`] — profile-derived per-layer precisions (Table III) and
//!   Dynamic-Stripes-style per-group precision detection (§III-F).
//! * [`schemes`] — the six storage schemes of Fig. 5/14 (NoCompression,
//!   RLEz, RLE, Profiled, RawD·, DeltaD·) with bit-exact encode/decode and
//!   footprint accounting.
//! * [`bitstream`] — the MSB-first bit-level writer/reader the schemes
//!   serialize through.
//! * [`entropy`] — H(A), H(A|A') and H(Δ) estimators (Fig. 1).


#![warn(missing_docs)]

pub mod bitstream;
pub mod bitplanes;
pub mod booth;
pub mod delta;
pub mod entropy;
pub mod precision;
pub mod schemes;
pub mod terms;

pub use booth::{
    booth_digits, booth_terms, booth_terms_i32, booth_terms_i32_reference, booth_terms_slice,
    booth_terms_slice_swar,
};
pub use delta::{delta_rows, delta_row_wrapping_into, undelta_rows};
pub use schemes::StorageScheme;
