//! Effectual-term counting via canonical signed-power-of-two recoding.
//!
//! PRA (Bit-Pragmatic) processes an activation one *effectual term* at a
//! time: the activation is recoded into a stream of signed powers of two
//! ("oneffsets") after "applying a modified Booth encoding" (§III-B of the
//! Diffy paper), and a cycle is spent per term shifting-and-adding the
//! weight. The number of effectual terms is therefore the execution-time
//! currency of both PRA and Diffy.
//!
//! We use the *non-adjacent form* (NAF) — the canonical signed-digit
//! recoding with digits in `{-1, 0, 1}` and no two adjacent nonzero
//! digits. NAF provably minimizes the number of nonzero signed
//! power-of-two terms, which is exactly the quantity the offset
//! generators produce: e.g. `7 = 8 - 1` (2 terms), `2 = 2` (1 term),
//! `0x00FF = 256 - 1` (2 terms).

use std::sync::OnceLock;

/// Maximum number of effectual terms in a 16-bit value under NAF
/// recoding: ⌈17/2⌉ = 9 (the sign extension can add one digit).
pub const MAX_TERMS_16: u32 = 9;

/// Maximum number of effectual terms of any `i32` (34-bit NAF).
pub const MAX_TERMS_I32: u32 = 17;

/// One term of a recoded value: `±2^exponent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoothTerm {
    /// Bit position of the term: the term's value is `±2^exponent`.
    pub exponent: u8,
    /// `true` if the term is subtracted.
    pub negative: bool,
}

impl BoothTerm {
    /// The signed value `±2^exponent` this term contributes.
    pub fn value(&self) -> i64 {
        let v = 1i64 << self.exponent;
        if self.negative {
            -v
        } else {
            v
        }
    }
}

/// Signed digits of the non-adjacent form of `v`, least significant first.
///
/// Digit `i` has weight `2^i`; every digit is `-1`, `0` or `1`; no two
/// consecutive digits are both nonzero; and `v = Σ digits[i] · 2^i`.
///
/// # Example
///
/// ```
/// use diffy_encoding::booth_digits;
/// // 7 = 8 - 1 -> digits [-1, 0, 0, 1]
/// assert_eq!(booth_digits(7), vec![-1, 0, 0, 1]);
/// ```
pub fn booth_digits(v: i32) -> Vec<i8> {
    let mut x = v as i64;
    let mut digits = Vec::new();
    while x != 0 {
        if x & 1 != 0 {
            // Choose the digit that makes the remainder divisible by 4,
            // guaranteeing the next digit is zero (the NAF property).
            let d = 2 - (x & 3); // x mod 4 == 1 -> +1; == 3 -> -1
            digits.push(d as i8);
            x -= d;
        } else {
            digits.push(0);
        }
        x >>= 1;
    }
    digits
}

/// The effectual terms (signed powers of two) of a signed value, in
/// increasing exponent order.
///
/// # Example
///
/// ```
/// use diffy_encoding::booth::booth_term_stream;
/// let terms = booth_term_stream(7);
/// let sum: i64 = terms.iter().map(|t| t.value()).sum();
/// assert_eq!(sum, 7);
/// assert_eq!(terms.len(), 2); // 7 = 8 - 1
/// ```
pub fn booth_term_stream(v: i32) -> Vec<BoothTerm> {
    booth_digits(v)
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != 0)
        .map(|(i, &d)| BoothTerm { exponent: i as u8, negative: d < 0 })
        .collect()
}

/// Number of effectual terms of a signed 32-bit value (used for deltas
/// wider than 16 bits).
#[inline]
pub fn booth_terms_i32(v: i32) -> u32 {
    let mut x = v as i64;
    let mut n = 0u32;
    while x != 0 {
        if x & 1 != 0 {
            let d = 2 - (x & 3);
            x -= d;
            n += 1;
        }
        x >>= 1;
    }
    n
}

fn terms_table() -> &'static [u8; 65536] {
    static TABLE: OnceLock<Box<[u8; 65536]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([0u8; 65536]);
        for raw in 0..=u16::MAX {
            t[raw as usize] = booth_terms_i32(raw as i16 as i32) as u8;
        }
        t
    })
}

/// Number of effectual terms of a 16-bit activation.
///
/// Backed by a lazily built 64 K-entry lookup table: term counting is the
/// innermost operation of the cycle models, executed once per
/// weight-activation pair.
///
/// # Example
///
/// ```
/// use diffy_encoding::booth_terms;
/// assert_eq!(booth_terms(0), 0);
/// assert_eq!(booth_terms(1), 1);
/// assert_eq!(booth_terms(2), 1);
/// assert_eq!(booth_terms(7), 2);  // 8 - 1
/// assert_eq!(booth_terms(-1), 1);
/// ```
#[inline]
pub fn booth_terms(v: i16) -> u32 {
    terms_table()[v as u16 as usize] as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(digits: &[i8]) -> i64 {
        digits
            .iter()
            .enumerate()
            .map(|(i, &d)| d as i64 * (1i64 << i))
            .sum()
    }

    #[test]
    fn digits_reconstruct_every_i16() {
        for v in i16::MIN..=i16::MAX {
            let d = booth_digits(v as i32);
            assert_eq!(reconstruct(&d), v as i64, "v={v}");
        }
    }

    #[test]
    fn digits_reconstruct_wide_values() {
        for &v in &[i32::MAX, i32::MIN, 65535, -65536, 1 << 20, -(1 << 20) - 7] {
            assert_eq!(reconstruct(&booth_digits(v)), v as i64, "v={v}");
        }
    }

    #[test]
    fn digits_are_nonadjacent_and_ternary() {
        for v in (-70000i32..70000).step_by(7) {
            let d = booth_digits(v);
            for w in d.windows(2) {
                assert!(
                    w[0] == 0 || w[1] == 0,
                    "adjacent nonzero digits for v={v}: {d:?}"
                );
            }
            assert!(d.iter().all(|&x| (-1..=1).contains(&x)));
        }
    }

    #[test]
    fn term_stream_sums_to_value() {
        for v in (-70000i32..70000).step_by(13) {
            let s: i64 = booth_term_stream(v).iter().map(|t| t.value()).sum();
            assert_eq!(s, v as i64, "v={v}");
        }
    }

    #[test]
    fn term_count_matches_stream_length() {
        for v in i16::MIN..=i16::MAX {
            assert_eq!(
                booth_terms(v),
                booth_term_stream(v as i32).len() as u32,
                "v={v}"
            );
        }
    }

    #[test]
    fn sixteen_bit_values_stay_within_max_terms() {
        let max = (i16::MIN..=i16::MAX).map(booth_terms).max().unwrap();
        assert!(max <= MAX_TERMS_16, "max={max}");
        // Alternating bit patterns hit the bound region.
        assert!(booth_terms(0x5555) >= 8);
    }

    #[test]
    fn zero_has_zero_terms() {
        assert_eq!(booth_terms(0), 0);
        assert!(booth_term_stream(0).is_empty());
        assert!(booth_digits(0).is_empty());
    }

    #[test]
    fn powers_of_two_have_one_term() {
        for e in 0..15 {
            assert_eq!(booth_terms(1 << e), 1, "2^{e}");
            assert_eq!(booth_terms(-(1 << e)), 1, "-2^{e}");
        }
        assert_eq!(booth_terms(i16::MIN), 1); // -2^15
    }

    #[test]
    fn recoding_is_minimal_on_known_values() {
        assert_eq!(booth_terms(3), 2); // 4 - 1 or 2 + 1
        assert_eq!(booth_terms(0x00FF), 2); // 256 - 1
        assert_eq!(booth_terms(0x0FFF), 2); // 4096 - 1
        assert_eq!(booth_terms(6), 2); // 8 - 2
        assert_eq!(booth_terms(-6), 2);
    }

    #[test]
    fn small_deltas_have_few_terms() {
        // The premise of differential convolution: values near zero carry
        // few terms.
        for v in -4i16..=4 {
            assert!(booth_terms(v) <= 2, "v={v} terms={}", booth_terms(v));
        }
    }

    #[test]
    fn i32_and_table_agree_on_i16_range() {
        for v in (i16::MIN..=i16::MAX).step_by(37) {
            assert_eq!(booth_terms(v), booth_terms_i32(v as i32));
        }
    }
}
