//! Effectual-term counting via canonical signed-power-of-two recoding.
//!
//! PRA (Bit-Pragmatic) processes an activation one *effectual term* at a
//! time: the activation is recoded into a stream of signed powers of two
//! ("oneffsets") after "applying a modified Booth encoding" (§III-B of the
//! Diffy paper), and a cycle is spent per term shifting-and-adding the
//! weight. The number of effectual terms is therefore the execution-time
//! currency of both PRA and Diffy.
//!
//! We use the *non-adjacent form* (NAF) — the canonical signed-digit
//! recoding with digits in `{-1, 0, 1}` and no two adjacent nonzero
//! digits. NAF provably minimizes the number of nonzero signed
//! power-of-two terms, which is exactly the quantity the offset
//! generators produce: e.g. `7 = 8 - 1` (2 terms), `2 = 2` (1 term),
//! `0x00FF = 256 - 1` (2 terms).
//!
//! # The closed-form term count
//!
//! Counting the nonzero NAF digits does not require materializing the
//! recoding. Write `naf(v)` for the digit vector; the classic identity
//!
//! ```text
//! terms(v) = popcount(v XOR 3·v)
//! ```
//!
//! holds for every two's-complement integer evaluated at sufficient
//! width. Derivation: the NAF digit at position `i` is nonzero exactly
//! when the carry chain of the addition `v + 2v = 3v` flips bit `i`
//! relative to `v`. Formally, with `c` the carry vector of `v + 2v`,
//! bit `i` of `v ⊕ 3v` is `v_i ⊕ (v_i ⊕ 2v_i ⊕ c_i) = 2v_i ⊕ c_i =
//! v_{i-1} ⊕ c_i`, which a short induction shows is `1` precisely at the
//! nonzero-digit positions of the canonical recoding (each nonzero NAF
//! digit `±1` at position `i` corresponds to a run boundary of
//! consecutive ones in `v`, and run boundaries are exactly where `v` and
//! `3v` differ). For negative `v` the sign-extension bits of `v` and
//! `3v` agree, so the XOR is still finite and the identity carries over
//! unchanged. The tests pin this exhaustively over all `i16` and by
//! proptest over `i32` against [`booth_terms_i32_reference`], the
//! original digit-walking loop kept as the correctness anchor.
//!
//! # Lane-parallel counting
//!
//! The per-value closed form is three ALU ops plus a popcount, which
//! lifts directly to lane-parallel form: widen 16-bit values to 32-bit
//! lanes (carry-safe — `|v| ≤ 2^15` so `3|v| < 2^17` never crosses a
//! lane), form `u ⊕ 3u` per lane, and popcount all lanes at once.
//! [`booth_terms_slice`] dispatches to AVX2 (16 lanes, runtime-detected)
//! or SSE2 (8 lanes, the x86-64 baseline) and falls back to a portable
//! two-lane u64 SWAR kernel [`booth_terms_slice_swar`] elsewhere. All
//! paths are asserted byte-identical to the scalar closed form.

use std::ops::Deref;

/// Maximum number of effectual terms in a 16-bit value under NAF
/// recoding: ⌈17/2⌉ = 9 (the sign extension can add one digit).
pub const MAX_TERMS_16: u32 = 9;

/// Maximum number of effectual terms of any `i32` (34-bit NAF).
pub const MAX_TERMS_I32: u32 = 17;

/// Maximum number of NAF digits of any `i32` (the recoding of a 32-bit
/// value can carry one position past the top bit, plus the sign digit).
pub const MAX_NAF_DIGITS: usize = 34;

/// One term of a recoded value: `±2^exponent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoothTerm {
    /// Bit position of the term: the term's value is `±2^exponent`.
    pub exponent: u8,
    /// `true` if the term is subtracted.
    pub negative: bool,
}

impl BoothTerm {
    /// The signed value `±2^exponent` this term contributes.
    pub fn value(&self) -> i64 {
        let v = 1i64 << self.exponent;
        if self.negative {
            -v
        } else {
            v
        }
    }
}

/// The NAF digits of a value in a fixed-capacity inline array — no heap
/// allocation on the recoding path, which the tile emulator executes once
/// per weight-activation fetch. Dereferences to a `[i8]` slice.
#[derive(Debug, Clone, Copy)]
pub struct BoothDigits {
    digits: [i8; MAX_NAF_DIGITS],
    len: u8,
}

impl Deref for BoothDigits {
    type Target = [i8];
    #[inline]
    fn deref(&self) -> &[i8] {
        &self.digits[..self.len as usize]
    }
}

impl PartialEq for BoothDigits {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for BoothDigits {}

impl<'a> IntoIterator for &'a BoothDigits {
    type Item = &'a i8;
    type IntoIter = std::slice::Iter<'a, i8>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The effectual terms of a value in a fixed-capacity inline array (at
/// most [`MAX_TERMS_I32`] = 17 entries) — the allocation-free form of the
/// offset-generator output. Dereferences to a `[BoothTerm]` slice.
#[derive(Debug, Clone, Copy)]
pub struct BoothTermStream {
    terms: [BoothTerm; MAX_TERMS_I32 as usize],
    len: u8,
}

impl Deref for BoothTermStream {
    type Target = [BoothTerm];
    #[inline]
    fn deref(&self) -> &[BoothTerm] {
        &self.terms[..self.len as usize]
    }
}

impl PartialEq for BoothTermStream {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for BoothTermStream {}

impl<'a> IntoIterator for &'a BoothTermStream {
    type Item = &'a BoothTerm;
    type IntoIter = std::slice::Iter<'a, BoothTerm>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Signed digits of the non-adjacent form of `v`, least significant first.
///
/// Digit `i` has weight `2^i`; every digit is `-1`, `0` or `1`; no two
/// consecutive digits are both nonzero; and `v = Σ digits[i] · 2^i`.
/// Returned in a fixed-capacity inline array ([`BoothDigits`]), so the
/// call never allocates.
///
/// # Example
///
/// ```
/// use diffy_encoding::booth_digits;
/// // 7 = 8 - 1 -> digits [-1, 0, 0, 1]
/// assert_eq!(&booth_digits(7)[..], &[-1, 0, 0, 1]);
/// ```
pub fn booth_digits(v: i32) -> BoothDigits {
    let mut x = v as i64;
    let mut out = BoothDigits { digits: [0i8; MAX_NAF_DIGITS], len: 0 };
    while x != 0 {
        if x & 1 != 0 {
            // Choose the digit that makes the remainder divisible by 4,
            // guaranteeing the next digit is zero (the NAF property).
            let d = 2 - (x & 3); // x mod 4 == 1 -> +1; == 3 -> -1
            out.digits[out.len as usize] = d as i8;
            x -= d;
        }
        out.len += 1;
        x >>= 1;
    }
    out
}

/// The effectual terms (signed powers of two) of a signed value, in
/// increasing exponent order, in a fixed-capacity inline array
/// ([`BoothTermStream`]) — no allocation per value.
///
/// # Example
///
/// ```
/// use diffy_encoding::booth::booth_term_stream;
/// let terms = booth_term_stream(7);
/// let sum: i64 = terms.iter().map(|t| t.value()).sum();
/// assert_eq!(sum, 7);
/// assert_eq!(terms.len(), 2); // 7 = 8 - 1
/// ```
pub fn booth_term_stream(v: i32) -> BoothTermStream {
    let mut x = v as i64;
    let mut out = BoothTermStream {
        terms: [BoothTerm { exponent: 0, negative: false }; MAX_TERMS_I32 as usize],
        len: 0,
    };
    let mut e = 0u8;
    while x != 0 {
        if x & 1 != 0 {
            let d = 2 - (x & 3);
            out.terms[out.len as usize] = BoothTerm { exponent: e, negative: d < 0 };
            out.len += 1;
            x -= d;
        }
        e += 1;
        x >>= 1;
    }
    out
}

/// The original digit-walking term counter, kept verbatim as the
/// correctness anchor for the closed-form [`booth_terms_i32`] (exhaustive
/// i16 + proptest i32 equivalence in the tests). Never on a hot path.
pub fn booth_terms_i32_reference(v: i32) -> u32 {
    let mut x = v as i64;
    let mut n = 0u32;
    while x != 0 {
        if x & 1 != 0 {
            let d = 2 - (x & 3);
            x -= d;
            n += 1;
        }
        x >>= 1;
    }
    n
}

/// Number of effectual terms of a signed 32-bit value (used for deltas
/// wider than 16 bits).
///
/// Closed form: `popcount(v XOR 3v)` evaluated at 64-bit width (see the
/// module docs for the derivation); exact for every `i32`.
#[inline]
pub fn booth_terms_i32(v: i32) -> u32 {
    let x = v as i64;
    (x ^ (x * 3)).count_ones()
}

/// Number of effectual terms of a 16-bit activation.
///
/// The innermost operation of the cycle models, executed once per
/// weight-activation pair. Closed form `popcount(v XOR 3v)` at 32-bit
/// width — a handful of ALU ops with no table (the previous 64 K-entry
/// lookup table occupied all of L1 and serialized on loads). For bulk
/// counting use [`booth_terms_slice`], which processes several lanes per
/// instruction.
///
/// # Example
///
/// ```
/// use diffy_encoding::booth_terms;
/// assert_eq!(booth_terms(0), 0);
/// assert_eq!(booth_terms(1), 1);
/// assert_eq!(booth_terms(2), 1);
/// assert_eq!(booth_terms(7), 2);  // 8 - 1
/// assert_eq!(booth_terms(-1), 1);
/// ```
#[inline]
pub fn booth_terms(v: i16) -> u32 {
    let x = v as i32;
    (x ^ (x * 3)).count_ones()
}

/// Per-lane NAF weights of two zero-extended 16-bit values packed in the
/// 32-bit lanes of `x` (payloads in bits 0..16 and 32..48). Returns the
/// counts in bits 0..6 and 32..38.
///
/// Carry safety: after the per-lane absolute value (`|v| ≤ 2^15`, NAF
/// weight is symmetric under negation) the intermediate `3u ≤ 3·2^15 <
/// 2^17` stays inside its 32-bit lane, so the shared shifts and adds of
/// the SWAR popcount never leak significant bits across lanes.
#[inline]
fn naf_weight_lanes2(x: u64) -> u64 {
    const ONES: u64 = 0x0000_0001_0000_0001;
    let sign = (x >> 15) & ONES;
    let mask = (sign << 16).wrapping_sub(sign); // 0xFFFF per negative lane
    let u = (x ^ mask) + sign; // |v| per lane (two's complement in 16 bits)
    let t = u ^ (u + (u << 1)); // u XOR 3u, <= 17 significant bits per lane
    // SWAR popcount; lane payloads are narrow enough that no stage mixes
    // lanes (the masks zero every bit that crosses).
    let t = t - ((t >> 1) & 0x5555_5555_5555_5555);
    let t = (t & 0x3333_3333_3333_3333) + ((t >> 2) & 0x3333_3333_3333_3333);
    let t = (t + (t >> 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    let t = t + (t >> 8);
    let t = t + (t >> 16);
    t & 0x0000_003F_0000_003F
}

/// Portable lane-parallel bulk term counter: two 32-bit lanes per u64,
/// two u64s in flight per iteration (4 values), amortizing one SWAR
/// popcount chain over the lanes. The scalar-u64 fallback of
/// [`booth_terms_slice`] and the cross-check oracle for the SIMD paths.
///
/// # Panics
///
/// Panics if `src` and `dst` differ in length.
pub fn booth_terms_slice_swar(src: &[i16], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
    let mut vals = src.chunks_exact(4);
    let mut outs = dst.chunks_exact_mut(4);
    for (c, o) in (&mut vals).zip(&mut outs) {
        let x02 = (c[0] as u16 as u64) | ((c[2] as u16 as u64) << 32);
        let x13 = (c[1] as u16 as u64) | ((c[3] as u16 as u64) << 32);
        let a = naf_weight_lanes2(x02);
        let b = naf_weight_lanes2(x13);
        o[0] = a as u8;
        o[1] = b as u8;
        o[2] = (a >> 32) as u8;
        o[3] = (b >> 32) as u8;
    }
    for (&v, o) in vals.remainder().iter().zip(outs.into_remainder()) {
        *o = booth_terms(v) as u8;
    }
}

/// SSE2 bulk term counter: 8 values per iteration. SSE2 is part of the
/// x86-64 baseline, so this path needs no runtime detection.
///
/// # Panics
///
/// Panics if `src` and `dst` differ in length.
#[cfg(target_arch = "x86_64")]
#[doc(hidden)]
pub fn booth_terms_slice_sse2(src: &[i16], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
    // SAFETY: SSE2 is unconditionally available on x86_64; pointer
    // arithmetic stays within the equal-length slices.
    unsafe { sse2_kernel(src, dst) }
}

#[cfg(target_arch = "x86_64")]
unsafe fn sse2_kernel(src: &[i16], dst: &mut [u8]) {
    use std::arch::x86_64::*;
    let zero = _mm_setzero_si128();
    let m55 = _mm_set1_epi32(0x5555_5555);
    let m33 = _mm_set1_epi32(0x3333_3333);
    let m0f = _mm_set1_epi32(0x0f0f_0f0f);
    let m3f = _mm_set1_epi32(0x3f);
    // Per-lane popcount of `u XOR 3u` over 4 × u32 lanes.
    let naf_pc = |u: __m128i| -> __m128i {
        let t = _mm_xor_si128(u, _mm_add_epi32(u, _mm_slli_epi32(u, 1)));
        let t = _mm_sub_epi32(t, _mm_and_si128(_mm_srli_epi32(t, 1), m55));
        let t = _mm_add_epi32(_mm_and_si128(t, m33), _mm_and_si128(_mm_srli_epi32(t, 2), m33));
        let t = _mm_and_si128(_mm_add_epi32(t, _mm_srli_epi32(t, 4)), m0f);
        let t = _mm_add_epi32(t, _mm_srli_epi32(t, 8));
        let t = _mm_add_epi32(t, _mm_srli_epi32(t, 16));
        _mm_and_si128(t, m3f)
    };
    let n = src.len() / 8 * 8;
    let mut i = 0;
    while i < n {
        let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
        // |v| as 16-bit magnitudes (i16::MIN maps to 0x8000 = 2^15, which
        // zero-extends correctly below).
        let sgn = _mm_srai_epi16(v, 15);
        let a = _mm_sub_epi16(_mm_xor_si128(v, sgn), sgn);
        // Carry-safe widening to 32-bit lanes.
        let clo = naf_pc(_mm_unpacklo_epi16(a, zero)); // values 0..4
        let chi = naf_pc(_mm_unpackhi_epi16(a, zero)); // values 4..8
        // Counts are <= 9, so the saturating packs are exact.
        let packed = _mm_packus_epi16(_mm_packs_epi32(clo, chi), zero);
        _mm_storel_epi64(dst.as_mut_ptr().add(i) as *mut __m128i, packed);
        i += 8;
    }
    for k in n..src.len() {
        dst[k] = booth_terms(src[k]) as u8;
    }
}

/// AVX2 bulk term counter: 32 values per iteration. Only called after
/// runtime feature detection.
///
/// Unlike the SSE2 kernel this one never widens to 32-bit lanes: `3u`
/// is computed modulo 2^16 inside the 16-bit lanes and the single lost
/// bit — bit 16 of `3u`, which `u < 2^16` cannot touch in the XOR — is
/// recovered exactly as the `mulhi_epu16(u, 3)` carry and added back
/// after a `pshufb` nibble-table popcount of the low 16 bits. Twice the
/// lane density plus the cheaper popcount roughly doubles throughput
/// over the widening SWAR form.
///
/// # Panics
///
/// Panics if `src` and `dst` differ in length, or (in debug builds) if
/// invoked without AVX2 support.
#[cfg(target_arch = "x86_64")]
#[doc(hidden)]
pub fn booth_terms_slice_avx2(src: &[i16], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
    debug_assert!(std::is_x86_feature_detected!("avx2"));
    // SAFETY: callers (and the dispatcher) verify AVX2 via runtime
    // detection; pointer arithmetic stays within the equal-length slices.
    unsafe { avx2_kernel(src, dst) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_kernel(src: &[i16], dst: &mut [u8]) {
    use std::arch::x86_64::*;
    // Per-nibble popcounts for the pshufb table lookup.
    #[rustfmt::skip]
    let nibble_pc = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let m0f = _mm256_set1_epi8(0x0f);
    let ones8 = _mm256_set1_epi8(1);
    let three = _mm256_set1_epi16(3);
    // NAF weight of 16 values in 16-bit lanes: popcount(u ^ 3u) where
    // `u = |v| ≤ 2^15`. The low 16 bits of the XOR live in-lane; the
    // 17th bit equals the carry-out of `3u` (u itself has no bit 16),
    // which `mulhi_epu16` yields exactly since `3u < 2^17`.
    let naf16 = |v: __m256i| -> __m256i {
        let u = _mm256_abs_epi16(v); // |i16::MIN| = 0x8000 = 2^15, correct unsigned
        let t3 = _mm256_add_epi16(u, _mm256_add_epi16(u, u)); // 3u mod 2^16
        let t = _mm256_xor_si256(u, t3);
        let carry = _mm256_mulhi_epu16(u, three); // bit 16 of 3u: 0 or 1
        // Byte-wise popcount via two nibble lookups; the epi16 shift
        // smears bits across byte boundaries but the 0x0f mask drops
        // every smeared bit.
        let lo = _mm256_and_si256(t, m0f);
        let hi = _mm256_and_si256(_mm256_srli_epi16(t, 4), m0f);
        let cnt8 = _mm256_add_epi8(
            _mm256_shuffle_epi8(nibble_pc, lo),
            _mm256_shuffle_epi8(nibble_pc, hi),
        );
        // Pairwise byte sums -> per-16-bit-lane popcount, plus the carry.
        _mm256_add_epi16(_mm256_maddubs_epi16(cnt8, ones8), carry)
    };
    let n = src.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        let c0 = naf16(_mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i));
        let c1 = naf16(_mm256_loadu_si256(src.as_ptr().add(i + 16) as *const __m256i));
        // packus interleaves the two vectors' 128-bit halves; the
        // permute restores storage order. Counts are <= 9, so the
        // saturating pack is exact.
        let packed = _mm256_permute4x64_epi64(_mm256_packus_epi16(c0, c1), 0b11_01_10_00);
        _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, packed);
        i += 32;
    }
    for k in n..src.len() {
        dst[k] = booth_terms(src[k]) as u8;
    }
}

/// Bulk effectual-term counting: `dst[i] = booth_terms(src[i])` for every
/// element, several lanes per instruction.
///
/// Dispatch policy: AVX2 (16 lanes) when the CPU reports it at runtime,
/// else SSE2 (8 lanes, the x86-64 baseline); other architectures use the
/// portable u64 SWAR kernel ([`booth_terms_slice_swar`]). Every path is
/// byte-identical to the scalar closed form — the term-plane builders
/// rely on this for their bit-identity gates.
///
/// # Panics
///
/// Panics if `src` and `dst` differ in length.
pub fn booth_terms_slice(src: &[i16], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") {
            booth_terms_slice_avx2(src, dst)
        } else {
            booth_terms_slice_sse2(src, dst)
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    booth_terms_slice_swar(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(digits: &[i8]) -> i64 {
        digits
            .iter()
            .enumerate()
            .map(|(i, &d)| d as i64 * (1i64 << i))
            .sum()
    }

    #[test]
    fn digits_reconstruct_every_i16() {
        for v in i16::MIN..=i16::MAX {
            let d = booth_digits(v as i32);
            assert_eq!(reconstruct(&d), v as i64, "v={v}");
        }
    }

    #[test]
    fn digits_reconstruct_wide_values() {
        for &v in &[i32::MAX, i32::MIN, 65535, -65536, 1 << 20, -(1 << 20) - 7] {
            assert_eq!(reconstruct(&booth_digits(v)), v as i64, "v={v}");
        }
    }

    #[test]
    fn digits_are_nonadjacent_and_ternary() {
        for v in (-70000i32..70000).step_by(7) {
            let d = booth_digits(v);
            for w in d.windows(2) {
                assert!(
                    w[0] == 0 || w[1] == 0,
                    "adjacent nonzero digits for v={v}: {d:?}"
                );
            }
            assert!(d.iter().all(|&x| (-1..=1).contains(&x)));
        }
    }

    #[test]
    fn term_stream_sums_to_value() {
        for v in (-70000i32..70000).step_by(13) {
            let s: i64 = booth_term_stream(v).iter().map(|t| t.value()).sum();
            assert_eq!(s, v as i64, "v={v}");
        }
    }

    #[test]
    fn term_stream_matches_digit_walk() {
        for v in (-200000i32..200000).step_by(17) {
            let d = booth_digits(v);
            let s = booth_term_stream(v);
            let from_digits: Vec<BoothTerm> = d
                .iter()
                .enumerate()
                .filter(|(_, &x)| x != 0)
                .map(|(i, &x)| BoothTerm { exponent: i as u8, negative: x < 0 })
                .collect();
            assert_eq!(&s[..], &from_digits[..], "v={v}");
        }
    }

    #[test]
    fn term_count_matches_stream_length() {
        for v in i16::MIN..=i16::MAX {
            assert_eq!(
                booth_terms(v),
                booth_term_stream(v as i32).len() as u32,
                "v={v}"
            );
        }
    }

    #[test]
    fn closed_form_matches_reference_exhaustively_on_i16() {
        for v in i16::MIN..=i16::MAX {
            assert_eq!(
                booth_terms(v),
                booth_terms_i32_reference(v as i32),
                "closed form diverged at v={v}"
            );
            assert_eq!(booth_terms(v), booth_terms_i32(v as i32), "v={v}");
        }
    }

    #[test]
    fn closed_form_matches_reference_on_wide_values() {
        for &v in &[
            i32::MAX,
            i32::MIN,
            i32::MIN + 1,
            0x5555_5555,
            0x2AAA_AAAA,
            -0x5555_5555,
            65535,
            -65536,
            1 << 30,
            -(1 << 30) - 1,
        ] {
            assert_eq!(booth_terms_i32(v), booth_terms_i32_reference(v), "v={v}");
        }
    }

    #[test]
    fn sixteen_bit_values_stay_within_max_terms() {
        let max = (i16::MIN..=i16::MAX).map(booth_terms).max().unwrap();
        assert!(max <= MAX_TERMS_16, "max={max}");
        // Alternating bit patterns hit the bound region.
        assert!(booth_terms(0x5555) >= 8);
    }

    #[test]
    fn zero_has_zero_terms() {
        assert_eq!(booth_terms(0), 0);
        assert!(booth_term_stream(0).is_empty());
        assert!(booth_digits(0).is_empty());
    }

    #[test]
    fn powers_of_two_have_one_term() {
        for e in 0..15 {
            assert_eq!(booth_terms(1 << e), 1, "2^{e}");
            assert_eq!(booth_terms(-(1 << e)), 1, "-2^{e}");
        }
        assert_eq!(booth_terms(i16::MIN), 1); // -2^15
    }

    #[test]
    fn recoding_is_minimal_on_known_values() {
        assert_eq!(booth_terms(3), 2); // 4 - 1 or 2 + 1
        assert_eq!(booth_terms(0x00FF), 2); // 256 - 1
        assert_eq!(booth_terms(0x0FFF), 2); // 4096 - 1
        assert_eq!(booth_terms(6), 2); // 8 - 2
        assert_eq!(booth_terms(-6), 2);
    }

    #[test]
    fn small_deltas_have_few_terms() {
        // The premise of differential convolution: values near zero carry
        // few terms.
        for v in -4i16..=4 {
            assert!(booth_terms(v) <= 2, "v={v} terms={}", booth_terms(v));
        }
    }

    #[test]
    fn i32_and_i16_forms_agree_on_i16_range() {
        for v in (i16::MIN..=i16::MAX).step_by(37) {
            assert_eq!(booth_terms(v), booth_terms_i32(v as i32));
        }
    }

    /// Adversarial lane-kernel inputs: saturated, alternating, sign
    /// boundaries, plus a pseudo-random stretch, at lengths that exercise
    /// every tail size of the 4/8/16-lane kernels.
    fn adversarial_inputs() -> Vec<Vec<i16>> {
        let mut cases = vec![
            vec![],
            vec![i16::MIN],
            vec![i16::MAX; 3],
            vec![0x5555u16 as i16; 17],
            vec![0xAAAAu16 as i16; 19],
            vec![-1; 33],
            (i16::MIN..i16::MIN + 40).collect(),
            (i16::MAX - 40..=i16::MAX).collect(),
            (-40..40).collect(),
        ];
        for len in [1usize, 4, 7, 8, 15, 16, 17, 31, 32, 33, 64, 100, 257] {
            cases.push(
                (0..len)
                    .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 43) as i16)
                    .collect(),
            );
        }
        // Alternating extremes stress the abs + widening path.
        cases.push((0..129).map(|i| if i % 2 == 0 { i16::MIN } else { i16::MAX }).collect());
        cases
    }

    #[test]
    fn swar_kernel_matches_scalar() {
        for vals in adversarial_inputs() {
            let mut got = vec![0u8; vals.len()];
            booth_terms_slice_swar(&vals, &mut got);
            let want: Vec<u8> = vals.iter().map(|&v| booth_terms(v) as u8).collect();
            assert_eq!(got, want, "len={}", vals.len());
        }
    }

    #[test]
    fn dispatched_kernel_matches_scalar() {
        for vals in adversarial_inputs() {
            let mut got = vec![0u8; vals.len()];
            booth_terms_slice(&vals, &mut got);
            let want: Vec<u8> = vals.iter().map(|&v| booth_terms(v) as u8).collect();
            assert_eq!(got, want, "len={}", vals.len());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_kernels_match_scalar() {
        for vals in adversarial_inputs() {
            let want: Vec<u8> = vals.iter().map(|&v| booth_terms(v) as u8).collect();
            let mut got = vec![0u8; vals.len()];
            booth_terms_slice_sse2(&vals, &mut got);
            assert_eq!(got, want, "sse2 len={}", vals.len());
            if std::is_x86_feature_detected!("avx2") {
                got.fill(0xFF);
                booth_terms_slice_avx2(&vals, &mut got);
                assert_eq!(got, want, "avx2 len={}", vals.len());
            }
        }
    }

    #[test]
    fn slice_kernel_exhaustive_over_i16() {
        // Every 16-bit value through the dispatched lane kernel in one
        // pass, compared against the reference digit walk.
        let vals: Vec<i16> = (i16::MIN..=i16::MAX).collect();
        let mut got = vec![0u8; vals.len()];
        booth_terms_slice(&vals, &mut got);
        for (&v, &g) in vals.iter().zip(&got) {
            assert_eq!(g as u32, booth_terms_i32_reference(v as i32), "v={v}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn slice_kernel_rejects_mismatched_lengths() {
        let mut dst = [0u8; 3];
        booth_terms_slice(&[1, 2], &mut dst);
    }
}
