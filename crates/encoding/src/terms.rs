//! Per-tensor effectual-term statistics (Fig. 2c and Fig. 3 of the paper).

use crate::booth::{booth_terms, booth_terms_i32, MAX_TERMS_I32};
use diffy_tensor::stats::cumulative_fractions;
use diffy_tensor::Tensor3;

/// Histogram of effectual-term counts over a value population, with the
/// derived statistics the paper reports: average terms per value, sparsity
/// (fraction of zero values — exactly the zero-term fraction) and the
/// cumulative distribution of Fig. 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermStats {
    counts: Vec<u64>,
    total: u64,
    term_sum: u64,
}

impl TermStats {
    /// Creates an empty statistics accumulator.
    pub fn new() -> Self {
        Self { counts: vec![0; MAX_TERMS_I32 as usize + 1], total: 0, term_sum: 0 }
    }

    /// Records one value with `terms` effectual terms.
    pub fn push_terms(&mut self, terms: u32) {
        self.counts[terms as usize] += 1;
        self.total += 1;
        self.term_sum += terms as u64;
    }

    /// Records a 16-bit activation.
    pub fn push_act(&mut self, v: i16) {
        self.push_terms(booth_terms(v));
    }

    /// Records a (possibly 17-bit) delta.
    pub fn push_delta(&mut self, v: i32) {
        self.push_terms(booth_terms_i32(v));
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &TermStats) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.term_sum += other.term_sum;
    }

    /// Number of values recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Total effectual terms across all recorded values.
    pub fn term_total(&self) -> u64 {
        self.term_sum
    }

    /// Average effectual terms per value (0 if empty).
    pub fn mean_terms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.term_sum as f64 / self.total as f64
        }
    }

    /// Fraction of values that are exactly zero (zero Booth terms) — the
    /// paper's activation sparsity.
    pub fn sparsity(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[0] as f64 / self.total as f64
        }
    }

    /// Cumulative fraction of values with at most `i` terms, for
    /// `i = 0..=MAX_TERMS_I32` (the curve of Fig. 3). Empty if no values
    /// were recorded.
    pub fn cdf(&self) -> Vec<f64> {
        cumulative_fractions(&self.counts)
    }

    /// Raw per-term-count histogram.
    pub fn histogram(&self) -> &[u64] {
        &self.counts
    }
}

impl Default for TermStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Term statistics of a raw activation tensor.
pub fn stats_of_acts(t: &Tensor3<i16>) -> TermStats {
    let mut s = TermStats::new();
    for &v in t.iter() {
        s.push_act(v);
    }
    s
}

/// Term statistics of a delta tensor.
pub fn stats_of_deltas(d: &Tensor3<i32>) -> TermStats {
    let mut s = TermStats::new();
    for &v in d.iter() {
        s.push_delta(v);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::delta_rows;

    #[test]
    fn mean_and_sparsity_on_known_values() {
        let t = Tensor3::from_vec(1, 1, 4, vec![0i16, 0, 1, 7]);
        let s = stats_of_acts(&t);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sparsity(), 0.5);
        // terms: 0, 0, 1, 2 -> mean 0.75
        assert!((s.mean_terms() - 0.75).abs() < 1e-12);
        assert_eq!(s.term_total(), 3);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let t = Tensor3::from_vec(1, 1, 5, vec![0i16, 1, 3, 0x5555u16 as i16, -1]);
        let s = stats_of_acts(&t);
        let cdf = s.cdf();
        assert!(cdf.windows(2).all(|w| w[0] <= w[1] + 1e-15));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_union() {
        let a = stats_of_acts(&Tensor3::from_vec(1, 1, 2, vec![1i16, 2]));
        let mut b = stats_of_acts(&Tensor3::from_vec(1, 1, 2, vec![0i16, 7]));
        b.merge(&a);
        let all = stats_of_acts(&Tensor3::from_vec(1, 1, 4, vec![1i16, 2, 0, 7]));
        assert_eq!(b.count(), all.count());
        assert_eq!(b.term_total(), all.term_total());
        assert_eq!(b.histogram(), all.histogram());
    }

    #[test]
    fn correlated_data_has_fewer_delta_terms() {
        // A smooth ramp: deltas are tiny, raw values are large.
        let vals: Vec<i16> = (0..64).map(|x| 1000 + 3 * x as i16).collect();
        let t = Tensor3::from_vec(1, 1, 64, vals);
        let raw = stats_of_acts(&t);
        let del = stats_of_deltas(&delta_rows(&t, 1));
        assert!(
            del.mean_terms() < raw.mean_terms(),
            "delta {} !< raw {}",
            del.mean_terms(),
            raw.mean_terms()
        );
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TermStats::new();
        assert_eq!(s.mean_terms(), 0.0);
        assert_eq!(s.sparsity(), 0.0);
        assert!(s.cdf().is_empty());
    }
}
