//! Activation storage schemes (Figs. 5 and 14 of the paper).
//!
//! Six families are modelled, each with footprint accounting *and* a
//! bit-exact encoder/decoder so tests can prove losslessness:
//!
//! | Scheme          | Paper description |
//! |-----------------|-------------------|
//! | `NoCompression` | every value stored as 16 b |
//! | `Profiled`      | per-layer profile-derived precision (Proteus/Stripes) |
//! | `RawD{g}`       | dynamic precision per group of `g` raw values, 4-bit header |
//! | `DeltaD{g}`     | dynamic precision per group of `g` *delta* values |
//! | `RLEz`          | each nonzero value as 16 b + 4 b distance to the next nonzero |
//! | `RLE`           | each value as 16 b + 4 b run length to the next different value |
//!
//! Rows (one `W`-extent of one channel) are the encoding unit: the delta
//! schemes anchor at the start of each row, matching Diffy's dataflow where
//! the leftmost window of every row is processed raw.

use crate::bitstream::{BitReader, BitWriter};
use crate::delta::{delta_slice_wrapping, undelta_slice_wrapping};
use crate::precision::{group_precision, Signedness, GROUP_HEADER_BITS};
use diffy_tensor::Tensor3;
use std::fmt;

/// Bits per entry of the run-length schemes: a 16-bit value plus a 4-bit
/// distance/run field.
const RLE_ENTRY_BITS: u64 = 20;
/// Maximum distance/run representable in the 4-bit field.
const RLE_MAX_FIELD: u64 = 15;

/// An activation storage scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageScheme {
    /// Fixed 16-bit storage.
    NoCompression,
    /// Profile-derived fixed precision (`bits` per value); values that do
    /// not fit saturate, which is why the profile uses a high quantile.
    Profiled {
        /// Precision in bits (1..=16).
        bits: u32,
    },
    /// Dynamic per-group precision over the raw values.
    RawDynamic {
        /// Group size (the paper studies 8, 16 and 256).
        group: usize,
    },
    /// Dynamic per-group precision over row-anchored wrapping deltas.
    DeltaDynamic {
        /// Group size (the paper studies 16 and 256).
        group: usize,
    },
    /// Run-length encoding keyed on zeros.
    RleZ,
    /// Run-length encoding of repeated values.
    Rle,
}

impl StorageScheme {
    /// `RawD{g}` constructor.
    pub fn raw_d(group: usize) -> Self {
        StorageScheme::RawDynamic { group }
    }

    /// `DeltaD{g}` constructor.
    pub fn delta_d(group: usize) -> Self {
        StorageScheme::DeltaDynamic { group }
    }

    /// Encoded size of one row in bits.
    ///
    /// `signedness` describes the raw value population (deltas are always
    /// treated as signed).
    pub fn row_bits(&self, row: &[i16], signedness: Signedness) -> u64 {
        match *self {
            StorageScheme::NoCompression => 16 * row.len() as u64,
            StorageScheme::Profiled { bits } => bits as u64 * row.len() as u64,
            StorageScheme::RawDynamic { group } => {
                dynamic_bits_i16(row, group, signedness)
            }
            StorageScheme::DeltaDynamic { group } => {
                let ds = delta_slice_wrapping(row);
                dynamic_bits_i16(&ds, group, Signedness::Signed)
            }
            StorageScheme::RleZ => rlez_entries(row) * RLE_ENTRY_BITS,
            StorageScheme::Rle => rle_entries(row) * RLE_ENTRY_BITS,
        }
    }

    /// Encoded size of a whole tensor in bits, encoding each `(c, y)` row
    /// independently.
    pub fn tensor_bits(&self, t: &Tensor3<i16>, signedness: Signedness) -> u64 {
        let s = t.shape();
        let mut total = 0;
        for c in 0..s.c {
            for y in 0..s.h {
                total += self.row_bits(t.row(c, y), signedness);
            }
        }
        total
    }

    /// Encodes one row into `w`.
    ///
    /// # Panics
    ///
    /// Panics if a value cannot be represented (e.g. a negative value with
    /// [`Signedness::Unsigned`], or a `Profiled` precision too small for
    /// exact storage — use [`StorageScheme::row_bits`] for lossy footprint
    /// accounting of profiled storage instead).
    pub fn encode_row(&self, row: &[i16], signedness: Signedness, w: &mut BitWriter) {
        match *self {
            StorageScheme::NoCompression => {
                for &v in row {
                    w.write_bits(v as u16 as u64, 16);
                }
            }
            StorageScheme::Profiled { bits } => {
                for &v in row {
                    encode_fixed(w, v, bits, signedness);
                }
            }
            StorageScheme::RawDynamic { group } => {
                encode_dynamic(w, row, group, signedness);
            }
            StorageScheme::DeltaDynamic { group } => {
                let ds = delta_slice_wrapping(row);
                encode_dynamic(w, &ds, group, Signedness::Signed);
            }
            StorageScheme::RleZ => encode_rlez(w, row),
            StorageScheme::Rle => encode_rle(w, row),
        }
    }

    /// Decodes one row of `len` values from `r`.
    ///
    /// Returns `None` if the stream is exhausted early.
    pub fn decode_row(
        &self,
        r: &mut BitReader<'_>,
        len: usize,
        signedness: Signedness,
    ) -> Option<Vec<i16>> {
        match *self {
            StorageScheme::NoCompression => {
                let mut out = Vec::with_capacity(len);
                for _ in 0..len {
                    out.push(r.read_bits(16)? as u16 as i16);
                }
                Some(out)
            }
            StorageScheme::Profiled { bits } => {
                let mut out = Vec::with_capacity(len);
                for _ in 0..len {
                    out.push(decode_fixed(r, bits, signedness)?);
                }
                Some(out)
            }
            StorageScheme::RawDynamic { group } => decode_dynamic(r, len, group, signedness),
            StorageScheme::DeltaDynamic { group } => {
                let ds = decode_dynamic(r, len, group, Signedness::Signed)?;
                Some(undelta_slice_wrapping(&ds))
            }
            StorageScheme::RleZ => decode_rlez(r, len),
            StorageScheme::Rle => decode_rle(r, len),
        }
    }
}

impl fmt::Display for StorageScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StorageScheme::NoCompression => write!(f, "NoCompression"),
            StorageScheme::Profiled { bits } => write!(f, "Profiled({bits}b)"),
            StorageScheme::RawDynamic { group } => write!(f, "RawD{group}"),
            StorageScheme::DeltaDynamic { group } => write!(f, "DeltaD{group}"),
            StorageScheme::RleZ => write!(f, "RLEz"),
            StorageScheme::Rle => write!(f, "RLE"),
        }
    }
}

fn precision_i16(vs: &[i16], signedness: Signedness) -> u32 {
    let wide: Vec<i32> = vs.iter().map(|&v| v as i32).collect();
    group_precision(&wide, signedness)
}

fn dynamic_bits_i16(vs: &[i16], group: usize, signedness: Signedness) -> u64 {
    assert!(group > 0, "group size must be positive");
    vs.chunks(group)
        .map(|g| GROUP_HEADER_BITS + precision_i16(g, signedness) as u64 * g.len() as u64)
        .sum()
}

fn encode_fixed(w: &mut BitWriter, v: i16, bits: u32, signedness: Signedness) {
    assert!((1..=16).contains(&bits), "precision must be 1..=16 bits");
    match signedness {
        Signedness::Unsigned => {
            assert!(v >= 0, "negative value {v} in unsigned population");
            assert!(
                (v as u32) < (1u32 << bits),
                "value {v} does not fit in {bits} unsigned bits"
            );
            w.write_bits(v as u64, bits);
        }
        Signedness::Signed => {
            let lo = -(1i32 << (bits - 1));
            let hi = (1i32 << (bits - 1)) - 1;
            assert!(
                (v as i32) >= lo && (v as i32) <= hi,
                "value {v} does not fit in {bits} signed bits"
            );
            w.write_bits((v as u16 as u64) & ((1u64 << bits) - 1), bits);
        }
    }
}

fn decode_fixed(r: &mut BitReader<'_>, bits: u32, signedness: Signedness) -> Option<i16> {
    match signedness {
        Signedness::Unsigned => Some(r.read_bits(bits)? as i16),
        Signedness::Signed => Some(r.read_signed(bits)? as i16),
    }
}

fn encode_dynamic(w: &mut BitWriter, vs: &[i16], group: usize, signedness: Signedness) {
    assert!(group > 0, "group size must be positive");
    for g in vs.chunks(group) {
        let p = precision_i16(g, signedness);
        debug_assert!((1..=16).contains(&p));
        w.write_bits((p - 1) as u64, GROUP_HEADER_BITS as u32);
        for &v in g {
            encode_fixed(w, v, p, signedness);
        }
    }
}

fn decode_dynamic(
    r: &mut BitReader<'_>,
    len: usize,
    group: usize,
    signedness: Signedness,
) -> Option<Vec<i16>> {
    assert!(group > 0, "group size must be positive");
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let p = r.read_bits(GROUP_HEADER_BITS as u32)? as u32 + 1;
        let n = group.min(len - out.len());
        for _ in 0..n {
            out.push(decode_fixed(r, p, signedness)?);
        }
    }
    Some(out)
}

/// Number of `(value, distance)` entries RLEz needs for a row.
fn rlez_entries(row: &[i16]) -> u64 {
    let mut entries = 0u64;
    let mut i = 0usize;
    while i < row.len() {
        // Emit one entry for row[i] (zero or not), then absorb up to 15
        // following zeros into its distance field.
        entries += 1;
        let mut skipped = 0u64;
        let mut j = i + 1;
        while j < row.len() && row[j] == 0 && skipped < RLE_MAX_FIELD {
            skipped += 1;
            j += 1;
        }
        i = j;
    }
    entries
}

fn encode_rlez(w: &mut BitWriter, row: &[i16]) {
    let mut i = 0usize;
    while i < row.len() {
        let v = row[i];
        let mut skipped = 0u64;
        let mut j = i + 1;
        while j < row.len() && row[j] == 0 && skipped < RLE_MAX_FIELD {
            skipped += 1;
            j += 1;
        }
        w.write_bits(v as u16 as u64, 16);
        w.write_bits(skipped, 4);
        i = j;
    }
}

fn decode_rlez(r: &mut BitReader<'_>, len: usize) -> Option<Vec<i16>> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let v = r.read_bits(16)? as u16 as i16;
        let skipped = r.read_bits(4)?;
        out.push(v);
        for _ in 0..skipped {
            if out.len() < len {
                out.push(0);
            }
        }
    }
    Some(out)
}

/// Number of `(value, run)` entries RLE needs for a row.
fn rle_entries(row: &[i16]) -> u64 {
    let mut entries = 0u64;
    let mut i = 0usize;
    while i < row.len() {
        let mut run = 1u64;
        while i + (run as usize) < row.len()
            && row[i + run as usize] == row[i]
            && run <= RLE_MAX_FIELD
        {
            run += 1;
        }
        entries += 1;
        i += run as usize;
    }
    entries
}

fn encode_rle(w: &mut BitWriter, row: &[i16]) {
    let mut i = 0usize;
    while i < row.len() {
        let mut run = 1u64;
        while i + (run as usize) < row.len()
            && row[i + run as usize] == row[i]
            && run <= RLE_MAX_FIELD
        {
            run += 1;
        }
        w.write_bits(row[i] as u16 as u64, 16);
        w.write_bits(run - 1, 4);
        i += run as usize;
    }
}

fn decode_rle(r: &mut BitReader<'_>, len: usize) -> Option<Vec<i16>> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let v = r.read_bits(16)? as u16 as i16;
        let run = r.read_bits(4)? + 1;
        for _ in 0..run {
            if out.len() < len {
                out.push(v);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(scheme: StorageScheme, row: &[i16], sign: Signedness) {
        let mut w = BitWriter::new();
        scheme.encode_row(row, sign, &mut w);
        let declared = scheme.row_bits(row, sign);
        assert_eq!(w.bit_len(), declared, "{scheme}: footprint != encoded bits");
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let back = scheme.decode_row(&mut r, row.len(), sign).expect("decode");
        assert_eq!(back, row, "{scheme}: lossy roundtrip");
    }

    #[test]
    fn all_lossless_schemes_roundtrip_unsigned() {
        let row: Vec<i16> = vec![0, 0, 5, 5, 5, 0, 1000, 32767, 0, 0, 0, 0, 3, 3, 9, 12];
        for scheme in [
            StorageScheme::NoCompression,
            StorageScheme::raw_d(8),
            StorageScheme::raw_d(16),
            StorageScheme::raw_d(256),
            StorageScheme::delta_d(16),
            StorageScheme::delta_d(256),
            StorageScheme::RleZ,
            StorageScheme::Rle,
        ] {
            roundtrip(scheme, &row, Signedness::Unsigned);
        }
    }

    #[test]
    fn all_lossless_schemes_roundtrip_signed_extremes() {
        let row: Vec<i16> = vec![i16::MIN, i16::MAX, -1, 0, 1, i16::MAX, i16::MIN, 0];
        for scheme in [
            StorageScheme::NoCompression,
            StorageScheme::raw_d(4),
            StorageScheme::delta_d(4),
            StorageScheme::RleZ,
            StorageScheme::Rle,
        ] {
            roundtrip(scheme, &row, Signedness::Signed);
        }
    }

    #[test]
    fn profiled_roundtrips_when_precision_sufficient() {
        let row: Vec<i16> = vec![0, 255, 17, 128];
        roundtrip(StorageScheme::Profiled { bits: 8 }, &row, Signedness::Unsigned);
        let srow: Vec<i16> = vec![-128, 127, 0, -1];
        roundtrip(StorageScheme::Profiled { bits: 8 }, &srow, Signedness::Signed);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn profiled_panics_on_overflow_in_exact_mode() {
        let mut w = BitWriter::new();
        StorageScheme::Profiled { bits: 4 }.encode_row(&[200], Signedness::Unsigned, &mut w);
    }

    #[test]
    fn rlez_compresses_sparse_rows() {
        let mut row = vec![0i16; 64];
        row[10] = 5;
        row[40] = -3;
        let bits = StorageScheme::RleZ.row_bits(&row, Signedness::Signed);
        assert!(bits < 16 * 64, "RLEz did not compress a sparse row: {bits}");
        roundtrip(StorageScheme::RleZ, &row, Signedness::Signed);
    }

    #[test]
    fn rle_compresses_repeated_values() {
        let row = vec![7i16; 48];
        let bits = StorageScheme::Rle.row_bits(&row, Signedness::Unsigned);
        assert_eq!(bits, 3 * 20); // 48 values, 16 per entry
        roundtrip(StorageScheme::Rle, &row, Signedness::Unsigned);
    }

    #[test]
    fn rlez_dense_rows_expand() {
        // All-nonzero rows cost 20 bits per value > 16.
        let row: Vec<i16> = (1..=32).collect();
        let bits = StorageScheme::RleZ.row_bits(&row, Signedness::Unsigned);
        assert_eq!(bits, 32 * 20);
    }

    #[test]
    fn delta_beats_raw_on_smooth_rows() {
        let row: Vec<i16> = (0..256).map(|x| 20000 + (x as i16)).collect();
        let raw = StorageScheme::raw_d(16).row_bits(&row, Signedness::Unsigned);
        let delta = StorageScheme::delta_d(16).row_bits(&row, Signedness::Unsigned);
        assert!(
            delta < raw / 2,
            "DeltaD16 ({delta}) should be well under half of RawD16 ({raw}) on a smooth ramp"
        );
    }

    #[test]
    fn dynamic_group_boundary_cases() {
        // Row length not divisible by group size.
        let row: Vec<i16> = vec![1, 2, 3, 4, 5];
        roundtrip(StorageScheme::raw_d(2), &row, Signedness::Unsigned);
        roundtrip(StorageScheme::delta_d(2), &row, Signedness::Unsigned);
        // Single-value rows.
        roundtrip(StorageScheme::raw_d(16), &[42], Signedness::Unsigned);
        roundtrip(StorageScheme::delta_d(16), &[42], Signedness::Unsigned);
    }

    #[test]
    fn tensor_bits_sums_rows() {
        let t = Tensor3::from_vec(2, 2, 4, (0..16).collect::<Vec<i16>>());
        let s = StorageScheme::NoCompression;
        assert_eq!(s.tensor_bits(&t, Signedness::Unsigned), 16 * 16);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(StorageScheme::raw_d(16).to_string(), "RawD16");
        assert_eq!(StorageScheme::delta_d(256).to_string(), "DeltaD256");
        assert_eq!(StorageScheme::RleZ.to_string(), "RLEz");
        assert_eq!(StorageScheme::NoCompression.to_string(), "NoCompression");
        assert_eq!(StorageScheme::Profiled { bits: 9 }.to_string(), "Profiled(9b)");
    }

    #[test]
    fn empty_row_is_zero_bits() {
        for scheme in [
            StorageScheme::NoCompression,
            StorageScheme::raw_d(16),
            StorageScheme::delta_d(16),
            StorageScheme::RleZ,
            StorageScheme::Rle,
        ] {
            assert_eq!(scheme.row_bits(&[], Signedness::Unsigned), 0, "{scheme}");
        }
    }
}
