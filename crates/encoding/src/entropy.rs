//! Entropy estimators for Fig. 1 of the paper: the per-network entropy
//! `H(A)` of the activations, the conditional entropy `H(A|A')` given the
//! adjacent-along-X activation, and the entropy `H(Δ)` of the activation
//! deltas.

use diffy_tensor::Tensor3;
use std::collections::HashMap;

/// Accumulates the three entropy measurements of Fig. 1 over any number of
/// activation tensors.
///
/// `H(A)` measures the average information per activation; `H(A|A')` the
/// *new* information in an activation given its left neighbour; `H(Δ)` the
/// information in the delta stream. Spatially correlated imaps show
/// `H(A|A') ≈ H(Δ) < H(A)`.
#[derive(Debug, Clone, Default)]
pub struct EntropyAccumulator {
    value_counts: HashMap<i16, u64>,
    pair_counts: HashMap<(i16, i16), u64>,
    prev_counts: HashMap<i16, u64>,
    delta_counts: HashMap<i32, u64>,
    values: u64,
    pairs: u64,
}

impl EntropyAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one imap: every value feeds `H(A)`, every horizontally
    /// adjacent pair feeds `H(A|A')` and `H(Δ)`.
    pub fn push_tensor(&mut self, t: &Tensor3<i16>) {
        let s = t.shape();
        for c in 0..s.c {
            for y in 0..s.h {
                let row = t.row(c, y);
                for (x, &v) in row.iter().enumerate() {
                    *self.value_counts.entry(v).or_insert(0) += 1;
                    self.values += 1;
                    if x > 0 {
                        let prev = row[x - 1];
                        *self.pair_counts.entry((prev, v)).or_insert(0) += 1;
                        *self.prev_counts.entry(prev).or_insert(0) += 1;
                        *self.delta_counts.entry(v as i32 - prev as i32).or_insert(0) += 1;
                        self.pairs += 1;
                    }
                }
            }
        }
    }

    /// Number of values recorded.
    pub fn count(&self) -> u64 {
        self.values
    }

    /// `H(A)` in bits (0 if empty).
    pub fn h_a(&self) -> f64 {
        entropy_of_counts(self.value_counts.values().copied(), self.values)
    }

    /// `H(A | A')` in bits: `H(A', A) - H(A')` over adjacent pairs.
    pub fn h_a_given_prev(&self) -> f64 {
        if self.pairs == 0 {
            return 0.0;
        }
        let joint = entropy_of_counts(self.pair_counts.values().copied(), self.pairs);
        let prev = entropy_of_counts(self.prev_counts.values().copied(), self.pairs);
        (joint - prev).max(0.0)
    }

    /// `H(Δ)` in bits over adjacent-along-X deltas.
    pub fn h_delta(&self) -> f64 {
        entropy_of_counts(self.delta_counts.values().copied(), self.pairs)
    }
}

fn entropy_of_counts(counts: impl Iterator<Item = u64>, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    let mut h = 0.0;
    for c in counts {
        if c == 0 {
            continue;
        }
        let p = c as f64 / n;
        h -= p * p.log2();
    }
    h
}

/// Entropy (bits/value) of a standalone `i16` sample stream.
pub fn entropy_i16(vs: impl Iterator<Item = i16>) -> f64 {
    let mut counts: HashMap<i16, u64> = HashMap::new();
    let mut total = 0u64;
    for v in vs {
        *counts.entry(v).or_insert(0) += 1;
        total += 1;
    }
    entropy_of_counts(counts.values().copied(), total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_values_have_log2_entropy() {
        let vs = (0..256).map(|v| v as i16);
        let h = entropy_i16(vs);
        assert!((h - 8.0).abs() < 1e-9, "h={h}");
    }

    #[test]
    fn constant_values_have_zero_entropy() {
        assert_eq!(entropy_i16(std::iter::repeat_n(7i16, 100)), 0.0);
    }

    #[test]
    fn conditional_entropy_of_deterministic_sequence_is_zero() {
        // A ramp: the next value is fully determined by the previous one.
        let t = Tensor3::from_vec(1, 1, 64, (0..64).collect::<Vec<i16>>());
        let mut acc = EntropyAccumulator::new();
        acc.push_tensor(&t);
        assert!(acc.h_a() > 0.0);
        assert!(acc.h_a_given_prev() < 1e-9);
        assert!(acc.h_delta() < 1e-9);
    }

    #[test]
    fn conditional_entropy_bounded_by_marginal() {
        // Pseudo-random row: H(A|A') <= H(A) must still hold.
        let vs: Vec<i16> = (0..512).map(|i| ((i * 2654435761u64 as usize) % 97) as i16).collect();
        let t = Tensor3::from_vec(1, 2, 256, vs);
        let mut acc = EntropyAccumulator::new();
        acc.push_tensor(&t);
        assert!(acc.h_a_given_prev() <= acc.h_a() + 1e-9);
    }

    #[test]
    fn correlated_rows_compress_under_delta_entropy() {
        // A slow ramp with small steps: H(Δ) well below H(A).
        let vs: Vec<i16> = (0..1024).map(|i| (i / 4) as i16).collect();
        let t = Tensor3::from_vec(1, 4, 256, vs);
        let mut acc = EntropyAccumulator::new();
        acc.push_tensor(&t);
        assert!(acc.h_delta() < acc.h_a() / 2.0);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = EntropyAccumulator::new();
        assert_eq!(acc.h_a(), 0.0);
        assert_eq!(acc.h_a_given_prev(), 0.0);
        assert_eq!(acc.h_delta(), 0.0);
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn multiple_tensors_accumulate() {
        let a = Tensor3::from_vec(1, 1, 2, vec![0i16, 1]);
        let b = Tensor3::from_vec(1, 1, 2, vec![2i16, 3]);
        let mut acc = EntropyAccumulator::new();
        acc.push_tensor(&a);
        acc.push_tensor(&b);
        assert_eq!(acc.count(), 4);
        assert!((acc.h_a() - 2.0).abs() < 1e-9);
    }
}
