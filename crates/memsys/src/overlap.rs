//! Compute/transfer overlap.
//!
//! Diffy's row-pipelined dataflow processes the windows of one row from
//! on-chip storage while loading the next row of windows and draining the
//! previous row of outputs (§III-F). At layer granularity this is the
//! classic double-buffer bound: a layer takes
//! `max(compute_cycles, transfer_cycles)` and the difference shows up as
//! stall (when memory is slower) or as link idle time (when compute is
//! slower).

use crate::offchip::MemorySystem;
use crate::traffic::LayerTraffic;

/// Execution-time decomposition of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTiming {
    /// Compute cycles (from the cycle model).
    pub compute_cycles: u64,
    /// Cycles the off-chip link needs for this layer's traffic.
    pub memory_cycles: u64,
    /// Total cycles: `max(compute, memory)`.
    pub total_cycles: u64,
    /// Cycles compute sat idle waiting for memory.
    pub stall_cycles: u64,
}

impl LayerTiming {
    /// Fraction of total time spent stalled on memory.
    pub fn stall_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// Combines compute cycles with traffic under the given memory system.
pub fn combine(
    compute_cycles: u64,
    traffic: &LayerTraffic,
    mem: &MemorySystem,
    frequency_ghz: f64,
) -> LayerTiming {
    let memory_cycles = mem.transfer_cycles(traffic.total_bytes(), frequency_ghz);
    let total_cycles = compute_cycles.max(memory_cycles);
    LayerTiming {
        compute_cycles,
        memory_cycles,
        total_cycles,
        stall_cycles: total_cycles - compute_cycles,
    }
}

/// Sums layer timings into network execution time (cycles).
pub fn total_cycles(timings: &[LayerTiming]) -> u64 {
    timings.iter().map(|t| t.total_cycles).sum()
}

/// Frames per second for a per-frame cycle count.
pub fn fps(cycles_per_frame: u64, frequency_ghz: f64) -> f64 {
    if cycles_per_frame == 0 {
        return f64::INFINITY;
    }
    frequency_ghz * 1e9 / cycles_per_frame as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offchip::MemoryNode;

    fn traffic(bytes: u64) -> LayerTraffic {
        LayerTraffic { imap_read_bytes: bytes, omap_write_bytes: 0, weight_bytes: 0 }
    }

    #[test]
    fn compute_bound_layer_has_no_stall() {
        let mem = MemorySystem::single(MemoryNode::Hbm2);
        let t = combine(1_000_000, &traffic(1024), &mem, 1.0);
        assert_eq!(t.total_cycles, 1_000_000);
        assert_eq!(t.stall_cycles, 0);
        assert_eq!(t.stall_fraction(), 0.0);
    }

    #[test]
    fn memory_bound_layer_stalls() {
        let mem = MemorySystem::single(MemoryNode::Lpddr3_1600); // 12.8 B/cyc
        let t = combine(100, &traffic(12_800), &mem, 1.0);
        assert_eq!(t.memory_cycles, 1000);
        assert_eq!(t.total_cycles, 1000);
        assert_eq!(t.stall_cycles, 900);
        assert!((t.stall_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn faster_memory_removes_stalls() {
        let slow = combine(100, &traffic(12_800), &MemorySystem::single(MemoryNode::Lpddr3_1600), 1.0);
        let fast = combine(100, &traffic(12_800), &MemorySystem::single(MemoryNode::Hbm2), 1.0);
        assert!(fast.total_cycles < slow.total_cycles);
        assert_eq!(fast.stall_cycles, 0);
    }

    #[test]
    fn totals_and_fps() {
        let a = LayerTiming { compute_cycles: 10, memory_cycles: 5, total_cycles: 10, stall_cycles: 0 };
        let b = LayerTiming { compute_cycles: 5, memory_cycles: 20, total_cycles: 20, stall_cycles: 15 };
        assert_eq!(total_cycles(&[a, b]), 30);
        assert!((fps(1_000_000, 1.0) - 1000.0).abs() < 1e-9);
        assert!(fps(0, 1.0).is_infinite());
    }
}
