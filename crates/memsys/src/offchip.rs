//! Off-chip memory technologies (Fig. 15 and Fig. 18).
//!
//! The paper sweeps "memory technologies ranging from the now low-end
//! LPDDR3-1600 up to the high-end HBM2"; the scaling study (Fig. 18) adds
//! channel counts and HBM3. Bandwidths are the standard peak transfer
//! rates of each node.

use std::fmt;

/// One off-chip memory technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryNode {
    /// LPDDR3-1600: 12.8 GB/s per channel.
    Lpddr3_1600,
    /// LPDDR3E-2133: 17.1 GB/s per channel.
    Lpddr3e2133,
    /// DDR3-1600: 12.8 GB/s per channel.
    Ddr3_1600,
    /// LPDDR4-3200: 25.6 GB/s per channel.
    Lpddr4_3200,
    /// DDR4-3200: 25.6 GB/s per channel.
    Ddr4_3200,
    /// LPDDR4X-3733: 29.9 GB/s per channel.
    Lpddr4x3733,
    /// LPDDR4X-4267: 34.1 GB/s per channel.
    Lpddr4x4267,
    /// HBM2: 256 GB/s per stack.
    Hbm2,
    /// HBM3: 410 GB/s per stack.
    Hbm3,
}

impl MemoryNode {
    /// The sweep of Fig. 15, low-end to high-end.
    pub const FIG15_SWEEP: [MemoryNode; 6] = [
        MemoryNode::Lpddr3_1600,
        MemoryNode::Lpddr3e2133,
        MemoryNode::Lpddr4_3200,
        MemoryNode::Lpddr4x3733,
        MemoryNode::Lpddr4x4267,
        MemoryNode::Hbm2,
    ];

    /// Peak bandwidth of one channel/stack in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        let gb = match self {
            MemoryNode::Lpddr3_1600 | MemoryNode::Ddr3_1600 => 12.8,
            MemoryNode::Lpddr3e2133 => 17.1,
            MemoryNode::Lpddr4_3200 | MemoryNode::Ddr4_3200 => 25.6,
            MemoryNode::Lpddr4x3733 => 29.9,
            MemoryNode::Lpddr4x4267 => 34.1,
            MemoryNode::Hbm2 => 256.0,
            MemoryNode::Hbm3 => 410.0,
        };
        gb * 1e9
    }

    /// Display name matching the paper's axis labels.
    pub fn name(&self) -> &'static str {
        match self {
            MemoryNode::Lpddr3_1600 => "LPDDR3-1600",
            MemoryNode::Lpddr3e2133 => "LPDDR3E-2133",
            MemoryNode::Ddr3_1600 => "DDR3-1600",
            MemoryNode::Lpddr4_3200 => "LPDDR4-3200",
            MemoryNode::Ddr4_3200 => "DDR4-3200",
            MemoryNode::Lpddr4x3733 => "LPDDR4X-3733",
            MemoryNode::Lpddr4x4267 => "LPDDR4X-4267",
            MemoryNode::Hbm2 => "HBM2",
            MemoryNode::Hbm3 => "HBM3",
        }
    }
}

impl fmt::Display for MemoryNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A memory system: a node plus a channel count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySystem {
    /// The technology node.
    pub node: MemoryNode,
    /// Number of channels (stacks for HBM).
    pub channels: usize,
}

impl MemorySystem {
    /// Single-channel system.
    pub fn single(node: MemoryNode) -> Self {
        Self { node, channels: 1 }
    }

    /// Multi-channel system.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn with_channels(node: MemoryNode, channels: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        Self { node, channels }
    }

    /// Aggregate bandwidth in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.node.bandwidth_bytes_per_sec() * self.channels as f64
    }

    /// Bytes transferable per accelerator cycle at `frequency_ghz`.
    pub fn bytes_per_cycle(&self, frequency_ghz: f64) -> f64 {
        self.bandwidth_bytes_per_sec() / (frequency_ghz * 1e9)
    }

    /// Cycles to transfer `bytes` at `frequency_ghz` (ceiling).
    pub fn transfer_cycles(&self, bytes: u64, frequency_ghz: f64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle(frequency_ghz)).ceil() as u64
    }

    /// An effectively infinite memory (the paper's "Ideal" configuration).
    pub fn ideal() -> Self {
        Self { node: MemoryNode::Hbm3, channels: 1_000_000_000 }
    }
}

impl fmt::Display for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.channels == 1 {
            write!(f, "{}", self.node)
        } else {
            write!(f, "{}x{}", self.node, self.channels)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_ordered_by_bandwidth() {
        let sweep = MemoryNode::FIG15_SWEEP;
        for pair in sweep.windows(2) {
            assert!(
                pair[0].bandwidth_bytes_per_sec() < pair[1].bandwidth_bytes_per_sec(),
                "{} !< {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn bytes_per_cycle_at_one_ghz() {
        let m = MemorySystem::single(MemoryNode::Ddr4_3200);
        assert!((m.bytes_per_cycle(1.0) - 25.6).abs() < 1e-9);
        let dual = MemorySystem::with_channels(MemoryNode::Ddr4_3200, 2);
        assert!((dual.bytes_per_cycle(1.0) - 51.2).abs() < 1e-9);
    }

    #[test]
    fn transfer_cycles_round_up() {
        let m = MemorySystem::single(MemoryNode::Ddr4_3200);
        assert_eq!(m.transfer_cycles(0, 1.0), 0);
        assert_eq!(m.transfer_cycles(1, 1.0), 1);
        assert_eq!(m.transfer_cycles(256, 1.0), 10);
    }

    #[test]
    fn ideal_memory_is_effectively_free() {
        let m = MemorySystem::ideal();
        assert_eq!(m.transfer_cycles(1 << 30, 1.0), 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(MemoryNode::Lpddr4x4267.to_string(), "LPDDR4X-4267");
        assert_eq!(
            MemorySystem::with_channels(MemoryNode::Hbm2, 2).to_string(),
            "HBM2x2"
        );
    }
}
