//! Row-granularity pipeline schedule (§III-F).
//!
//! Diffy "can process the windows of one row from on-chip … while
//! loading the activations for the next row of windows from off-chip
//! memory, while also simultaneously writing the previous row of output
//! activations". That is a three-stage software pipeline at output-row
//! granularity:
//!
//! ```text
//! step r:   load(row r+1)  ||  compute(row r)  ||  store(row r−1)
//! ```
//!
//! The layer-granularity bound in [`crate::overlap`] —
//! `max(total compute, total transfer)` — is exact when rows are
//! uniform; this module schedules the actual per-row quantities, exposing
//! the fill/drain transients and any skew between rows (e.g. a
//! content-dependent compute spike meeting a fixed-bandwidth link).

use crate::offchip::MemorySystem;

/// Per-row resource demands of one layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowSchedule {
    /// Compute cycles to produce each output row.
    pub compute_cycles: Vec<u64>,
    /// Bytes of imap rows that must arrive before each output row can
    /// start (the first entry carries the whole window extent; later
    /// entries carry `stride` fresh rows).
    pub load_bytes: Vec<u64>,
    /// Bytes of omap written per output row.
    pub store_bytes: Vec<u64>,
}

impl RowSchedule {
    /// Builds a uniform schedule: total quantities split evenly over
    /// `rows` (the approximation the layer-granularity model makes).
    pub fn uniform(rows: usize, compute: u64, load: u64, store: u64) -> Self {
        assert!(rows > 0, "need at least one row");
        let split = |total: u64| -> Vec<u64> {
            let base = total / rows as u64;
            let extra = (total % rows as u64) as usize;
            (0..rows).map(|i| base + u64::from(i < extra)).collect()
        };
        Self {
            compute_cycles: split(compute),
            load_bytes: split(load),
            store_bytes: split(store),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.compute_cycles.len()
    }
}

/// Executes the three-stage pipeline and returns total cycles.
///
/// The link is shared by loads and stores (one off-chip channel set), so
/// a step's transfer time is the sum of its load and store, overlapped
/// with its compute.
///
/// # Panics
///
/// Panics if the schedule's vectors disagree in length or are empty.
pub fn pipeline_cycles(sched: &RowSchedule, mem: &MemorySystem, frequency_ghz: f64) -> u64 {
    let n = sched.rows();
    assert!(n > 0, "empty schedule");
    assert_eq!(sched.load_bytes.len(), n, "load rows mismatch");
    assert_eq!(sched.store_bytes.len(), n, "store rows mismatch");

    let xfer = |bytes: u64| mem.transfer_cycles(bytes, frequency_ghz);

    // Step -1: fill (load row 0 alone).
    let mut total = xfer(sched.load_bytes[0]);
    // Steps 0..n: compute r, load r+1, store r-1.
    for r in 0..n {
        let load_next = if r + 1 < n { sched.load_bytes[r + 1] } else { 0 };
        let store_prev = if r > 0 { sched.store_bytes[r - 1] } else { 0 };
        let transfer = xfer(load_next + store_prev);
        total += sched.compute_cycles[r].max(transfer);
    }
    // Drain: store the last row.
    total += xfer(sched.store_bytes[n - 1]);
    total
}

/// The layer-granularity lower bound: `max(Σ compute, Σ transfer)`.
pub fn layer_bound_cycles(sched: &RowSchedule, mem: &MemorySystem, frequency_ghz: f64) -> u64 {
    let compute: u64 = sched.compute_cycles.iter().sum();
    let bytes: u64 =
        sched.load_bytes.iter().sum::<u64>() + sched.store_bytes.iter().sum::<u64>();
    compute.max(mem.transfer_cycles(bytes, frequency_ghz))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offchip::MemoryNode;

    fn mem() -> MemorySystem {
        MemorySystem::single(MemoryNode::Ddr4_3200) // 25.6 B/cycle
    }

    #[test]
    fn uniform_splitting_conserves_totals() {
        let s = RowSchedule::uniform(7, 100, 23, 15);
        assert_eq!(s.compute_cycles.iter().sum::<u64>(), 100);
        assert_eq!(s.load_bytes.iter().sum::<u64>(), 23);
        assert_eq!(s.store_bytes.iter().sum::<u64>(), 15);
        assert_eq!(s.rows(), 7);
    }

    #[test]
    fn compute_bound_pipeline_approaches_pure_compute() {
        // Tiny transfers: pipeline time = compute + fill/drain.
        let s = RowSchedule::uniform(10, 10_000, 100, 100);
        let t = pipeline_cycles(&s, &mem(), 1.0);
        assert!(t >= 10_000);
        assert!(t <= 10_000 + 20, "fill/drain should be tiny: {t}");
    }

    #[test]
    fn memory_bound_pipeline_approaches_link_time() {
        let s = RowSchedule::uniform(10, 100, 256_000, 256_000);
        let t = pipeline_cycles(&s, &mem(), 1.0);
        let link = mem().transfer_cycles(512_000, 1.0);
        assert!(t >= link);
        assert!(t < link + link / 5, "t {t} vs link {link}");
    }

    #[test]
    fn pipeline_never_beats_the_layer_bound() {
        for (c, l, st) in [(1000u64, 5000u64, 2000u64), (50_000, 100, 100), (0, 0, 4096)] {
            let s = RowSchedule::uniform(8, c, l, st);
            let p = pipeline_cycles(&s, &mem(), 1.0);
            let b = layer_bound_cycles(&s, &mem(), 1.0);
            assert!(p >= b, "pipeline {p} < bound {b}");
            // And it is bounded by the fully-serial execution.
            let serial = c + mem().transfer_cycles(l + st, 1.0) + 16; // rounding slack
            assert!(p <= serial, "pipeline {p} > serial {serial}");
        }
    }

    #[test]
    fn skewed_rows_cost_more_than_uniform() {
        // Same totals, but all compute lands in one row: the link idles
        // during the spike and the pipeline pays for it.
        let uniform = RowSchedule::uniform(4, 4000, 102_400, 0);
        let mut skewed = uniform.clone();
        skewed.compute_cycles = vec![4000, 0, 0, 0];
        let tu = pipeline_cycles(&uniform, &mem(), 1.0);
        let ts = pipeline_cycles(&skewed, &mem(), 1.0);
        assert!(ts > tu, "skewed {ts} should exceed uniform {tu}");
    }

    #[test]
    fn single_row_degenerates_to_serial() {
        let s = RowSchedule::uniform(1, 500, 2560, 2560);
        // load (100) + compute 500 + store (100): nothing overlaps.
        assert_eq!(pipeline_cycles(&s, &mem(), 1.0), 100 + 500 + 100);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_schedule_rejected() {
        let _ = RowSchedule::uniform(0, 1, 1, 1);
    }
}
