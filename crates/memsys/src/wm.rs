//! Weight-memory (WM) sizing.
//!
//! §III-F: the WM holds all fmaps processed concurrently, doubled so the
//! next set (same layer or next layer) loads behind the current one. The
//! paper's Table V arrives at 324 KB for the Table I networks — twice
//! FFDNet's 162 KB maximum per-layer filter set — rounded up to 512 KB
//! when provisioned.

use diffy_models::NetworkTrace;

/// WM bytes one network needs: double the largest per-layer filter set.
pub fn network_wm_bytes(trace: &NetworkTrace) -> u64 {
    2 * trace
        .layers
        .iter()
        .map(|l| l.fmaps.len() as u64 * 2)
        .max()
        .unwrap_or(0)
}

/// WM bytes needed across several networks (the shared-accelerator
/// provisioning of Table V).
pub fn fleet_wm_bytes<'a>(traces: impl IntoIterator<Item = &'a NetworkTrace>) -> u64 {
    traces.into_iter().map(network_wm_bytes).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_models::LayerTrace;
    use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

    fn mk_trace(k: usize, c: usize) -> LayerTrace {
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap: Tensor3::<i16>::new(c, 4, 4),
            fmaps: Tensor4::<i16>::new(k, c, 3, 3),
            geom: ConvGeometry::same(3, 3),
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    fn mk_net(layers: Vec<LayerTrace>) -> NetworkTrace {
        NetworkTrace { model: "m".into(), layers, output: Tensor3::<i16>::new(1, 1, 1) }
    }

    #[test]
    fn doubles_the_largest_layer() {
        let net = mk_net(vec![mk_trace(8, 4), mk_trace(16, 8)]);
        // Largest: 16*8*9 weights * 2 B = 2304 B; doubled = 4608.
        assert_eq!(network_wm_bytes(&net), 2 * 16 * 8 * 9 * 2);
    }

    #[test]
    fn fleet_takes_max_over_networks() {
        let a = mk_net(vec![mk_trace(8, 4)]);
        let b = mk_net(vec![mk_trace(16, 16)]);
        assert_eq!(fleet_wm_bytes([&a, &b]), network_wm_bytes(&b));
        assert_eq!(fleet_wm_bytes(std::iter::empty::<&NetworkTrace>()), 0);
    }

    #[test]
    fn ffdnet_shaped_layer_gives_paper_wm() {
        // 96 filters x 96 channels x 3x3 x 2 B = 162 KB; doubled = 324 KB.
        let net = mk_net(vec![mk_trace(96, 96)]);
        assert_eq!(network_wm_bytes(&net), 331_776);
    }
}
