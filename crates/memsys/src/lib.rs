//! The memory system: on-chip buffer sizing, off-chip memory nodes and
//! traffic accounting (§III-F, Table V, Figs. 5/14/15/18).
//!
//! Diffy's off-chip strategy reads each weight and input activation once
//! per layer and writes each output activation at most once per layer,
//! double-buffering row-granular tiles so compute overlaps transfers:
//!
//! * [`offchip`] — the memory technologies of Fig. 15/18 (LPDDR3-1600 up
//!   to HBM2/HBM3, multi-channel) and their bandwidths.
//! * [`traffic`] — per-layer off-chip traffic under every storage scheme,
//!   including the group headers (the "metadata" the paper accounts for).
//! * [`am`] — activation-memory sizing: two complete rows of windows plus
//!   two output rows, measured on the actual (compressed) trace data —
//!   the Table V comparison.
//! * [`wm`] — weight-memory sizing: double-buffered largest per-layer
//!   filter set.
//! * [`overlap`] — the compute/transfer overlap model that turns compute
//!   cycles + traffic into execution time and stall counts.
//! * [`dataflow`] — the finer row-granularity three-stage pipeline
//!   (load next / compute current / store previous) behind that bound.
//! * [`onchip`] — the dispatcher's AM read-bandwidth demand: how delta
//!   storage boosts the effective capacity of the on-chip link.


#![warn(missing_docs)]

pub mod am;
pub mod dataflow;
pub mod offchip;
pub mod onchip;
pub mod overlap;
pub mod traffic;
pub mod wm;

pub use offchip::{MemoryNode, MemorySystem};
pub use overlap::{combine, LayerTiming};
pub use traffic::{layer_traffic, network_traffic, LayerTraffic};
