//! Off-chip traffic accounting per layer and storage scheme.
//!
//! Diffy's dataflow (§III-F) reads each weight and input activation once
//! per layer and writes each output activation once, so per-layer traffic
//! is the encoded imap size (read) plus the encoded omap size (write)
//! plus the raw weight bytes. Group headers are included — these are the
//! "metadata" Fig. 14 says must be taken into account.

use diffy_encoding::precision::Signedness;
use diffy_encoding::StorageScheme;
use diffy_models::{LayerTrace, NetworkTrace};
use diffy_tensor::Tensor3;

/// Off-chip traffic of one layer, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerTraffic {
    /// Encoded imap read.
    pub imap_read_bytes: u64,
    /// Encoded omap write.
    pub omap_write_bytes: u64,
    /// Weights read (always raw 16-bit; fmaps are small and reused).
    pub weight_bytes: u64,
}

impl LayerTraffic {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.imap_read_bytes + self.omap_write_bytes + self.weight_bytes
    }

    /// Activation-only bytes (the quantity Figs. 5 and 14 normalize).
    pub fn activation_bytes(&self) -> u64 {
        self.imap_read_bytes + self.omap_write_bytes
    }
}

/// Signedness of a tensor's population, detected from its values.
pub fn tensor_signedness(t: &Tensor3<i16>) -> Signedness {
    if t.iter().any(|&v| v < 0) {
        Signedness::Signed
    } else {
        Signedness::Unsigned
    }
}

/// Encoded size of a tensor under a scheme, in bytes (rounded up).
pub fn encoded_bytes(t: &Tensor3<i16>, scheme: StorageScheme) -> u64 {
    scheme.tensor_bits(t, tensor_signedness(t)).div_ceil(8)
}

/// Traffic of one layer: imap read + omap write + weights, under the
/// given activation storage scheme.
pub fn layer_traffic(trace: &LayerTrace, omap: &Tensor3<i16>, scheme: StorageScheme) -> LayerTraffic {
    LayerTraffic {
        imap_read_bytes: encoded_bytes(&trace.imap, scheme),
        omap_write_bytes: encoded_bytes(omap, scheme),
        weight_bytes: trace.fmaps.len() as u64 * 2,
    }
}

/// Per-layer traffic of a whole network trace.
pub fn network_traffic(trace: &NetworkTrace, scheme: StorageScheme) -> Vec<LayerTraffic> {
    trace
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| layer_traffic(l, trace.omap(i), scheme))
        .collect()
}

/// Per-layer traffic where the `Profiled` scheme derives its per-layer
/// precision from the layer's own activation population (the per-layer
/// profiling of Table III). For other schemes this equals
/// [`network_traffic`].
pub fn network_traffic_profiled(trace: &NetworkTrace, quantile: f64) -> Vec<LayerTraffic> {
    use diffy_encoding::precision::profiled_precision;
    use diffy_tensor::stats::MagnitudeHistogram;
    trace
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let scheme_for = |t: &Tensor3<i16>| {
                let mut h = MagnitudeHistogram::new();
                h.extend_from_slice(t.as_slice());
                StorageScheme::Profiled {
                    bits: profiled_precision(&h, tensor_signedness(t), quantile),
                }
            };
            let omap = trace.omap(i);
            LayerTraffic {
                imap_read_bytes: encoded_bytes(&l.imap, scheme_for(&l.imap)),
                omap_write_bytes: encoded_bytes(omap, scheme_for(omap)),
                weight_bytes: l.fmaps.len() as u64 * 2,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_tensor::{ConvGeometry, Tensor4};

    fn mk_trace(imap: Tensor3<i16>) -> LayerTrace {
        let c = imap.shape().c;
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap,
            fmaps: Tensor4::<i16>::filled(4, c, 3, 3, 1),
            geom: ConvGeometry::same(3, 3),
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    fn smooth_imap() -> Tensor3<i16> {
        let data: Vec<i16> = (0..4 * 8 * 32)
            .map(|i| 500 + ((i % 32) as i16) * 2)
            .collect();
        Tensor3::from_vec(4, 8, 32, data)
    }

    #[test]
    fn no_compression_is_two_bytes_per_value() {
        let t = mk_trace(smooth_imap());
        let omap = Tensor3::<i16>::filled(4, 8, 32, 3);
        let tr = layer_traffic(&t, &omap, StorageScheme::NoCompression);
        assert_eq!(tr.imap_read_bytes, (4 * 8 * 32) * 2);
        assert_eq!(tr.omap_write_bytes, (4 * 8 * 32) * 2);
        assert_eq!(tr.weight_bytes, (4 * 4 * 9) * 2);
        assert_eq!(tr.total_bytes(), tr.activation_bytes() + tr.weight_bytes);
    }

    #[test]
    fn delta_scheme_beats_raw_on_smooth_data() {
        let t = mk_trace(smooth_imap());
        let omap = smooth_imap();
        let raw = layer_traffic(&t, &omap, StorageScheme::raw_d(16));
        let delta = layer_traffic(&t, &omap, StorageScheme::delta_d(16));
        assert!(delta.activation_bytes() < raw.activation_bytes());
    }

    #[test]
    fn signedness_detection() {
        assert_eq!(
            tensor_signedness(&Tensor3::from_vec(1, 1, 2, vec![0i16, 5])),
            Signedness::Unsigned
        );
        assert_eq!(
            tensor_signedness(&Tensor3::from_vec(1, 1, 2, vec![0i16, -5])),
            Signedness::Signed
        );
    }

    #[test]
    fn network_traffic_uses_next_imap_as_omap() {
        let l0 = mk_trace(smooth_imap());
        let l1 = mk_trace(Tensor3::<i16>::filled(4, 8, 32, 9));
        let out = Tensor3::<i16>::filled(4, 8, 32, 1);
        let nt = NetworkTrace { model: "m".into(), layers: vec![l0, l1], output: out };
        let traffic = network_traffic(&nt, StorageScheme::NoCompression);
        assert_eq!(traffic.len(), 2);
        // Layer 0 writes layer 1's imap.
        assert_eq!(traffic[0].omap_write_bytes, (4 * 8 * 32) * 2);
    }

    #[test]
    fn profiled_traffic_is_below_no_compression() {
        let l0 = mk_trace(smooth_imap());
        let out = smooth_imap();
        let nt = NetworkTrace { model: "m".into(), layers: vec![l0], output: out };
        let profiled = network_traffic_profiled(&nt, 0.999);
        let none = network_traffic(&nt, StorageScheme::NoCompression);
        // Values max out near 563 -> 11 unsigned bits < 16.
        assert!(profiled[0].activation_bytes() < none[0].activation_bytes());
    }
}
