//! On-chip link bandwidth: what the dispatcher must pull out of the AM.
//!
//! The paper's delta storage does not only shrink the AM (Table V) — it
//! "boost[s] the effective capacity of on- and off-chip storage and
//! communication links". This module quantifies the *link* half of that
//! claim: the dispatcher feeds 16 columns × 16 lanes from the AM, and
//! the bits it must read per compute cycle scale with the storage
//! scheme's bits-per-value. A faster architecture (fewer cycles for the
//! same fetches) needs *more* bits per cycle, so compression is what
//! keeps a sped-up Diffy inside a fixed AM read width.

use diffy_encoding::StorageScheme;
use diffy_models::LayerTrace;

use crate::traffic::tensor_signedness;

/// Dispatcher demand on the AM read port for one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatcherDemand {
    /// Activation values fetched from the AM over the layer (each brick
    /// is fetched once per pallet and reused across the 16 windows).
    pub values_fetched: u64,
    /// Average encoded bits per value under the scheme.
    pub mean_bits_per_value: f64,
    /// Average AM read bits per compute cycle.
    pub bits_per_cycle: f64,
}

/// Computes the dispatcher's AM read demand for a layer executed in
/// `compute_cycles` under `scheme`.
///
/// Fetch accounting: every `(channel, j, i)` element of every window is
/// consumed once, amortized over the `windows` concurrent columns that
/// share each fetched brick (the paper's 16-window pallet reuse).
///
/// # Panics
///
/// Panics if `compute_cycles == 0` or `windows == 0`.
pub fn dispatcher_demand(
    trace: &LayerTrace,
    scheme: StorageScheme,
    compute_cycles: u64,
    windows: usize,
) -> DispatcherDemand {
    assert!(compute_cycles > 0, "layer must take at least one cycle");
    assert!(windows > 0, "need at least one window column");
    let out = trace.out_shape();
    let f = trace.fmaps.shape();
    let per_window = (f.c * f.h * f.w) as u64;
    let values_fetched =
        (out.h * out.w) as u64 * per_window / windows as u64;

    let sign = tensor_signedness(&trace.imap);
    let total_bits = scheme.tensor_bits(&trace.imap, sign) as f64;
    let mean_bits = total_bits / trace.imap.len().max(1) as f64;

    DispatcherDemand {
        values_fetched,
        mean_bits_per_value: mean_bits,
        bits_per_cycle: values_fetched as f64 * mean_bits / compute_cycles as f64,
    }
}

/// Effective link-capacity boost of a scheme over 16-bit storage: how
/// many more values the same physical read width delivers per cycle.
pub fn link_capacity_boost(demand: &DispatcherDemand) -> f64 {
    16.0 / demand.mean_bits_per_value.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_models::LayerTrace;
    use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

    fn smooth_trace() -> LayerTrace {
        let data: Vec<i16> = (0..8 * 8 * 32).map(|i| 700 + (i % 32) as i16).collect();
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap: Tensor3::from_vec(8, 8, 32, data),
            fmaps: Tensor4::<i16>::filled(8, 8, 3, 3, 1),
            geom: ConvGeometry::same(3, 3),
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    #[test]
    fn fetch_accounting_divides_by_window_reuse() {
        let t = smooth_trace();
        let d = dispatcher_demand(&t, StorageScheme::NoCompression, 1000, 16);
        // 8x32 windows x 8x3x3 per window / 16-way reuse.
        assert_eq!(d.values_fetched, (8 * 32 * 8 * 9 / 16) as u64);
        assert!((d.mean_bits_per_value - 16.0).abs() < 1e-9);
    }

    #[test]
    fn delta_storage_cuts_link_demand() {
        let t = smooth_trace();
        let none = dispatcher_demand(&t, StorageScheme::NoCompression, 1000, 16);
        let delta = dispatcher_demand(&t, StorageScheme::delta_d(16), 1000, 16);
        assert!(delta.bits_per_cycle < none.bits_per_cycle / 2.0);
        assert!(link_capacity_boost(&delta) > 2.0);
        assert!((link_capacity_boost(&none) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_without_compression_raises_bits_per_cycle() {
        // The motivating interaction: halve the cycles (a faster
        // architecture) and the uncompressed link demand doubles —
        // compression is what keeps it inside a fixed read width.
        let t = smooth_trace();
        let slow = dispatcher_demand(&t, StorageScheme::NoCompression, 2000, 16);
        let fast = dispatcher_demand(&t, StorageScheme::NoCompression, 1000, 16);
        assert!((fast.bits_per_cycle / slow.bits_per_cycle - 2.0).abs() < 1e-9);
        let fast_delta = dispatcher_demand(&t, StorageScheme::delta_d(16), 1000, 16);
        assert!(fast_delta.bits_per_cycle < slow.bits_per_cycle);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycles_rejected() {
        let t = smooth_trace();
        let _ = dispatcher_demand(&t, StorageScheme::NoCompression, 0, 16);
    }
}
