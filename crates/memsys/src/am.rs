//! Activation-memory (AM) sizing — the Table V study.
//!
//! §III-F: "the AM is sized to accommodate enough input rows to fit two
//! complete rows of windows plus two output rows", enabling the
//! read-next / compute-current / write-previous pipeline. A row of
//! windows needs the filter's effective vertical extent of imap rows;
//! advancing to the next row of windows adds `stride` rows. The required
//! capacity is measured on the *actual encoded* trace data, so compressed
//! schemes shrink the AM (or boost its effective capacity).

use crate::traffic::tensor_signedness;
use diffy_encoding::precision::Signedness;
use diffy_encoding::StorageScheme;
use diffy_models::{LayerTrace, NetworkTrace};
use diffy_tensor::Tensor3;

/// Encoded bits of each spatial row (summed over channels) of a tensor.
fn per_row_bits(t: &Tensor3<i16>, scheme: StorageScheme, sign: Signedness) -> Vec<u64> {
    let s = t.shape();
    let mut rows = vec![0u64; s.h];
    for c in 0..s.c {
        for (y, slot) in rows.iter_mut().enumerate() {
            *slot += scheme.row_bits(t.row(c, y), sign);
        }
    }
    rows
}

/// Largest sum over any `window` consecutive entries.
fn max_window_sum(rows: &[u64], window: usize) -> u64 {
    if rows.is_empty() || window == 0 {
        return 0;
    }
    let w = window.min(rows.len());
    let mut sum: u64 = rows[..w].iter().sum();
    let mut best = sum;
    for i in w..rows.len() {
        sum += rows[i];
        sum -= rows[i - w];
        best = best.max(sum);
    }
    best
}

/// AM bits one layer needs under `scheme`: two complete rows of windows
/// of the imap plus two rows of the omap.
pub fn layer_am_bits(trace: &LayerTrace, omap: &Tensor3<i16>, scheme: StorageScheme) -> u64 {
    let geom = trace.geom;
    let extent = geom.effective_extent(trace.fmaps.shape().h);
    let imap_rows_needed = extent + geom.stride;
    let isign = tensor_signedness(&trace.imap);
    let irows = per_row_bits(&trace.imap, scheme, isign);
    let imap_bits = max_window_sum(&irows, imap_rows_needed);

    let osign = tensor_signedness(omap);
    let orows = per_row_bits(omap, scheme, osign);
    let omap_bits = max_window_sum(&orows, 2);

    imap_bits + omap_bits
}

/// AM bits a network needs: the maximum over its layers.
pub fn network_am_bits(trace: &NetworkTrace, scheme: StorageScheme) -> u64 {
    trace
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| layer_am_bits(l, trace.omap(i), scheme))
        .max()
        .unwrap_or(0)
}

/// Rounds a byte count up to the next power of two, as the paper does
/// when provisioning physical SRAM.
pub fn round_up_pow2(bytes: u64) -> u64 {
    bytes.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_tensor::{ConvGeometry, Tensor4};

    fn mk_trace(imap: Tensor3<i16>, f: usize, geom: ConvGeometry) -> LayerTrace {
        let c = imap.shape().c;
        LayerTrace {
            name: "t".into(),
            index: 0,
            imap,
            fmaps: Tensor4::<i16>::filled(2, c, f, f, 1),
            geom,
            relu: true,
            requant_shift: 12,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    #[test]
    fn uncompressed_am_matches_closed_form() {
        // 3x3 stride-1 filter: 4 imap rows + 2 omap rows.
        let imap = Tensor3::<i16>::filled(2, 8, 10, 5);
        let omap = Tensor3::<i16>::filled(2, 8, 10, 5);
        let t = mk_trace(imap, 3, ConvGeometry::same(3, 3));
        let bits = layer_am_bits(&t, &omap, StorageScheme::NoCompression);
        assert_eq!(bits, (4 * 2 * 10 + 2 * 2 * 10) * 16);
    }

    #[test]
    fn dilation_widens_the_window_row_requirement() {
        let imap = Tensor3::<i16>::filled(1, 12, 10, 5);
        let omap = Tensor3::<i16>::filled(1, 12, 10, 5);
        let dense = mk_trace(imap.clone(), 3, ConvGeometry::same(3, 3));
        let dilated = mk_trace(imap, 3, ConvGeometry::same_dilated(3, 4));
        let s = StorageScheme::NoCompression;
        // extent 3 + 1 = 4 rows vs extent 9 + 1 = 10 rows (plus 2 omap
        // rows each): exactly double here.
        assert!(layer_am_bits(&dilated, &omap, s) >= layer_am_bits(&dense, &omap, s) * 2);
    }

    #[test]
    fn delta_scheme_shrinks_am_on_smooth_rows() {
        let data: Vec<i16> = (0..2 * 8 * 64).map(|i| 2000 + (i % 64) as i16).collect();
        let imap = Tensor3::from_vec(2, 8, 64, data.clone());
        let omap = Tensor3::from_vec(2, 8, 64, data);
        let t = mk_trace(imap, 3, ConvGeometry::same(3, 3));
        let none = layer_am_bits(&t, &omap, StorageScheme::NoCompression);
        let delta = layer_am_bits(&t, &omap, StorageScheme::delta_d(16));
        assert!(delta * 2 < none, "delta {delta} vs none {none}");
    }

    #[test]
    fn network_takes_max_over_layers() {
        let small = mk_trace(Tensor3::<i16>::filled(1, 6, 6, 3), 3, ConvGeometry::same(3, 3));
        let big = mk_trace(Tensor3::<i16>::filled(8, 6, 32, 3), 3, ConvGeometry::same(3, 3));
        let out = Tensor3::<i16>::filled(1, 6, 6, 3);
        let nt = NetworkTrace {
            model: "m".into(),
            layers: vec![small.clone(), big.clone()],
            output: out.clone(),
        };
        let s = StorageScheme::NoCompression;
        let net = network_am_bits(&nt, s);
        let l1 = layer_am_bits(&big, &out, s);
        assert_eq!(net, l1.max(layer_am_bits(&small, &big.imap, s)));
    }

    #[test]
    fn max_window_sum_slides_correctly() {
        assert_eq!(max_window_sum(&[1, 5, 2, 8, 1], 2), 10);
        assert_eq!(max_window_sum(&[1, 5], 4), 6);
        assert_eq!(max_window_sum(&[], 3), 0);
    }

    #[test]
    fn pow2_rounding() {
        assert_eq!(round_up_pow2(1000), 1024);
        assert_eq!(round_up_pow2(1024), 1024);
        assert_eq!(round_up_pow2(348 * 1024), 512 * 1024);
    }
}
