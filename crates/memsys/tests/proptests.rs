//! Property tests for the memory system.

use diffy_encoding::precision::Signedness;
use diffy_encoding::StorageScheme;
use diffy_memsys::dataflow::{layer_bound_cycles, pipeline_cycles, RowSchedule};
use diffy_memsys::offchip::{MemoryNode, MemorySystem};
use diffy_memsys::overlap::combine;
use diffy_memsys::traffic::LayerTraffic;
use proptest::prelude::*;

fn mem() -> MemorySystem {
    MemorySystem::single(MemoryNode::Ddr4_3200)
}

proptest! {
    #[test]
    fn overlap_total_is_max_of_parts(compute in 0u64..1_000_000, bytes in 0u64..10_000_000) {
        let traffic = LayerTraffic { imap_read_bytes: bytes, omap_write_bytes: 0, weight_bytes: 0 };
        let t = combine(compute, &traffic, &mem(), 1.0);
        prop_assert_eq!(t.total_cycles, t.compute_cycles.max(t.memory_cycles));
        prop_assert_eq!(t.stall_cycles, t.total_cycles - t.compute_cycles);
        prop_assert!(t.stall_fraction() >= 0.0 && t.stall_fraction() <= 1.0);
    }

    #[test]
    fn pipeline_between_bound_and_serial(
        rows in 1usize..12,
        compute in 0u64..100_000,
        load in 0u64..1_000_000,
        store in 0u64..1_000_000,
    ) {
        let s = RowSchedule::uniform(rows, compute, load, store);
        let p = pipeline_cycles(&s, &mem(), 1.0);
        let bound = layer_bound_cycles(&s, &mem(), 1.0);
        prop_assert!(p >= bound, "pipeline {p} < bound {bound}");
        // Fully serial upper bound, with per-row rounding slack.
        let serial = compute
            + mem().transfer_cycles(load, 1.0)
            + mem().transfer_cycles(store, 1.0)
            + 3 * rows as u64;
        prop_assert!(p <= serial, "pipeline {p} > serial {serial}");
    }

    #[test]
    fn more_bandwidth_never_slows_a_schedule(
        rows in 1usize..8,
        compute in 0u64..50_000,
        load in 0u64..500_000,
    ) {
        let s = RowSchedule::uniform(rows, compute, load, load / 2);
        let slow = pipeline_cycles(&s, &MemorySystem::single(MemoryNode::Lpddr3_1600), 1.0);
        let fast = pipeline_cycles(&s, &MemorySystem::single(MemoryNode::Hbm2), 1.0);
        prop_assert!(fast <= slow);
    }

    #[test]
    fn scheme_bits_bounded_by_values(
        row in proptest::collection::vec(0i16..=i16::MAX, 1..64),
    ) {
        // Every scheme's footprint is positive and RLE-family footprints
        // are bounded by 20 bits/value; dynamic by 16n + headers.
        let n = row.len() as u64;
        for scheme in [
            StorageScheme::raw_d(16),
            StorageScheme::delta_d(16),
            StorageScheme::RleZ,
            StorageScheme::Rle,
        ] {
            let bits = scheme.row_bits(&row, Signedness::Unsigned);
            prop_assert!(bits > 0);
            prop_assert!(bits <= 20 * n + 4 * n.div_ceil(16) + 4, "{scheme}: {bits}");
        }
    }
}
