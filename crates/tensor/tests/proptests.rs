//! Property-based tests for the tensor substrate.

use diffy_tensor::fixed::{signed_bits, unsigned_bits};
use diffy_tensor::ops::{relu, space_to_depth, sparsity};
use diffy_tensor::{conv2d, sat16, ConvGeometry, Quantizer, Tensor3, Tensor4};
use proptest::prelude::*;

fn small_tensor3() -> impl Strategy<Value = Tensor3<i16>> {
    (1usize..=3, 1usize..=6, 1usize..=6).prop_flat_map(|(c, h, w)| {
        proptest::collection::vec(any::<i16>(), c * h * w)
            .prop_map(move |data| Tensor3::from_vec(c, h, w, data))
    })
}

proptest! {
    #[test]
    fn sat16_is_identity_in_range(v in (i16::MIN as i64)..=(i16::MAX as i64)) {
        prop_assert_eq!(sat16(v) as i64, v);
    }

    #[test]
    fn sat16_never_exceeds_range(v in any::<i64>()) {
        let s = sat16(v) as i64;
        prop_assert!(s >= i16::MIN as i64 && s <= i16::MAX as i64);
    }

    #[test]
    fn quantize_dequantize_error_bounded(frac in 0u32..16, x in -100.0f32..100.0) {
        let q = Quantizer::new(frac.min(15));
        let v = q.quantize(x);
        let back = q.dequantize(v);
        // Either we saturated (value out of range) or error <= half step.
        let max_val = i16::MAX as f32 / q.scale();
        let min_val = i16::MIN as f32 / q.scale();
        if x < max_val && x > min_val {
            prop_assert!((back - x).abs() <= 0.5 / q.scale() + 1e-5);
        }
    }

    #[test]
    fn signed_bits_value_fits_in_reported_width(v in any::<i16>()) {
        let p = signed_bits(v);
        prop_assert!((1..=16).contains(&p));
        let lo = -(1i32 << (p - 1));
        let hi = (1i32 << (p - 1)) - 1;
        prop_assert!((v as i32) >= lo && (v as i32) <= hi);
        // Minimality: one bit fewer must not fit (except p == 1).
        if p > 1 {
            let lo2 = -(1i32 << (p - 2));
            let hi2 = (1i32 << (p - 2)) - 1;
            prop_assert!((v as i32) < lo2 || (v as i32) > hi2);
        }
    }

    #[test]
    fn unsigned_bits_is_minimal(v in any::<u16>()) {
        let p = unsigned_bits(v);
        prop_assert!((v as u32) < (1u32 << p));
        if p > 0 {
            prop_assert!((v as u32) >= (1u32 << (p - 1)));
        }
    }

    #[test]
    fn relu_output_nonnegative_and_sparsity_not_decreasing(t in small_tensor3()) {
        let r = relu(&t);
        prop_assert!(r.iter().all(|&v| v >= 0));
        prop_assert!(sparsity(&r) >= sparsity(&t));
    }

    #[test]
    fn conv_with_delta_filter_is_identity(t in small_tensor3()) {
        // A 1x1x1-per-channel "delta" filter bank: K = C, filter k picks out
        // channel k. Convolving must reproduce the input exactly.
        let c = t.shape().c;
        let mut f = Tensor4::<i16>::new(c, c, 1, 1);
        for k in 0..c {
            *f.at_mut(k, k, 0, 0) = 1;
        }
        let o = conv2d(&t, &f, None, ConvGeometry::unit());
        let back: Vec<i16> = o.iter().map(|&v| v as i16).collect();
        prop_assert_eq!(back, t.as_slice().to_vec());
    }

    #[test]
    fn conv_is_linear_in_the_input(
        a in small_tensor3(),
    ) {
        // conv(a + a) == conv(a) + conv(a) with exact accumulation, using
        // half-range values to avoid i16 overflow when doubling.
        let halved = a.map(|v| v / 2);
        let doubled = halved.map(|v| v * 2);
        let shape = halved.shape();
        let f = Tensor4::<i16>::filled(2, shape.c, 1, 1, 3);
        let o1 = conv2d(&halved, &f, None, ConvGeometry::unit());
        let o2 = conv2d(&doubled, &f, None, ConvGeometry::unit());
        for (x, y) in o1.iter().zip(o2.iter()) {
            prop_assert_eq!(2 * x, *y);
        }
    }

    #[test]
    fn space_to_depth_preserves_multiset(t in (1usize..=2, 1usize..=3, 1usize..=3)
        .prop_flat_map(|(c, h2, w2)| {
            proptest::collection::vec(any::<i16>(), c * h2 * 2 * w2 * 2)
                .prop_map(move |data| Tensor3::from_vec(c, h2 * 2, w2 * 2, data))
        })) {
        let s = space_to_depth(&t, 2);
        let mut a: Vec<i16> = t.iter().copied().collect();
        let mut b: Vec<i16> = s.iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
