//! Fixed-point tensors and reference convolution kernels.
//!
//! This crate is the numerical substrate of the Diffy reproduction. The
//! accelerator studied in the paper processes 16-bit fixed-point activations
//! and weights, so everything here is built around [`fixed::Act`] (an `i16`)
//! together with a [`fixed::Quantizer`] that maps real-valued image data into
//! that representation.
//!
//! The main pieces are:
//!
//! * [`shape`] — 3D/4D shapes and the convolution output-geometry algebra
//!   (stride, zero padding, dilation) used by every layer of the model zoo.
//! * [`tensor`] — dense [`Tensor3`]/[`Tensor4`] containers in `C × H × W`
//!   (channels-outer) layout, matching the *imap*/*fmap* terminology of the
//!   paper.
//! * [`conv`] — a direct (sliding-window) reference convolution with exact
//!   64-bit accumulation, the functional oracle against which differential
//!   convolution is verified.
//! * [`ops`] — ReLU, bias, pooling and the other per-element layer ops.
//! * [`stats`] — magnitude percentiles and histograms used for profiled
//!   precision detection and entropy measurements.
//!
//! # Example
//!
//! ```
//! use diffy_tensor::{Tensor3, Tensor4, ConvGeometry, conv::conv2d};
//!
//! // A 3-channel 8x8 imap and four 3x3x3 filters.
//! let imap = Tensor3::<i16>::filled(3, 8, 8, 1);
//! let fmaps = Tensor4::<i16>::filled(4, 3, 3, 3, 2);
//! let geom = ConvGeometry::same(3, 3);
//! let omap = conv2d(&imap, &fmaps, None, geom);
//! assert_eq!(omap.shape().as_tuple(), (4, 8, 8));
//! ```


#![warn(missing_docs)]

pub mod conv;
pub mod fixed;
pub mod ops;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use conv::{conv2d, conv2d_fast, conv2d_im2col, requantize};
pub use fixed::{sat16, Act, Quantizer, ACT_BITS};
pub use shape::{ConvGeometry, Shape3, Shape4};
pub use tensor::{Tensor3, Tensor4};
