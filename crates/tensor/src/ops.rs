//! Per-element and pooling layer operations.
//!
//! The CI-DNNs of the paper are fully convolutional with ReLU activations
//! (Table I lists only Conv and ReLU layers); the classification models of
//! Fig. 19 additionally use max pooling. Everything operates on the 16-bit
//! fixed-point domain.

use crate::tensor::Tensor3;

/// In-place ReLU: clamps every element to `max(v, 0)`.
///
/// # Example
///
/// ```
/// use diffy_tensor::{Tensor3, ops::relu_inplace};
/// let mut t = Tensor3::from_vec(1, 1, 3, vec![-2i16, 0, 5]);
/// relu_inplace(&mut t);
/// assert_eq!(t.as_slice(), &[0, 0, 5]);
/// ```
pub fn relu_inplace(t: &mut Tensor3<i16>) {
    for v in t.as_mut_slice() {
        if *v < 0 {
            *v = 0;
        }
    }
}

/// Returns a ReLU'd copy of the tensor.
pub fn relu(t: &Tensor3<i16>) -> Tensor3<i16> {
    t.map(|v| v.max(0))
}

/// Fraction of elements that are exactly zero (the paper's activation
/// *sparsity*, Fig. 3).
///
/// Returns 0 for an empty tensor.
pub fn sparsity(t: &Tensor3<i16>) -> f64 {
    if t.is_empty() {
        return 0.0;
    }
    let zeros = t.iter().filter(|&&v| v == 0).count();
    zeros as f64 / t.len() as f64
}

/// Non-overlapping max pooling with a square `window` and stride equal to
/// the window size (the form used by the classification models).
///
/// Trailing rows/columns that do not fill a complete window are dropped,
/// matching common framework semantics with floor division.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn max_pool(t: &Tensor3<i16>, window: usize) -> Tensor3<i16> {
    assert!(window > 0, "pooling window must be positive");
    let s = t.shape();
    let oh = s.h / window;
    let ow = s.w / window;
    let mut out = Tensor3::<i16>::new(s.c, oh, ow);
    for c in 0..s.c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = i16::MIN;
                for j in 0..window {
                    for i in 0..window {
                        m = m.max(*t.at(c, oy * window + j, ox * window + i));
                    }
                }
                *out.at_mut(c, oy, ox) = m;
            }
        }
    }
    out
}

/// 2× nearest-neighbour spatial upsampling (used by the decoder halves of
/// SegNet-style models and by FFDNet's final re-assembly).
pub fn upsample2x(t: &Tensor3<i16>) -> Tensor3<i16> {
    let s = t.shape();
    let mut out = Tensor3::<i16>::new(s.c, s.h * 2, s.w * 2);
    for c in 0..s.c {
        for y in 0..s.h {
            for x in 0..s.w {
                let v = *t.at(c, y, x);
                *out.at_mut(c, 2 * y, 2 * x) = v;
                *out.at_mut(c, 2 * y, 2 * x + 1) = v;
                *out.at_mut(c, 2 * y + 1, 2 * x) = v;
                *out.at_mut(c, 2 * y + 1, 2 * x + 1) = v;
            }
        }
    }
    out
}

/// Space-to-depth: rearranges each non-overlapping `factor × factor` spatial
/// block into `factor²` channels (FFDNet's input pre-split of the image into
/// 4 tiles stacked along the channel dimension is `factor = 2`).
///
/// # Panics
///
/// Panics if the spatial dimensions are not divisible by `factor`.
pub fn space_to_depth(t: &Tensor3<i16>, factor: usize) -> Tensor3<i16> {
    let s = t.shape();
    assert!(factor > 0 && s.h.is_multiple_of(factor) && s.w.is_multiple_of(factor),
        "spatial dims {}x{} not divisible by factor {}", s.h, s.w, factor);
    let oh = s.h / factor;
    let ow = s.w / factor;
    let mut out = Tensor3::<i16>::new(s.c * factor * factor, oh, ow);
    for c in 0..s.c {
        for dy in 0..factor {
            for dx in 0..factor {
                let oc = c * factor * factor + dy * factor + dx;
                for y in 0..oh {
                    for x in 0..ow {
                        *out.at_mut(oc, y, x) = *t.at(c, y * factor + dy, x * factor + dx);
                    }
                }
            }
        }
    }
    out
}

/// Elementwise saturating addition of two tensors of identical shape
/// (residual connections, e.g. VDSR adds the predicted residual to the
/// interpolated input).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add_saturating(a: &Tensor3<i16>, b: &Tensor3<i16>) -> Tensor3<i16> {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in add");
    let data = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| x.saturating_add(y))
        .collect();
    Tensor3::from_vec(a.shape().c, a.shape().h, a.shape().w, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives_only() {
        let t = Tensor3::from_vec(1, 1, 4, vec![-3i16, -1, 0, 7]);
        assert_eq!(relu(&t).as_slice(), &[0, 0, 0, 7]);
        let mut m = t.clone();
        relu_inplace(&mut m);
        assert_eq!(m.as_slice(), &[0, 0, 0, 7]);
    }

    #[test]
    fn sparsity_counts_zero_fraction() {
        let t = Tensor3::from_vec(1, 1, 4, vec![0i16, 1, 0, 2]);
        assert_eq!(sparsity(&t), 0.5);
        let empty = Tensor3::from_vec(1, 0, 0, Vec::<i16>::new());
        assert_eq!(sparsity(&empty), 0.0);
    }

    #[test]
    fn max_pool_takes_block_maxima() {
        let t = Tensor3::from_vec(1, 2, 4, vec![1i16, 5, 2, 2, 3, 4, 9, 1]);
        let p = max_pool(&t, 2);
        assert_eq!(p.shape().as_tuple(), (1, 1, 2));
        assert_eq!(p.as_slice(), &[5, 9]);
    }

    #[test]
    fn max_pool_drops_partial_windows() {
        let t = Tensor3::from_vec(1, 3, 3, (1..=9).collect::<Vec<i16>>());
        let p = max_pool(&t, 2);
        assert_eq!(p.shape().as_tuple(), (1, 1, 1));
        assert_eq!(p.as_slice(), &[5]);
    }

    #[test]
    fn upsample2x_replicates_pixels() {
        let t = Tensor3::from_vec(1, 1, 2, vec![1i16, 2]);
        let u = upsample2x(&t);
        assert_eq!(u.shape().as_tuple(), (1, 2, 4));
        assert_eq!(u.as_slice(), &[1, 1, 2, 2, 1, 1, 2, 2]);
    }

    #[test]
    fn space_to_depth_roundtrips_pixel_count() {
        let t = Tensor3::from_vec(1, 2, 2, vec![1i16, 2, 3, 4]);
        let s = space_to_depth(&t, 2);
        assert_eq!(s.shape().as_tuple(), (4, 1, 1));
        assert_eq!(s.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn space_to_depth_orders_channels_by_offset() {
        let t = Tensor3::from_vec(2, 2, 2, vec![1i16, 2, 3, 4, 5, 6, 7, 8]);
        let s = space_to_depth(&t, 2);
        assert_eq!(s.shape().as_tuple(), (8, 1, 1));
        // Channel-major: c0 offsets (0,0),(0,1),(1,0),(1,1), then c1.
        assert_eq!(s.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn space_to_depth_checks_divisibility() {
        let t = Tensor3::<i16>::new(1, 3, 4);
        let _ = space_to_depth(&t, 2);
    }

    #[test]
    fn add_saturating_saturates() {
        let a = Tensor3::from_vec(1, 1, 2, vec![i16::MAX, 1]);
        let b = Tensor3::from_vec(1, 1, 2, vec![1i16, 1]);
        assert_eq!(add_saturating(&a, &b).as_slice(), &[i16::MAX, 2]);
    }
}
