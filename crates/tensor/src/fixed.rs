//! 16-bit fixed-point representation of activations and weights.
//!
//! The Diffy paper's baseline stores all activations and weights as 16-bit
//! values (§II, Fig. 5 "NoCompression: all imap values are stored using
//! 16b"). We mirror that: [`Act`] is the storage type for both, and a
//! [`Quantizer`] carries the binary point used when converting real-valued
//! pixel data into the fixed-point domain.

/// Storage type for a single activation or weight: 16-bit two's complement.
pub type Act = i16;

/// Number of bits in the baseline activation representation.
pub const ACT_BITS: u32 = 16;

/// Saturate a wide accumulator down to the 16-bit activation range.
///
/// # Example
///
/// ```
/// use diffy_tensor::sat16;
/// assert_eq!(sat16(40_000), i16::MAX);
/// assert_eq!(sat16(-40_000), i16::MIN);
/// assert_eq!(sat16(123), 123);
/// ```
#[inline]
pub fn sat16(v: i64) -> i16 {
    if v > i16::MAX as i64 {
        i16::MAX
    } else if v < i16::MIN as i64 {
        i16::MIN
    } else {
        v as i16
    }
}

/// A fixed-point quantizer: maps `f32` values to [`Act`] with `frac_bits`
/// bits to the right of the binary point (so the representable step is
/// `2^-frac_bits`).
///
/// Values outside the representable range saturate rather than wrap — the
/// same behaviour a hardware datapath with saturating output registers
/// exhibits.
///
/// # Example
///
/// ```
/// use diffy_tensor::Quantizer;
/// let q = Quantizer::new(8);
/// let v = q.quantize(1.5);
/// assert_eq!(v, 384); // 1.5 * 2^8
/// assert!((q.dequantize(v) - 1.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quantizer {
    frac_bits: u32,
}

impl Quantizer {
    /// Creates a quantizer with the given number of fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits >= ACT_BITS` (no room would remain for the sign
    /// and integer part).
    pub fn new(frac_bits: u32) -> Self {
        assert!(
            frac_bits < ACT_BITS,
            "frac_bits ({frac_bits}) must be < {ACT_BITS}"
        );
        Self { frac_bits }
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// The scale factor `2^frac_bits`.
    pub fn scale(&self) -> f32 {
        (1u32 << self.frac_bits) as f32
    }

    /// Quantizes a real value, rounding to nearest and saturating.
    pub fn quantize(&self, x: f32) -> Act {
        let scaled = (x * self.scale()).round();
        if scaled >= i16::MAX as f32 {
            i16::MAX
        } else if scaled <= i16::MIN as f32 {
            i16::MIN
        } else {
            scaled as i16
        }
    }

    /// Maps a fixed-point value back to the reals.
    pub fn dequantize(&self, v: Act) -> f32 {
        v as f32 / self.scale()
    }
}

impl Default for Quantizer {
    /// Eight fractional bits: the convention used throughout the
    /// reproduction for image data normalized to `[0, 1]` (pixel intensities
    /// then occupy ~8 of the 16 bits, leaving headroom for intermediate
    /// feature magnitudes, consistent with the 7–13 bit profiled precisions
    /// of the paper's Table III).
    fn default() -> Self {
        Self::new(8)
    }
}

/// Number of bits needed to represent `v` in two's complement, excluding
/// leading sign copies but including one sign bit.
///
/// This is the per-value precision used by the Dynamic-Stripes style group
/// precision detection: `0` needs 1 bit, `-1` needs 1 bit, `1` needs 2 bits
/// (sign + magnitude), `255` needs 9 bits.
///
/// # Example
///
/// ```
/// use diffy_tensor::fixed::signed_bits;
/// assert_eq!(signed_bits(0), 1);
/// assert_eq!(signed_bits(1), 2);
/// assert_eq!(signed_bits(-1), 1);
/// assert_eq!(signed_bits(255), 9);
/// assert_eq!(signed_bits(-256), 9);
/// assert_eq!(signed_bits(i16::MIN), 16);
/// ```
#[inline]
pub fn signed_bits(v: i16) -> u32 {
    if v >= 0 {
        (16 - v.leading_zeros()) + 1
    } else {
        // For negative values, count bits up to the highest 0 bit.
        (16 - v.leading_ones()) + 1
    }
}

/// Number of bits needed to represent `v` as an unsigned magnitude
/// (post-ReLU activations are non-negative, so no sign bit is required).
///
/// # Example
///
/// ```
/// use diffy_tensor::fixed::unsigned_bits;
/// assert_eq!(unsigned_bits(0), 0);
/// assert_eq!(unsigned_bits(1), 1);
/// assert_eq!(unsigned_bits(255), 8);
/// ```
#[inline]
pub fn unsigned_bits(v: u16) -> u32 {
    16 - v.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat16_clamps_both_directions() {
        assert_eq!(sat16(i64::MAX), i16::MAX);
        assert_eq!(sat16(i64::MIN), i16::MIN);
        assert_eq!(sat16(0), 0);
        assert_eq!(sat16(i16::MAX as i64), i16::MAX);
        assert_eq!(sat16(i16::MIN as i64), i16::MIN);
    }

    #[test]
    fn quantize_roundtrip_is_close() {
        let q = Quantizer::new(8);
        for &x in &[0.0f32, 0.5, -0.5, 1.0, -1.0, 0.123, -0.987, 100.0] {
            let v = q.quantize(x);
            let back = q.dequantize(v);
            assert!((back - x).abs() <= 0.5 / q.scale() + 1e-6, "x={x} back={back}");
        }
    }

    #[test]
    fn quantize_saturates() {
        let q = Quantizer::new(8);
        assert_eq!(q.quantize(1e9), i16::MAX);
        assert_eq!(q.quantize(-1e9), i16::MIN);
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn quantizer_rejects_too_many_frac_bits() {
        let _ = Quantizer::new(16);
    }

    #[test]
    fn default_quantizer_has_eight_frac_bits() {
        assert_eq!(Quantizer::default().frac_bits(), 8);
    }

    #[test]
    fn signed_bits_matches_manual_definition() {
        // Oracle: the smallest p such that v fits in p-bit two's complement.
        fn oracle(v: i16) -> u32 {
            for p in 1..=16u32 {
                let lo = -(1i32 << (p - 1));
                let hi = (1i32 << (p - 1)) - 1;
                if (v as i32) >= lo && (v as i32) <= hi {
                    return p;
                }
            }
            16
        }
        for v in i16::MIN..=i16::MAX {
            assert_eq!(signed_bits(v), oracle(v), "v={v}");
        }
    }

    #[test]
    fn unsigned_bits_matches_manual_definition() {
        for v in 0..=u16::MAX {
            let expect = (0..=16u32)
                .find(|&p| (v as u32) < (1u32 << p))
                .unwrap();
            assert_eq!(unsigned_bits(v), expect, "v={v}");
        }
    }
}
