//! Direct (sliding-window) reference convolution.
//!
//! Implements Eq. (1) of the paper exactly:
//!
//! ```text
//! o(n,y,x) = Σ_k Σ_j Σ_i w^n(k,j,i) · a(k, j + y·S, i + x·S)
//! ```
//!
//! with zero padding and dilation generalizations. Accumulation is in `i64`
//! so results are exact for any 16-bit operands; [`requantize`] maps the wide
//! accumulator back into the 16-bit activation domain the way a hardware
//! output stage would (arithmetic shift + saturation).

use crate::fixed::sat16;
use crate::shape::ConvGeometry;
use crate::tensor::{Tensor3, Tensor4};

/// Computes a convolutional layer with exact 64-bit accumulation.
///
/// `bias`, when provided, must have one entry per filter and is added to
/// every output of that filter *before* requantization (it is expressed in
/// accumulator units, i.e. already scaled by the product of the input and
/// weight scales).
///
/// Returns the raw accumulator omap (`K × Ho × Wo`).
///
/// # Panics
///
/// Panics if the channel counts of `imap` and `fmaps` disagree, or if `bias`
/// is present with a length other than `K`.
///
/// # Example
///
/// ```
/// use diffy_tensor::{Tensor3, Tensor4, ConvGeometry, conv::conv2d};
/// let imap = Tensor3::from_vec(1, 1, 3, vec![1i16, 2, 3]);
/// let fmaps = Tensor4::from_vec(1, 1, 1, 2, vec![1i16, 1]);
/// let o = conv2d(&imap, &fmaps, None, ConvGeometry::unit());
/// assert_eq!(o.as_slice(), &[3, 5]);
/// ```
pub fn conv2d(
    imap: &Tensor3<i16>,
    fmaps: &Tensor4<i16>,
    bias: Option<&[i64]>,
    geom: ConvGeometry,
) -> Tensor3<i64> {
    let ishape = imap.shape();
    let fshape = fmaps.shape();
    assert_eq!(ishape.c, fshape.c, "channel mismatch: imap {} vs fmaps {}", ishape.c, fshape.c);
    if let Some(b) = bias {
        assert_eq!(b.len(), fshape.k, "bias length {} != filters {}", b.len(), fshape.k);
    }
    let oshape = geom.out_shape(ishape, fshape);
    let mut omap = Tensor3::<i64>::new(oshape.c, oshape.h, oshape.w);

    let pad = geom.pad as isize;
    let stride = geom.stride as isize;
    let dil = geom.dilation as isize;

    for n in 0..fshape.k {
        let b = bias.map(|b| b[n]).unwrap_or(0);
        for oy in 0..oshape.h {
            for ox in 0..oshape.w {
                let base_y = oy as isize * stride - pad;
                let base_x = ox as isize * stride - pad;
                let mut acc: i64 = b;
                for c in 0..fshape.c {
                    for j in 0..fshape.h {
                        let iy = base_y + j as isize * dil;
                        if iy < 0 || iy as usize >= ishape.h {
                            continue;
                        }
                        let row = imap.row(c, iy as usize);
                        for i in 0..fshape.w {
                            let ix = base_x + i as isize * dil;
                            if ix < 0 || ix as usize >= ishape.w {
                                continue;
                            }
                            let w = *fmaps.at(n, c, j, i) as i64;
                            let a = row[ix as usize] as i64;
                            acc += w * a;
                        }
                    }
                }
                *omap.at_mut(n, oy, ox) = acc;
            }
        }
    }
    omap
}

/// Computes the same convolution as [`conv2d`] with a cache-friendly,
/// weight-hoisted loop nest (weight scalar held in a register while an
/// entire output row is accumulated). Produces bit-identical results;
/// several times faster on large imaps, so the inference engine uses it.
///
/// # Panics
///
/// Same conditions as [`conv2d`].
pub fn conv2d_fast(
    imap: &Tensor3<i16>,
    fmaps: &Tensor4<i16>,
    bias: Option<&[i64]>,
    geom: ConvGeometry,
) -> Tensor3<i64> {
    let ishape = imap.shape();
    let fshape = fmaps.shape();
    assert_eq!(ishape.c, fshape.c, "channel mismatch: imap {} vs fmaps {}", ishape.c, fshape.c);
    if let Some(b) = bias {
        assert_eq!(b.len(), fshape.k, "bias length {} != filters {}", b.len(), fshape.k);
    }
    let oshape = geom.out_shape(ishape, fshape);
    let mut omap = Tensor3::<i64>::new(oshape.c, oshape.h, oshape.w);
    if oshape.is_empty() {
        return omap;
    }

    let pad = geom.pad as isize;
    let stride = geom.stride;
    let dil = geom.dilation as isize;

    for n in 0..fshape.k {
        if let Some(b) = bias {
            let bn = b[n];
            if bn != 0 {
                let plane = omap.as_mut_slice();
                let vol = oshape.h * oshape.w;
                for v in &mut plane[n * vol..(n + 1) * vol] {
                    *v = bn;
                }
            }
        }
        for c in 0..fshape.c {
            for j in 0..fshape.h {
                for i in 0..fshape.w {
                    let w = *fmaps.at(n, c, j, i) as i64;
                    if w == 0 {
                        continue;
                    }
                    for oy in 0..oshape.h {
                        let iy = oy as isize * stride as isize - pad + j as isize * dil;
                        if iy < 0 || iy as usize >= ishape.h {
                            continue;
                        }
                        let irow = imap.row(c, iy as usize);
                        // Valid ox range: 0 <= ox*stride - pad + i*dil < W.
                        let off = i as isize * dil - pad;
                        let ox_lo = if off >= 0 {
                            0
                        } else {
                            ((-off) as usize).div_ceil(stride)
                        };
                        let ox_hi_excl = {
                            // largest ox with ox*stride + off <= W-1
                            let lim = ishape.w as isize - 1 - off;
                            if lim < 0 {
                                0
                            } else {
                                (lim as usize / stride + 1).min(oshape.w)
                            }
                        };
                        if ox_lo >= ox_hi_excl {
                            continue;
                        }
                        let orow_start = oshape.index(n, oy, 0);
                        let orow =
                            &mut omap.as_mut_slice()[orow_start..orow_start + oshape.w];
                        if stride == 1 {
                            let ix0 = (ox_lo as isize + off) as usize;
                            let icols = &irow[ix0..ix0 + (ox_hi_excl - ox_lo)];
                            for (o, &a) in orow[ox_lo..ox_hi_excl].iter_mut().zip(icols) {
                                *o += w * a as i64;
                            }
                        } else {
                            for (ox, o) in
                                orow.iter_mut().enumerate().take(ox_hi_excl).skip(ox_lo)
                            {
                                let ix = (ox as isize * stride as isize + off) as usize;
                                *o += w * irow[ix] as i64;
                            }
                        }
                    }
                }
            }
        }
    }
    omap
}

/// Computes the same convolution as [`conv2d`] by explicit im2col
/// lowering: every sliding window is materialized as a matrix row and the
/// layer becomes one matrix multiplication — the classic GEMM formulation
/// most frameworks use, kept here as a third independent implementation
/// for differential testing.
///
/// # Panics
///
/// Same conditions as [`conv2d`].
pub fn conv2d_im2col(
    imap: &Tensor3<i16>,
    fmaps: &Tensor4<i16>,
    bias: Option<&[i64]>,
    geom: ConvGeometry,
) -> Tensor3<i64> {
    let ishape = imap.shape();
    let fshape = fmaps.shape();
    assert_eq!(ishape.c, fshape.c, "channel mismatch: imap {} vs fmaps {}", ishape.c, fshape.c);
    if let Some(b) = bias {
        assert_eq!(b.len(), fshape.k, "bias length {} != filters {}", b.len(), fshape.k);
    }
    let oshape = geom.out_shape(ishape, fshape);
    let mut omap = Tensor3::<i64>::new(oshape.c, oshape.h, oshape.w);
    if oshape.is_empty() {
        return omap;
    }

    let patch = fshape.c * fshape.h * fshape.w;
    let windows = oshape.h * oshape.w;
    let pad = geom.pad as isize;
    let stride = geom.stride as isize;
    let dil = geom.dilation as isize;

    // Lower the imap: one row per window, one column per filter weight.
    let mut cols = vec![0i16; windows * patch];
    for oy in 0..oshape.h {
        for ox in 0..oshape.w {
            let row = (oy * oshape.w + ox) * patch;
            let mut idx = row;
            for c in 0..fshape.c {
                for j in 0..fshape.h {
                    let iy = oy as isize * stride - pad + j as isize * dil;
                    for i in 0..fshape.w {
                        let ix = ox as isize * stride - pad + i as isize * dil;
                        cols[idx] = imap.at_padded(c, iy, ix, 0);
                        idx += 1;
                    }
                }
            }
        }
    }

    // GEMM: omap[n][w] = fmaps[n] . cols[w] + bias[n].
    for n in 0..fshape.k {
        let weights = fmaps.filter(n);
        let b = bias.map(|b| b[n]).unwrap_or(0);
        let out_plane_start = n * windows;
        let out = omap.as_mut_slice();
        for w in 0..windows {
            let patch_slice = &cols[w * patch..(w + 1) * patch];
            let mut acc = b;
            for (&wv, &av) in weights.iter().zip(patch_slice.iter()) {
                acc += wv as i64 * av as i64;
            }
            out[out_plane_start + w] = acc;
        }
    }
    omap
}

/// Requantizes a wide accumulator omap back to 16-bit activations by an
/// arithmetic right shift (rounding toward negative infinity, as a hardware
/// shifter does) followed by saturation.
///
/// `shift` is normally the number of fractional bits of the weight
/// quantizer, so the output stays in the activation fixed-point format.
///
/// # Example
///
/// ```
/// use diffy_tensor::{Tensor3, conv::requantize};
/// let acc = Tensor3::from_vec(1, 1, 2, vec![1024i64, -1024]);
/// let out = requantize(&acc, 8);
/// assert_eq!(out.as_slice(), &[4, -4]);
/// ```
pub fn requantize(acc: &Tensor3<i64>, shift: u32) -> Tensor3<i16> {
    acc.map(|v| sat16(v >> shift))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape3;

    fn simple_imap() -> Tensor3<i16> {
        // 2 channels, 3x3, values 1..=18.
        Tensor3::from_vec(2, 3, 3, (1..=18).collect())
    }

    #[test]
    fn identity_filter_reproduces_center_channel_sum() {
        let imap = simple_imap();
        // One 2x1x1 filter of ones: output = sum over channels at each pixel.
        let fmaps = Tensor4::from_vec(1, 2, 1, 1, vec![1i16, 1]);
        let o = conv2d(&imap, &fmaps, None, ConvGeometry::unit());
        assert_eq!(o.shape().as_tuple(), (1, 3, 3));
        // a(0,y,x) + a(1,y,x) = v + (v + 9)
        let expect: Vec<i64> = (1..=9).map(|v| 2 * v + 9).collect();
        assert_eq!(o.as_slice(), &expect[..]);
    }

    #[test]
    fn matches_hand_computed_3x3() {
        let imap = Tensor3::from_vec(1, 3, 3, vec![1i16, 2, 3, 4, 5, 6, 7, 8, 9]);
        let fmaps = Tensor4::from_vec(1, 1, 3, 3, vec![1i16; 9]);
        let o = conv2d(&imap, &fmaps, None, ConvGeometry::unit());
        assert_eq!(o.shape().as_tuple(), (1, 1, 1));
        assert_eq!(o.as_slice(), &[45]);
    }

    #[test]
    fn same_padding_keeps_spatial_size_and_pads_with_zero() {
        let imap = Tensor3::from_vec(1, 2, 2, vec![1i16, 2, 3, 4]);
        let fmaps = Tensor4::from_vec(1, 1, 3, 3, vec![1i16; 9]);
        let o = conv2d(&imap, &fmaps, None, ConvGeometry::same(3, 3));
        assert_eq!(o.shape().as_tuple(), (1, 2, 2));
        // Every output is the sum of the in-range 2x2 block.
        assert_eq!(o.as_slice(), &[10, 10, 10, 10]);
    }

    #[test]
    fn stride_two_subsamples_outputs() {
        let imap = Tensor3::from_vec(1, 1, 5, vec![1i16, 2, 3, 4, 5]);
        let fmaps = Tensor4::from_vec(1, 1, 1, 1, vec![1i16]);
        let o = conv2d(&imap, &fmaps, None, ConvGeometry::strided(2, 0));
        assert_eq!(o.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn dilation_skips_intermediate_pixels() {
        let imap = Tensor3::from_vec(1, 1, 5, vec![1i16, 2, 3, 4, 5]);
        // 1x2 filter of ones, dilation 2: output(x) = a(x) + a(x+2).
        let fmaps = Tensor4::from_vec(1, 1, 1, 2, vec![1i16, 1]);
        let geom = ConvGeometry { stride: 1, pad: 0, dilation: 2 };
        let o = conv2d(&imap, &fmaps, None, geom);
        assert_eq!(o.as_slice(), &[4, 6, 8]);
    }

    #[test]
    fn bias_is_added_per_filter() {
        let imap = Tensor3::from_vec(1, 1, 2, vec![1i16, 1]);
        let fmaps = Tensor4::from_vec(2, 1, 1, 1, vec![1i16, 2]);
        let o = conv2d(&imap, &fmaps, Some(&[10, -10]), ConvGeometry::unit());
        assert_eq!(o.as_slice(), &[11, 11, -8, -8]);
    }

    #[test]
    fn negative_operands_accumulate_exactly() {
        let imap = Tensor3::from_vec(1, 1, 1, vec![i16::MIN]);
        let fmaps = Tensor4::from_vec(1, 1, 1, 1, vec![i16::MIN]);
        let o = conv2d(&imap, &fmaps, None, ConvGeometry::unit());
        assert_eq!(o.as_slice(), &[(i16::MIN as i64) * (i16::MIN as i64)]);
    }

    #[test]
    fn requantize_shifts_and_saturates() {
        let acc = Tensor3::from_vec(1, 1, 3, vec![i64::MAX, i64::MIN, 256]);
        let out = requantize(&acc, 8);
        assert_eq!(out.as_slice(), &[i16::MAX, i16::MIN, 1]);
    }

    #[test]
    fn requantize_rounds_toward_negative_infinity() {
        let acc = Tensor3::from_vec(1, 1, 2, vec![-1i64, 255]);
        let out = requantize(&acc, 8);
        assert_eq!(out.as_slice(), &[-1, 0]);
    }

    #[test]
    fn fast_conv_matches_reference_across_geometries() {
        // Deterministic pseudo-random imap/filters; sweep geometry space.
        let data: Vec<i16> = (0..4 * 9 * 11)
            .map(|i| ((i * 2654435761u64 as usize) % 511) as i16 - 255)
            .collect();
        let imap = Tensor3::from_vec(4, 9, 11, data);
        let wdata: Vec<i16> = (0..5 * 4 * 3 * 3)
            .map(|i| ((i * 40503) % 201) as i16 - 100)
            .collect();
        let fmaps = Tensor4::from_vec(5, 4, 3, 3, wdata);
        let bias: Vec<i64> = vec![5, -7, 0, 100, -1];
        for stride in 1..=3usize {
            for pad in 0..=2usize {
                for dilation in 1..=2usize {
                    let geom = ConvGeometry { stride, pad, dilation };
                    let a = conv2d(&imap, &fmaps, Some(&bias), geom);
                    let b = conv2d_fast(&imap, &fmaps, Some(&bias), geom);
                    assert_eq!(a, b, "geom {geom:?}");
                }
            }
        }
    }

    #[test]
    fn im2col_conv_matches_reference_across_geometries() {
        let data: Vec<i16> = (0..3 * 8 * 10)
            .map(|i| ((i * 2654435761u64 as usize) % 401) as i16 - 200)
            .collect();
        let imap = Tensor3::from_vec(3, 8, 10, data);
        let wdata: Vec<i16> = (0..4 * 3 * 3 * 3)
            .map(|i| ((i * 7919) % 127) as i16 - 63)
            .collect();
        let fmaps = Tensor4::from_vec(4, 3, 3, 3, wdata);
        let bias = vec![3i64, -3, 0, 11];
        for stride in 1..=2usize {
            for pad in 0..=1usize {
                for dilation in 1..=2usize {
                    let geom = ConvGeometry { stride, pad, dilation };
                    assert_eq!(
                        conv2d(&imap, &fmaps, Some(&bias), geom),
                        conv2d_im2col(&imap, &fmaps, Some(&bias), geom),
                        "geom {geom:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_conv_handles_empty_output() {
        let imap = Tensor3::<i16>::new(1, 2, 2);
        let fmaps = Tensor4::<i16>::new(1, 1, 3, 3);
        let o = conv2d_fast(&imap, &fmaps, None, ConvGeometry::unit());
        assert!(o.is_empty());
    }

    #[test]
    fn out_shape_matches_geometry_helper() {
        let imap = Tensor3::<i16>::new(4, 10, 12);
        let fmaps = Tensor4::<i16>::new(6, 4, 3, 3);
        let geom = ConvGeometry::strided(2, 1);
        let o = conv2d(&imap, &fmaps, None, geom);
        assert_eq!(o.shape(), geom.out_shape(imap.shape(), fmaps.shape()));
        assert_eq!(o.shape(), Shape3::new(6, 5, 6));
    }
}
