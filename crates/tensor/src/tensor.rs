//! Dense 3D/4D tensors in channels-outer row-major layout.

use crate::shape::{Shape3, Shape4};

/// A dense 3D tensor (`C × H × W`), the in-memory form of an imap/omap.
///
/// Storage is channels-outer row-major: all of channel 0's rows first, then
/// channel 1, etc. This matches how the reproduction's dataflow walks
/// activations and makes per-channel slices contiguous.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tensor3<T> {
    shape: Shape3,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor3<T> {
    /// Creates a zero-initialized tensor.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        let shape = Shape3::new(c, h, w);
        Self { shape, data: vec![T::default(); shape.len()] }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(c: usize, h: usize, w: usize, value: T) -> Self {
        let shape = Shape3::new(c, h, w);
        Self { shape, data: vec![value; shape.len()] }
    }
}

impl<T> Tensor3<T> {
    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != c*h*w`.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<T>) -> Self {
        let shape = Shape3::new(c, h, w);
        assert_eq!(data.len(), shape.len(), "buffer length != shape volume");
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape3 {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[inline]
    pub fn at(&self, c: usize, y: usize, x: usize) -> &T {
        &self.data[self.shape.index(c, y, x)]
    }

    /// Mutable element at `(c, y, x)`.
    #[inline]
    pub fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut T {
        let idx = self.shape.index(c, y, x);
        &mut self.data[idx]
    }

    /// Contiguous slice holding one channel plane.
    pub fn channel(&self, c: usize) -> &[T] {
        let plane = self.shape.h * self.shape.w;
        &self.data[c * plane..(c + 1) * plane]
    }

    /// Contiguous slice holding one row of one channel.
    pub fn row(&self, c: usize, y: usize) -> &[T] {
        let start = self.shape.index(c, y, 0);
        &self.data[start..start + self.shape.w]
    }

    /// Mutable contiguous slice holding one row of one channel.
    pub fn row_mut(&mut self, c: usize, y: usize) -> &mut [T] {
        let start = self.shape.index(c, y, 0);
        &mut self.data[start..start + self.shape.w]
    }

    /// Iterator over all elements in storage order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }
}

impl<T: Copy> Tensor3<T> {
    /// Elementwise map to a new tensor, preserving shape.
    pub fn map<U, F: FnMut(T) -> U>(&self, mut f: F) -> Tensor3<U> {
        Tensor3 {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element at `(c, y, x)` with zero padding semantics: coordinates are
    /// signed and out-of-range reads return `zero`.
    #[inline]
    pub fn at_padded(&self, c: usize, y: isize, x: isize, zero: T) -> T {
        if y < 0 || x < 0 || y as usize >= self.shape.h || x as usize >= self.shape.w {
            zero
        } else {
            self.data[self.shape.index(c, y as usize, x as usize)]
        }
    }
}

impl<T> std::ops::Index<(usize, usize, usize)> for Tensor3<T> {
    type Output = T;
    #[inline]
    fn index(&self, (c, y, x): (usize, usize, usize)) -> &T {
        self.at(c, y, x)
    }
}

impl<T> std::ops::IndexMut<(usize, usize, usize)> for Tensor3<T> {
    #[inline]
    fn index_mut(&mut self, (c, y, x): (usize, usize, usize)) -> &mut T {
        self.at_mut(c, y, x)
    }
}

/// A dense 4D tensor (`K × C × Fh × Fw`), the in-memory form of a filter
/// bank (the paper's fmaps).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tensor4<T> {
    shape: Shape4,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor4<T> {
    /// Creates a zero-initialized filter bank.
    pub fn new(k: usize, c: usize, h: usize, w: usize) -> Self {
        let shape = Shape4::new(k, c, h, w);
        Self { shape, data: vec![T::default(); shape.len()] }
    }

    /// Creates a filter bank filled with `value`.
    pub fn filled(k: usize, c: usize, h: usize, w: usize, value: T) -> Self {
        let shape = Shape4::new(k, c, h, w);
        Self { shape, data: vec![value; shape.len()] }
    }
}

impl<T> Tensor4<T> {
    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k*c*h*w`.
    pub fn from_vec(k: usize, c: usize, h: usize, w: usize, data: Vec<T>) -> Self {
        let shape = Shape4::new(k, c, h, w);
        assert_eq!(data.len(), shape.len(), "buffer length != shape volume");
        Self { shape, data }
    }

    /// The filter bank's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the bank has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Element at `(k, c, j, i)`.
    #[inline]
    pub fn at(&self, k: usize, c: usize, j: usize, i: usize) -> &T {
        &self.data[self.shape.index(k, c, j, i)]
    }

    /// Mutable element at `(k, c, j, i)`.
    #[inline]
    pub fn at_mut(&mut self, k: usize, c: usize, j: usize, i: usize) -> &mut T {
        let idx = self.shape.index(k, c, j, i);
        &mut self.data[idx]
    }

    /// Contiguous slice of one filter's weights (`C × Fh × Fw`).
    pub fn filter(&self, k: usize) -> &[T] {
        let vol = self.shape.c * self.shape.h * self.shape.w;
        &self.data[k * vol..(k + 1) * vol]
    }

    /// Iterator over all weights in storage order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }
}

impl<T> std::ops::Index<(usize, usize, usize, usize)> for Tensor4<T> {
    type Output = T;
    #[inline]
    fn index(&self, (k, c, j, i): (usize, usize, usize, usize)) -> &T {
        self.at(k, c, j, i)
    }
}

impl<T> std::ops::IndexMut<(usize, usize, usize, usize)> for Tensor4<T> {
    #[inline]
    fn index_mut(&mut self, (k, c, j, i): (usize, usize, usize, usize)) -> &mut T {
        self.at_mut(k, c, j, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor3_new_is_zeroed() {
        let t = Tensor3::<i16>::new(2, 3, 4);
        assert_eq!(t.len(), 24);
        assert!(t.iter().all(|&v| v == 0));
    }

    #[test]
    fn tensor3_index_set_get() {
        let mut t = Tensor3::<i16>::new(2, 3, 4);
        t[(1, 2, 3)] = 42;
        assert_eq!(t[(1, 2, 3)], 42);
        assert_eq!(*t.at(1, 2, 3), 42);
        assert_eq!(t.as_slice()[23], 42);
    }

    #[test]
    fn tensor3_channel_and_row_are_contiguous() {
        let data: Vec<i16> = (0..24).collect();
        let t = Tensor3::from_vec(2, 3, 4, data);
        assert_eq!(t.channel(1), &(12..24).collect::<Vec<i16>>()[..]);
        assert_eq!(t.row(1, 2), &[20, 21, 22, 23]);
    }

    #[test]
    fn tensor3_at_padded_returns_zero_outside() {
        let t = Tensor3::<i16>::filled(1, 2, 2, 7);
        assert_eq!(t.at_padded(0, -1, 0, 0), 0);
        assert_eq!(t.at_padded(0, 0, 2, 0), 0);
        assert_eq!(t.at_padded(0, 1, 1, 0), 7);
    }

    #[test]
    fn tensor3_map_preserves_shape() {
        let t = Tensor3::<i16>::filled(2, 2, 2, 3);
        let doubled = t.map(|v| v as i32 * 2);
        assert_eq!(doubled.shape(), t.shape());
        assert!(doubled.iter().all(|&v| v == 6));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn tensor3_from_vec_checks_length() {
        let _ = Tensor3::from_vec(2, 2, 2, vec![0i16; 7]);
    }

    #[test]
    fn tensor4_filter_slice() {
        let data: Vec<i16> = (0..2 * 3 * 2 * 2).collect();
        let t = Tensor4::from_vec(2, 3, 2, 2, data);
        assert_eq!(t.filter(1).len(), 12);
        assert_eq!(t.filter(1)[0], 12);
        assert_eq!(t[(1, 0, 0, 0)], 12);
    }

    #[test]
    fn tensor4_index_mut() {
        let mut t = Tensor4::<i16>::new(2, 2, 2, 2);
        t[(1, 1, 1, 1)] = -5;
        assert_eq!(t[(1, 1, 1, 1)], -5);
    }
}
