//! Value statistics: magnitude percentiles, moments and histograms.
//!
//! These feed two parts of the reproduction: profiled per-layer precisions
//! (Table III — derived from the magnitude distribution of each layer's
//! activations) and the entropy measurements of Fig. 1 (which need value
//! histograms).

/// Running first/second-moment accumulator over `i16` samples.
///
/// # Example
///
/// ```
/// use diffy_tensor::stats::Moments;
/// let mut m = Moments::new();
/// for v in [1i16, 2, 3] { m.push(v); }
/// assert_eq!(m.count(), 3);
/// assert!((m.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    n: u64,
    sum: f64,
    sum_sq: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, v: i16) {
        self.n += 1;
        self.sum += v as f64;
        self.sum_sq += (v as f64) * (v as f64);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Moments) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 { 0.0 } else { self.sum / self.n as f64 }
    }

    /// Population variance (0 if empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            let m = self.mean();
            (self.sum_sq / self.n as f64 - m * m).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Histogram over the absolute magnitude of `i16` samples, bucketed exactly
/// (one bucket per magnitude 0..=32768).
///
/// Used to answer "what is the smallest precision that covers quantile `q`
/// of the values?" — the profiled-precision question.
#[derive(Debug, Clone)]
pub struct MagnitudeHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl MagnitudeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; 1 << 15 | 1], total: 0 }
    }

    /// Adds one sample's magnitude.
    pub fn push(&mut self, v: i16) {
        let mag = (v as i32).unsigned_abs() as usize;
        self.counts[mag] += 1;
        self.total += 1;
    }

    /// Adds every sample in a slice.
    pub fn extend_from_slice(&mut self, vs: &[i16]) {
        for &v in vs {
            self.push(v);
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &MagnitudeHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest magnitude `m` such that at least `q` (0..=1) of the samples
    /// have `|v| <= m`. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn magnitude_quantile(&self, q: f64) -> u32 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return 0;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut cum = 0u64;
        for (mag, &cnt) in self.counts.iter().enumerate() {
            cum += cnt;
            if cum >= target {
                return mag as u32;
            }
        }
        (self.counts.len() - 1) as u32
    }

    /// Maximum magnitude seen (0 if empty).
    pub fn max_magnitude(&self) -> u32 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|m| m as u32)
            .unwrap_or(0)
    }
}

impl Default for MagnitudeHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Cumulative distribution helper: given per-bucket counts, returns the
/// cumulative fraction at each bucket (the form plotted in the paper's
/// Fig. 3).
///
/// Returns an empty vector when every count is zero.
pub fn cumulative_fractions(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut cum = 0u64;
    counts
        .iter()
        .map(|&c| {
            cum += c;
            cum as f64 / total as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_mean_and_variance() {
        let mut m = Moments::new();
        for v in [2i16, 4, 4, 4, 5, 5, 7, 9] {
            m.push(v);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert!((m.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn moments_merge_equals_combined() {
        let mut a = Moments::new();
        let mut b = Moments::new();
        let mut all = Moments::new();
        for v in [1i16, -5, 3] {
            a.push(v);
            all.push(v);
        }
        for v in [10i16, 0] {
            b.push(v);
            all.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
    }

    #[test]
    fn empty_moments_are_zero() {
        let m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = MagnitudeHistogram::new();
        h.extend_from_slice(&[0, 1, -1, 2, -2, 100]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.magnitude_quantile(0.5), 1);
        assert_eq!(h.magnitude_quantile(1.0), 100);
        assert_eq!(h.max_magnitude(), 100);
    }

    #[test]
    fn histogram_handles_i16_min() {
        let mut h = MagnitudeHistogram::new();
        h.push(i16::MIN);
        assert_eq!(h.max_magnitude(), 32768);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = MagnitudeHistogram::new();
        assert_eq!(h.magnitude_quantile(0.999), 0);
        assert_eq!(h.max_magnitude(), 0);
    }

    #[test]
    fn histogram_merge_matches_union() {
        let mut a = MagnitudeHistogram::new();
        let mut b = MagnitudeHistogram::new();
        a.extend_from_slice(&[1, 2, 3]);
        b.extend_from_slice(&[4, 5]);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max_magnitude(), 5);
    }

    #[test]
    fn cumulative_fractions_end_at_one() {
        let cdf = cumulative_fractions(&[1, 1, 2]);
        assert_eq!(cdf.len(), 3);
        assert!((cdf[0] - 0.25).abs() < 1e-12);
        assert!((cdf[2] - 1.0).abs() < 1e-12);
        assert!(cumulative_fractions(&[0, 0]).is_empty());
    }
}
