//! Shapes and convolution output geometry.
//!
//! The paper's notation (§II-A): an *imap* is `C × H × W`, a set of `K`
//! *fmaps* is `K × C × Fh × Fw`, and the convolution slides the filters with
//! stride `S`, producing an omap of `K × Ho × Wo`. CI-DNNs additionally use
//! *dilated* filters (e.g. IRCNN expands a 3×3 filter to an effective 9×9 by
//! inserting zeros — §IV "may be dilated"), so the geometry here carries a
//! dilation factor as well.

use std::fmt;

/// Shape of a 3D activation array (`channels × height × width`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape3 {
    /// Number of channels `C`.
    pub c: usize,
    /// Height `H`.
    pub h: usize,
    /// Width `W`.
    pub w: usize,
}

impl Shape3 {
    /// Creates a new shape.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Whether the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(c, y, x)` in channels-outer row-major layout.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of range.
    #[inline]
    pub fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        (c * self.h + y) * self.w + x
    }

    /// The shape as a `(c, h, w)` tuple.
    pub fn as_tuple(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }
}

impl fmt::Display for Shape3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// Shape of a 4D filter bank (`filters × channels × height × width`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    /// Number of filters `K`.
    pub k: usize,
    /// Channels per filter `C`.
    pub c: usize,
    /// Filter height `Fh`.
    pub h: usize,
    /// Filter width `Fw`.
    pub w: usize,
}

impl Shape4 {
    /// Creates a new filter-bank shape.
    pub fn new(k: usize, c: usize, h: usize, w: usize) -> Self {
        Self { k, c, h, w }
    }

    /// Total number of weights.
    pub fn len(&self) -> usize {
        self.k * self.c * self.h * self.w
    }

    /// Whether the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(k, c, j, i)`.
    #[inline]
    pub fn index(&self, k: usize, c: usize, j: usize, i: usize) -> usize {
        debug_assert!(k < self.k && c < self.c && j < self.h && i < self.w);
        ((k * self.c + c) * self.h + j) * self.w + i
    }

    /// Shape of a single filter.
    pub fn filter_shape(&self) -> Shape3 {
        Shape3::new(self.c, self.h, self.w)
    }

    /// The shape as a `(k, c, h, w)` tuple.
    pub fn as_tuple(&self) -> (usize, usize, usize, usize) {
        (self.k, self.c, self.h, self.w)
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.k, self.c, self.h, self.w)
    }
}

/// Convolution geometry: stride, symmetric zero padding and dilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Stride `S` along both spatial dimensions.
    pub stride: usize,
    /// Zero padding added on every spatial border.
    pub pad: usize,
    /// Dilation factor (1 = dense filter).
    pub dilation: usize,
}

impl ConvGeometry {
    /// Unit geometry: stride 1, no padding, no dilation.
    pub fn unit() -> Self {
        Self { stride: 1, pad: 0, dilation: 1 }
    }

    /// Geometry preserving spatial size for an odd `fh × fw` filter at
    /// stride 1 ("same" padding), the common case for CI-DNNs.
    ///
    /// # Panics
    ///
    /// Panics if the filter has an even dimension (no symmetric same-pad
    /// exists).
    pub fn same(fh: usize, fw: usize) -> Self {
        assert!(fh % 2 == 1 && fw % 2 == 1, "same padding needs odd filters");
        assert_eq!(fh, fw, "same padding helper expects square filters");
        Self { stride: 1, pad: fh / 2, dilation: 1 }
    }

    /// Same-padding geometry for a dilated odd square filter.
    pub fn same_dilated(f: usize, dilation: usize) -> Self {
        assert!(f % 2 == 1, "same padding needs odd filters");
        assert!(dilation >= 1);
        Self { stride: 1, pad: dilation * (f / 2), dilation }
    }

    /// Geometry with an explicit stride and padding.
    pub fn strided(stride: usize, pad: usize) -> Self {
        assert!(stride >= 1);
        Self { stride, pad, dilation: 1 }
    }

    /// Effective spatial extent of a filter dimension of size `f` under this
    /// dilation: `(f - 1) * dilation + 1`.
    pub fn effective_extent(&self, f: usize) -> usize {
        if f == 0 {
            0
        } else {
            (f - 1) * self.dilation + 1
        }
    }

    /// Output size along one spatial dimension for input size `n` and filter
    /// size `f`: `(n + 2*pad - extent)/stride + 1`.
    ///
    /// Returns 0 if the (padded) input is smaller than the filter extent.
    pub fn out_dim(&self, n: usize, f: usize) -> usize {
        let ext = self.effective_extent(f);
        let padded = n + 2 * self.pad;
        if padded < ext {
            0
        } else {
            (padded - ext) / self.stride + 1
        }
    }

    /// Output shape for an input of shape `imap` convolved with `fmaps`.
    ///
    /// # Panics
    ///
    /// Panics if the channel counts disagree.
    pub fn out_shape(&self, imap: Shape3, fmaps: Shape4) -> Shape3 {
        assert_eq!(
            imap.c, fmaps.c,
            "imap channels {} != filter channels {}",
            imap.c, fmaps.c
        );
        Shape3::new(self.k_out(fmaps), self.out_dim(imap.h, fmaps.h), self.out_dim(imap.w, fmaps.w))
    }

    fn k_out(&self, fmaps: Shape4) -> usize {
        fmaps.k
    }
}

impl Default for ConvGeometry {
    fn default() -> Self {
        Self::unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape3_index_is_row_major_channels_outer() {
        let s = Shape3::new(2, 3, 4);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 3), 3);
        assert_eq!(s.index(0, 1, 0), 4);
        assert_eq!(s.index(1, 0, 0), 12);
        assert_eq!(s.index(1, 2, 3), 23);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn shape4_index_covers_all_elements_once() {
        let s = Shape4::new(2, 3, 2, 2);
        let mut seen = vec![false; s.len()];
        for k in 0..2 {
            for c in 0..3 {
                for j in 0..2 {
                    for i in 0..2 {
                        let idx = s.index(k, c, j, i);
                        assert!(!seen[idx]);
                        seen[idx] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn same_padding_preserves_size() {
        let g = ConvGeometry::same(3, 3);
        assert_eq!(g.out_dim(17, 3), 17);
        let g5 = ConvGeometry::same(5, 5);
        assert_eq!(g5.out_dim(64, 5), 64);
    }

    #[test]
    fn dilated_same_padding_preserves_size() {
        // IRCNN-style: 3x3 filter, dilation 4 => effective 9x9, pad 4.
        let g = ConvGeometry::same_dilated(3, 4);
        assert_eq!(g.effective_extent(3), 9);
        assert_eq!(g.out_dim(50, 3), 50);
    }

    #[test]
    fn strided_out_dim_matches_paper_formula() {
        // Ho = (H - Fh)/S + 1 with no padding.
        let g = ConvGeometry::strided(2, 0);
        assert_eq!(g.out_dim(11, 3), 5);
        assert_eq!(g.out_dim(3, 3), 1);
    }

    #[test]
    fn out_dim_zero_when_filter_larger_than_input() {
        let g = ConvGeometry::unit();
        assert_eq!(g.out_dim(2, 3), 0);
    }

    #[test]
    fn out_shape_checks_channels() {
        let g = ConvGeometry::same(3, 3);
        let o = g.out_shape(Shape3::new(8, 10, 12), Shape4::new(5, 8, 3, 3));
        assert_eq!(o.as_tuple(), (5, 10, 12));
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn out_shape_panics_on_channel_mismatch() {
        let g = ConvGeometry::unit();
        let _ = g.out_shape(Shape3::new(8, 10, 12), Shape4::new(5, 7, 3, 3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape3::new(1, 2, 3).to_string(), "1x2x3");
        assert_eq!(Shape4::new(1, 2, 3, 4).to_string(), "1x2x3x4");
    }
}
