//! Property tests for the core crate: differential convolution
//! exactness and tile-emulator equivalence on arbitrary layers.

use diffy_core::dc::differential_conv2d;
use diffy_core::tile::{run_tile, TileConfig};
use diffy_models::LayerTrace;
use diffy_sim::{term_serial_layer, AcceleratorConfig, ValueMode};
use diffy_tensor::{conv2d, requantize, ConvGeometry, Tensor3, Tensor4};
use proptest::prelude::*;

fn arb_layer(nonneg: bool) -> impl Strategy<Value = LayerTrace> {
    (1usize..=4, 2usize..=5, 4usize..=20, 1usize..=6, prop_oneof![Just(1usize), Just(3)])
        .prop_flat_map(move |(c, h, w, k, f)| {
            let geom = if f == 1 { ConvGeometry::unit() } else { ConvGeometry::same(3, 3) };
            let acts = if nonneg {
                (0i16..=2047).boxed()
            } else {
                (-2048i16..=2047).boxed()
            };
            (
                proptest::collection::vec(acts, c * h * w),
                proptest::collection::vec(-256i16..=256, k * c * f * f),
                0u32..=4,
            )
                .prop_map(move |(imap, fmaps, shift)| LayerTrace {
                    name: "p".into(),
                    index: 0,
                    imap: Tensor3::from_vec(c, h, w, imap),
                    fmaps: Tensor4::from_vec(k, c, f, f, fmaps),
                    geom,
                    relu: shift % 2 == 0,
                    requant_shift: shift,
                    requant_bias: 0,
                    next_stride: 1,
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tile_emulator_matches_reference_functionally(t in arb_layer(false)) {
        let run = run_tile(&t, &TileConfig::default());
        let acc = conv2d(&t.imap, &t.fmaps, None, t.geom);
        let mut expect = requantize(&acc, t.requant_shift);
        if t.relu {
            diffy_tensor::ops::relu_inplace(&mut expect);
        }
        prop_assert_eq!(run.omap, expect);
    }

    #[test]
    fn tile_emulator_matches_analytical_cycles_on_nonneg(t in arb_layer(true)) {
        // Post-ReLU-like imaps: wrapped and exact deltas coincide, so
        // the emulator and the fast model must agree cycle for cycle.
        let run = run_tile(&t, &TileConfig::default());
        let mut cfg = AcceleratorConfig::table4();
        cfg.tiles = 1;
        let model = term_serial_layer(&t, &cfg, ValueMode::Differential);
        prop_assert_eq!(run.compute_cycles, model.cycles);
    }

    #[test]
    fn differential_conv_exact_on_arbitrary_layers(t in arb_layer(false)) {
        let direct = conv2d(&t.imap, &t.fmaps, None, t.geom);
        let diff = differential_conv2d(&t.imap, &t.fmaps, None, t.geom);
        prop_assert_eq!(direct, diff);
    }

    #[test]
    fn delta_out_roundtrip_via_undelta(t in arb_layer(true), s_next in 1usize..4) {
        let mut t = t;
        t.next_stride = s_next;
        let run = run_tile(&t, &TileConfig::default());
        let back = diffy_encoding::delta::undelta_rows_wrapping(&run.omap_deltas, s_next);
        prop_assert_eq!(back, run.omap);
    }
}
