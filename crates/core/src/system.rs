//! A multi-tile system emulator built on [`crate::tile`].
//!
//! The full accelerator (Table IV: 4 tiles and up) partitions work the
//! way the analytical model's `tile_partition` describes: filters are
//! spread `filters_per_tile` per tile, and when tiles outnumber a
//! layer's filter groups the surplus tiles split the output rows
//! spatially (how scaled-up Fig. 18 configurations keep shallow-K layers
//! busy). This module executes that schedule with real tile emulators —
//! every tile produces its slice of the omap — and cross-validates both
//! the functional result (identical to a single tile's) and the
//! system-level cycle count (tiles run in lockstep on the same weight
//! stream, so the system takes the slowest tile's time per assignment
//! wave).

use crate::tile::{run_tile, TileConfig, TileRun};
use diffy_models::LayerTrace;
use diffy_sim::report::tile_partition;
use diffy_tensor::Tensor3;

/// System-level configuration: a tile plus how many of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of tiles.
    pub tiles: usize,
    /// Per-tile geometry.
    pub tile: TileConfig,
}

impl Default for SystemConfig {
    /// The Table IV default: 4 tiles.
    fn default() -> Self {
        Self { tiles: 4, tile: TileConfig::default() }
    }
}

/// The result of emulating one layer on the whole system.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// Post-activation omap, assembled from the tiles' slices.
    pub omap: Tensor3<i16>,
    /// System cycles: waves of concurrent tile assignments, each costing
    /// its slowest member.
    pub compute_cycles: u64,
    /// Total effectual offsets across all tiles.
    pub offsets_processed: u64,
}

/// One work assignment: a filter range over a row range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Assignment {
    k0: usize,
    k1: usize,
    y0: usize,
    y1: usize,
}

/// Emulates one layer across `cfg.tiles` tiles.
///
/// # Panics
///
/// Panics under the same conditions as [`run_tile`].
pub fn run_system(trace: &LayerTrace, cfg: &SystemConfig) -> SystemRun {
    let out = trace.out_shape();
    let (_, spatial) =
        tile_partition(out.c, out.h, cfg.tile.filter_rows, cfg.tiles);
    // Spatial row-splitting is emulated for the stride-1 layers that
    // dominate CI-DNNs (slice/window alignment requires the pad to land
    // on a window boundary); strided layers fall back to filter
    // splitting only.
    let spatial = if trace.geom.stride == 1 { spatial as usize } else { 1 };

    // Build the assignment list: filter groups × spatial row slices.
    let mut assignments = Vec::new();
    let groups = out.c.div_ceil(cfg.tile.filter_rows);
    for g in 0..groups {
        let k0 = g * cfg.tile.filter_rows;
        let k1 = (k0 + cfg.tile.filter_rows).min(out.c);
        for s in 0..spatial {
            let y0 = out.h * s / spatial;
            let y1 = out.h * (s + 1) / spatial;
            if y0 < y1 {
                assignments.push(Assignment { k0, k1, y0, y1 });
            }
        }
    }

    let mut omap = Tensor3::<i16>::new(out.c, out.h, out.w);
    let mut compute_cycles = 0u64;
    let mut offsets = 0u64;

    // Waves of `tiles` concurrent assignments.
    for wave in assignments.chunks(cfg.tiles) {
        let mut wave_max = 0u64;
        for a in wave {
            let run = run_slice(trace, cfg, *a);
            wave_max = wave_max.max(run.compute_cycles);
            offsets += run.offsets_processed;
            for k in a.k0..a.k1 {
                for y in a.y0..a.y1 {
                    for x in 0..out.w {
                        *omap.at_mut(k, y, x) = *run.omap.at(k - a.k0, y - a.y0, x);
                    }
                }
            }
        }
        compute_cycles += wave_max;
    }

    SystemRun { omap, compute_cycles, offsets_processed: offsets }
}

/// Runs one assignment on one tile by slicing the trace.
fn run_slice(trace: &LayerTrace, cfg: &SystemConfig, a: Assignment) -> TileRun {
    let ishape = trace.imap.shape();
    let fshape = trace.fmaps.shape();
    let geom = trace.geom;

    // The row slice [y0, y1) of the omap reads imap rows
    // [y0*s - pad, (y1-1)*s - pad + extent). Clamp to the imap and track
    // the offset so window coordinates stay aligned; out-of-range rows
    // are re-materialized as explicit zero padding so the slice sees the
    // same values the full layer does.
    let extent = geom.effective_extent(fshape.h);
    let iy_lo = a.y0 as isize * geom.stride as isize - geom.pad as isize;
    let iy_hi = (a.y1 - 1) as isize * geom.stride as isize - geom.pad as isize + extent as isize;
    let rows = (iy_hi - iy_lo) as usize;
    let mut sub_imap = Tensor3::<i16>::new(ishape.c, rows, ishape.w);
    for c in 0..ishape.c {
        for (ry, iy) in (iy_lo..iy_hi).enumerate() {
            if iy < 0 || iy as usize >= ishape.h {
                continue; // stays zero, exactly like the pad
            }
            for x in 0..ishape.w {
                *sub_imap.at_mut(c, ry, x) = *trace.imap.at(c, iy as usize, x);
            }
        }
    }

    // Slice the filters to [k0, k1).
    let kn = a.k1 - a.k0;
    let mut sub_fmaps = diffy_tensor::Tensor4::<i16>::new(kn, fshape.c, fshape.h, fshape.w);
    for k in 0..kn {
        for c in 0..fshape.c {
            for j in 0..fshape.h {
                for i in 0..fshape.w {
                    *sub_fmaps.at_mut(k, c, j, i) = *trace.fmaps.at(a.k0 + k, c, j, i);
                }
            }
        }
    }

    // Vertical padding is baked into sub_imap; horizontal padding still
    // applies. Express that as pad columns only by keeping `pad` and
    // compensating the extra top rows we materialized.
    let sub_trace = LayerTrace {
        name: trace.name.clone(),
        index: trace.index,
        imap: sub_imap,
        fmaps: sub_fmaps,
        geom: diffy_tensor::ConvGeometry {
            stride: geom.stride,
            pad: geom.pad,
            dilation: geom.dilation,
        },
        relu: trace.relu,
        requant_shift: trace.requant_shift,
        requant_bias: trace.requant_bias,
        next_stride: trace.next_stride,
    };
    // The slice already materializes the vertical pad region, while the
    // tile re-pads it; sub-output row r has its window top at
    // iy_lo + r·s − pad, so the rows belonging to [y0, y1) start at
    // r = pad/s (stride-1 here whenever spatial splitting is active).
    let run = run_tile(&sub_trace, &cfg.tile);
    let want_rows = a.y1 - a.y0;
    let skip = geom.pad.div_ceil(geom.stride);
    let out_w = run.omap.shape().w;
    let mut omap = Tensor3::<i16>::new(kn, want_rows, out_w);
    for k in 0..kn {
        for r in 0..want_rows {
            for x in 0..out_w {
                *omap.at_mut(k, r, x) = *run.omap.at(k, skip + r, x);
            }
        }
    }
    TileRun {
        omap,
        omap_deltas: run.omap_deltas,
        compute_cycles: run.compute_cycles,
        offsets_processed: run.offsets_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_tensor::{ConvGeometry, Tensor4};

    fn mk_trace(c: usize, h: usize, w: usize, k: usize) -> LayerTrace {
        let data: Vec<i16> = (0..c * h * w)
            .map(|i| ((i as u64).wrapping_mul(6364136223846793005) >> 52) as i16)
            .collect();
        let wdata: Vec<i16> = (0..k * c * 9)
            .map(|i| ((i as u64 * 40503) % 201) as i16 - 100)
            .collect();
        LayerTrace {
            name: "sys".into(),
            index: 0,
            imap: Tensor3::from_vec(c, h, w, data.iter().map(|v| v.abs()).collect()),
            fmaps: Tensor4::from_vec(k, c, 3, 3, wdata),
            geom: ConvGeometry::same(3, 3),
            relu: true,
            requant_shift: 6,
            requant_bias: 0,
            next_stride: 1,
        }
    }

    #[test]
    fn system_output_matches_single_tile() {
        // K=8, 4 tiles: one filter group, 4-way spatial split — the
        // assembled omap must equal a single tile over the whole layer.
        let t = mk_trace(4, 8, 20, 8);
        let single = run_tile(&t, &TileConfig::default());
        let system = run_system(&t, &SystemConfig::default());
        assert_eq!(system.omap, single.omap);
    }

    #[test]
    fn system_output_matches_with_filter_split() {
        // K=40 on 16-row tiles: 3 filter groups over 4 tiles.
        let t = mk_trace(3, 6, 18, 40);
        let single = run_tile(&t, &TileConfig::default());
        let system = run_system(&t, &SystemConfig::default());
        assert_eq!(system.omap, single.omap);
    }

    #[test]
    fn more_tiles_do_not_change_the_answer_but_cut_cycles() {
        let t = mk_trace(4, 12, 24, 16);
        let one = run_system(&t, &SystemConfig { tiles: 1, tile: TileConfig::default() });
        let four = run_system(&t, &SystemConfig::default());
        assert_eq!(one.omap, four.omap);
        assert!(four.compute_cycles < one.compute_cycles);
        // Same total effectual work modulo the halo rows each spatial
        // slice re-reads (its windows overlap the neighbour slice).
        assert!(four.offsets_processed >= one.offsets_processed);
    }

    #[test]
    fn system_cycles_are_bounded_by_single_tile_cycles() {
        let t = mk_trace(4, 8, 20, 32);
        let single = run_tile(&t, &TileConfig::default());
        let system = run_system(&t, &SystemConfig::default());
        assert!(system.compute_cycles <= single.compute_cycles);
        assert!(system.compute_cycles > 0);
    }
}
