//! End-to-end evaluation of a network trace on one architecture:
//! cycle model + activation storage scheme + off-chip memory.
//!
//! This is the composition the paper's performance figures are built
//! from: per layer, `time = max(compute, transfer)` under the
//! double-buffered row dataflow, with the storage scheme setting the
//! transfer volume.

use crate::parallel::KeyedCache;
use diffy_encoding::StorageScheme;
use diffy_memsys::overlap::{combine, fps, LayerTiming};
use diffy_memsys::traffic::{layer_traffic, network_traffic_profiled, LayerTraffic};
use diffy_memsys::MemorySystem;
use diffy_models::{LayerTrace, NetworkTrace};
use diffy_sim::scnn::{scnn_network, ScnnConfig};
use diffy_sim::{
    term_serial_network_with_terms, vaa_network, AcceleratorConfig, Architecture, LayerCycles,
    PaddedTerms, ValueMode,
};
use std::sync::Arc;

/// A per-layer source of prebuilt [`PaddedTerms`], shared across the
/// evaluations of one trace so N architectures/configurations pay the
/// expensive term-plane build once per layer (see `diffy_sim`'s
/// group-reduced term planes). Must be callable from several workers.
pub type TermPlaneSource<'a> = &'a (dyn Fn(usize, &LayerTrace) -> Arc<PaddedTerms> + Sync);

/// Activation storage scheme selection, including the paper's "Ideal"
/// (infinite bandwidth) configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeChoice {
    /// A concrete storage scheme (NoCompression, RawD16, DeltaD16, …).
    Scheme(StorageScheme),
    /// Per-layer profile-derived precisions at the given magnitude
    /// quantile (Table III / the "Profiled" bars).
    Profiled {
        /// Quantile of the magnitude distribution the precision covers.
        quantile: f64,
    },
    /// Infinite off-chip bandwidth — isolates compute.
    Ideal,
}

impl SchemeChoice {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            SchemeChoice::Scheme(s) => s.to_string(),
            SchemeChoice::Profiled { .. } => "Profiled".to_string(),
            SchemeChoice::Ideal => "Ideal".to_string(),
        }
    }
}

/// Options for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOptions {
    /// Which architecture to model.
    pub arch: Architecture,
    /// Tile configuration.
    pub cfg: AcceleratorConfig,
    /// Activation storage scheme.
    pub scheme: SchemeChoice,
    /// Off-chip memory system.
    pub memory: MemorySystem,
}

impl EvalOptions {
    /// Paper-default evaluation: Table IV config, DDR4-3200, the given
    /// architecture and scheme.
    pub fn new(arch: Architecture, scheme: SchemeChoice) -> Self {
        Self {
            arch,
            cfg: AcceleratorConfig::table4(),
            scheme,
            memory: MemorySystem::single(diffy_memsys::MemoryNode::Ddr4_3200),
        }
    }
}

/// Per-layer evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// Layer name.
    pub name: String,
    /// Compute-cycle accounting.
    pub compute: LayerCycles,
    /// Off-chip traffic.
    pub traffic: LayerTraffic,
    /// Combined timing.
    pub timing: LayerTiming,
}

/// Whole-network evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkResult {
    /// Model name.
    pub model: String,
    /// Architecture name.
    pub arch: &'static str,
    /// Scheme label.
    pub scheme: String,
    /// Per-layer results.
    pub layers: Vec<LayerResult>,
    /// The configuration's clock, for FPS conversions.
    pub frequency_ghz: f64,
}

impl NetworkResult {
    /// Total execution cycles (compute and stalls).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.timing.total_cycles).sum()
    }

    /// Total compute cycles.
    pub fn compute_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.timing.compute_cycles).sum()
    }

    /// Total stall cycles.
    pub fn stall_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.timing.stall_cycles).sum()
    }

    /// Fraction of execution spent stalled on off-chip memory.
    pub fn stall_fraction(&self) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            0.0
        } else {
            self.stall_cycles() as f64 / t as f64
        }
    }

    /// Total off-chip traffic in bytes.
    pub fn total_traffic_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.traffic.total_bytes()).sum()
    }

    /// Activation-only off-chip traffic in bytes.
    pub fn activation_traffic_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.traffic.activation_bytes()).sum()
    }

    /// Frames per second at the traced resolution.
    pub fn fps(&self) -> f64 {
        fps(self.total_cycles(), self.frequency_ghz)
    }

    /// Frames per second projected to a different source resolution.
    ///
    /// CI-DNNs are fully convolutional, so per-frame work scales linearly
    /// with pixel count (DESIGN.md §2.3): cycles scale by
    /// `target_pixels / traced_pixels`.
    pub fn fps_scaled(&self, traced_pixels: u64, target_pixels: u64) -> f64 {
        assert!(traced_pixels > 0, "traced pixel count must be positive");
        let scale = target_pixels as f64 / traced_pixels as f64;
        let cycles = (self.total_cycles() as f64 * scale).ceil();
        if cycles == 0.0 {
            f64::INFINITY
        } else {
            self.frequency_ghz * 1e9 / cycles
        }
    }
}

/// Evaluates a batch of `(trace, options)` jobs across `par` workers,
/// returning results **in job order**.
///
/// Each job is the self-contained [`evaluate_network`] computation, so
/// results are bit-identical to a serial loop over the same slice at any
/// worker count (see [`crate::parallel`]). This is the fan-out point for
/// architecture comparisons and tiles × memory grids, where one trace is
/// evaluated under many options.
pub fn evaluate_network_batch(
    jobs: &[(&NetworkTrace, EvalOptions)],
    par: crate::parallel::Jobs,
) -> Vec<NetworkResult> {
    // Jobs in one batch frequently evaluate the *same* trace under many
    // architectures/configurations; share each layer's term planes across
    // them, keyed by trace identity (the borrows outlive the batch, so
    // addresses are stable and unique for its duration). Sharing never
    // changes results — planes are a pure function of the layer.
    let planes: KeyedCache<(usize, usize), PaddedTerms> = KeyedCache::new();
    let tasks: Vec<_> = jobs
        .iter()
        .map(|&(trace, opts)| {
            let planes = &planes;
            move || {
                let trace_id = trace as *const NetworkTrace as usize;
                let source = |i: usize, layer: &LayerTrace| {
                    planes.get_or_compute((trace_id, i), || PaddedTerms::for_layer(layer))
                };
                evaluate_network_with_terms(trace, &opts, Some(&source))
            }
        })
        .collect();
    crate::parallel::run_jobs(tasks, par)
}

/// Evaluates a network trace under the given options.
pub fn evaluate_network(trace: &NetworkTrace, opts: &EvalOptions) -> NetworkResult {
    evaluate_network_with_terms(trace, opts, None)
}

/// Per-layer off-chip traffic of a whole trace under one scheme choice.
///
/// A pure function of `(trace, scheme)` — the bitstream encodings it
/// counts never depend on the architecture, memory node, or any prior
/// evaluation. Extracted so callers that price one trace repeatedly (the
/// serve/sweep cache) can memoize it: for the concrete schemes this
/// re-encodes every layer's input and output activation maps, which is
/// the dominant cost of a warm evaluation.
pub fn network_scheme_traffic(trace: &NetworkTrace, scheme: SchemeChoice) -> Vec<LayerTraffic> {
    match scheme {
        SchemeChoice::Scheme(s) => trace
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| layer_traffic(l, trace.omap(i), s))
            .collect(),
        SchemeChoice::Profiled { quantile } => network_traffic_profiled(trace, quantile),
        SchemeChoice::Ideal => trace
            .layers
            .iter()
            .map(|_| LayerTraffic::default())
            .collect(),
    }
}

/// A shared source of the per-layer traffic vector for the trace being
/// evaluated, under the scheme in the caller's [`EvalOptions`]. Must
/// return exactly [`network_scheme_traffic`] of that pair; callers use
/// it to serve memoized traffic. Must be callable from several workers.
pub type TrafficSource<'a> = &'a (dyn Fn() -> Arc<Vec<LayerTraffic>> + Sync);

/// [`evaluate_network`] over an optional shared term-plane source.
///
/// The term-serial architectures (PRA, Diffy) draw each layer's
/// [`PaddedTerms`] from `terms`, so callers evaluating one trace many
/// times (sweeps, architecture comparisons, tile ladders) amortize the
/// build; `None` builds fresh planes per layer, exactly once per
/// evaluation. Results are bit-identical either way.
pub fn evaluate_network_with_terms(
    trace: &NetworkTrace,
    opts: &EvalOptions,
    terms: Option<TermPlaneSource<'_>>,
) -> NetworkResult {
    evaluate_network_with_artifacts(trace, opts, terms, None)
}

/// [`evaluate_network_with_terms`] over an additional optional traffic
/// source, so callers can also amortize the storage-scheme traffic model
/// across evaluations of one `(trace, scheme)` pair. `None` computes
/// traffic fresh; results are bit-identical either way because traffic
/// is a pure function of that pair.
pub fn evaluate_network_with_artifacts(
    trace: &NetworkTrace,
    opts: &EvalOptions,
    terms: Option<TermPlaneSource<'_>>,
    traffic: Option<TrafficSource<'_>>,
) -> NetworkResult {
    let _eval_span = crate::trace::span_args("evaluate_network", || {
        vec![
            ("model", trace.model.clone().into()),
            ("arch", opts.arch.name().into()),
            ("scheme", opts.scheme.label().into()),
        ]
    });
    let terms_for = |i: usize, layer: &LayerTrace| match terms {
        Some(source) => source(i, layer),
        None => {
            let _s = crate::trace::span_args("term_plane_build", || vec![("layer", i.into())]);
            Arc::new(PaddedTerms::for_layer(layer))
        }
    };
    let compute = {
        let _s = crate::trace::span_args("tile_sim", || vec![("arch", opts.arch.name().into())]);
        match opts.arch {
            Architecture::Vaa => vaa_network(trace, &opts.cfg),
            Architecture::Pra => {
                term_serial_network_with_terms(trace, &opts.cfg, ValueMode::Raw, terms_for)
            }
            Architecture::Diffy => {
                term_serial_network_with_terms(trace, &opts.cfg, ValueMode::Differential, terms_for)
            }
            Architecture::Scnn => scnn_network(
                trace,
                &ScnnConfig { frequency_ghz: opts.cfg.frequency_ghz, ..Default::default() },
            ),
        }
    };

    let _memsys_span = crate::trace::span("memsys_model");
    let traffic: Arc<Vec<LayerTraffic>> = match traffic {
        Some(source) => source(),
        None => Arc::new(network_scheme_traffic(trace, opts.scheme)),
    };

    let memory = match opts.scheme {
        SchemeChoice::Ideal => MemorySystem::ideal(),
        _ => opts.memory,
    };

    let layers = trace
        .layers
        .iter()
        .zip(compute.layers.iter())
        .zip(traffic.iter())
        .map(|((lt, lc), tr)| LayerResult {
            name: lt.name.clone(),
            compute: *lc,
            traffic: *tr,
            timing: combine(lc.cycles, tr, &memory, opts.cfg.frequency_ghz),
        })
        .collect();

    NetworkResult {
        model: trace.model.clone(),
        arch: compute.arch,
        scheme: opts.scheme.label(),
        layers,
        frequency_ghz: opts.cfg.frequency_ghz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_memsys::MemoryNode;
    use diffy_models::{
        run_network, ConvSpec, LayerSpec, ModelSpec, NetworkWeights, WeightGen,
    };
    use diffy_tensor::{Quantizer, Tensor3};

    fn smooth_trace() -> NetworkTrace {
        let spec = ModelSpec::new(
            "t",
            1,
            vec![
                LayerSpec::Conv(ConvSpec::same3("c0", 8, true)),
                LayerSpec::Conv(ConvSpec::same3("c1", 1, false)),
            ],
        );
        let w = NetworkWeights::generate(&spec, WeightGen::new(1), Quantizer::default());
        let data: Vec<i16> = (0..32 * 32)
            .map(|i| {
                let x = (i % 32) as f32;
                let y = (i / 32) as f32;
                (120.0 + 50.0 * ((x / 7.0).sin() + (y / 9.0).cos())) as i16
            })
            .collect();
        run_network(&spec, &w, &Tensor3::from_vec(1, 32, 32, data))
    }

    #[test]
    fn diffy_beats_pra_beats_vaa_on_smooth_input() {
        let trace = smooth_trace();
        let scheme = SchemeChoice::Scheme(StorageScheme::delta_d(16));
        let vaa = evaluate_network(&trace, &EvalOptions::new(Architecture::Vaa, scheme));
        let pra = evaluate_network(&trace, &EvalOptions::new(Architecture::Pra, scheme));
        let diffy = evaluate_network(&trace, &EvalOptions::new(Architecture::Diffy, scheme));
        assert!(pra.total_cycles() < vaa.total_cycles());
        assert!(diffy.total_cycles() < pra.total_cycles());
        assert!(diffy.fps() > vaa.fps());
    }

    #[test]
    fn ideal_scheme_removes_stalls() {
        let trace = smooth_trace();
        let mut opts = EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal);
        opts.memory = MemorySystem::single(MemoryNode::Lpddr3_1600);
        let r = evaluate_network(&trace, &opts);
        assert_eq!(r.stall_cycles(), 0);
        assert_eq!(r.total_traffic_bytes(), 0);
    }

    #[test]
    fn compression_reduces_traffic_and_stalls() {
        let trace = smooth_trace();
        let mut none = EvalOptions::new(
            Architecture::Diffy,
            SchemeChoice::Scheme(StorageScheme::NoCompression),
        );
        // A deliberately weak memory so stalls appear at this tiny size.
        none.memory = MemorySystem { node: MemoryNode::Lpddr3_1600, channels: 1 };
        let mut delta = none;
        delta.scheme = SchemeChoice::Scheme(StorageScheme::delta_d(16));
        let r_none = evaluate_network(&trace, &none);
        let r_delta = evaluate_network(&trace, &delta);
        assert!(r_delta.activation_traffic_bytes() < r_none.activation_traffic_bytes());
        assert!(r_delta.total_cycles() <= r_none.total_cycles());
    }

    #[test]
    fn profiled_traffic_sits_between_none_and_dynamic() {
        let trace = smooth_trace();
        let mk = |scheme| {
            evaluate_network(&trace, &EvalOptions::new(Architecture::Diffy, scheme))
                .activation_traffic_bytes()
        };
        let none = mk(SchemeChoice::Scheme(StorageScheme::NoCompression));
        let prof = mk(SchemeChoice::Profiled { quantile: 0.999 });
        let delta = mk(SchemeChoice::Scheme(StorageScheme::delta_d(16)));
        assert!(prof < none);
        assert!(delta < prof);
    }

    #[test]
    fn fps_scaling_is_linear_in_pixels() {
        let trace = smooth_trace();
        let r = evaluate_network(
            &trace,
            &EvalOptions::new(Architecture::Vaa, SchemeChoice::Ideal),
        );
        let base = r.fps_scaled(1024, 1024);
        let quarter = r.fps_scaled(1024, 4096);
        assert!((base / quarter - 4.0).abs() < 0.01, "{base} vs {quarter}");
    }

    #[test]
    fn layer_results_align_with_trace() {
        let trace = smooth_trace();
        let r = evaluate_network(
            &trace,
            &EvalOptions::new(Architecture::Pra, SchemeChoice::Ideal),
        );
        assert_eq!(r.layers.len(), trace.layers.len());
        assert_eq!(r.layers[0].name, "c0");
        assert_eq!(r.arch, "PRA");
    }
}
