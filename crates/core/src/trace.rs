//! Span tracing for the evaluation pipeline: where did the time go?
//!
//! A std-only, thread-safe span/event layer. Recording is designed for
//! hot paths shared with untraced runs:
//!
//! * **Disabled is (almost) free.** Every recording entry point starts
//!   with one relaxed atomic load; when tracing is off nothing else
//!   happens — no clock read, no allocation, no lock. Argument lists are
//!   built through closures (`span_args`) so callers pay for formatting
//!   only when a capture is live. diffy-bench pins this budget: the
//!   term-serial micro-kernel with a disabled span around it must stay
//!   within 1% of the bare kernel.
//! * **Enabled recording never blocks.** A finished span claims a slot
//!   ticket with one `fetch_add` (lock-free) and publishes the record
//!   into a fixed-size ring of slots via `try_lock` — a writer that
//!   collides with a lapping writer or a concurrent drain drops its
//!   record rather than wait; drops are counted and reported in the log.
//!   The ring keeps the most recent ~capacity records, which is what a
//!   long-lived server wants.
//! * **The drained log is order-stable.** Records carry the ring ticket
//!   they claimed; [`Collector::drain`]/[`Collector::snapshot`] sort by
//!   ticket, so two observers of the same session see the same sequence.
//!   For cross-run comparisons (span-tree determinism at any `--jobs`
//!   count) use [`TraceLog::canonical_tree`], which erases timestamps and
//!   sibling order entirely.
//!
//! Span nesting uses a per-thread span stack: a [`SpanGuard`] pushes its
//! span id on creation and records `(start, duration, parent)` when
//! dropped, so parents are linked without any cross-thread coordination.
//! Timestamps are nanoseconds on a process-wide monotonic clock
//! ([`Instant`]) anchored at the collector's first use.
//!
//! Export: [`TraceLog::to_chrome_json`] renders the log in Chrome
//! trace-event format (load via `chrome://tracing` or Perfetto). The CLI
//! wires this up as `diffy … --trace-out FILE` and the service serves it
//! live at `GET /trace`.
//!
//! One process-wide collector ([`Collector::global`]) backs the free
//! functions ([`span`], [`instant`], …) used by instrumentation sites;
//! private collectors can be constructed for tests. The per-thread span
//! stack is shared across collectors, so only one collector should be
//! active at a time — the global one in production, a private one in a
//! unit test.

use crate::json::JsonValue;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity (records) for [`Collector::start`].
pub const DEFAULT_CAPACITY: usize = 64 * 1024;

/// One argument value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An unsigned integer (indices, request ids, counts).
    U64(u64),
    /// A short label (model names, cache kinds).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Whether a record is a duration span or a point-in-time event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A `[start, start+dur]` interval (Chrome phase `X`).
    Span,
    /// A zero-duration marker (Chrome phase `i`), e.g. a cache hit.
    Instant,
}

/// One recorded span or instant event.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Ring ticket: a session-wide record sequence number (claim order).
    pub ticket: u64,
    /// Static span name — the taxonomy lives in DESIGN.md §5c.
    pub name: &'static str,
    /// Span vs instant.
    pub kind: EventKind,
    /// Stable per-thread id (assigned in first-use order, starting at 1).
    pub tid: u64,
    /// Unique id of this span within the collector (instants get one too).
    pub span_id: u64,
    /// `span_id` of the enclosing span on the same thread, or 0 for roots.
    pub parent_id: u64,
    /// Start time, nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A slot holds the record that claimed ticket `t` where `t % capacity`
/// is the slot index; the ticket disambiguates laps.
type Slot = Mutex<Option<SpanRecord>>;

struct Ring {
    slots: Vec<Slot>,
    /// Next ticket to claim. Tickets `< head` are claimed.
    head: AtomicU64,
}

/// A span/event collector: an on/off switch plus the record ring.
///
/// See the [module docs](self) for the recording contract. Most code uses
/// [`Collector::global`] through the free functions; tests may construct
/// private instances with [`Collector::new`].
pub struct Collector {
    enabled: AtomicBool,
    epoch: OnceLock<Instant>,
    ring: OnceLock<Ring>,
    capacity: usize,
    next_span_id: AtomicU64,
    /// First ticket of the current session (reset by `start`/`drain`).
    base: AtomicU64,
    /// Serializes start/stop/drain/snapshot; never held on the record path.
    control: Mutex<()>,
}

thread_local! {
    /// Stack of open span ids on this thread (shared across collectors).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's stable trace id, 0 until assigned.
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

fn thread_trace_id() -> u64 {
    THREAD_ID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

impl Collector {
    /// A collector with the default ring capacity, initially disabled.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A collector whose ring holds the most recent `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            epoch: OnceLock::new(),
            ring: OnceLock::new(),
            capacity: capacity.max(1),
            next_span_id: AtomicU64::new(1),
            base: AtomicU64::new(0),
            control: Mutex::new(()),
        }
    }

    /// The process-wide collector behind [`span`]/[`instant`]/… sites.
    pub fn global() -> &'static Collector {
        static GLOBAL: OnceLock<Collector> = OnceLock::new();
        GLOBAL.get_or_init(Collector::new)
    }

    /// Whether a capture is live (one relaxed load — the fast path).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Begins a capture session: allocates the ring on first use, moves
    /// the session base past any stale records, and enables recording.
    /// Starting an already-started collector is a no-op.
    pub fn start(&self) {
        let _g = self.control.lock().unwrap();
        let ring = self.ring();
        if !self.enabled() {
            self.base.store(ring.head.load(Ordering::Acquire), Ordering::Release);
            self.enabled.store(true, Ordering::Release);
        }
    }

    /// Disables recording. Records already published stay in the ring
    /// (readable via [`Collector::snapshot`]/[`Collector::drain`]); spans
    /// still open finish silently.
    pub fn stop(&self) {
        let _g = self.control.lock().unwrap();
        self.enabled.store(false, Ordering::Release);
    }

    /// Nanoseconds since the collector epoch, on the monotonic clock.
    pub fn now_ns(&self) -> u64 {
        let epoch = *self.epoch.get_or_init(Instant::now);
        epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Converts an [`Instant`] into epoch-relative nanoseconds (0 if the
    /// instant predates the epoch).
    pub fn ns_of(&self, t: Instant) -> u64 {
        let epoch = *self.epoch.get_or_init(Instant::now);
        match t.checked_duration_since(epoch) {
            Some(d) => d.as_nanos().min(u128::from(u64::MAX)) as u64,
            None => 0,
        }
    }

    /// Opens a span named `name`, closed (and recorded) when the returned
    /// guard drops. Inert when the collector is disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_args(name, Vec::new)
    }

    /// Opens a span with arguments; `args` is only invoked when tracing
    /// is enabled, so arbitrary formatting is free on untraced runs.
    pub fn span_args(
        &self,
        name: &'static str,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard { active: None, _not_send: PhantomData };
        }
        self.open_span(name, self.now_ns(), args())
    }

    /// Opens a span whose start time was measured earlier (e.g. a request
    /// span anchored at the accept timestamp). `start_ns` is
    /// epoch-relative, from [`Collector::now_ns`]/[`Collector::ns_of`].
    pub fn span_from(
        &self,
        name: &'static str,
        start_ns: u64,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard { active: None, _not_send: PhantomData };
        }
        self.open_span(name, start_ns, args())
    }

    fn open_span(
        &self,
        name: &'static str,
        start_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanGuard<'_> {
        let span_id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent_id = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(span_id);
            parent
        });
        SpanGuard {
            active: Some(ActiveSpan { collector: self, name, span_id, parent_id, start_ns, args }),
            _not_send: PhantomData,
        }
    }

    /// Records a zero-duration marker (e.g. a cache hit), parented to the
    /// innermost open span on this thread.
    pub fn instant(
        &self,
        name: &'static str,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        let now = self.now_ns();
        let span_id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent_id = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        self.publish(SpanRecord {
            ticket: 0,
            name,
            kind: EventKind::Instant,
            tid: thread_trace_id(),
            span_id,
            parent_id,
            start_ns: now,
            dur_ns: 0,
            args: args(),
        });
    }

    /// Records a completed interval measured outside the guard mechanism
    /// (e.g. queue wait: accept → dequeue), parented to the innermost
    /// open span on this thread.
    pub fn record_manual(
        &self,
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        let span_id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent_id = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        self.publish(SpanRecord {
            ticket: 0,
            name,
            kind: EventKind::Span,
            tid: thread_trace_id(),
            span_id,
            parent_id,
            start_ns,
            dur_ns,
            args: args(),
        });
    }

    fn ring(&self) -> &Ring {
        self.ring.get_or_init(|| Ring {
            slots: (0..self.capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        })
    }

    /// Claims a ticket and publishes `rec` into its slot. Never blocks:
    /// a contended slot (lapping writer, concurrent drain) loses the
    /// record; the reader accounts for it as a drop.
    fn publish(&self, mut rec: SpanRecord) {
        let ring = self.ring();
        let ticket = ring.head.fetch_add(1, Ordering::AcqRel);
        rec.ticket = ticket;
        let slot = &ring.slots[(ticket % ring.slots.len() as u64) as usize];
        if let Ok(mut s) = slot.try_lock() {
            *s = Some(rec);
        }
        // On try_lock failure the record is dropped; drain() counts the
        // gap between claimed tickets and collected records.
    }

    /// Collects the current session's records without ending the session.
    /// Recording continues; records published concurrently may land in
    /// either this snapshot or the next.
    pub fn snapshot(&self) -> TraceLog {
        let _g = self.control.lock().unwrap();
        self.collect()
    }

    /// Ends the session: disables recording, collects the log, and resets
    /// the session base so a later [`Collector::start`] begins empty.
    pub fn drain(&self) -> TraceLog {
        let _g = self.control.lock().unwrap();
        self.enabled.store(false, Ordering::Release);
        let log = self.collect();
        let ring = self.ring();
        self.base.store(ring.head.load(Ordering::Acquire), Ordering::Release);
        log
    }

    fn collect(&self) -> TraceLog {
        let ring = self.ring();
        let head = ring.head.load(Ordering::Acquire);
        let base = self.base.load(Ordering::Acquire);
        let cap = ring.slots.len() as u64;
        let lo = base.max(head.saturating_sub(cap));
        let mut spans = Vec::with_capacity((head - lo) as usize);
        for ticket in lo..head {
            let slot = &ring.slots[(ticket % cap) as usize];
            let guard = slot.lock().unwrap();
            if let Some(rec) = guard.as_ref() {
                if rec.ticket == ticket {
                    spans.push(rec.clone());
                }
            }
        }
        // Claimed but not collected: lapped (ticket < lo), lost to
        // try_lock contention, or still in flight on a writer thread.
        let dropped = (head - base) - spans.len() as u64;
        spans.sort_by_key(|r| r.ticket);
        TraceLog { spans, dropped }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

struct ActiveSpan<'a> {
    collector: &'a Collector,
    name: &'static str,
    span_id: u64,
    parent_id: u64,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII guard for an open span: records the span when dropped. Inert
/// (and nearly free) when the collector was disabled at creation.
///
/// Not `Send`: the span stack is per-thread, so a guard must drop on the
/// thread that created it.
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        // Pop this span from the thread stack. Guards drop in LIFO order
        // on a thread, so the top is ours; be defensive anyway.
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&span.span_id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&id| id == span.span_id) {
                s.remove(pos);
            }
        });
        let end = span.collector.now_ns();
        // A collector stopped mid-span loses the span: the session ended
        // before it closed. (Checked after the stack pop so nesting state
        // stays consistent either way.)
        if !span.collector.enabled() {
            return;
        }
        span.collector.publish(SpanRecord {
            ticket: 0,
            name: span.name,
            kind: EventKind::Span,
            tid: thread_trace_id(),
            span_id: span.span_id,
            parent_id: span.parent_id,
            start_ns: span.start_ns,
            dur_ns: end.saturating_sub(span.start_ns),
            args: span.args,
        });
    }
}

/// A drained/snapshotted capture session: records in ticket order plus
/// the number of records the ring could not keep.
#[derive(Debug, Clone)]
pub struct TraceLog {
    /// Collected records, sorted by ring ticket (stable claim order).
    pub spans: Vec<SpanRecord>,
    /// Records claimed during the session but not collected (ring lapped,
    /// publish contention, or still in flight at collection time).
    pub dropped: u64,
}

impl TraceLog {
    /// Number of records named `name`.
    pub fn count(&self, name: &str) -> usize {
        self.spans.iter().filter(|r| r.name == name).count()
    }

    /// Total duration (ns) across all spans named `name`.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans.iter().filter(|r| r.name == name).map(|r| r.dur_ns).sum()
    }

    /// Record-name → count map, for structure assertions that must not
    /// depend on which thread did the work.
    pub fn name_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for r in &self.spans {
            *counts.entry(r.name).or_insert(0) += 1;
        }
        counts
    }

    /// A canonical rendering of the span tree: names and nesting only —
    /// no timestamps, thread ids, span ids, or argument values — with
    /// siblings sorted by their rendered subtree. Two runs of the same
    /// work decompose identically iff these strings are equal, regardless
    /// of `--jobs` count or thread interleaving.
    pub fn canonical_tree(&self) -> String {
        let ids: std::collections::HashSet<u64> = self.spans.iter().map(|r| r.span_id).collect();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots = Vec::new();
        for (i, r) in self.spans.iter().enumerate() {
            // Orphans (parent span never recorded, e.g. still open at
            // snapshot time) render as roots.
            if r.parent_id != 0 && ids.contains(&r.parent_id) {
                children.entry(r.parent_id).or_default().push(i);
            } else {
                roots.push(i);
            }
        }
        fn render(
            log: &TraceLog,
            children: &BTreeMap<u64, Vec<usize>>,
            idx: usize,
            depth: usize,
            out: &mut String,
        ) {
            let r = &log.spans[idx];
            let mut subs: Vec<String> = children
                .get(&r.span_id)
                .map(|kids| {
                    kids.iter()
                        .map(|&k| {
                            let mut s = String::new();
                            render(log, children, k, depth + 1, &mut s);
                            s
                        })
                        .collect()
                })
                .unwrap_or_default();
            subs.sort();
            out.push_str(&"  ".repeat(depth));
            out.push_str(r.name);
            if r.kind == EventKind::Instant {
                out.push_str(" (i)");
            }
            out.push('\n');
            for s in subs {
                out.push_str(&s);
            }
        }
        let mut rendered: Vec<String> = roots
            .iter()
            .map(|&i| {
                let mut s = String::new();
                render(self, &children, i, 0, &mut s);
                s
            })
            .collect();
        rendered.sort();
        rendered.concat()
    }

    /// Renders the log in Chrome trace-event JSON (the `traceEvents`
    /// array format): load the file in `chrome://tracing` or Perfetto.
    /// Timestamps/durations are microseconds since the collector epoch;
    /// span and parent ids ride along in each event's `args`.
    pub fn to_chrome_json(&self) -> JsonValue {
        let events: Vec<JsonValue> = self.spans.iter().map(Self::event_json).collect();
        JsonValue::object(vec![
            ("traceEvents", JsonValue::Array(events)),
            ("displayTimeUnit", "ms".into()),
            ("otherData", JsonValue::object(vec![("dropped", self.dropped.into())])),
        ])
    }

    fn event_json(r: &SpanRecord) -> JsonValue {
        let mut args: Vec<(&str, JsonValue)> =
            vec![("span_id", r.span_id.into()), ("parent", r.parent_id.into())];
        for (k, v) in &r.args {
            let jv = match v {
                ArgValue::U64(n) => JsonValue::from(*n),
                ArgValue::Str(s) => JsonValue::from(s.as_str()),
            };
            args.push((k, jv));
        }
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("name", r.name.into()),
            ("cat", "diffy".into()),
            (
                "ph",
                match r.kind {
                    EventKind::Span => "X".into(),
                    EventKind::Instant => "i".into(),
                },
            ),
            ("ts", JsonValue::from(r.start_ns as f64 / 1e3)),
        ];
        match r.kind {
            EventKind::Span => fields.push(("dur", JsonValue::from(r.dur_ns as f64 / 1e3))),
            EventKind::Instant => fields.push(("s", "t".into())),
        }
        fields.push(("pid", 1u64.into()));
        fields.push(("tid", r.tid.into()));
        fields.push(("args", JsonValue::object(args)));
        JsonValue::object(fields)
    }
}

// ---- free functions over the global collector ------------------------

/// Whether the global collector has a live capture.
#[inline]
pub fn enabled() -> bool {
    Collector::global().enabled()
}

/// Opens a span on the global collector; see [`Collector::span`].
#[inline]
pub fn span(name: &'static str) -> SpanGuard<'static> {
    Collector::global().span(name)
}

/// Opens a span with lazy arguments on the global collector.
#[inline]
pub fn span_args(
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
) -> SpanGuard<'static> {
    Collector::global().span_args(name, args)
}

/// Records an instant event on the global collector.
#[inline]
pub fn instant(name: &'static str, args: impl FnOnce() -> Vec<(&'static str, ArgValue)>) {
    Collector::global().instant(name, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The per-thread span stack is shared across collectors, so tests
    /// that open spans serialize on this (tests in this module use
    /// private collectors, but spans still share the thread stack when
    /// the harness reuses threads).
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_collector_records_nothing() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Collector::new();
        {
            let _s = c.span("outer");
            c.instant("hit", Vec::new);
        }
        let log = c.drain();
        assert!(log.spans.is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn nesting_links_parents_and_orders_records() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Collector::new();
        c.start();
        {
            let _a = c.span("a");
            {
                let _b = c.span_args("b", || vec![("idx", 3usize.into())]);
                c.instant("hit", || vec![("kind", "weights".into())]);
            }
            let _b2 = c.span("b2");
        }
        let log = c.drain();
        assert_eq!(log.spans.len(), 4);
        // Records land in close order: hit, b, b2, a.
        assert_eq!(log.spans[0].name, "hit");
        assert_eq!(log.spans[1].name, "b");
        assert_eq!(log.spans[2].name, "b2");
        assert_eq!(log.spans[3].name, "a");
        let a = &log.spans[3];
        let b = &log.spans[1];
        let hit = &log.spans[0];
        assert_eq!(a.parent_id, 0);
        assert_eq!(b.parent_id, a.span_id);
        assert_eq!(hit.parent_id, b.span_id);
        assert_eq!(hit.kind, EventKind::Instant);
        assert_eq!(b.args, vec![("idx", ArgValue::U64(3))]);
        assert!(a.dur_ns >= b.dur_ns, "parent covers child");
        assert_eq!(log.count("b"), 1);
        assert!(log.total_ns("a") >= log.total_ns("b"));
    }

    #[test]
    fn span_args_closure_not_called_when_disabled() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Collector::new();
        let mut called = false;
        {
            let _s = c.span_args("x", || {
                called = true;
                Vec::new()
            });
        }
        assert!(!called, "arg closure must not run when tracing is off");
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Collector::with_capacity(4);
        c.start();
        for i in 0..10usize {
            c.instant("e", move || vec![("i", i.into())]);
        }
        let log = c.drain();
        assert_eq!(log.spans.len(), 4);
        assert_eq!(log.dropped, 6);
        // The survivors are the last four, in order.
        let kept: Vec<u64> = log
            .spans
            .iter()
            .map(|r| match r.args[0].1 {
                ArgValue::U64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drain_resets_session() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Collector::new();
        c.start();
        c.instant("first", Vec::new);
        assert_eq!(c.drain().spans.len(), 1);
        c.start();
        c.instant("second", Vec::new);
        let log = c.drain();
        assert_eq!(log.spans.len(), 1);
        assert_eq!(log.spans[0].name, "second");
    }

    #[test]
    fn snapshot_does_not_end_session() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Collector::new();
        c.start();
        c.instant("a", Vec::new);
        let snap = c.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert!(c.enabled());
        c.instant("b", Vec::new);
        let log = c.drain();
        assert_eq!(log.spans.len(), 2);
    }

    #[test]
    fn manual_records_and_anchored_starts() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Collector::new();
        c.start();
        let t0 = c.now_ns();
        {
            let _req = c.span_from("request", t0, || vec![("req", 7usize.into())]);
            c.record_manual("queue_wait", t0, 1234, Vec::new);
        }
        let log = c.drain();
        assert_eq!(log.spans.len(), 2);
        let qw = &log.spans[0];
        assert_eq!(qw.name, "queue_wait");
        assert_eq!(qw.dur_ns, 1234);
        assert_eq!(qw.start_ns, t0);
        let req = &log.spans[1];
        assert_eq!(req.start_ns, t0);
        assert_eq!(qw.parent_id, req.span_id);
    }

    #[test]
    fn canonical_tree_ignores_order_and_threads() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Two interleavings of the same structure.
        let build = |flip: bool| {
            let c = Collector::new();
            c.start();
            let names = if flip { ["x", "y"] } else { ["y", "x"] };
            for n in names {
                let _p = c.span(if n == "x" { "x" } else { "y" });
                let _k = c.span("kernel");
            }
            c.drain()
        };
        let a = build(false).canonical_tree();
        let b = build(true).canonical_tree();
        assert_eq!(a, b);
        assert!(a.contains("x\n  kernel\n"), "tree:\n{a}");
    }

    #[test]
    fn concurrent_recording_is_safe_and_counted() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Collector::new();
        c.start();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..100usize {
                        let _s = c.span_args("work", move || vec![("t", t.into()), ("i", i.into())]);
                    }
                });
            }
        });
        let log = c.drain();
        assert_eq!(log.spans.len() as u64 + log.dropped, 400);
        assert_eq!(log.dropped, 0, "uncontended ring should keep everything");
        // Tickets are unique and sorted.
        for w in log.spans.windows(2) {
            assert!(w[0].ticket < w[1].ticket);
        }
        // Four distinct thread ids.
        let tids: std::collections::HashSet<u64> = log.spans.iter().map(|r| r.tid).collect();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_shape() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Collector::new();
        c.start();
        {
            let _s = c.span_args("stage", || vec![("model", "IRCNN".into())]);
            c.instant("cache_hit", || vec![("kind", "trace".into())]);
        }
        let log = c.drain();
        let doc = log.to_chrome_json();
        let text = doc.to_json();
        let parsed = crate::json::parse(&text).expect("chrome export parses");
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert!(e.get("name").unwrap().as_str().is_some());
            let ph = e.get("ph").unwrap().as_str().unwrap().to_string();
            assert!(ph == "X" || ph == "i", "phase {ph}");
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("pid").unwrap().as_u64().is_some());
            assert!(e.get("tid").unwrap().as_u64().is_some());
            if ph == "X" {
                assert!(e.get("dur").unwrap().as_f64().is_some());
            }
            assert!(e.get("args").unwrap().get("span_id").unwrap().as_u64().is_some());
        }
        assert_eq!(parsed.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
        assert_eq!(parsed.get("otherData").unwrap().get("dropped").unwrap().as_u64(), Some(0));
        // The span's model argument survives the round trip.
        let stage = events.iter().find(|e| e.get("name").unwrap().as_str() == Some("stage"));
        assert_eq!(stage.unwrap().get("args").unwrap().get("model").unwrap().as_str(), Some("IRCNN"));
    }

    #[test]
    fn ns_of_maps_instants_onto_epoch() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Collector::new();
        let before = Instant::now();
        let a = c.now_ns(); // initializes the epoch
        let after = c.ns_of(Instant::now());
        assert!(after >= a);
        // An instant captured before the epoch clamps to 0.
        let _ = before;
        assert_eq!(c.ns_of(before.checked_sub(std::time::Duration::from_secs(1)).unwrap_or(before)), 0);
    }
}
