//! Differential convolution (§III-C, Eqs. 3 and 4).
//!
//! Given an output computed directly,
//!
//! ```text
//! o(n, y, x+1) = o(n, y, x) + ⟨wⁿ, Δ⟩
//! Δ(k, j, i)   = a(k, j + yS, i + (x+1)S) − a(k, j + yS, i + xS)
//! ```
//!
//! — multiplication distributes over the difference, so computing each
//! output from its left neighbour plus an inner product with the window
//! deltas is *bit-exact* relative to direct convolution when the
//! arithmetic is exact (64-bit accumulators here; the property tests in
//! this module and in `tests/` enforce equality against
//! [`diffy_tensor::conv2d`] over arbitrary tensors and geometries).
//!
//! This module is the functional ground truth for what the Diffy hardware
//! computes; the cycle model in `diffy-sim` prices the same dataflow.

use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

/// Computes a convolutional layer differentially: the leftmost output of
/// each row directly (Eq. 1), every subsequent output from its left
/// neighbour plus the delta inner product (Eq. 4) — exactly Diffy's
/// dataflow (§III-D).
///
/// Returns the raw accumulator omap, bit-identical to
/// [`diffy_tensor::conv2d`].
///
/// # Panics
///
/// Panics if the channel counts of `imap` and `fmaps` disagree, or if
/// `bias` is present with a length other than `K`.
///
/// # Example
///
/// ```
/// use diffy_core::dc::differential_conv2d;
/// use diffy_tensor::{conv2d, ConvGeometry, Tensor3, Tensor4};
/// let imap = Tensor3::from_vec(1, 1, 3, vec![10i16, 11, 11]);
/// let fmaps = Tensor4::from_vec(1, 1, 1, 1, vec![3i16]);
/// let o = differential_conv2d(&imap, &fmaps, None, ConvGeometry::unit());
/// assert_eq!(o.as_slice(), &[30, 33, 33]);
/// ```
pub fn differential_conv2d(
    imap: &Tensor3<i16>,
    fmaps: &Tensor4<i16>,
    bias: Option<&[i64]>,
    geom: ConvGeometry,
) -> Tensor3<i64> {
    let ishape = imap.shape();
    let fshape = fmaps.shape();
    assert_eq!(ishape.c, fshape.c, "channel mismatch: imap {} vs fmaps {}", ishape.c, fshape.c);
    if let Some(b) = bias {
        assert_eq!(b.len(), fshape.k, "bias length {} != filters {}", b.len(), fshape.k);
    }
    let oshape = geom.out_shape(ishape, fshape);
    let mut omap = Tensor3::<i64>::new(oshape.c, oshape.h, oshape.w);
    if oshape.is_empty() {
        return omap;
    }

    let pad = geom.pad as isize;
    let s = geom.stride as isize;
    let d = geom.dilation as isize;

    // Padded activation fetch (zero outside), in imap coordinates.
    let fetch = |c: usize, iy: isize, ix: isize| -> i64 {
        if iy < 0 || ix < 0 || iy as usize >= ishape.h || ix as usize >= ishape.w {
            0
        } else {
            *imap.at(c, iy as usize, ix as usize) as i64
        }
    };

    for n in 0..fshape.k {
        let b = bias.map(|b| b[n]).unwrap_or(0);
        for oy in 0..oshape.h {
            let base_y = oy as isize * s - pad;
            // Leftmost output of the row: direct (Eq. 1).
            let mut prev: i64 = b;
            for c in 0..fshape.c {
                for j in 0..fshape.h {
                    let iy = base_y + j as isize * d;
                    for i in 0..fshape.w {
                        let ix = -pad + i as isize * d;
                        prev += *fmaps.at(n, c, j, i) as i64 * fetch(c, iy, ix);
                    }
                }
            }
            *omap.at_mut(n, oy, 0) = prev;

            // Remaining outputs: differential (Eq. 4).
            for ox in 1..oshape.w {
                let base_x = ox as isize * s - pad;
                let mut delta_ip: i64 = 0;
                for c in 0..fshape.c {
                    for j in 0..fshape.h {
                        let iy = base_y + j as isize * d;
                        for i in 0..fshape.w {
                            let ix = base_x + i as isize * d;
                            let delta = fetch(c, iy, ix) - fetch(c, iy, ix - s);
                            delta_ip += *fmaps.at(n, c, j, i) as i64 * delta;
                        }
                    }
                }
                prev += delta_ip;
                *omap.at_mut(n, oy, ox) = prev;
            }
        }
    }
    omap
}

/// The fraction of outputs computed differentially under Diffy's
/// dataflow: everything except the leftmost output of each row.
pub fn differential_fraction(out_w: usize) -> f64 {
    if out_w == 0 {
        0.0
    } else {
        (out_w - 1) as f64 / out_w as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_tensor::conv2d;

    fn pseudo_tensor(c: usize, h: usize, w: usize, seed: u64) -> Tensor3<i16> {
        let data: Vec<i16> = (0..c * h * w)
            .map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
                (x >> 48) as i16
            })
            .collect();
        Tensor3::from_vec(c, h, w, data)
    }

    fn pseudo_filters(k: usize, c: usize, f: usize, seed: u64) -> Tensor4<i16> {
        let data: Vec<i16> = (0..k * c * f * f)
            .map(|i| {
                let x = (i as u64).wrapping_mul(2862933555777941757).wrapping_add(seed);
                (x >> 50) as i16
            })
            .collect();
        Tensor4::from_vec(k, c, f, f, data)
    }

    #[test]
    fn matches_direct_on_same_padded_conv() {
        let imap = pseudo_tensor(3, 7, 9, 1);
        let fmaps = pseudo_filters(4, 3, 3, 2);
        let geom = ConvGeometry::same(3, 3);
        assert_eq!(
            differential_conv2d(&imap, &fmaps, None, geom),
            conv2d(&imap, &fmaps, None, geom)
        );
    }

    #[test]
    fn matches_direct_across_geometries() {
        let imap = pseudo_tensor(2, 8, 11, 3);
        let fmaps = pseudo_filters(3, 2, 3, 4);
        for stride in 1..=3usize {
            for pad in 0..=2usize {
                for dilation in 1..=2usize {
                    let geom = ConvGeometry { stride, pad, dilation };
                    if geom.out_dim(8, 3) == 0 || geom.out_dim(11, 3) == 0 {
                        continue;
                    }
                    assert_eq!(
                        differential_conv2d(&imap, &fmaps, None, geom),
                        conv2d(&imap, &fmaps, None, geom),
                        "geom {geom:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_direct_with_bias() {
        let imap = pseudo_tensor(2, 4, 6, 9);
        let fmaps = pseudo_filters(2, 2, 1, 10);
        let bias = vec![1234, -987];
        let geom = ConvGeometry::unit();
        assert_eq!(
            differential_conv2d(&imap, &fmaps, Some(&bias), geom),
            conv2d(&imap, &fmaps, Some(&bias), geom)
        );
    }

    #[test]
    fn matches_direct_on_extreme_values() {
        let imap = Tensor3::from_vec(
            1,
            2,
            4,
            vec![i16::MAX, i16::MIN, i16::MAX, i16::MIN, 0, -1, 1, i16::MAX],
        );
        let fmaps = Tensor4::from_vec(1, 1, 2, 2, vec![i16::MAX, i16::MIN, -1, 1]);
        let geom = ConvGeometry::unit();
        assert_eq!(
            differential_conv2d(&imap, &fmaps, None, geom),
            conv2d(&imap, &fmaps, None, geom)
        );
    }

    #[test]
    fn single_column_output_is_all_direct() {
        let imap = pseudo_tensor(2, 5, 3, 7);
        let fmaps = pseudo_filters(2, 2, 3, 8);
        let geom = ConvGeometry::unit(); // out width 1
        assert_eq!(
            differential_conv2d(&imap, &fmaps, None, geom),
            conv2d(&imap, &fmaps, None, geom)
        );
    }

    #[test]
    fn differential_fraction_values() {
        assert_eq!(differential_fraction(0), 0.0);
        assert_eq!(differential_fraction(1), 0.0);
        assert!((differential_fraction(16) - 15.0 / 16.0).abs() < 1e-12);
    }
}
