//! Workload orchestration: datasets → prepared inputs → traces.
//!
//! Traces are gathered at moderate resolutions and projected to HD
//! analytically (DESIGN.md §2.3): CI-DNNs are fully convolutional so
//! their per-pixel work and value statistics are resolution-stationary.
//! A [`TraceBundle`] carries the traced source-pixel count so projections
//! stay honest.

use crate::accelerator::{
    evaluate_network, evaluate_network_with_artifacts, network_scheme_traffic, EvalOptions,
    NetworkResult, SchemeChoice,
};
use crate::artifact::{result_key, DiskStats, DiskTier, EvalArtifact};
use crate::parallel::{run_jobs, BoundedCache, Jobs, KeyedCache};
use diffy_encoding::StorageScheme;
use diffy_imaging::datasets::DatasetId;
use diffy_memsys::traffic::LayerTraffic;
use diffy_imaging::scenes::{render_scene, SceneKind};
use diffy_imaging::video::pan_frame;
use diffy_models::{run_network, CiModel, ClassModel, LayerTrace, NetworkTrace, NetworkWeights};
use diffy_sim::{
    temporal_network, term_serial_network, AcceleratorConfig, NetworkCycles, PaddedTerms,
    TemporalMode, ValueMode,
};
use diffy_tensor::Quantizer;
use std::sync::{Arc, OnceLock};

/// Full-HD pixel count (1920 × 1080), the paper's headline resolution.
pub const HD_PIXELS: u64 = 1920 * 1080;

/// A trace plus the provenance needed to scale results.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// The recorded execution.
    pub trace: NetworkTrace,
    /// Pixels of the *source image* the input was prepared from.
    pub source_pixels: u64,
    /// Dataset the source image came from, if any.
    pub dataset: Option<DatasetId>,
    /// Sample index within the dataset.
    pub sample: usize,
}

impl TraceBundle {
    /// Evaluates this trace and returns the result together with the
    /// source pixel count (convenience for FPS projections).
    pub fn evaluate(&self, opts: &EvalOptions) -> NetworkResult {
        evaluate_network(&self.trace, opts)
    }

    /// FPS at HD resolution for an evaluation of this bundle.
    pub fn hd_fps(&self, result: &NetworkResult) -> f64 {
        result.fps_scaled(self.source_pixels, HD_PIXELS)
    }
}

/// Workload options shared by the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadOptions {
    /// Square trace resolution for the source images.
    pub resolution: usize,
    /// Samples drawn per dataset (the original corpora are larger; every
    /// bench prints this cap — no silent truncation).
    pub samples_per_dataset: usize,
    /// Base seed for weights and degradations.
    pub seed: u64,
}

impl WorkloadOptions {
    /// Bench defaults: 96×96 traces, 2 samples per dataset.
    pub fn bench_default() -> Self {
        Self { resolution: 96, samples_per_dataset: 2, seed: 1 }
    }

    /// Small configuration for tests.
    pub fn test_small() -> Self {
        Self { resolution: 32, samples_per_dataset: 1, seed: 1 }
    }
}

/// Traces one CI model on one dataset sample.
///
/// Weights are regenerated deterministically from the model and seed, so
/// repeated calls are consistent; callers tracing many samples should
/// reuse [`ci_weights`].
pub fn ci_trace_bundle(
    model: CiModel,
    dataset: DatasetId,
    sample: usize,
    opts: &WorkloadOptions,
) -> TraceBundle {
    let weights = ci_weights(model, opts.seed);
    ci_trace_bundle_with_weights(model, &weights, dataset, sample, opts)
}

/// Weights for a CI model (cacheable across samples).
pub fn ci_weights(model: CiModel, seed: u64) -> NetworkWeights {
    let _span = crate::trace::span_args("weight_gen", || vec![("model", model.to_string().into())]);
    NetworkWeights::generate(&model.spec(), model.weight_gen(seed), Quantizer::default())
}

/// Traces one CI model with pre-generated weights.
pub fn ci_trace_bundle_with_weights(
    model: CiModel,
    weights: &NetworkWeights,
    dataset: DatasetId,
    sample: usize,
    opts: &WorkloadOptions,
) -> TraceBundle {
    let _span = crate::trace::span_args("trace_synthesis", || {
        vec![
            ("model", model.to_string().into()),
            ("dataset", dataset.to_string().into()),
            ("sample", sample.into()),
            ("resolution", opts.resolution.into()),
        ]
    });
    let img = dataset.sample_scaled(sample, opts.resolution, opts.resolution);
    let input = model.prepare_input(&img, opts.seed ^ sample as u64);
    let trace = run_network(&model.spec(), weights, &input);
    TraceBundle {
        trace,
        source_pixels: (opts.resolution * opts.resolution) as u64,
        dataset: Some(dataset),
        sample,
    }
}

/// Traces a classification/detection model on a synthetic scene at the
/// given square resolution (its inputs are photographic scenes, so the
/// nature/city mix is used).
///
/// # Panics
///
/// Panics if `resolution` is below the model's
/// [`ClassModel::min_resolution`].
pub fn class_trace_bundle(model: ClassModel, resolution: usize, seed: u64) -> TraceBundle {
    assert!(
        resolution >= model.min_resolution(),
        "{model} needs at least {} px",
        model.min_resolution()
    );
    let kind = if seed.is_multiple_of(2) { SceneKind::Nature } else { SceneKind::City };
    let img = render_scene(kind, resolution, resolution, seed ^ 0x000C_1A55);
    let input = diffy_imaging::to_fixed(&img, Quantizer::default());
    let spec = model.spec();
    let weights = NetworkWeights::generate(
        &spec,
        diffy_models::WeightGen::new(seed ^ 0xC0DE).with_bias_shift(-0.25),
        Quantizer::default(),
    );
    let trace = run_network(&spec, &weights, &input);
    TraceBundle {
        trace,
        source_pixels: (resolution * resolution) as u64,
        dataset: None,
        sample: 0,
    }
}

/// Identity of one synthetic video stream: everything a frame — and
/// therefore its trace and its cycle results — is a pure function of.
///
/// The total `frames` horizon is part of the identity on purpose:
/// [`diffy_imaging::video::pan_sequence`] renders the underlying wide
/// scene at `w + pan_px * (frames − 1)`, so the *content* of frame `f`
/// depends on how long the stream will run. A streaming consumer fixes
/// the horizon up front and then every frame is a pure function of
/// `(spec, frame index)` — which is what makes per-frame artifacts
/// cacheable and shareable across concurrent sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VideoSpec {
    /// Model each frame runs through.
    pub model: CiModel,
    /// Scene category of the panning content.
    pub scene: SceneKind,
    /// Square frame resolution.
    pub resolution: usize,
    /// Total frame horizon of the stream (fixed at stream start).
    pub frames: usize,
    /// Horizontal camera pan in pixels per frame.
    pub pan_px: usize,
    /// Per-frame sensor-noise amplitude, keyed by its `f32` bit pattern
    /// so the spec stays `Eq + Hash` (see [`VideoSpec::noise`]).
    pub noise_bits: u32,
    /// Seed for the scene, the sensor noise, and the model weights.
    pub seed: u64,
}

impl VideoSpec {
    /// Builds a spec from a plain `f32` noise amplitude.
    pub fn new(
        model: CiModel,
        scene: SceneKind,
        resolution: usize,
        frames: usize,
        pan_px: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        Self { model, scene, resolution, frames, pan_px, noise_bits: noise.to_bits(), seed }
    }

    /// The sensor-noise amplitude as a float.
    pub fn noise(&self) -> f32 {
        f32::from_bits(self.noise_bits)
    }
}

/// Traces frame `frame` of the video stream `spec`: renders the frame
/// via [`pan_frame`] (bit-identical to the batch `pan_sequence` path),
/// degrades it with the model's input preparation, and runs the network.
///
/// The degradation seed is `spec.seed` for every frame — a temporally
/// static sensor pattern, the regime where cross-frame deltas are
/// meaningful (per-frame *scene* noise is still applied by `pan_frame`).
///
/// # Panics
///
/// Panics if `frame >= spec.frames`.
pub fn video_frame_bundle(spec: &VideoSpec, frame: usize) -> TraceBundle {
    let weights = ci_weights(spec.model, spec.seed);
    video_frame_bundle_with_weights(spec, &weights, frame)
}

/// [`video_frame_bundle`] with pre-generated weights (cacheable across
/// frames and sessions).
pub fn video_frame_bundle_with_weights(
    spec: &VideoSpec,
    weights: &NetworkWeights,
    frame: usize,
) -> TraceBundle {
    let _span = crate::trace::span_args("video_frame_trace", || {
        vec![
            ("model", spec.model.to_string().into()),
            ("frame", frame.into()),
            ("resolution", spec.resolution.into()),
        ]
    });
    let img = pan_frame(
        spec.scene,
        spec.resolution,
        spec.resolution,
        spec.frames,
        spec.pan_px,
        spec.noise(),
        spec.seed,
        frame,
    );
    let input = spec.model.prepare_input(&img, spec.seed);
    let trace = run_network(&spec.model.spec(), weights, &input);
    TraceBundle {
        trace,
        source_pixels: (spec.resolution * spec.resolution) as u64,
        dataset: None,
        sample: frame,
    }
}

/// Cache key for a trace: everything [`ci_trace_bundle`] derives its
/// output from — model, dataset, sample, trace resolution, and seed.
pub type TraceKey = (CiModel, DatasetId, usize, usize, u64);

/// Hashable identity of a [`SchemeChoice`] for the traffic memo.
/// `Profiled`'s f64 quantile is keyed by its bit pattern — distinct bit
/// patterns may never share a traffic vector, and identical ones are
/// the same pure computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SchemeKey {
    Scheme(StorageScheme),
    Profiled(u64),
    Ideal,
}

impl From<SchemeChoice> for SchemeKey {
    fn from(scheme: SchemeChoice) -> Self {
        match scheme {
            SchemeChoice::Scheme(s) => SchemeKey::Scheme(s),
            SchemeChoice::Profiled { quantile } => SchemeKey::Profiled(quantile.to_bits()),
            SchemeChoice::Ideal => SchemeKey::Ideal,
        }
    }
}

/// Compute-once store for the expensive artifacts of a sweep: network
/// weights keyed by `(model, seed)`, trace bundles keyed by
/// `(model, dataset, sample, resolution, seed)`, per-layer term planes
/// (`diffy_sim::PaddedTerms`) keyed by `(trace key, layer)`, and
/// per-trace storage-scheme traffic vectors keyed by
/// `(trace key, scheme)`.
///
/// All artifact kinds are pure functions of their keys, so cached
/// values are interchangeable with fresh regeneration — the cache only
/// removes the déjà vu of recomputing them for every consumer. Safe to
/// share across threads; concurrent requests for the same key compute it
/// once (see [`KeyedCache`]).
///
/// With [`SweepCache::with_disk`] the cache becomes *tiered*: completed
/// evaluations ([`EvalArtifact`]s, keyed by the canonical
/// [`result_key`]) are looked up memory-first, then on the disk
/// artifact store, and only then computed — with a write-through so the
/// next cold start finds them. See [`SweepCache::evaluate_keyed`].
#[derive(Default)]
pub struct SweepCache {
    weights: Store<(CiModel, u64), NetworkWeights>,
    traces: Store<TraceKey, TraceBundle>,
    term_planes: Store<(TraceKey, usize), PaddedTerms>,
    traffic: Store<(TraceKey, SchemeKey), Vec<LayerTraffic>>,
    video_frames: Store<(VideoSpec, usize), TraceBundle>,
    video_cycles: Store<(VideoSpec, usize, VideoEval), NetworkCycles>,
    results: Store<String, EvalArtifact>,
    disk: Option<DiskTier>,
}

/// Which cycle model a cached per-frame video result came from: the full
/// single-frame spatial re-evaluation, or the temporal engine against
/// the previous frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum VideoEval {
    Baseline,
    Temporal(TemporalMode),
}

/// One artifact store of a [`SweepCache`]: either the append-only
/// compute-once cache (sweeps — every key is revisited, nothing should
/// ever be dropped) or the size-bounded LRU variant (the long-lived
/// evaluation service — the key stream is unbounded).
enum Store<K, V> {
    Unbounded(KeyedCache<K, V>),
    Bounded(BoundedCache<K, V>),
}

impl<K: Eq + std::hash::Hash + Clone, V> Store<K, V> {
    fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        match self {
            Store::Unbounded(c) => c.get_or_compute(key, compute),
            Store::Bounded(c) => c.get_or_compute(key, compute),
        }
    }

    fn len(&self) -> usize {
        match self {
            Store::Unbounded(c) => c.len(),
            Store::Bounded(c) => c.len(),
        }
    }

    fn hits(&self) -> u64 {
        match self {
            Store::Unbounded(c) => c.hits(),
            Store::Bounded(c) => c.hits(),
        }
    }

    fn misses(&self) -> u64 {
        match self {
            Store::Unbounded(c) => c.misses(),
            Store::Bounded(c) => c.misses(),
        }
    }

    fn evictions(&self) -> u64 {
        match self {
            Store::Unbounded(_) => 0,
            Store::Bounded(c) => c.evictions(),
        }
    }

    /// Requests that waited on another thread's in-flight computation.
    /// The unbounded cache counts these as hits (documented there), so
    /// only the bounded variant reports them separately.
    fn shared(&self) -> u64 {
        match self {
            Store::Unbounded(_) => 0,
            Store::Bounded(c) => c.shared(),
        }
    }

    fn clear(&self) {
        match self {
            Store::Unbounded(c) => c.clear(),
            Store::Bounded(c) => c.clear(),
        }
    }
}

impl<K: Eq + std::hash::Hash + Clone, V> Default for Store<K, V> {
    fn default() -> Self {
        Store::Unbounded(KeyedCache::new())
    }
}

/// A point-in-time summary of a [`SweepCache`]'s counters, aggregated
/// over its weight, trace, term-plane and traffic stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from a cached (or in-flight) artifact.
    pub hits: u64,
    /// Requests that computed their artifact.
    pub misses: u64,
    /// Artifacts evicted by the bounded stores (0 for unbounded caches).
    pub evictions: u64,
    /// Distinct weight sets currently materialized.
    pub cached_weights: usize,
    /// Distinct traces currently materialized.
    pub cached_traces: usize,
    /// Distinct per-layer term planes currently materialized.
    pub cached_term_planes: usize,
    /// Distinct `(trace, scheme)` traffic vectors currently materialized.
    pub cached_traffic: usize,
    /// Distinct video frame traces currently materialized.
    pub cached_video_frames: usize,
    /// Distinct per-frame cycle results (baseline and temporal)
    /// currently materialized.
    pub cached_video_cycles: usize,
    /// Requests that waited on another thread's in-flight computation
    /// (bounded stores only — neither a clean hit nor a fresh miss).
    pub shared: u64,
    /// Distinct complete evaluation results currently materialized in
    /// the memory tier.
    pub cached_results: usize,
    /// Disk artifact tier counters (all zero when no tier is attached).
    pub disk: DiskStats,
}

impl SweepCache {
    /// An empty, *unbounded* cache — the sweep default: every artifact is
    /// kept for the lifetime of the cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty, *size-bounded* cache for long-lived processes: at most
    /// `traces` trace bundles (and weight sets) and `term_planes`
    /// per-layer plane sets stay resident; least-recently-used artifacts
    /// are evicted to admit new keys. Evictions only ever cost
    /// recomputation — results are pure functions of their keys either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn bounded(traces: usize, term_planes: usize) -> Self {
        Self {
            weights: Store::Bounded(BoundedCache::new(traces)),
            traces: Store::Bounded(BoundedCache::new(traces)),
            term_planes: Store::Bounded(BoundedCache::new(term_planes)),
            // Traffic vectors are small (a few structs per layer); keep
            // several schemes' worth per resident trace.
            traffic: Store::Bounded(BoundedCache::new(traces.saturating_mul(8))),
            // Video frame bundles are trace-sized; cycle results are a
            // handful of counters per layer.
            video_frames: Store::Bounded(BoundedCache::new(traces)),
            video_cycles: Store::Bounded(BoundedCache::new(traces.saturating_mul(8))),
            // Complete results are small (a few counters per layer);
            // keep several schemes/architectures' worth per resident
            // trace.
            results: Store::Bounded(BoundedCache::new(traces.saturating_mul(8))),
            disk: None,
        }
    }

    /// Attaches a disk artifact tier: [`SweepCache::evaluate_keyed`]
    /// reads through it on memory misses and writes computed results
    /// back, so a future cold start (or a sibling process sharing the
    /// directory) serves them by lookup.
    pub fn with_disk(mut self, tier: DiskTier) -> Self {
        self.disk = Some(tier);
        self
    }

    /// The attached disk tier, if any.
    pub fn disk(&self) -> Option<&DiskTier> {
        self.disk.as_ref()
    }

    /// Loads every valid artifact from the disk tier into the memory
    /// result tier (for `serve --warmup`); invalid files are counted
    /// corrupt by the tier and skipped. Returns the number of results
    /// warmed; 0 when no tier is attached or the directory is
    /// unreadable.
    pub fn warm_from_disk(&self) -> usize {
        let Some(disk) = &self.disk else { return 0 };
        let Ok(artifacts) = disk.load_all() else { return 0 };
        let mut warmed = 0;
        for (key, artifact) in artifacts {
            self.results.get_or_compute(key, || artifact);
            warmed += 1;
        }
        warmed
    }

    /// The process-wide cache shared by the CLI and report paths.
    pub fn global() -> &'static SweepCache {
        static GLOBAL: OnceLock<SweepCache> = OnceLock::new();
        GLOBAL.get_or_init(SweepCache::new)
    }

    /// Weights for `(model, seed)`, computed once.
    pub fn weights(&self, model: CiModel, seed: u64) -> Arc<NetworkWeights> {
        let mut built = false;
        let v = self.weights.get_or_compute((model, seed), || {
            built = true;
            ci_weights(model, seed)
        });
        if !built {
            crate::trace::instant("cache_hit", || vec![("kind", "weights".into())]);
        }
        v
    }

    /// The trace bundle for `(model, dataset, sample)` under `opts`,
    /// computed once per `(…, resolution, seed)` key.
    pub fn bundle(
        &self,
        model: CiModel,
        dataset: DatasetId,
        sample: usize,
        opts: &WorkloadOptions,
    ) -> Arc<TraceBundle> {
        let key = (model, dataset, sample, opts.resolution, opts.seed);
        let mut built = false;
        let v = self.traces.get_or_compute(key, || {
            built = true;
            let weights = self.weights(model, opts.seed);
            ci_trace_bundle_with_weights(model, &weights, dataset, sample, opts)
        });
        if !built {
            crate::trace::instant("cache_hit", || vec![("kind", "trace".into())]);
        }
        v
    }

    /// The term planes of layer `index` of the trace identified by
    /// `key`, built at most once per `(key, index)` no matter how many
    /// architectures, value modes or configurations evaluate the trace.
    pub fn layer_terms(
        &self,
        key: TraceKey,
        index: usize,
        layer: &LayerTrace,
    ) -> Arc<PaddedTerms> {
        let mut built = false;
        let v = self.term_planes.get_or_compute((key, index), || {
            built = true;
            let _s = crate::trace::span_args("term_plane_build", || vec![("layer", index.into())]);
            PaddedTerms::for_layer(layer)
        });
        if !built {
            crate::trace::instant("cache_hit", || vec![("kind", "term_planes".into())]);
        }
        v
    }

    /// Per-layer off-chip traffic of the trace identified by `key` under
    /// `scheme`, computed once per `(trace, scheme)` pair.
    ///
    /// For the concrete storage schemes this is the memory-system model's
    /// dominant cost — re-encoding every layer's activation bitstreams —
    /// yet it is a pure function of the cached trace, so serving it from
    /// the cache changes warm-evaluation latency, never results.
    pub fn traffic(
        &self,
        key: TraceKey,
        trace: &NetworkTrace,
        scheme: SchemeChoice,
    ) -> Arc<Vec<LayerTraffic>> {
        let mut built = false;
        let v = self.traffic.get_or_compute((key, SchemeKey::from(scheme)), || {
            built = true;
            network_scheme_traffic(trace, scheme)
        });
        if !built {
            crate::trace::instant("cache_hit", || vec![("kind", "traffic".into())]);
        }
        v
    }

    /// The trace bundle of frame `frame` of the video stream `spec`,
    /// computed once per `(spec, frame)` — N concurrent sessions over
    /// the same stream pay each frame's trace build exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `frame >= spec.frames`.
    pub fn video_frame(&self, spec: &VideoSpec, frame: usize) -> Arc<TraceBundle> {
        let mut built = false;
        let v = self.video_frames.get_or_compute((*spec, frame), || {
            built = true;
            let weights = self.weights(spec.model, spec.seed);
            video_frame_bundle_with_weights(spec, &weights, frame)
        });
        if !built {
            crate::trace::instant("cache_hit", || vec![("kind", "video_frame".into())]);
        }
        v
    }

    /// The full single-frame re-evaluation cost of frame `frame`: the
    /// spatial-Diffy term-serial engine (Table IV configuration,
    /// differential value mode) over the frame's own activations — what
    /// a stateless server would pay for this frame. Memoized per
    /// `(spec, frame)`; the per-session savings ledger measures the
    /// temporal engine against this.
    pub fn video_frame_baseline(&self, spec: &VideoSpec, frame: usize) -> Arc<NetworkCycles> {
        let mut built = false;
        let v = self.video_cycles.get_or_compute((*spec, frame, VideoEval::Baseline), || {
            built = true;
            let bundle = self.video_frame(spec, frame);
            let _s = crate::trace::span_args("frame_baseline", || vec![("frame", frame.into())]);
            term_serial_network(&bundle.trace, &AcceleratorConfig::table4(), ValueMode::Differential)
        });
        if !built {
            crate::trace::instant("cache_hit", || vec![("kind", "video_cycles".into())]);
        }
        v
    }

    /// Temporal (Diffy-T / Diffy-ST, Table IV configuration) cycles of
    /// frame `frame` evaluated against the previous frame, memoized per
    /// `(spec, frame, mode)`.
    ///
    /// `prev` must be the bundle of frame `frame − 1` of the *same*
    /// `spec` — the retained state a streaming session carries — so the
    /// result is a pure function of the key and cached values are
    /// interchangeable with fresh evaluation. Bit-identical to calling
    /// [`temporal_network`] directly on the two frame traces.
    ///
    /// # Panics
    ///
    /// Panics if `frame == 0` (nothing to difference against) or
    /// `frame >= spec.frames`.
    pub fn video_frame_temporal(
        &self,
        spec: &VideoSpec,
        frame: usize,
        mode: TemporalMode,
        prev: &TraceBundle,
    ) -> Arc<NetworkCycles> {
        assert!(frame >= 1, "frame 0 has no previous frame");
        let mut built = false;
        let v = self.video_cycles.get_or_compute((*spec, frame, VideoEval::Temporal(mode)), || {
            built = true;
            let cur = self.video_frame(spec, frame);
            let _s = crate::trace::span_args("frame_temporal", || vec![("frame", frame.into())]);
            temporal_network(&prev.trace, &cur.trace, &AcceleratorConfig::table4(), mode)
        });
        if !built {
            crate::trace::instant("cache_hit", || vec![("kind", "video_cycles".into())]);
        }
        v
    }

    /// Evaluates `(model, dataset, sample)` under `eval`, drawing the
    /// bundle, every layer's term planes, **and** the scheme's traffic
    /// vector from this cache: a sweep that prices N architectures on one
    /// trace pays the trace build and each plane build exactly once, and
    /// repeated evaluations under one scheme pay the traffic model once.
    /// Bit-identical to [`TraceBundle::evaluate`] on a fresh bundle.
    pub fn evaluate(
        &self,
        model: CiModel,
        dataset: DatasetId,
        sample: usize,
        opts: &WorkloadOptions,
        eval: &EvalOptions,
    ) -> NetworkResult {
        let bundle = self.bundle(model, dataset, sample, opts);
        let key: TraceKey = (model, dataset, sample, opts.resolution, opts.seed);
        let source =
            |i: usize, layer: &LayerTrace| self.layer_terms(key, i, layer);
        let traffic = || self.traffic(key, &bundle.trace, eval.scheme);
        evaluate_network_with_artifacts(&bundle.trace, eval, Some(&source), Some(&traffic))
    }

    /// Tiered evaluation of `(model, dataset, sample)` under `eval`:
    /// memory result tier first, then the disk artifact store (when one
    /// is attached via [`SweepCache::with_disk`]), then
    /// [`SweepCache::evaluate`] — with a best-effort write-through so
    /// the computed result is on disk for the next cold start.
    ///
    /// Every tier is bit-identical to fresh evaluation: the memory tier
    /// holds the value the compute path produced, and disk artifacts
    /// are fingerprint-validated on read ([`crate::artifact`]) — a
    /// corrupt, truncated or version-skewed file degrades to recompute
    /// (counted in [`DiskStats::corrupt`]), never serves wrong bits.
    pub fn evaluate_keyed(
        &self,
        model: CiModel,
        dataset: DatasetId,
        sample: usize,
        opts: &WorkloadOptions,
        eval: &EvalOptions,
    ) -> Arc<EvalArtifact> {
        let key = result_key(model, dataset, sample, opts, eval);
        self.results.get_or_compute(key.clone(), || {
            if let Some(disk) = &self.disk {
                match disk.load(&key) {
                    Ok(Some(artifact)) => {
                        crate::trace::instant("cache_hit", || vec![("kind", "disk".into())]);
                        return artifact;
                    }
                    Ok(None) => {}
                    // Counted corrupt by the tier; recompute below and
                    // let the write-through repair the file.
                    Err(_) => {}
                }
            }
            let source_pixels = self.bundle(model, dataset, sample, opts).source_pixels;
            let result = self.evaluate(model, dataset, sample, opts, eval);
            let artifact = EvalArtifact { result, source_pixels };
            if let Some(disk) = &self.disk {
                // Best-effort: a full or read-only disk degrades the
                // tier to memory + compute, never the request.
                let _ = disk.store(&key, &artifact);
            }
            artifact
        })
    }

    /// Number of distinct weight sets materialized so far.
    pub fn cached_weights(&self) -> usize {
        self.weights.len()
    }

    /// Number of distinct traces materialized so far.
    pub fn cached_traces(&self) -> usize {
        self.traces.len()
    }

    /// Number of distinct per-layer term planes materialized so far.
    pub fn cached_term_planes(&self) -> usize {
        self.term_planes.len()
    }

    /// Number of distinct `(trace, scheme)` traffic vectors materialized
    /// so far.
    pub fn cached_traffic(&self) -> usize {
        self.traffic.len()
    }

    /// Aggregate hit/miss/eviction counters and residency, for the
    /// service's `/metrics` endpoint.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.weights.hits()
                + self.traces.hits()
                + self.term_planes.hits()
                + self.traffic.hits()
                + self.video_frames.hits()
                + self.video_cycles.hits()
                + self.results.hits(),
            misses: self.weights.misses()
                + self.traces.misses()
                + self.term_planes.misses()
                + self.traffic.misses()
                + self.video_frames.misses()
                + self.video_cycles.misses()
                + self.results.misses(),
            evictions: self.weights.evictions()
                + self.traces.evictions()
                + self.term_planes.evictions()
                + self.traffic.evictions()
                + self.video_frames.evictions()
                + self.video_cycles.evictions()
                + self.results.evictions(),
            cached_weights: self.weights.len(),
            cached_traces: self.traces.len(),
            cached_term_planes: self.term_planes.len(),
            cached_traffic: self.traffic.len(),
            cached_video_frames: self.video_frames.len(),
            cached_video_cycles: self.video_cycles.len(),
            shared: self.weights.shared()
                + self.traces.shared()
                + self.term_planes.shared()
                + self.traffic.shared()
                + self.video_frames.shared()
                + self.video_cycles.shared()
                + self.results.shared(),
            cached_results: self.results.len(),
            disk: self.disk.as_ref().map(DiskTier::stats).unwrap_or_default(),
        }
    }

    /// Drops every cached artifact (counters are preserved). Subsequent
    /// requests recompute — results are unchanged, only cost.
    pub fn clear(&self) {
        self.weights.clear();
        self.traces.clear();
        self.term_planes.clear();
        self.traffic.clear();
        self.video_frames.clear();
        self.video_cycles.clear();
        self.results.clear();
    }

    /// Evaluates a heterogeneous batch of points, fanning out over `par`
    /// workers, and returns the results **in point order** —
    /// bit-identical to calling [`SweepCache::evaluate`] point by point,
    /// at any worker count.
    ///
    /// Unlike [`sweep_par`], every point carries its *own* workload, so
    /// one batch can mix resolutions, seeds, models and architectures;
    /// points that share keys still materialize each weight set, trace
    /// and term-plane set at most once through this cache, no matter
    /// which worker gets there first. This is the substrate both the
    /// sweep engine and the service's batch endpoint stand on.
    pub fn evaluate_points(&self, points: &[EvalPoint], par: Jobs) -> Vec<NetworkResult> {
        let tasks: Vec<_> = points
            .iter()
            .map(|p| {
                let p = *p;
                move || self.evaluate(p.model, p.dataset, p.sample, &p.workload, &p.eval)
            })
            .collect();
        run_jobs(tasks, par)
    }
}

/// One fully-specified evaluation point: a workload (what to trace) plus
/// an architecture (what to price it on). [`SweepJob`] is the
/// shared-workload special case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPoint {
    /// Model to trace.
    pub model: CiModel,
    /// Dataset the sample comes from.
    pub dataset: DatasetId,
    /// Sample index within the dataset.
    pub sample: usize,
    /// Per-point workload (resolution, seed, sample cap).
    pub workload: WorkloadOptions,
    /// Architecture/scheme/memory to evaluate the trace under.
    pub eval: EvalOptions,
}

/// One unit of sweep work: trace `(model, dataset, sample)` and evaluate
/// it under `eval`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepJob {
    /// Model to trace.
    pub model: CiModel,
    /// Dataset the sample comes from.
    pub dataset: DatasetId,
    /// Sample index within the dataset.
    pub sample: usize,
    /// Architecture/scheme/memory to evaluate the trace under.
    pub eval: EvalOptions,
}

/// Evaluates every job, fanning out over `par` workers, and returns the
/// results **in job order** — bit-identical to evaluating the jobs one
/// by one in a loop, at any worker count (see [`crate::parallel`]).
///
/// Traces, weights and per-layer term planes are materialized at most
/// once per key through `cache`, no matter how many jobs share them or
/// which worker gets there first.
pub fn sweep_par(
    jobs: &[SweepJob],
    opts: &WorkloadOptions,
    par: Jobs,
    cache: &SweepCache,
) -> Vec<NetworkResult> {
    let points: Vec<EvalPoint> = jobs
        .iter()
        .map(|job| EvalPoint {
            model: job.model,
            dataset: job.dataset,
            sample: job.sample,
            workload: *opts,
            eval: job.eval,
        })
        .collect();
    cache.evaluate_points(&points, par)
}

/// Traces one model across its datasets in parallel: the parallel,
/// cached counterpart of calling [`ci_trace_bundle`] in a loop.
///
/// Output order is `datasets_for(model) × samples`, stable at any worker
/// count. Samples are capped per dataset at the dataset's size, like the
/// bench harness does.
pub fn ci_trace_bundles_par(
    model: CiModel,
    opts: &WorkloadOptions,
    par: Jobs,
    cache: &SweepCache,
) -> Vec<Arc<TraceBundle>> {
    let mut pairs = Vec::new();
    for dataset in datasets_for(model) {
        for sample in 0..opts.samples_per_dataset.min(dataset.samples()) {
            pairs.push((dataset, sample));
        }
    }
    let tasks: Vec<_> = pairs
        .into_iter()
        .map(|(dataset, sample)| move || cache.bundle(model, dataset, sample, opts))
        .collect();
    run_jobs(tasks, par)
}

/// The datasets a CI model is evaluated on (all of Table II; callers cap
/// samples via [`WorkloadOptions::samples_per_dataset`]).
pub fn datasets_for(model: CiModel) -> Vec<DatasetId> {
    match model {
        // Denoisers: the denoising corpora.
        CiModel::DnCnn | CiModel::Ircnn => {
            vec![DatasetId::Cbsd68, DatasetId::Kodak24, DatasetId::Rni15, DatasetId::Hd33]
        }
        CiModel::FfdNet => vec![DatasetId::Cbsd68, DatasetId::Kodak24, DatasetId::Hd33],
        // Demosaicking.
        CiModel::JointNet => vec![DatasetId::McMaster, DatasetId::Kodak24, DatasetId::Hd33],
        // Super-resolution.
        CiModel::Vdsr => {
            vec![DatasetId::Live1, DatasetId::Set5Set14, DatasetId::Hd33]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::SchemeChoice;
    use diffy_sim::Architecture;

    #[test]
    fn ci_bundle_runs_end_to_end() {
        let opts = WorkloadOptions::test_small();
        let b = ci_trace_bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts);
        assert_eq!(b.trace.layers.len(), 7);
        assert_eq!(b.source_pixels, 32 * 32);
        assert_eq!(b.dataset, Some(DatasetId::Kodak24));
    }

    #[test]
    fn half_resolution_models_trace_at_half_size() {
        let opts = WorkloadOptions::test_small();
        let b = ci_trace_bundle(CiModel::JointNet, DatasetId::McMaster, 0, &opts);
        let s = b.trace.layers[0].imap.shape();
        assert_eq!((s.h, s.w), (16, 16));
        assert_eq!(s.c, 4);
    }

    #[test]
    fn weights_are_reused_consistently() {
        let opts = WorkloadOptions::test_small();
        let w = ci_weights(CiModel::Ircnn, opts.seed);
        let a = ci_trace_bundle_with_weights(CiModel::Ircnn, &w, DatasetId::Cbsd68, 0, &opts);
        let b = ci_trace_bundle(CiModel::Ircnn, DatasetId::Cbsd68, 0, &opts);
        assert_eq!(a.trace.layers[3].imap, b.trace.layers[3].imap);

        // The shared cache is coherent with both paths: a cached weight
        // set equals fresh regeneration, and a cached bundle equals the
        // uncached trace of the same key.
        let cache = SweepCache::new();
        assert_eq!(*cache.weights(CiModel::Ircnn, opts.seed), w);
        let c = cache.bundle(CiModel::Ircnn, DatasetId::Cbsd68, 0, &opts);
        assert_eq!(c.trace.layers[3].imap, b.trace.layers[3].imap);
        assert_eq!(cache.cached_weights(), 1);
        assert_eq!(cache.cached_traces(), 1);
    }

    #[test]
    fn cache_hits_equal_fresh_regeneration_under_concurrency() {
        // Two threads request the same weights key at the same time: the
        // value must be computed once and equal a fresh regeneration.
        let opts = WorkloadOptions::test_small();
        let cache = SweepCache::new();
        let (a, b) = std::thread::scope(|s| {
            let ha = s.spawn(|| cache.weights(CiModel::Vdsr, opts.seed));
            let hb = s.spawn(|| cache.weights(CiModel::Vdsr, opts.seed));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert!(Arc::ptr_eq(&a, &b), "same key must share one computation");
        assert_eq!(*a, ci_weights(CiModel::Vdsr, opts.seed));
        assert_eq!(cache.cached_weights(), 1);

        // Same for traces: concurrent same-key bundles are one object and
        // equal the uncached path.
        let (ta, tb) = std::thread::scope(|s| {
            let ha = s.spawn(|| cache.bundle(CiModel::Vdsr, DatasetId::Hd33, 0, &opts));
            let hb = s.spawn(|| cache.bundle(CiModel::Vdsr, DatasetId::Hd33, 0, &opts));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert!(Arc::ptr_eq(&ta, &tb));
        let fresh = ci_trace_bundle(CiModel::Vdsr, DatasetId::Hd33, 0, &opts);
        assert_eq!(ta.trace.output, fresh.trace.output);
        assert_eq!(ta.source_pixels, fresh.source_pixels);
    }

    #[test]
    fn cache_distinguishes_resolution_and_seed() {
        let cache = SweepCache::new();
        let a = WorkloadOptions { resolution: 32, samples_per_dataset: 1, seed: 1 };
        let b = WorkloadOptions { resolution: 32, samples_per_dataset: 1, seed: 2 };
        let c = WorkloadOptions { resolution: 48, samples_per_dataset: 1, seed: 1 };
        for o in [a, b, c] {
            cache.bundle(CiModel::Ircnn, DatasetId::Hd33, 0, &o);
        }
        assert_eq!(cache.cached_traces(), 3, "distinct keys must not collide");
        assert_eq!(cache.cached_weights(), 2, "weights keyed by seed only");
    }

    #[test]
    fn parallel_bundles_match_serial_order_and_content() {
        let opts = WorkloadOptions::test_small();
        let cache = SweepCache::new();
        let par = ci_trace_bundles_par(CiModel::FfdNet, &opts, Jobs::new(4), &cache);
        // Serial reference: same nested loop, fresh artifacts.
        let mut serial = Vec::new();
        for dataset in datasets_for(CiModel::FfdNet) {
            for sample in 0..opts.samples_per_dataset.min(dataset.samples()) {
                serial.push(ci_trace_bundle(CiModel::FfdNet, dataset, sample, &opts));
            }
        }
        assert_eq!(par.len(), serial.len());
        for (p, s) in par.iter().zip(&serial) {
            assert_eq!(p.dataset, s.dataset);
            assert_eq!(p.sample, s.sample);
            assert_eq!(p.trace.output, s.trace.output);
        }
    }

    #[test]
    fn heterogeneous_points_match_pointwise_serial_evaluation() {
        // evaluate_points mixes workloads (resolution, seed), models and
        // architectures in one batch; the fanned results must be
        // bit-identical to evaluating each point serially, in order.
        let small = WorkloadOptions::test_small();
        let other = WorkloadOptions { resolution: 48, seed: 7, ..small };
        let points = vec![
            EvalPoint {
                model: CiModel::Ircnn,
                dataset: DatasetId::Kodak24,
                sample: 0,
                workload: small,
                eval: EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal),
            },
            EvalPoint {
                model: CiModel::Vdsr,
                dataset: DatasetId::Hd33,
                sample: 0,
                workload: other,
                eval: EvalOptions::new(Architecture::Pra, SchemeChoice::Ideal),
            },
            EvalPoint {
                model: CiModel::Ircnn,
                dataset: DatasetId::Kodak24,
                sample: 0,
                workload: other,
                eval: EvalOptions::new(Architecture::Vaa, SchemeChoice::Ideal),
            },
        ];
        let cache = SweepCache::new();
        let fanned = cache.evaluate_points(&points, Jobs::new(3));
        let reference = SweepCache::new();
        for (p, got) in points.iter().zip(&fanned) {
            let want = reference.evaluate(p.model, p.dataset, p.sample, &p.workload, &p.eval);
            assert_eq!(*got, want, "point order and content must be fan-out invariant");
        }
    }

    #[test]
    fn cached_evaluate_matches_fresh_bundle_evaluate() {
        // SweepCache::evaluate draws the trace and every layer's term
        // planes from the cache; the result must be bit-identical to a
        // fresh, uncached TraceBundle::evaluate for every architecture.
        let opts = WorkloadOptions::test_small();
        let cache = SweepCache::new();
        let fresh = ci_trace_bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts);
        for arch in [Architecture::Vaa, Architecture::Pra, Architecture::Diffy] {
            let eval = EvalOptions::new(arch, SchemeChoice::Ideal);
            let cached =
                cache.evaluate(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);
            assert_eq!(cached, fresh.evaluate(&eval), "{arch:?} must be cache-invariant");
        }
    }

    #[test]
    fn traffic_memo_is_result_invariant_and_computed_once() {
        // The traffic store must be invisible in results across scheme
        // kinds (concrete, profiled, ideal), and repeated evaluations
        // under one scheme must materialize exactly one traffic vector
        // per (trace, scheme) pair.
        let opts = WorkloadOptions::test_small();
        let cache = SweepCache::new();
        let fresh = ci_trace_bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts);
        let schemes = [
            SchemeChoice::Scheme(StorageScheme::delta_d(16)),
            SchemeChoice::Scheme(StorageScheme::NoCompression),
            SchemeChoice::Profiled { quantile: 0.99 },
            SchemeChoice::Ideal,
        ];
        for (i, &scheme) in schemes.iter().enumerate() {
            let eval = EvalOptions::new(Architecture::Diffy, scheme);
            for _ in 0..2 {
                let cached =
                    cache.evaluate(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);
                assert_eq!(cached, fresh.evaluate(&eval), "{scheme:?} must be memo-invariant");
            }
            assert_eq!(cache.cached_traffic(), i + 1, "one traffic vector per scheme");
        }
    }

    #[test]
    fn term_planes_built_once_per_layer_across_architectures() {
        // Pricing N architectures on one trace must build each layer's
        // term planes exactly once: the plane count equals the layer
        // count after the first term-serial evaluation and stays flat.
        let opts = WorkloadOptions::test_small();
        let cache = SweepCache::new();
        assert_eq!(cache.cached_term_planes(), 0);

        // VAA never touches term planes.
        let vaa = EvalOptions::new(Architecture::Vaa, SchemeChoice::Ideal);
        cache.evaluate(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &vaa);
        assert_eq!(cache.cached_term_planes(), 0, "VAA needs no term planes");

        let layers =
            cache.bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts).trace.layers.len();
        let pra = EvalOptions::new(Architecture::Pra, SchemeChoice::Ideal);
        cache.evaluate(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &pra);
        assert_eq!(cache.cached_term_planes(), layers, "one build per layer");

        // Diffy (and a repeated PRA run) reuse the same planes.
        let diffy = EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal);
        cache.evaluate(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &diffy);
        cache.evaluate(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &pra);
        assert_eq!(cache.cached_term_planes(), layers, "no rebuilds across modes");

        // A different trace key gets its own planes.
        cache.evaluate(CiModel::Ircnn, DatasetId::Cbsd68, 0, &opts, &diffy);
        assert_eq!(cache.cached_term_planes(), 2 * layers);
    }

    #[test]
    fn sweep_par_shares_planes_and_matches_serial() {
        // A sweep of several architectures over one sample: results must
        // match job-by-job serial evaluation, and the cache must hold one
        // plane set per layer regardless of worker count.
        let opts = WorkloadOptions::test_small();
        let mut jobs = Vec::new();
        for arch in [Architecture::Pra, Architecture::Diffy, Architecture::Pra] {
            jobs.push(SweepJob {
                model: CiModel::Ircnn,
                dataset: DatasetId::Hd33,
                sample: 0,
                eval: EvalOptions::new(arch, SchemeChoice::Ideal),
            });
        }
        let cache = SweepCache::new();
        let par = sweep_par(&jobs, &opts, Jobs::new(3), &cache);
        let fresh = ci_trace_bundle(CiModel::Ircnn, DatasetId::Hd33, 0, &opts);
        for (r, job) in par.iter().zip(&jobs) {
            assert_eq!(*r, fresh.evaluate(&job.eval));
        }
        assert_eq!(cache.cached_traces(), 1);
        assert_eq!(cache.cached_term_planes(), fresh.trace.layers.len());
    }

    #[test]
    fn bounded_cache_results_match_unbounded() {
        // The bounded cache must be invisible in results: evaluating
        // through a tiny bounded cache (which is forced to evict and
        // recompute) gives bit-identical output to the unbounded path.
        let opts = WorkloadOptions::test_small();
        let bounded = SweepCache::bounded(1, 4);
        let eval = EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal);
        let specs =
            [(CiModel::Ircnn, DatasetId::Kodak24), (CiModel::Ircnn, DatasetId::Cbsd68)];
        // Two passes over two traces through a 1-trace cache: the second
        // pass re-misses everything.
        for _ in 0..2 {
            for (model, dataset) in specs {
                let fresh = ci_trace_bundle(model, dataset, 0, &opts);
                let served = bounded.evaluate(model, dataset, 0, &opts, &eval);
                assert_eq!(served, fresh.evaluate(&eval));
            }
        }
        let stats = bounded.stats();
        assert!(stats.evictions > 0, "1-trace capacity must evict: {stats:?}");
        assert!(stats.cached_traces <= 1);
    }

    #[test]
    fn sweep_cache_stats_and_clear() {
        let opts = WorkloadOptions::test_small();
        let cache = SweepCache::new();
        cache.bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts);
        cache.bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts);
        let s = cache.stats();
        assert_eq!(s.cached_traces, 1);
        assert_eq!(s.evictions, 0, "unbounded stores never evict");
        // 1 weights miss + 1 trace miss, then 1 trace hit (the second
        // bundle call never touches the weights store).
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.cached_traces, 0);
        assert_eq!(s.cached_weights, 0);
        assert_eq!((s.hits, s.misses), (1, 2), "counters survive clear");
    }

    #[test]
    fn hd_projection_uses_source_pixels() {
        let opts = WorkloadOptions::test_small();
        let b = ci_trace_bundle(CiModel::Ircnn, DatasetId::Hd33, 0, &opts);
        let r = b.evaluate(&EvalOptions::new(Architecture::Vaa, SchemeChoice::Ideal));
        let hd = b.hd_fps(&r);
        let native = r.fps();
        let expect = native * (32.0 * 32.0) / HD_PIXELS as f64;
        assert!((hd / expect - 1.0).abs() < 0.01, "hd {hd} expect {expect}");
    }

    #[test]
    fn class_bundle_respects_min_resolution() {
        let b = class_trace_bundle(ClassModel::Vgg16, 32, 3);
        assert_eq!(b.trace.layers.len(), 13);
    }

    #[test]
    #[should_panic(expected = "needs at least")]
    fn class_bundle_rejects_tiny_inputs() {
        let _ = class_trace_bundle(ClassModel::AlexNet, 16, 1);
    }

    #[test]
    fn video_frame_cache_matches_fresh_path() {
        // The cached frame store must be invisible in results: frames
        // served through the cache are bit-identical to the free-function
        // path, which in turn builds on the pan_sequence-identical
        // pan_frame renderer.
        let spec = VideoSpec::new(CiModel::Ircnn, SceneKind::City, 24, 3, 2, 0.02, 5);
        let cache = SweepCache::new();
        for frame in 0..spec.frames {
            let cached = cache.video_frame(&spec, frame);
            let fresh = video_frame_bundle(&spec, frame);
            assert_eq!(cached.trace.output, fresh.trace.output, "frame {frame}");
            assert_eq!(cached.sample, frame);
            assert_eq!(cached.source_pixels, 24 * 24);
        }
        let stats = cache.stats();
        assert_eq!(stats.cached_video_frames, spec.frames);
        // A repeated request is a hit, not a rebuild.
        cache.video_frame(&spec, 0);
        assert_eq!(cache.stats().cached_video_frames, spec.frames);
    }

    #[test]
    fn video_cycle_memos_match_direct_evaluation() {
        // Baseline and temporal memos must be bit-identical to calling
        // the sim engines directly on fresh traces, for both modes.
        let spec = VideoSpec::new(CiModel::Ircnn, SceneKind::Nature, 24, 3, 1, 0.0, 7);
        let cache = SweepCache::new();
        let cfg = AcceleratorConfig::table4();
        let fresh: Vec<TraceBundle> =
            (0..spec.frames).map(|f| video_frame_bundle(&spec, f)).collect();
        for (f, bundle) in fresh.iter().enumerate() {
            let baseline = cache.video_frame_baseline(&spec, f);
            assert_eq!(
                *baseline,
                term_serial_network(&bundle.trace, &cfg, ValueMode::Differential),
                "baseline frame {f}"
            );
        }
        for mode in [TemporalMode::TemporalOnly, TemporalMode::SpatioTemporal] {
            for f in 1..spec.frames {
                let prev = cache.video_frame(&spec, f - 1);
                let served = cache.video_frame_temporal(&spec, f, mode, &prev);
                let direct =
                    temporal_network(&fresh[f - 1].trace, &fresh[f].trace, &cfg, mode);
                assert_eq!(*served, direct, "{mode:?} frame {f}");
                // A second request must serve the memo, not recompute.
                let again = cache.video_frame_temporal(&spec, f, mode, &prev);
                assert!(Arc::ptr_eq(&served, &again));
            }
        }
    }

    #[test]
    #[should_panic(expected = "no previous frame")]
    fn temporal_frame_zero_is_rejected() {
        let spec = VideoSpec::new(CiModel::Ircnn, SceneKind::City, 16, 2, 1, 0.0, 1);
        let cache = SweepCache::new();
        let prev = cache.video_frame(&spec, 0);
        let _ = cache.video_frame_temporal(&spec, 0, TemporalMode::TemporalOnly, &prev);
    }

    #[test]
    fn every_model_has_datasets_including_hd33() {
        for m in CiModel::ALL {
            let ds = datasets_for(m);
            assert!(!ds.is_empty());
            assert!(ds.contains(&DatasetId::Hd33), "{m} must include HD33");
        }
    }

    fn scratch_artifact_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("diffy-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_hit_is_bit_identical_to_fresh_compute() {
        // The tentpole invariant: a result served from a disk artifact
        // written by one cache must be bit-identical to a fresh
        // evaluation in another — both the NetworkResult and the
        // serving metadata (source_pixels).
        let dir = scratch_artifact_dir("bitident");
        let opts = WorkloadOptions::test_small();
        let eval = EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal);

        let writer = SweepCache::bounded(4, 64)
            .with_disk(crate::artifact::DiskTier::open(&dir).unwrap());
        let computed =
            writer.evaluate_keyed(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);
        assert_eq!(writer.stats().disk.misses, 1, "first request misses the empty tier");

        // A brand-new cache over the same directory: the only shared
        // state is the artifact file.
        let reader = SweepCache::bounded(4, 64)
            .with_disk(crate::artifact::DiskTier::open(&dir).unwrap());
        let served =
            reader.evaluate_keyed(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);
        assert_eq!(*served, *computed, "disk hit must serve identical bits");
        let stats = reader.stats();
        assert_eq!(stats.disk.hits, 1, "second process hits the artifact");
        assert_eq!(stats.disk.misses, 0);

        let fresh = SweepCache::new()
            .evaluate(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);
        assert_eq!(served.result, fresh, "disk tier must be invisible in results");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_degrades_to_recompute_and_repairs() {
        let dir = scratch_artifact_dir("corrupt");
        let opts = WorkloadOptions::test_small();
        let eval = EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal);

        let writer = SweepCache::bounded(4, 64)
            .with_disk(crate::artifact::DiskTier::open(&dir).unwrap());
        let computed =
            writer.evaluate_keyed(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);

        // Truncate the artifact on disk to simulate a torn file.
        let key = result_key(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);
        let path = writer.disk().unwrap().path_for(&key);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();

        let reader = SweepCache::bounded(4, 64)
            .with_disk(crate::artifact::DiskTier::open(&dir).unwrap());
        let served =
            reader.evaluate_keyed(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);
        assert_eq!(*served, *computed, "recompute after corruption, same bits");
        assert_eq!(reader.stats().disk.corrupt, 1, "the torn file is counted");

        // The write-through repaired the artifact: a third cache hits.
        let repaired = SweepCache::bounded(4, 64)
            .with_disk(crate::artifact::DiskTier::open(&dir).unwrap());
        let again =
            repaired.evaluate_keyed(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);
        assert_eq!(*again, *computed);
        assert_eq!(repaired.stats().disk.hits, 1, "repair makes the next read a hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_from_disk_populates_memory_tier() {
        let dir = scratch_artifact_dir("warmup");
        let opts = WorkloadOptions::test_small();
        let evals = [
            EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal),
            EvalOptions::new(Architecture::Pra, SchemeChoice::Ideal),
        ];
        let writer = SweepCache::bounded(4, 64)
            .with_disk(crate::artifact::DiskTier::open(&dir).unwrap());
        let expected: Vec<_> = evals
            .iter()
            .map(|e| writer.evaluate_keyed(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, e))
            .collect();

        let warmed_cache = SweepCache::bounded(4, 64)
            .with_disk(crate::artifact::DiskTier::open(&dir).unwrap());
        assert_eq!(warmed_cache.warm_from_disk(), 2, "both artifacts warm");
        let stats = warmed_cache.stats();
        assert_eq!(stats.cached_results, 2);
        assert_eq!(stats.disk.hits, 0, "warmup is not request traffic");

        // Warmed requests are pure memory hits: no disk read, no compute
        // (the trace/weight stores stay empty).
        for (e, want) in evals.iter().zip(&expected) {
            let got =
                warmed_cache.evaluate_keyed(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, e);
            assert_eq!(*got, **want);
        }
        let after = warmed_cache.stats();
        assert_eq!(after.disk.hits + after.disk.misses, 0, "served from memory");
        assert_eq!(after.cached_traces, 0, "no compute path was taken");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evaluate_keyed_without_disk_matches_evaluate() {
        let opts = WorkloadOptions::test_small();
        let eval = EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal);
        let cache = SweepCache::new();
        let keyed = cache.evaluate_keyed(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);
        let plain = cache.evaluate(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts, &eval);
        assert_eq!(keyed.result, plain);
        assert_eq!(
            keyed.source_pixels,
            cache.bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts).source_pixels
        );
        assert_eq!(cache.stats().disk, crate::artifact::DiskStats::default());
    }
}
