//! A microarchitectural emulator of one Diffy tile (Figs. 9 and 10).
//!
//! Where `diffy-sim` prices execution analytically, this module *executes
//! the hardware algorithm* structurally, one mechanism at a time:
//!
//! * **Offset generators** recode each activation (or delta) into its
//!   stream of signed powers of two (`±2^e`), the "oneffsets" PRA
//!   processes serially.
//! * **SIPs** — one per (filter row, window column) — consume one offset
//!   per lane per cycle, accumulating `(w << e)` with the offset's sign;
//!   lanes within a `T_x` group advance in lockstep, and a weight brick is
//!   held until every column finishes it.
//! * **DR engines** (Fig. 9) reconstruct outputs in a cascade: column 0's
//!   finished brick seeds column 1, and so on; across pallets of the same
//!   row, column 15 passes its brick round-robin back to column 0. The
//!   per-DR multiplexer writes the row-leading raw window unmodified.
//! * **Delta_out** (Fig. 10) drains the ABout ring: for each output
//!   column it reads the brick `s_next` columns to the left (wrapping to
//!   the previous pallet through the 4-deep ABout), applies the
//!   activation function, and writes the element-wise difference to AM.
//!
//! The emulator returns bit-exact omaps (validated against
//! [`crate::dc::differential_conv2d`] and the reference convolution) *and*
//! a cycle count (validated against `diffy_sim::term_serial_layer` for
//! matching configurations) — the cross-check that keeps the fast
//! analytical model honest.

use diffy_encoding::booth::booth_term_stream;
use diffy_models::LayerTrace;
use diffy_tensor::{sat16, Tensor3};

/// Geometry of the emulated tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// SIP rows (filters processed concurrently).
    pub filter_rows: usize,
    /// SIP columns (windows processed concurrently — the pallet width).
    pub columns: usize,
    /// Activation lanes per SIP.
    pub lanes: usize,
    /// Cross-lane synchronization group (`T_x`).
    pub terms_per_group: usize,
    /// Depth of each column's ABout ring (4 in the paper, supporting
    /// strides up to 48).
    pub about_depth: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        Self { filter_rows: 16, columns: 16, lanes: 16, terms_per_group: 16, about_depth: 4 }
    }
}

/// The result of emulating one layer on one tile.
#[derive(Debug, Clone)]
pub struct TileRun {
    /// Post-activation omap, exactly as the layer would publish it.
    pub omap: Tensor3<i16>,
    /// The delta-encoded omap Delta_out writes to the activation memory
    /// (wrapped 16-bit deltas at the next layer's stride).
    pub omap_deltas: Tensor3<i16>,
    /// Cycles the SIP array spent (offset-serial compute only; DR and
    /// Delta_out are overlapped, as in the paper).
    pub compute_cycles: u64,
    /// Total effectual offsets processed (energy-model activity).
    pub offsets_processed: u64,
}

/// One SIP column's state while processing a pallet: the accumulators of
/// every filter row for its window.
struct Column {
    /// `filter_rows` accumulators (64-bit here; the RTL uses a narrower
    /// saturating datapath, irrelevant to the values these tests reach).
    acc: Vec<i64>,
    /// Whether this column's window was fed raw (row-leading) values.
    raw_window: bool,
    /// The window's output coordinates.
    oy: usize,
    ox: usize,
    /// Live column (pallet tails may leave columns idle).
    active: bool,
}

/// Emulates one layer on a single Diffy tile.
///
/// Supports up to `cfg.filter_rows` filters per pass; more filters run in
/// additional passes exactly like the hardware (weights are re-streamed,
/// activations re-read from AM).
///
/// # Panics
///
/// Panics if the layer's output is empty or `s_next` exceeds what the
/// ABout ring can serve (`columns × (about_depth − 1)`).
pub fn run_tile(trace: &LayerTrace, cfg: &TileConfig) -> TileRun {
    let ishape = trace.imap.shape();
    let fshape = trace.fmaps.shape();
    let out = trace.out_shape();
    assert!(!out.is_empty(), "empty output");
    let s_next = trace.next_stride;
    assert!(
        s_next <= cfg.columns * (cfg.about_depth - 1),
        "stride {s_next} beyond ABout reach"
    );

    let geom = trace.geom;
    let pad = geom.pad as isize;
    let s = geom.stride;
    let d = geom.dilation;

    // Padded activation fetch in imap coordinates.
    let fetch = |c: usize, iy: isize, ix: isize| -> i32 {
        if iy < 0 || ix < 0 || iy as usize >= ishape.h || ix as usize >= ishape.w {
            0
        } else {
            *trace.imap.at(c, iy as usize, ix as usize) as i32
        }
    };

    let mut omap_acc = Tensor3::<i64>::new(out.c, out.h, out.w);
    let mut compute_cycles = 0u64;
    let mut offsets_processed = 0u64;

    let passes = out.c.div_ceil(cfg.filter_rows);
    for pass in 0..passes {
        let k0 = pass * cfg.filter_rows;
        let k1 = (k0 + cfg.filter_rows).min(out.c);

        // Walk windows row-major, a pallet (columns) at a time; the
        // dispatcher packs pallets across row boundaries.
        let windows: Vec<(usize, usize)> =
            (0..out.h).flat_map(|oy| (0..out.w).map(move |ox| (oy, ox))).collect();

        // Carried output bricks per output row: o(n, oy, ox-1), used to
        // seed the DR cascade when a pallet continues a row.
        let mut row_carry: Vec<Option<Vec<i64>>> = vec![None; out.h];

        for pallet in windows.chunks(cfg.columns) {
            let mut cols: Vec<Column> = pallet
                .iter()
                .map(|&(oy, ox)| Column {
                    acc: vec![0i64; k1 - k0],
                    raw_window: ox == 0,
                    oy,
                    ox,
                    active: true,
                })
                .collect();

            // Phase 1: offset-serial inner products. Each column advances
            // at its own pace through the brick steps (per-column
            // dispatcher slack); the pallet completes when its slowest
            // column does.
            let mut col_cycles = vec![0u64; cols.len()];
            for j in 0..fshape.h {
                for i in 0..fshape.w {
                    // Within each brick step, lanes advance in T_x groups.
                    let mut g0 = 0usize;
                    while g0 < fshape.c {
                        let g1 = (g0 + cfg.terms_per_group).min(fshape.c);
                        // Per column, per lane: the offset stream of its
                        // (possibly differential) activation.
                        for (ci, col) in cols.iter_mut().enumerate() {
                            if !col.active {
                                continue;
                            }
                            let iy = (col.oy * s) as isize + (j * d) as isize - pad;
                            let ix_base = (col.ox * s) as isize + (i * d) as isize - pad;
                            let mut col_group_max = 0usize;
                            for c in g0..g1 {
                                let a = fetch(c, iy, ix_base);
                                let v = if col.raw_window {
                                    a
                                } else {
                                    a - fetch(c, iy, ix_base - s as isize)
                                };
                                let stream = booth_term_stream(v);
                                col_group_max = col_group_max.max(stream.len());
                                offsets_processed += stream.len() as u64 * (k1 - k0) as u64;
                                // Every SIP row applies the offset to its
                                // own weight.
                                for (fi, acc) in col.acc.iter_mut().enumerate() {
                                    let w = *trace.fmaps.at(k0 + fi, c, j, i) as i64;
                                    for t in &stream {
                                        let term = w << t.exponent;
                                        *acc += if t.negative { -term } else { term };
                                    }
                                }
                            }
                            col_cycles[ci] += col_group_max as u64;
                        }
                        g0 = g1;
                    }
                }
            }
            compute_cycles += col_cycles.iter().copied().max().unwrap_or(0);

            // Phase 2: DR cascade (overlapped in hardware; free here).
            // Raw windows publish as-is and re-seed the chain; the first
            // differential column of a row continuation is seeded by the
            // row carry handed round-robin from the previous pallet.
            for ci in 0..cols.len() {
                if !cols[ci].active {
                    continue;
                }
                let (oy, _ox) = (cols[ci].oy, cols[ci].ox);
                if cols[ci].raw_window {
                    // Row-leading window: written unmodified via the DR mux.
                } else {
                    let seed: Vec<i64> = if ci == 0 {
                        row_carry[oy].clone().expect("row carry present")
                    } else {
                        cols[ci - 1].acc.clone()
                    };
                    for (acc, prev) in cols[ci].acc.iter_mut().zip(seed.iter()) {
                        *acc += prev;
                    }
                }
                row_carry[oy] = Some(cols[ci].acc.clone());
                let (oy, ox) = (cols[ci].oy, cols[ci].ox);
                for (fi, &v) in cols[ci].acc.iter().enumerate() {
                    *omap_acc.at_mut(k0 + fi, oy, ox) = v;
                }
            }
        }
    }

    // Activation function + requantization (the `f` units of Fig. 9/10).
    let mut omap = Tensor3::<i16>::new(out.c, out.h, out.w);
    for k in 0..out.c {
        for y in 0..out.h {
            for x in 0..out.w {
                let mut v =
                    sat16((*omap_acc.at(k, y, x) + trace.requant_bias) >> trace.requant_shift);
                if trace.relu && v < 0 {
                    v = 0;
                }
                *omap.at_mut(k, y, x) = v;
            }
        }
    }

    // Delta_out (Fig. 10): per output brick, subtract the brick s_next
    // columns to the left (post-activation), wrapping through the ABout
    // ring; the leftmost s_next columns of each row are stored raw.
    let mut omap_deltas = Tensor3::<i16>::new(out.c, out.h, out.w);
    for k in 0..out.c {
        for y in 0..out.h {
            for x in 0..out.w {
                let cur = *omap.at(k, y, x);
                let v = if x < s_next {
                    cur
                } else {
                    cur.wrapping_sub(*omap.at(k, y, x - s_next))
                };
                *omap_deltas.at_mut(k, y, x) = v;
            }
        }
    }

    TileRun { omap, omap_deltas, compute_cycles, offsets_processed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::differential_conv2d;
    use diffy_encoding::delta::delta_rows_wrapping;
    use diffy_sim::{term_serial_layer, AcceleratorConfig, ValueMode};
    use diffy_tensor::{conv2d, requantize, ConvGeometry, Tensor4};

    fn mk_trace(
        imap: Tensor3<i16>,
        fmaps: Tensor4<i16>,
        geom: ConvGeometry,
        relu: bool,
        shift: u32,
        next_stride: usize,
    ) -> LayerTrace {
        LayerTrace {
            name: "tile".into(),
            index: 0,
            imap,
            fmaps,
            geom,
            relu,
            requant_shift: shift,
            requant_bias: 0,
            next_stride,
        }
    }

    fn pseudo_imap(c: usize, h: usize, w: usize, seed: u64, nonneg: bool) -> Tensor3<i16> {
        let data: Vec<i16> = (0..c * h * w)
            .map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
                let v = (x >> 50) as i16; // 14-bit range
                if nonneg { v.abs() } else { v }
            })
            .collect();
        Tensor3::from_vec(c, h, w, data)
    }

    fn pseudo_fmaps(k: usize, c: usize, f: usize, seed: u64) -> Tensor4<i16> {
        let data: Vec<i16> = (0..k * c * f * f)
            .map(|i| {
                let x = (i as u64).wrapping_mul(2862933555777941757).wrapping_add(seed);
                ((x >> 56) as i16) - 128
            })
            .collect();
        Tensor4::from_vec(k, c, f, f, data)
    }

    #[test]
    fn tile_output_matches_reference_convolution() {
        let imap = pseudo_imap(5, 6, 20, 1, false);
        let fmaps = pseudo_fmaps(7, 5, 3, 2);
        let geom = ConvGeometry::same(3, 3);
        let trace = mk_trace(imap, fmaps, geom, true, 6, 1);
        let run = run_tile(&trace, &TileConfig::default());

        let acc = conv2d(&trace.imap, &trace.fmaps, None, geom);
        let mut expect = requantize(&acc, 6);
        diffy_tensor::ops::relu_inplace(&mut expect);
        assert_eq!(run.omap, expect);
    }

    #[test]
    fn tile_matches_differential_convolution_accumulators() {
        // The tile IS differential convolution in hardware form; the
        // library function is its mathematical spec.
        let imap = pseudo_imap(3, 5, 18, 3, false);
        let fmaps = pseudo_fmaps(4, 3, 3, 4);
        let geom = ConvGeometry { stride: 2, pad: 1, dilation: 1 };
        let trace = mk_trace(imap, fmaps, geom, false, 0, 1);
        let run = run_tile(&trace, &TileConfig::default());
        let spec = differential_conv2d(&trace.imap, &trace.fmaps, None, geom);
        let spec16 = spec.map(sat16);
        assert_eq!(run.omap, spec16);
    }

    #[test]
    fn delta_out_writes_wrapped_deltas_at_next_stride() {
        let imap = pseudo_imap(4, 4, 24, 5, true);
        let fmaps = pseudo_fmaps(6, 4, 3, 6);
        for next_stride in [1usize, 2, 3] {
            let trace = mk_trace(
                imap.clone(),
                fmaps.clone(),
                ConvGeometry::same(3, 3),
                true,
                6,
                next_stride,
            );
            let run = run_tile(&trace, &TileConfig::default());
            let expect = delta_rows_wrapping(&run.omap, next_stride);
            assert_eq!(run.omap_deltas, expect, "s_next={next_stride}");
        }
    }

    #[test]
    fn tile_cycles_match_the_analytical_model() {
        // Cross-validation: the fast analytical model and the structural
        // emulator must count the same compute cycles for a single-tile
        // configuration on post-ReLU (non-negative) imaps.
        let imap = pseudo_imap(8, 5, 20, 7, true);
        let fmaps = pseudo_fmaps(10, 8, 3, 8);
        let trace = mk_trace(imap, fmaps, ConvGeometry::same(3, 3), true, 6, 1);

        let tile_cfg = TileConfig::default();
        let run = run_tile(&trace, &tile_cfg);

        let mut sim_cfg = AcceleratorConfig::table4();
        sim_cfg.tiles = 1;
        let model = term_serial_layer(&trace, &sim_cfg, ValueMode::Differential);
        assert_eq!(run.compute_cycles, model.cycles);
    }

    #[test]
    fn tile_cycles_match_model_at_t4() {
        let imap = pseudo_imap(8, 3, 18, 9, true);
        let fmaps = pseudo_fmaps(4, 8, 1, 10);
        let trace = mk_trace(imap, fmaps, ConvGeometry::unit(), true, 4, 1);
        let tile_cfg = TileConfig { terms_per_group: 4, ..Default::default() };
        let run = run_tile(&trace, &tile_cfg);
        let mut sim_cfg = AcceleratorConfig::table4();
        sim_cfg.tiles = 1;
        sim_cfg.terms_per_group = 4;
        let model = term_serial_layer(&trace, &sim_cfg, ValueMode::Differential);
        assert_eq!(run.compute_cycles, model.cycles);
    }

    #[test]
    fn multi_pass_filters_are_handled() {
        // 20 filters on a 16-row tile: two passes, same results.
        let imap = pseudo_imap(3, 4, 17, 11, false);
        let fmaps = pseudo_fmaps(20, 3, 3, 12);
        let geom = ConvGeometry::same(3, 3);
        let trace = mk_trace(imap, fmaps, geom, true, 5, 1);
        let run = run_tile(&trace, &TileConfig::default());
        let acc = conv2d(&trace.imap, &trace.fmaps, None, geom);
        let mut expect = requantize(&acc, 5);
        diffy_tensor::ops::relu_inplace(&mut expect);
        assert_eq!(run.omap, expect);
    }

    #[test]
    #[should_panic(expected = "ABout reach")]
    fn oversized_stride_rejected() {
        let trace = mk_trace(
            pseudo_imap(1, 2, 4, 1, true),
            pseudo_fmaps(1, 1, 1, 1),
            ConvGeometry::unit(),
            true,
            0,
            49, // paper: "any stride up to 48"
        );
        let _ = run_tile(&trace, &TileConfig::default());
    }

    #[test]
    fn offsets_processed_counts_effectual_work() {
        // A zero imap does no effectual work and finishes instantly.
        let trace = mk_trace(
            Tensor3::<i16>::new(4, 3, 16),
            pseudo_fmaps(4, 4, 1, 3),
            ConvGeometry::unit(),
            true,
            0,
            1,
        );
        let run = run_tile(&trace, &TileConfig::default());
        assert_eq!(run.offsets_processed, 0);
        assert_eq!(run.compute_cycles, 0);
        assert!(run.omap.iter().all(|&v| v == 0));
    }
}
