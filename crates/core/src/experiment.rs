//! The experiment registry: every table and figure of the paper's
//! evaluation, mapped to the bench target that regenerates it.
//!
//! `cargo bench -p diffy-bench --bench <target>` prints the corresponding rows;
//! EXPERIMENTS.md records paper-vs-measured for each entry.

/// One reproducible artefact of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Fig. 1: H(A), H(A|A'), H(Δ) per CI-DNN.
    Fig01Entropy,
    /// Fig. 2: Barbara heatmap statistics on DnCNN conv_3.
    Fig02Heatmap,
    /// Fig. 3: CDF of effectual terms per activation/delta.
    Fig03TermCdf,
    /// Fig. 4: potential speedups (ALL vs RawE vs ΔE).
    Fig04Potential,
    /// Fig. 5: off-chip footprint per compression scheme.
    Fig05Footprint,
    /// Table I: the CI-DNN zoo.
    Tab01Models,
    /// Table II: the dataset registry.
    Tab02Datasets,
    /// Table III: profiled per-layer activation precisions.
    Tab03Profiled,
    /// Table IV: accelerator configurations.
    Tab04Configs,
    /// Fig. 11: PRA/Diffy speedup over VAA per compression scheme.
    Fig11Speedup,
    /// Fig. 12: per-layer lane utilization breakdown.
    Fig12Utilization,
    /// Fig. 13: absolute FPS at HD.
    Fig13FpsHd,
    /// Table V: on-chip storage per scheme.
    Tab05OnChip,
    /// Fig. 14: off-chip traffic per scheme.
    Fig14Traffic,
    /// Fig. 15: performance across off-chip memory nodes.
    Fig15MemNodes,
    /// Table VI: power breakdown and energy efficiency.
    Tab06Power,
    /// Table VII: area breakdown.
    Tab07Area,
    /// Fig. 16: tiling (T_x) sensitivity.
    Fig16Tiling,
    /// Fig. 17: FPS at low resolutions.
    Fig17LowRes,
    /// Fig. 18: minimum configuration for real-time HD.
    Fig18Realtime,
    /// Fig. 19: classification/detection model speedups.
    Fig19Classification,
    /// Fig. 20: Diffy vs SCNN under weight sparsity.
    Fig20Scnn,
}

impl ExperimentId {
    /// Every experiment, in paper order.
    pub const ALL: [ExperimentId; 22] = [
        ExperimentId::Fig01Entropy,
        ExperimentId::Fig02Heatmap,
        ExperimentId::Fig03TermCdf,
        ExperimentId::Fig04Potential,
        ExperimentId::Fig05Footprint,
        ExperimentId::Tab01Models,
        ExperimentId::Tab02Datasets,
        ExperimentId::Tab03Profiled,
        ExperimentId::Tab04Configs,
        ExperimentId::Fig11Speedup,
        ExperimentId::Fig12Utilization,
        ExperimentId::Fig13FpsHd,
        ExperimentId::Tab05OnChip,
        ExperimentId::Fig14Traffic,
        ExperimentId::Fig15MemNodes,
        ExperimentId::Tab06Power,
        ExperimentId::Tab07Area,
        ExperimentId::Fig16Tiling,
        ExperimentId::Fig17LowRes,
        ExperimentId::Fig18Realtime,
        ExperimentId::Fig19Classification,
        ExperimentId::Fig20Scnn,
    ];

    /// The bench target that regenerates this artefact
    /// (`cargo bench -p diffy-bench --bench <target>`).
    pub fn bench_target(&self) -> &'static str {
        match self {
            ExperimentId::Fig01Entropy => "fig01_entropy",
            ExperimentId::Fig02Heatmap => "fig02_heatmap",
            ExperimentId::Fig03TermCdf => "fig03_term_cdf",
            ExperimentId::Fig04Potential => "fig04_potential",
            ExperimentId::Fig05Footprint => "fig05_footprint",
            ExperimentId::Tab01Models => "tab01_models",
            ExperimentId::Tab02Datasets => "tab02_datasets",
            ExperimentId::Tab03Profiled => "tab03_profiled",
            ExperimentId::Tab04Configs => "tab04_configs",
            ExperimentId::Fig11Speedup => "fig11_speedup",
            ExperimentId::Fig12Utilization => "fig12_utilization",
            ExperimentId::Fig13FpsHd => "fig13_fps_hd",
            ExperimentId::Tab05OnChip => "tab05_onchip",
            ExperimentId::Fig14Traffic => "fig14_traffic",
            ExperimentId::Fig15MemNodes => "fig15_memnodes",
            ExperimentId::Tab06Power => "tab06_power",
            ExperimentId::Tab07Area => "tab07_area",
            ExperimentId::Fig16Tiling => "fig16_tiling",
            ExperimentId::Fig17LowRes => "fig17_lowres",
            ExperimentId::Fig18Realtime => "fig18_realtime",
            ExperimentId::Fig19Classification => "fig19_classification",
            ExperimentId::Fig20Scnn => "fig20_scnn",
        }
    }

    /// The paper artefact this reproduces ("Fig. 11", "Table V", …).
    pub fn paper_artefact(&self) -> &'static str {
        match self {
            ExperimentId::Fig01Entropy => "Fig. 1",
            ExperimentId::Fig02Heatmap => "Fig. 2",
            ExperimentId::Fig03TermCdf => "Fig. 3",
            ExperimentId::Fig04Potential => "Fig. 4",
            ExperimentId::Fig05Footprint => "Fig. 5",
            ExperimentId::Tab01Models => "Table I",
            ExperimentId::Tab02Datasets => "Table II",
            ExperimentId::Tab03Profiled => "Table III",
            ExperimentId::Tab04Configs => "Table IV",
            ExperimentId::Fig11Speedup => "Fig. 11",
            ExperimentId::Fig12Utilization => "Fig. 12",
            ExperimentId::Fig13FpsHd => "Fig. 13",
            ExperimentId::Tab05OnChip => "Table V",
            ExperimentId::Fig14Traffic => "Fig. 14",
            ExperimentId::Fig15MemNodes => "Fig. 15",
            ExperimentId::Tab06Power => "Table VI",
            ExperimentId::Tab07Area => "Table VII",
            ExperimentId::Fig16Tiling => "Fig. 16",
            ExperimentId::Fig17LowRes => "Fig. 17",
            ExperimentId::Fig18Realtime => "Fig. 18",
            ExperimentId::Fig19Classification => "Fig. 19",
            ExperimentId::Fig20Scnn => "Fig. 20",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_covers_every_table_and_figure() {
        // 5 motivation figures + 4 setup tables + 13 evaluation artefacts.
        assert_eq!(ExperimentId::ALL.len(), 22);
    }

    #[test]
    fn bench_targets_are_unique() {
        let targets: HashSet<_> = ExperimentId::ALL.iter().map(|e| e.bench_target()).collect();
        assert_eq!(targets.len(), ExperimentId::ALL.len());
    }

    #[test]
    fn artefact_labels_are_paper_style() {
        for e in ExperimentId::ALL {
            let a = e.paper_artefact();
            assert!(a.starts_with("Fig.") || a.starts_with("Table"), "{a}");
        }
    }
}
