//! Fixed-width table formatting shared by the bench harness.

/// A simple fixed-width text table: header row plus data rows, printed
/// with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's column count differs from the header's.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width != header width");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..cols {
                if i > 0 {
                    s.push_str("  ");
                }
                let cell = &cells[i];
                s.push_str(cell);
                s.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            s.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats bytes as a human-readable KB/MB figure.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "2.50x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_x(7.1234), "7.12x");
        assert_eq!(fmt_pct(0.082), "8.2%");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(348 * 1024), "348.0 KB");
        assert_eq!(fmt_bytes(2 << 20), "2.00 MB");
    }
}
