//! Resolution and configuration scaling studies (Figs. 17 and 18).

use crate::accelerator::{evaluate_network, EvalOptions, SchemeChoice};
use crate::runner::{TraceBundle, HD_PIXELS};
use diffy_memsys::{MemoryNode, MemorySystem};
use diffy_sim::{AcceleratorConfig, Architecture};

/// The real-time target of Fig. 18.
pub const REAL_TIME_FPS: f64 = 30.0;

/// The memory ladder of Fig. 18's x-axis, cheapest first
/// (`version-rate-channels`).
pub fn fig18_memory_ladder() -> Vec<MemorySystem> {
    vec![
        MemorySystem::with_channels(MemoryNode::Ddr3_1600, 2),
        MemorySystem::with_channels(MemoryNode::Lpddr3e2133, 2),
        MemorySystem::with_channels(MemoryNode::Lpddr4_3200, 2),
        MemorySystem::with_channels(MemoryNode::Lpddr4x3733, 2),
        MemorySystem::with_channels(MemoryNode::Lpddr4x4267, 2),
        MemorySystem::single(MemoryNode::Hbm2),
        MemorySystem::single(MemoryNode::Hbm3),
    ]
}

/// The tile ladder of Fig. 18's y-axis.
pub const FIG18_TILES: [usize; 6] = [4, 8, 12, 16, 32, 64];

/// FPS of one bundle at an arbitrary target pixel count under the given
/// options.
pub fn fps_at_pixels(bundle: &TraceBundle, opts: &EvalOptions, target_pixels: u64) -> f64 {
    let r = evaluate_network(&bundle.trace, opts);
    r.fps_scaled(bundle.source_pixels, target_pixels)
}

/// The minimum Fig. 18 configuration — `(tiles, memory)` — that reaches
/// real-time HD for this bundle and scheme, or `None` if even the top of
/// both ladders falls short.
///
/// The search prefers fewer tiles, then cheaper memory, mirroring how
/// the paper reports "the minimum configuration needed".
pub fn min_realtime_config(
    bundle: &TraceBundle,
    scheme: SchemeChoice,
) -> Option<(usize, MemorySystem)> {
    for &tiles in &FIG18_TILES {
        for mem in fig18_memory_ladder() {
            let opts = EvalOptions {
                arch: Architecture::Diffy,
                cfg: AcceleratorConfig::table4().with_tiles(tiles),
                scheme,
                memory: mem,
            };
            if fps_at_pixels(bundle, &opts, HD_PIXELS) >= REAL_TIME_FPS {
                return Some((tiles, mem));
            }
        }
    }
    None
}

/// The low-resolution ladder of Fig. 17, in megapixels (0.0625 MP =
/// 250×250 up to 0.5 MP ≈ 707×707).
pub const FIG17_MEGAPIXELS: [f64; 5] = [0.0625, 0.125, 0.25, 0.4, 0.5];

/// Pixel count of a megapixel figure.
pub fn megapixels_to_pixels(mp: f64) -> u64 {
    (mp * 1e6).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{ci_trace_bundle, WorkloadOptions};
    use diffy_encoding::StorageScheme;
    use diffy_imaging::datasets::DatasetId;
    use diffy_models::CiModel;

    fn bundle() -> TraceBundle {
        ci_trace_bundle(
            CiModel::Ircnn,
            DatasetId::Kodak24,
            0,
            &WorkloadOptions::test_small(),
        )
    }

    #[test]
    fn memory_ladder_is_monotone_in_bandwidth() {
        let ladder = fig18_memory_ladder();
        for pair in ladder.windows(2) {
            assert!(pair[0].bandwidth_bytes_per_sec() < pair[1].bandwidth_bytes_per_sec());
        }
    }

    #[test]
    fn fps_drops_with_resolution() {
        let b = bundle();
        let opts = EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal);
        let lo = fps_at_pixels(&b, &opts, megapixels_to_pixels(0.0625));
        let hi = fps_at_pixels(&b, &opts, megapixels_to_pixels(0.5));
        assert!(lo > hi * 7.0, "lo {lo} hi {hi}");
    }

    #[test]
    fn realtime_search_returns_monotone_sensible_config() {
        let b = bundle();
        let found = min_realtime_config(
            &b,
            SchemeChoice::Scheme(StorageScheme::delta_d(16)),
        );
        // IRCNN at HD is demanding but reachable within the ladder.
        let (tiles, _mem) = found.expect("a real-time config should exist");
        assert!(FIG18_TILES.contains(&tiles));
        // Verify it actually meets the target.
        let opts = EvalOptions {
            arch: Architecture::Diffy,
            cfg: AcceleratorConfig::table4().with_tiles(tiles),
            scheme: SchemeChoice::Scheme(StorageScheme::delta_d(16)),
            memory: found.unwrap().1,
        };
        assert!(fps_at_pixels(&b, &opts, HD_PIXELS) >= REAL_TIME_FPS);
    }

    #[test]
    fn better_scheme_never_needs_more_tiles() {
        let b = bundle();
        let none = min_realtime_config(&b, SchemeChoice::Scheme(StorageScheme::NoCompression));
        let delta = min_realtime_config(&b, SchemeChoice::Scheme(StorageScheme::delta_d(16)));
        if let (Some((tn, _)), Some((td, _))) = (none, delta) {
            assert!(td <= tn, "delta {td} tiles vs none {tn}");
        }
    }

    #[test]
    fn megapixel_conversion() {
        assert_eq!(megapixels_to_pixels(0.25), 250_000);
        assert_eq!(megapixels_to_pixels(2.0736), HD_PIXELS);
    }
}
