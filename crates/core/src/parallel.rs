//! Deterministic parallel execution: a std-only scoped-thread job pool
//! and a compute-once keyed artifact cache.
//!
//! The evaluation harness fans out `(model, dataset, sample,
//! architecture, scheme)` jobs that are pure functions of their inputs.
//! Two invariants make parallelism safe for figure/table reproduction:
//!
//! 1. **Order stability** — [`run_jobs`] writes each job's result into a
//!    pre-sized slot indexed by job id, never by completion order, so
//!    output order is independent of scheduling and of the job count.
//! 2. **Bit identity** — every job is self-contained (no shared mutable
//!    accumulators, no job-count-dependent work splitting), so each
//!    result's floating-point operations happen in the same order at any
//!    parallelism, and results are bit-identical to the serial path.
//!
//! [`KeyedCache`] complements the pool: weights and traces are pure
//! functions of `(model, seed, …)` keys but expensive, so a sweep
//! computes each exactly once even when many jobs race on the same key
//! (the loser of the insertion race blocks on the winner's `OnceLock`
//! rather than recomputing).

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Worker count for a parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(NonZeroUsize);

impl Jobs {
    /// Exactly one worker — the serial reference path.
    pub const SERIAL: Jobs = Jobs(NonZeroUsize::MIN);

    /// A worker count of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        Self(NonZeroUsize::new(n).expect("job count must be at least 1"))
    }

    /// One worker per available hardware thread (the `--jobs` default);
    /// falls back to 1 if the platform cannot report parallelism.
    pub fn available() -> Self {
        Self(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0.get()
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Self::available()
    }
}

impl std::str::FromStr for Jobs {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Jobs::new(n)),
            _ => Err(format!("job count must be a positive integer, got `{s}`")),
        }
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Runs every job and returns their results **in job order**.
///
/// Jobs are distributed over at most `par` scoped worker threads via an
/// atomic work-stealing counter; each result lands in the slot of its
/// job's index, so the output is `[f(job 0), f(job 1), …]` regardless of
/// which worker ran what and in what order jobs finished. With `par` of
/// 1 (or a single job) everything runs inline on the caller's thread —
/// the serial path is literally the same code with the same ordering.
///
/// # Panics
///
/// Propagates the panic of any job (after all workers have stopped).
pub fn run_jobs<T, F>(jobs: Vec<F>, par: Jobs) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = par.get().min(n);
    if workers <= 1 {
        // The inline path wraps each job in the same "job" span as the
        // worker path, so a trace's structure is parallelism-invariant.
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                let _span = crate::trace::span_args("job", || vec![("index", i.into())]);
                f()
            })
            .collect();
    }

    // Slot per job: workers take the job out, run it, and store the
    // result under the same index. `Mutex<Option<…>>` keeps this std-only
    // and safe; each slot is touched exactly once so there is no
    // contention beyond the uncontended lock.
    let job_slots: Vec<Mutex<Option<F>>> =
        jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let result_slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let f = job_slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job taken twice");
                let out = {
                    let _span = crate::trace::span_args("job", || vec![("index", i.into())]);
                    f()
                };
                *result_slots[i].lock().expect("result slot poisoned") = Some(out);
            }));
        }
        // Join explicitly so a panicking worker doesn't leave siblings
        // detached mid-scope; re-raise the first panic after all stop.
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(p) = h.join() {
                panic.get_or_insert(p);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    });

    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing its result")
        })
        .collect()
}

/// A compute-once cache from keys to shared immutable artifacts.
///
/// `get_or_compute` runs `compute` at most once per key, even when many
/// threads request the same key concurrently: the map hands out one
/// [`OnceLock`] cell per key, and `OnceLock::get_or_init` serializes the
/// computation while letting distinct keys proceed in parallel (the map
/// lock is never held while computing).
pub struct KeyedCache<K, V> {
    map: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> KeyedCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        Self { map: Mutex::new(HashMap::new()), hits: AtomicU64::new(0), misses: AtomicU64::new(0) }
    }

    /// Returns the cached value for `key`, computing and inserting it on
    /// first request. Concurrent requests for the same key block until
    /// the first finishes and then share its result.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        let cell = {
            let mut map = self.map.lock().expect("cache map poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let value = Arc::clone(cell.get_or_init(|| {
            computed = true;
            Arc::new(compute())
        }));
        // A "hit" is a request whose closure did not run — it found a
        // finished or in-flight computation to share.
        let counter = if computed { &self.misses } else { &self.hits };
        counter.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// Requests whose value was already cached (or in flight) when they
    /// arrived.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to run the computation themselves.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Returns the cached value for `key` without computing, if present.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let map = self.map.lock().expect("cache map poisoned");
        map.get(key).and_then(|cell| cell.get().cloned())
    }

    /// Number of keys with a *completed* value.
    pub fn len(&self) -> usize {
        let map = self.map.lock().expect("cache map poisoned");
        map.values().filter(|c| c.get().is_some()).count()
    }

    /// Whether no completed value is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry.
    pub fn clear(&self) {
        self.map.lock().expect("cache map poisoned").clear();
    }
}

impl<K: Eq + Hash + Clone, V> Default for KeyedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A size-bounded, clearable sibling of [`KeyedCache`] for long-lived
/// processes (the evaluation service).
///
/// [`KeyedCache`] is append-only — exactly right for a sweep, a leak in
/// a server that sees an unbounded key stream. `BoundedCache` holds at
/// most `capacity` entries and evicts the least-recently-used one to
/// admit a new key, counting evictions. Same sharing semantics per key:
/// concurrent requests for a live key compute once and share the result.
/// An evicted key is simply recomputed on next request — values are pure
/// functions of their keys, so eviction affects cost, never results.
///
/// Request accounting distinguishes three outcomes: a **miss** ran the
/// computation, a **hit** found a completed value resident, and a
/// **shared** request arrived while another thread's computation for the
/// same key was still in flight — it paid (most of) the compute latency
/// even though its own closure never ran, so lumping it in with hits
/// would overstate how well the cache absorbs load.
pub struct BoundedCache<K, V> {
    inner: Mutex<BoundedInner<K, V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    shared: AtomicU64,
    evictions: AtomicU64,
}

struct BoundedInner<K, V> {
    map: HashMap<K, BoundedEntry<V>>,
    /// LRU index: `last_used` tick → key. The access clock advances on
    /// every request, so ticks are unique and this is a total order over
    /// residents; the first entry is always the least-recently-used key,
    /// making eviction O(log n) instead of a whole-map scan under the
    /// lock.
    order: BTreeMap<u64, K>,
    /// Monotonic access clock for LRU ordering.
    tick: u64,
}

struct BoundedEntry<V> {
    cell: Arc<OnceLock<Arc<V>>>,
    last_used: u64,
}

impl<K: Eq + Hash + Clone, V> BoundedCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded cache needs capacity of at least 1");
        Self {
            inner: Mutex::new(BoundedInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shared: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, computing it if absent and
    /// evicting the least-recently-used entry if the cache is full.
    ///
    /// The map lock is never held while computing, so distinct keys
    /// proceed in parallel; same-key requests share one computation while
    /// the key stays resident. A waiter holds the value cell by `Arc`, so
    /// evicting an in-flight key never cancels or corrupts its
    /// computation — the evictee just becomes invisible to new requests.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        // `complete` is sampled under the map lock, so the hit/shared
        // classification is fixed at acquisition time: a request that
        // finds an in-flight cell counts as `shared` even if the
        // computation happens to finish before it blocks.
        let (cell, complete) = {
            let mut inner = self.inner.lock().expect("cache map poisoned");
            inner.tick += 1;
            let now = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                let prev = entry.last_used;
                entry.last_used = now;
                let cell = Arc::clone(&entry.cell);
                let complete = cell.get().is_some();
                inner.order.remove(&prev);
                inner.order.insert(now, key);
                (cell, complete)
            } else {
                if inner.map.len() >= self.capacity {
                    let (_, lru) =
                        inner.order.pop_first().expect("order index tracks the map");
                    inner.map.remove(&lru);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                let cell = Arc::new(OnceLock::new());
                inner
                    .map
                    .insert(key.clone(), BoundedEntry { cell: Arc::clone(&cell), last_used: now });
                inner.order.insert(now, key);
                (cell, false)
            }
        };
        let mut computed = false;
        let value = Arc::clone(cell.get_or_init(|| {
            computed = true;
            Arc::new(compute())
        }));
        let counter = if computed {
            &self.misses
        } else if complete {
            &self.hits
        } else {
            &self.shared
        };
        counter.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// Number of resident keys with a *completed* value.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("cache map poisoned");
        inner.map.values().filter(|e| e.cell.get().is_some()).count()
    }

    /// Whether no completed value is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests served from a resident *completed* value.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that ran the computation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Requests that arrived while another thread's computation for the
    /// same key was in flight and shared its result (paying the wait).
    pub fn shared(&self) -> u64 {
        self.shared.load(Ordering::Relaxed)
    }

    /// Entries evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drops every resident entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache map poisoned");
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_are_in_job_order_at_any_parallelism() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for par in [1, 2, 3, 8, 64] {
            let jobs: Vec<_> = (0..37).map(|i| move || i * i).collect();
            assert_eq!(run_jobs(jobs, Jobs::new(par)), expect, "par={par}");
        }
    }

    #[test]
    fn empty_and_single_job_sets_work() {
        let none: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![];
        assert!(run_jobs(none, Jobs::new(4)).is_empty());
        assert_eq!(run_jobs(vec![|| 7u8], Jobs::new(4)), vec![7]);
    }

    #[test]
    fn worker_panic_propagates() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job failure")),
            Box::new(|| 3),
        ];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_jobs(jobs, Jobs::new(2))
        }));
        assert!(r.is_err());
    }

    #[test]
    fn cache_computes_each_key_once() {
        let cache: KeyedCache<u32, u32> = KeyedCache::new();
        let calls = AtomicU32::new(0);
        for _ in 0..5 {
            let v = cache.get_or_compute(3, || {
                calls.fetch_add(1, Ordering::SeqCst);
                30
            });
            assert_eq!(*v, 30);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(*cache.get(&3).unwrap(), 30);
        assert!(cache.get(&4).is_none());
    }

    #[test]
    fn concurrent_same_key_requests_share_one_computation() {
        let cache: KeyedCache<u32, u64> = KeyedCache::new();
        let calls = AtomicU32::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        *cache.get_or_compute(9, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            900
                        })
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 900);
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn keyed_cache_counts_hits_and_misses() {
        let cache: KeyedCache<u32, u32> = KeyedCache::new();
        cache.get_or_compute(1, || 10);
        cache.get_or_compute(1, || 10);
        cache.get_or_compute(2, || 20);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache: BoundedCache<u32, u32> = BoundedCache::new(2);
        cache.get_or_compute(1, || 10);
        cache.get_or_compute(2, || 20);
        // Touch 1 so 2 is the LRU, then admit 3.
        cache.get_or_compute(1, || unreachable!("resident"));
        cache.get_or_compute(3, || 30);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        // 2 was evicted and recomputes; 1 is still resident.
        let recomputed = std::cell::Cell::new(false);
        cache.get_or_compute(2, || {
            recomputed.set(true);
            20
        });
        assert!(recomputed.get(), "evicted key must recompute");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.shared(), 0, "no concurrency here, nothing shared");
    }

    #[test]
    fn bounded_cache_eviction_order_pins_strict_lru() {
        // Pins the eviction policy: the victim is the least recently
        // *used* key (touches refresh recency), not the oldest insert.
        let cache: BoundedCache<u32, u32> = BoundedCache::new(3);
        for k in [1, 2, 3] {
            cache.get_or_compute(k, || k);
        }
        // Recency order is now 1 < 2 < 3; refresh 1 then 2 → 3 < 1 < 2.
        cache.get_or_compute(1, || unreachable!("resident"));
        cache.get_or_compute(2, || unreachable!("resident"));
        // Admitting 4 must evict 3.
        cache.get_or_compute(4, || 4);
        assert_eq!(cache.evictions(), 1);
        cache.get_or_compute(1, || unreachable!("1 survived the eviction"));
        cache.get_or_compute(2, || unreachable!("2 survived the eviction"));
        let recomputed = std::cell::Cell::new(false);
        cache.get_or_compute(3, || {
            recomputed.set(true);
            3
        });
        assert!(recomputed.get(), "3 was the LRU victim");
        assert_eq!(cache.evictions(), 2, "re-admitting 3 evicts again at capacity");
    }

    #[test]
    fn bounded_cache_counts_in_flight_waiters_as_shared() {
        // Pins the accounting split: a request that finds a *completed*
        // value is a hit; one that arrives while the computation is still
        // in flight is `shared` (it waited the compute time, so it must
        // not inflate the hit rate). Classification happens under the map
        // lock, so releasing the computation afterwards cannot flip it.
        use std::sync::mpsc;
        let cache: BoundedCache<u32, u32> = BoundedCache::new(4);
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let cache = &cache;
        std::thread::scope(|s| {
            s.spawn(move || {
                cache.get_or_compute(1, || {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    10
                });
            });
            entered_rx.recv().unwrap();
            // The computation is now provably in flight.
            let waiter = s.spawn(|| *cache.get_or_compute(1, || unreachable!("in flight")));
            // Give the waiter time to classify itself before releasing.
            std::thread::sleep(std::time::Duration::from_millis(20));
            release_tx.send(()).unwrap();
            assert_eq!(waiter.join().unwrap(), 10);
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.shared(), 1, "in-flight waiter is shared, not a hit");
        assert_eq!(cache.hits(), 0);
        cache.get_or_compute(1, || unreachable!("resident"));
        assert_eq!(cache.hits(), 1, "completed-value lookups stay hits");
    }

    #[test]
    fn bounded_cache_clear_and_counters() {
        let cache: BoundedCache<u32, u32> = BoundedCache::new(8);
        for k in 0..5 {
            cache.get_or_compute(k, || k * 10);
        }
        assert_eq!(cache.len(), 5);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 5, "counters survive clear");
        cache.get_or_compute(0, || 0);
        assert_eq!(cache.misses(), 6, "cleared keys recompute");
        assert_eq!(cache.capacity(), 8);
    }

    #[test]
    fn bounded_cache_concurrent_same_key_shares_one_computation() {
        let cache: BoundedCache<u32, u64> = BoundedCache::new(4);
        let calls = AtomicU32::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        *cache.get_or_compute(9, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            900
                        })
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 900);
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.misses(), 1);
        // The 7 non-computing threads each either found the value already
        // complete (hit) or waited on the in-flight computation (shared) —
        // the split depends on scheduling, the sum does not.
        assert_eq!(cache.hits() + cache.shared(), 7);
    }

    #[test]
    #[should_panic(expected = "capacity of at least 1")]
    fn bounded_cache_rejects_zero_capacity() {
        let _ = BoundedCache::<u32, u32>::new(0);
    }

    #[test]
    fn jobs_parse_and_clamp() {
        assert_eq!("4".parse::<Jobs>().unwrap().get(), 4);
        assert!("0".parse::<Jobs>().is_err());
        assert!("x".parse::<Jobs>().is_err());
        assert!(Jobs::available().get() >= 1);
        assert_eq!(Jobs::SERIAL.get(), 1);
    }
}
