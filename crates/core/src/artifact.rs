//! Disk artifact store: the persistent tier of the sweep cache.
//!
//! The experiment grid is finite and enumerable, so a serving process
//! can treat evaluation as computation *reuse* rather than computation:
//! every `(workload, architecture, scheme, memory)` point maps to a
//! canonical key ([`result_key`]), and a completed evaluation can be
//! materialized as one JSON artifact file and served later by any
//! process — `diffy precompute` fills a directory, `diffy serve
//! --artifact-dir` reads through it.
//!
//! **Format.** One file per key, named by the FNV-1a 64 hash of the key
//! (`<16 hex digits>.json`), containing a version-headed document:
//!
//! ```json
//! {"format": "diffy-artifact", "version": 1,
//!  "key": "<canonical key>", "fingerprint": <u64>,
//!  "payload": {…full evaluation result…}}
//! ```
//!
//! The `key` echo guards against filename hash collisions and renamed
//! files; the `fingerprint` is the FNV-1a 64 hash of the payload's
//! canonical serialization (`diffy_core::json` is deterministic and
//! u64-exact, so re-serializing the parsed payload reproduces the
//! written bytes). A reader validates format marker, version,
//! fingerprint and key before trusting a single payload field.
//!
//! **Corruption discipline.** Any torn, truncated, mangled or
//! version-skewed artifact is a *reasoned* [`ArtifactError`] — never a
//! panic, never an accepted-but-wrong result. The tier degrades to
//! recompute and the next write-through repairs the file.
//!
//! **Atomicity.** Writes go to a unique dot-prefixed `.tmp` file in the
//! same directory and are published with `rename`, which is atomic on
//! POSIX filesystems: a reader sees the old artifact, the new artifact,
//! or no artifact — never a half-written one. A crash between write and
//! rename leaves an orphan temp file that readers ignore (only
//! `<16 hex>.json` names are ever opened or scanned).

use crate::accelerator::{EvalOptions, LayerResult, NetworkResult, SchemeChoice};
use crate::json::{parse, JsonValue};
use crate::runner::WorkloadOptions;
use diffy_imaging::datasets::DatasetId;
use diffy_memsys::overlap::LayerTiming;
use diffy_memsys::traffic::LayerTraffic;
use diffy_models::CiModel;
use diffy_sim::{Architecture, LayerCycles};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format marker every artifact document must carry.
pub const ARTIFACT_FORMAT: &str = "diffy-artifact";

/// Current artifact format version. Bump on any payload shape change;
/// readers reject other versions ([`ArtifactError::VersionSkew`]) and
/// recompute.
pub const ARTIFACT_VERSION: u64 = 1;

/// FNV-1a 64-bit hash (offset basis / prime per the reference spec).
/// Used for artifact filenames and content fingerprints — fast, stable
/// across platforms, and dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x100_0000_01b3);
    }
    acc
}

/// A complete, servable evaluation: the network result plus the traced
/// source-pixel count (what FPS projections and the service response
/// need alongside the result).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalArtifact {
    /// The evaluation result.
    pub result: NetworkResult,
    /// Pixels of the source image the trace was prepared from.
    pub source_pixels: u64,
}

/// Canonical key of one evaluation point: injective over everything the
/// result is a pure function of — model, dataset, sample, trace
/// resolution, seed, architecture, tile configuration (floats keyed by
/// bit pattern), storage scheme, and memory system.
///
/// `samples_per_dataset` is deliberately excluded: it caps sweep
/// enumeration but never changes an individual result.
pub fn result_key(
    model: CiModel,
    dataset: DatasetId,
    sample: usize,
    workload: &WorkloadOptions,
    eval: &EvalOptions,
) -> String {
    let cfg = &eval.cfg;
    format!(
        "model={model};dataset={dataset};sample={sample};res={};seed={};arch={};\
         cfg={}T{}F{}L{}W{}G:{:016x};scheme={};mem={}x{}",
        workload.resolution,
        workload.seed,
        eval.arch.name(),
        cfg.tiles,
        cfg.filters_per_tile,
        cfg.lanes,
        cfg.windows,
        cfg.terms_per_group,
        cfg.frequency_ghz.to_bits(),
        scheme_token(eval.scheme),
        eval.memory.node.name(),
        eval.memory.channels,
    )
}

/// Injective text form of a [`SchemeChoice`]. `Profiled`'s quantile is
/// keyed by its f64 bit pattern — distinct bit patterns are distinct
/// computations.
fn scheme_token(scheme: SchemeChoice) -> String {
    match scheme {
        SchemeChoice::Scheme(s) => s.to_string(),
        SchemeChoice::Profiled { quantile } => format!("ProfiledQ:{:016x}", quantile.to_bits()),
        SchemeChoice::Ideal => "Ideal".to_string(),
    }
}

/// Why an artifact was rejected. Every variant degrades to recompute;
/// none is ever a panic.
#[derive(Debug)]
pub enum ArtifactError {
    /// The file could not be read (permissions, torn filesystem, …).
    Io(io::Error),
    /// The bytes are not a well-formed JSON document.
    Json(String),
    /// The document parses but is not an artifact: wrong or missing
    /// format marker, or a malformed header field.
    BadHeader(String),
    /// The artifact was written by a different format version.
    VersionSkew(i128),
    /// The payload bytes do not hash to the recorded fingerprint —
    /// interior corruption.
    FingerprintMismatch {
        /// Fingerprint recorded in the header.
        expected: u64,
        /// Fingerprint of the payload as stored.
        actual: u64,
    },
    /// The embedded key is not the key that was requested (filename
    /// hash collision or a renamed file).
    KeyMismatch {
        /// The key the caller asked for.
        expected: String,
        /// The key the file claims to hold.
        actual: String,
    },
    /// Header checks passed but the payload is not a decodable
    /// evaluation result.
    Payload(String),
}

impl ArtifactError {
    /// Stable short name of the failure class (used by the fuzz lane's
    /// classification tables).
    pub fn kind(&self) -> &'static str {
        match self {
            ArtifactError::Io(_) => "io",
            ArtifactError::Json(_) => "json",
            ArtifactError::BadHeader(_) => "bad-header",
            ArtifactError::VersionSkew(_) => "version-skew",
            ArtifactError::FingerprintMismatch { .. } => "fingerprint-mismatch",
            ArtifactError::KeyMismatch { .. } => "key-mismatch",
            ArtifactError::Payload(_) => "payload",
        }
    }
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact unreadable: {e}"),
            ArtifactError::Json(e) => write!(f, "artifact is not valid JSON: {e}"),
            ArtifactError::BadHeader(e) => write!(f, "artifact header invalid: {e}"),
            ArtifactError::VersionSkew(v) => {
                write!(f, "artifact version {v} (this build reads {ARTIFACT_VERSION})")
            }
            ArtifactError::FingerprintMismatch { expected, actual } => write!(
                f,
                "payload fingerprint {actual:016x} does not match header {expected:016x}"
            ),
            ArtifactError::KeyMismatch { expected, actual } => {
                write!(f, "artifact holds key `{actual}`, requested `{expected}`")
            }
            ArtifactError::Payload(e) => write!(f, "artifact payload invalid: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ArtifactError> {
    v.get(key).ok_or_else(|| ArtifactError::Payload(format!("missing field `{key}`")))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, ArtifactError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| ArtifactError::Payload(format!("field `{key}` is not a u64")))
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, ArtifactError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| ArtifactError::Payload(format!("field `{key}` is not a string")))
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, ArtifactError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| ArtifactError::Payload(format!("field `{key}` is not a number")))
}

/// Maps an architecture name back to the interned `&'static str` the
/// result structs carry. Unknown names are a payload error — the name
/// set is closed.
fn arch_static(name: &str) -> Option<&'static str> {
    [Architecture::Vaa, Architecture::Pra, Architecture::Diffy, Architecture::Scnn]
        .iter()
        .map(|a| a.name())
        .find(|n| *n == name)
}

fn layer_to_json(l: &LayerResult) -> JsonValue {
    JsonValue::object(vec![
        ("name", l.name.as_str().into()),
        (
            "compute",
            JsonValue::object(vec![
                ("cycles", l.compute.cycles.into()),
                ("useful_slots", l.compute.useful_slots.into()),
                ("total_slots", l.compute.total_slots.into()),
                ("compute_events", l.compute.compute_events.into()),
                ("filter_passes", l.compute.filter_passes.into()),
                ("macs", l.compute.macs.into()),
            ]),
        ),
        (
            "traffic",
            JsonValue::object(vec![
                ("imap_read_bytes", l.traffic.imap_read_bytes.into()),
                ("omap_write_bytes", l.traffic.omap_write_bytes.into()),
                ("weight_bytes", l.traffic.weight_bytes.into()),
            ]),
        ),
        (
            "timing",
            JsonValue::object(vec![
                ("compute_cycles", l.timing.compute_cycles.into()),
                ("memory_cycles", l.timing.memory_cycles.into()),
                ("total_cycles", l.timing.total_cycles.into()),
                ("stall_cycles", l.timing.stall_cycles.into()),
            ]),
        ),
    ])
}

fn layer_from_json(v: &JsonValue) -> Result<LayerResult, ArtifactError> {
    let compute = field(v, "compute")?;
    let traffic = field(v, "traffic")?;
    let timing = field(v, "timing")?;
    Ok(LayerResult {
        name: str_field(v, "name")?.to_string(),
        compute: LayerCycles {
            cycles: u64_field(compute, "cycles")?,
            useful_slots: u64_field(compute, "useful_slots")?,
            total_slots: u64_field(compute, "total_slots")?,
            compute_events: u64_field(compute, "compute_events")?,
            filter_passes: u64_field(compute, "filter_passes")?,
            macs: u64_field(compute, "macs")?,
        },
        traffic: LayerTraffic {
            imap_read_bytes: u64_field(traffic, "imap_read_bytes")?,
            omap_write_bytes: u64_field(traffic, "omap_write_bytes")?,
            weight_bytes: u64_field(traffic, "weight_bytes")?,
        },
        timing: LayerTiming {
            compute_cycles: u64_field(timing, "compute_cycles")?,
            memory_cycles: u64_field(timing, "memory_cycles")?,
            total_cycles: u64_field(timing, "total_cycles")?,
            stall_cycles: u64_field(timing, "stall_cycles")?,
        },
    })
}

/// Serializes an evaluation to the artifact payload document. Every
/// integer stays integral (u64-exact) and the float fields use the
/// deterministic shortest-roundtrip rendering, so
/// `payload_from_json(payload_to_json(a)) == a` bit-for-bit.
pub fn payload_to_json(a: &EvalArtifact) -> JsonValue {
    JsonValue::object(vec![
        ("model", a.result.model.as_str().into()),
        ("arch", a.result.arch.into()),
        ("scheme", a.result.scheme.as_str().into()),
        ("frequency_ghz", a.result.frequency_ghz.into()),
        ("source_pixels", a.source_pixels.into()),
        ("layers", JsonValue::Array(a.result.layers.iter().map(layer_to_json).collect())),
    ])
}

/// Decodes an artifact payload back into an evaluation. Any shape
/// mismatch is a reasoned [`ArtifactError::Payload`].
pub fn payload_from_json(v: &JsonValue) -> Result<EvalArtifact, ArtifactError> {
    let arch_name = str_field(v, "arch")?;
    let arch = arch_static(arch_name)
        .ok_or_else(|| ArtifactError::Payload(format!("unknown architecture `{arch_name}`")))?;
    let layers = field(v, "layers")?
        .as_array()
        .ok_or_else(|| ArtifactError::Payload("field `layers` is not an array".into()))?
        .iter()
        .map(layer_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(EvalArtifact {
        result: NetworkResult {
            model: str_field(v, "model")?.to_string(),
            arch,
            scheme: str_field(v, "scheme")?.to_string(),
            layers,
            frequency_ghz: f64_field(v, "frequency_ghz")?,
        },
        source_pixels: u64_field(v, "source_pixels")?,
    })
}

/// Renders the complete on-disk artifact document for `key`.
pub fn artifact_document(key: &str, artifact: &EvalArtifact) -> String {
    let payload = payload_to_json(artifact);
    let fingerprint = fnv1a64(payload.to_json().as_bytes());
    JsonValue::object(vec![
        ("format", ARTIFACT_FORMAT.into()),
        ("version", JsonValue::Int(ARTIFACT_VERSION as i128)),
        ("key", key.into()),
        ("fingerprint", fingerprint.into()),
        ("payload", payload),
    ])
    .to_json()
}

/// Parses and fully validates an artifact document: format marker,
/// version, key echo (when `expect_key` is given), content fingerprint,
/// then payload shape — in that order, so each failure class carries its
/// most specific reason. Returns the embedded key and the decoded
/// evaluation.
pub fn decode_artifact(
    text: &str,
    expect_key: Option<&str>,
) -> Result<(String, EvalArtifact), ArtifactError> {
    let doc = parse(text).map_err(|e| ArtifactError::Json(e.to_string()))?;
    let format = doc
        .get("format")
        .and_then(|v| v.as_str())
        .ok_or_else(|| ArtifactError::BadHeader("missing `format` marker".into()))?;
    if format != ARTIFACT_FORMAT {
        return Err(ArtifactError::BadHeader(format!("format marker `{format}`")));
    }
    let version = match doc.get("version") {
        Some(JsonValue::Int(i)) => *i,
        _ => return Err(ArtifactError::BadHeader("missing integral `version`".into())),
    };
    if version != ARTIFACT_VERSION as i128 {
        return Err(ArtifactError::VersionSkew(version));
    }
    let key = doc
        .get("key")
        .and_then(|v| v.as_str())
        .ok_or_else(|| ArtifactError::BadHeader("missing `key`".into()))?;
    if let Some(want) = expect_key {
        if key != want {
            return Err(ArtifactError::KeyMismatch {
                expected: want.to_string(),
                actual: key.to_string(),
            });
        }
    }
    let fingerprint = doc
        .get("fingerprint")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| ArtifactError::BadHeader("missing `fingerprint`".into()))?;
    let payload = doc
        .get("payload")
        .ok_or_else(|| ArtifactError::BadHeader("missing `payload`".into()))?;
    let actual = fnv1a64(payload.to_json().as_bytes());
    if actual != fingerprint {
        return Err(ArtifactError::FingerprintMismatch { expected: fingerprint, actual });
    }
    let artifact = payload_from_json(payload)?;
    Ok((key.to_string(), artifact))
}

/// A point-in-time summary of a [`DiskTier`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Loads that validated and served an artifact.
    pub hits: u64,
    /// Loads that found no artifact on disk.
    pub misses: u64,
    /// Loads that found an unreadable or invalid artifact (degraded to
    /// recompute).
    pub corrupt: u64,
    /// Artifact bytes moved through the tier (reads served + writes
    /// published).
    pub bytes: u64,
}

/// The disk tier of the sweep cache: a directory of validated artifact
/// files, written atomically and safe to share between concurrent
/// processes (`precompute` writers and `serve` readers included).
pub struct DiskTier {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    bytes: AtomicU64,
    /// Per-process sequence for unique temp names; combined with the
    /// pid, concurrent writers never collide on a temp file.
    temp_seq: AtomicU64,
}

impl DiskTier {
    /// Opens (creating if needed) an artifact directory, probing
    /// writability up front: a read-only or otherwise unusable path is
    /// an immediate error, not a latent per-request failure.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let probe = dir.join(format!(".writable-probe-{}.tmp", std::process::id()));
        fs::write(&probe, b"probe")?;
        fs::remove_file(&probe)?;
        Ok(Self {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path the artifact for `key` lives at.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a64(key.as_bytes())))
    }

    /// Whether an artifact file for `key` exists (no validation — a
    /// corrupt file still heals on its first read-through).
    pub fn contains(&self, key: &str) -> bool {
        self.path_for(key).is_file()
    }

    /// Loads and validates the artifact for `key`.
    ///
    /// `Ok(Some(_))` is a disk hit; `Ok(None)` means no artifact exists
    /// (miss — compute it); `Err(_)` means an artifact exists but failed
    /// validation (corrupt — compute it, and a write-through repairs the
    /// file). Counters are updated accordingly; this never panics.
    pub fn load(&self, key: &str) -> Result<Option<EvalArtifact>, ArtifactError> {
        let path = self.path_for(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            Err(e) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                return Err(ArtifactError::Io(e));
            }
        };
        match decode_artifact(&text, Some(key)) {
            Ok((_, artifact)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(text.len() as u64, Ordering::Relaxed);
                Ok(Some(artifact))
            }
            Err(e) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Atomically publishes the artifact for `key`: the document is
    /// written to a unique temp file in the same directory and `rename`d
    /// over the final name. Readers never observe a partial file; a
    /// crash in between leaves only an ignored orphan temp. Returns the
    /// artifact size in bytes.
    pub fn store(&self, key: &str, artifact: &EvalArtifact) -> io::Result<u64> {
        let doc = artifact_document(key, artifact);
        let path = self.path_for(key);
        let tmp = self.dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            fnv1a64(key.as_bytes()),
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, doc.as_bytes())?;
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        self.bytes.fetch_add(doc.len() as u64, Ordering::Relaxed);
        Ok(doc.len() as u64)
    }

    /// Reads every valid artifact in the directory (for `--warmup`),
    /// in deterministic filename order. Invalid or unreadable files are
    /// counted as corrupt and skipped — a half-populated or damaged
    /// directory warms what it can. Does not touch the hit/miss
    /// counters: warmup is not request traffic.
    pub fn load_all(&self) -> io::Result<Vec<(String, EvalArtifact)>> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
            .collect();
        paths.sort();
        let mut out = Vec::new();
        for path in paths {
            match fs::read_to_string(&path) {
                Ok(text) => match decode_artifact(&text, None) {
                    Ok((key, artifact)) => out.push((key, artifact)),
                    Err(_) => {
                        self.corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                },
                Err(_) => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(out)
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_memsys::{MemoryNode, MemorySystem};

    fn sample_artifact() -> EvalArtifact {
        EvalArtifact {
            result: NetworkResult {
                model: "IRCNN".to_string(),
                arch: Architecture::Diffy.name(),
                scheme: "DeltaD16".to_string(),
                layers: vec![LayerResult {
                    name: "conv1".to_string(),
                    compute: LayerCycles {
                        cycles: 123,
                        useful_slots: 456,
                        total_slots: 789,
                        compute_events: 10,
                        filter_passes: 2,
                        macs: u64::MAX - 7, // above 2^53: must stay exact
                    },
                    traffic: LayerTraffic {
                        imap_read_bytes: 1,
                        omap_write_bytes: 2,
                        weight_bytes: 3,
                    },
                    timing: LayerTiming {
                        compute_cycles: 123,
                        memory_cycles: 99,
                        total_cycles: 123,
                        stall_cycles: 0,
                    },
                }],
                frequency_ghz: 1.0,
            },
            source_pixels: 96 * 96,
        }
    }

    #[test]
    fn payload_round_trips_bit_exactly() {
        let a = sample_artifact();
        let doc = payload_to_json(&a).to_json();
        let back = payload_from_json(&parse(&doc).unwrap()).unwrap();
        assert_eq!(back, a);
        // Canonical serialization is a fixed point: the fingerprint of
        // the re-serialized payload equals the fingerprint of the
        // original bytes.
        assert_eq!(payload_to_json(&back).to_json(), doc);
    }

    #[test]
    fn document_round_trips_through_decode() {
        let a = sample_artifact();
        let doc = artifact_document("some-key", &a);
        let (key, back) = decode_artifact(&doc, Some("some-key")).unwrap();
        assert_eq!(key, "some-key");
        assert_eq!(back, a);
    }

    #[test]
    fn decode_classifies_each_failure() {
        let a = sample_artifact();
        let doc = artifact_document("k", &a);

        assert_eq!(decode_artifact("{", None).unwrap_err().kind(), "json");
        assert_eq!(decode_artifact("{}", None).unwrap_err().kind(), "bad-header");
        let wrong_format = doc.replace("diffy-artifact", "other-format");
        assert_eq!(decode_artifact(&wrong_format, None).unwrap_err().kind(), "bad-header");
        let skewed = doc.replace("\"version\":1", "\"version\":2");
        assert_eq!(decode_artifact(&skewed, None).unwrap_err().kind(), "version-skew");
        assert_eq!(decode_artifact(&doc, Some("other-key")).unwrap_err().kind(), "key-mismatch");
        // Flip a payload digit: the fingerprint no longer matches.
        let mangled = doc.replace("\"cycles\":123", "\"cycles\":124");
        assert_eq!(
            decode_artifact(&mangled, Some("k")).unwrap_err().kind(),
            "fingerprint-mismatch"
        );
    }

    #[test]
    fn result_key_is_injective_over_its_inputs() {
        let base_w = WorkloadOptions { resolution: 96, samples_per_dataset: 2, seed: 1 };
        let base_e = EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal);
        let base = result_key(CiModel::Ircnn, DatasetId::Kodak24, 0, &base_w, &base_e);

        // samples_per_dataset never affects the key…
        let more_samples = WorkloadOptions { samples_per_dataset: 5, ..base_w };
        assert_eq!(
            base,
            result_key(CiModel::Ircnn, DatasetId::Kodak24, 0, &more_samples, &base_e)
        );

        // …and every result-relevant input does.
        let variants = [
            result_key(CiModel::DnCnn, DatasetId::Kodak24, 0, &base_w, &base_e),
            result_key(CiModel::Ircnn, DatasetId::Cbsd68, 0, &base_w, &base_e),
            result_key(CiModel::Ircnn, DatasetId::Kodak24, 1, &base_w, &base_e),
            result_key(
                CiModel::Ircnn,
                DatasetId::Kodak24,
                0,
                &WorkloadOptions { resolution: 128, ..base_w },
                &base_e,
            ),
            result_key(
                CiModel::Ircnn,
                DatasetId::Kodak24,
                0,
                &WorkloadOptions { seed: 2, ..base_w },
                &base_e,
            ),
            result_key(
                CiModel::Ircnn,
                DatasetId::Kodak24,
                0,
                &base_w,
                &EvalOptions::new(Architecture::Pra, SchemeChoice::Ideal),
            ),
            result_key(
                CiModel::Ircnn,
                DatasetId::Kodak24,
                0,
                &base_w,
                &EvalOptions::new(
                    Architecture::Diffy,
                    SchemeChoice::Profiled { quantile: 0.999 },
                ),
            ),
            result_key(
                CiModel::Ircnn,
                DatasetId::Kodak24,
                0,
                &base_w,
                &EvalOptions {
                    memory: MemorySystem::with_channels(MemoryNode::Hbm2, 2),
                    ..EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal)
                },
            ),
        ];
        let mut all = variants.to_vec();
        all.push(base);
        let unique: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(unique.len(), all.len(), "keys must not collide: {all:#?}");
    }

    #[test]
    fn disk_tier_store_load_and_counters() {
        let dir = std::env::temp_dir().join(format!("diffy-art-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let tier = DiskTier::open(&dir).unwrap();
        let a = sample_artifact();

        assert_eq!(tier.load("k1").unwrap(), None, "empty tier misses");
        let bytes = tier.store("k1", &a).unwrap();
        assert!(bytes > 0);
        assert!(tier.contains("k1"));
        assert_eq!(tier.load("k1").unwrap(), Some(a.clone()), "stored artifact round-trips");

        // Corrupt the file in place: load degrades to a reasoned error.
        fs::write(tier.path_for("k1"), b"{\"format\":\"diffy-artifact\"").unwrap();
        assert!(tier.load("k1").is_err());
        // A re-store repairs it.
        tier.store("k1", &a).unwrap();
        assert_eq!(tier.load("k1").unwrap(), Some(a.clone()));

        let s = tier.stats();
        assert_eq!((s.hits, s.misses, s.corrupt), (2, 1, 1));
        assert!(s.bytes >= 2 * bytes);

        // load_all sees the one valid artifact and ignores orphan temps.
        fs::write(dir.join(".orphan.123.0.tmp"), b"torn write").unwrap();
        let all = tier.load_all().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, "k1");
        assert_eq!(all[0].1, a);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Reference FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
