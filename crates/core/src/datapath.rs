//! Accumulator-width analysis for the SIP datapath.
//!
//! The tile emulator uses 64-bit accumulators for convenience; real SIPs
//! provision the minimum width that cannot overflow. This module derives
//! that width from layer shapes — for direct convolution and for the
//! differential dataflow, whose running-sum reconstruction changes the
//! bound (each partial is a *difference* of two direct outputs plus the
//! seed, so the live range never exceeds the direct range, but the
//! intermediate `⟨w, Δ⟩` term can transiently reach twice it).

use diffy_tensor::Shape4;

/// Bits needed to represent any signed value of magnitude at most `m`.
fn bits_for_magnitude(m: u64) -> u32 {
    // p signed bits cover [-2^(p-1), 2^(p-1) - 1]; need 2^(p-1) >= m + 1
    // to be safe on the positive side.
    let mut p = 1u32;
    while (1u128 << (p - 1)) <= m as u128 {
        p += 1;
    }
    p
}

/// Worst-case magnitude of a direct inner product for a filter shape:
/// `fan_in × max|w| × max|a|`.
pub fn direct_accumulator_bound(fshape: Shape4, max_w: u32, max_a: u32) -> u64 {
    (fshape.c * fshape.h * fshape.w) as u64 * max_w as u64 * max_a as u64
}

/// Minimum signed accumulator bits for direct convolution.
pub fn direct_accumulator_bits(fshape: Shape4, max_w: u32, max_a: u32) -> u32 {
    bits_for_magnitude(direct_accumulator_bound(fshape, max_w, max_a))
}

/// Minimum signed accumulator bits for Diffy's differential dataflow.
///
/// The reconstructed outputs stay inside the direct bound, but before the
/// DR add the SIP holds `⟨w, Δ⟩` where each `Δ` spans twice the
/// activation range — one extra bit.
pub fn differential_accumulator_bits(fshape: Shape4, max_w: u32, max_a: u32) -> u32 {
    direct_accumulator_bits(fshape, max_w, max_a) + 1
}

/// The provisioned SIP accumulator width used by the analysis and the
/// discussion in `tile`: covers every Table I / Fig. 19 layer with
/// margin.
pub const SIP_ACCUMULATOR_BITS: u32 = 48;

/// Checks whether a layer is safe in the provisioned accumulator.
pub fn fits_provisioned(fshape: Shape4, max_w: u32, max_a: u32) -> bool {
    differential_accumulator_bits(fshape, max_w, max_a) <= SIP_ACCUMULATOR_BITS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_magnitude_edges() {
        assert_eq!(bits_for_magnitude(0), 1);
        assert_eq!(bits_for_magnitude(1), 2);
        assert_eq!(bits_for_magnitude(127), 8);
        assert_eq!(bits_for_magnitude(128), 9);
        assert_eq!(bits_for_magnitude(32768), 17);
    }

    #[test]
    fn worst_case_ci_layer_fits_48_bits() {
        // The largest Table I inner product: FFDNet, 96 channels x 3x3,
        // full 16-bit operands.
        let fshape = Shape4::new(96, 96, 3, 3);
        let bits = differential_accumulator_bits(fshape, 1 << 15, 1 << 15);
        assert!(bits <= SIP_ACCUMULATOR_BITS, "need {bits} bits");
        assert!(fits_provisioned(fshape, 1 << 15, 1 << 15));
    }

    #[test]
    fn worst_case_classification_layer_fits_48_bits() {
        // YOLO v2's widest layer: 1024 channels x 3x3.
        let fshape = Shape4::new(1024, 1024, 3, 3);
        assert!(fits_provisioned(fshape, 1 << 15, 1 << 15));
        // But an absurd hypothetical (megachannel) would not.
        let absurd = Shape4::new(1, 1 << 20, 3, 3);
        assert!(!fits_provisioned(absurd, 1 << 15, 1 << 15));
    }

    #[test]
    fn differential_needs_exactly_one_more_bit() {
        let fshape = Shape4::new(64, 64, 3, 3);
        assert_eq!(
            differential_accumulator_bits(fshape, 1 << 12, 1 << 11),
            direct_accumulator_bits(fshape, 1 << 12, 1 << 11) + 1
        );
    }

    #[test]
    fn bound_scales_linearly_in_fan_in() {
        let small = direct_accumulator_bound(Shape4::new(1, 16, 3, 3), 100, 100);
        let large = direct_accumulator_bound(Shape4::new(1, 32, 3, 3), 100, 100);
        assert_eq!(large, 2 * small);
    }

    #[test]
    fn emulator_values_stay_within_the_analysis() {
        // Drive the tile emulator at the calibrated operating point
        // (|w| < 2^13, |a| < 2^15) and check the analysis bound holds on
        // the actual accumulators it produces.
        use crate::tile::{run_tile, TileConfig};
        use diffy_models::LayerTrace;
        use diffy_tensor::{ConvGeometry, Tensor3, Tensor4};

        let imap = Tensor3::from_vec(
            4,
            4,
            18,
            (0..4 * 4 * 18).map(|i| ((i * 9973) % 32768) as i16).collect(),
        );
        let fmaps = Tensor4::from_vec(
            3,
            4,
            3,
            3,
            (0..3 * 4 * 9).map(|i| ((i * 131) % 8192) as i16 - 4096).collect(),
        );
        let trace = LayerTrace {
            name: "d".into(),
            index: 0,
            imap,
            fmaps,
            geom: ConvGeometry::same(3, 3),
            relu: false,
            requant_shift: 0,
            requant_bias: 0,
            next_stride: 1,
        };
        let run = run_tile(&trace, &TileConfig::default());
        let bound =
            direct_accumulator_bound(trace.fmaps.shape(), 4096, 32768) as i64;
        // The omap is saturated to i16 after the shift, so check the
        // pre-activation range indirectly through the bound arithmetic.
        assert!(bound < (1i64 << (SIP_ACCUMULATOR_BITS - 1)));
        assert_eq!(run.omap.shape().as_tuple(), (3, 4, 18));
    }
}
